"""repro — shared whiteboard models for distributed graph computation.

A full reimplementation of

    Becker, Kosowski, Matamala, Nisse, Rapaport, Suchan, Todinca.
    *Allowing each node to communicate only once in a distributed
    system: shared whiteboard models.*  SPAA 2012; journal version
    Distributed Computing 28(3), 2015.

Layout
------
``repro.graphs``      labeled graphs, families, reference algorithms
``repro.encoding``    bit-exact message codec, power-sum codes (Thm 2)
``repro.core``        the four models, adversaries, round simulator
``repro.protocols``   the paper's protocols (Thms 2, 5, 7, 9, 10, ...)
``repro.reductions``  Lemma 3 counting, Figure 1/2 gadgets, compilers
``repro.hierarchy``   Lemma 4 adapters, the Table 2 lattice
``repro.runtime``     execution plans, serial/process backends, sinks
``repro.analysis``    verification harness, Table 2 / figure regeneration

Quickstart
----------
>>> from repro import graphs, core, protocols
>>> g = graphs.random_k_degenerate(20, 3, seed=1)
>>> result = core.run(g, protocols.DegenerateBuildProtocol(3),
...                   core.SIMASYNC, core.RandomScheduler(0))
>>> result.output == g
True
"""

from . import (
    analysis,
    core,
    encoding,
    experiments,
    graphs,
    hierarchy,
    protocols,
    reductions,
    runtime,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "experiments",
    "core",
    "encoding",
    "graphs",
    "hierarchy",
    "protocols",
    "reductions",
    "runtime",
    "__version__",
]
