"""Run telemetry: spans, metrics, kernel snapshots and run manifests.

Observation-only by construction — the invariant every consumer relies
on is that enabling tracing cannot change what the engine computes:

* enablement is an environment flag (``REPRO_TRACE``), never a task
  attribute, so campaign fingerprints are blind to it;
* workers never write shared files — per-task payloads ride inside
  ``TaskOutcome`` and fold through the existing sink/merge seam, and
  only the parent's :class:`RunTelemetry` session serializes the JSONL
  event stream and run manifest;
* deterministic counters (:class:`KernelStats`) are split from timing
  (:class:`TaskTelemetry`): the former are captured always and equal
  the engine's own ``SearchStats``/table accounting field for field,
  the latter exist only while tracing.

This package is a leaf: stdlib at module level, engine imports only
lazily inside functions, so every layer can import it cycle-free.
"""

from .collect import NULL_COLLECTION, TaskCollection
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_metric_summaries,
)
from .report import TraceData, load_trace, render_report
from .schema import (
    TraceSchemaError,
    validate_manifest,
    validate_trace,
    validate_trace_lines,
)
from .session import (
    SCHEMA_VERSION,
    RunTelemetry,
    TelemetrySink,
    machine_metadata,
    plan_spec_digest,
)
from .stats import (
    KernelAccumulator,
    KernelStats,
    observe_table,
    watching_tables,
)
from .tracer import (
    NULL_SPAN,
    TRACE_ENV,
    Span,
    SpanRecord,
    TaskTelemetry,
    Tracer,
    activated,
    active,
    count,
    event,
    observe,
    set_tracing,
    span,
    tracing_enabled,
)

__all__ = [
    "TRACE_ENV",
    "SCHEMA_VERSION",
    "tracing_enabled",
    "set_tracing",
    "active",
    "activated",
    "span",
    "event",
    "count",
    "observe",
    "Span",
    "NULL_SPAN",
    "SpanRecord",
    "Tracer",
    "TaskTelemetry",
    "TaskCollection",
    "NULL_COLLECTION",
    "KernelStats",
    "KernelAccumulator",
    "observe_table",
    "watching_tables",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_metric_summaries",
    "RunTelemetry",
    "TelemetrySink",
    "machine_metadata",
    "plan_spec_digest",
    "TraceSchemaError",
    "validate_manifest",
    "validate_trace",
    "validate_trace_lines",
    "TraceData",
    "load_trace",
    "render_report",
]
