"""Deterministic kernel statistics: metrics that must equal the
engine's own accounting.

Unlike spans (timing — nondeterministic by nature), a
:class:`KernelStats` snapshot is a pure function of the work a cell
did: write-event steps, searches, restarts, batched lane accounting,
transposition-table counters.  Tasks capture one *always* — traced or
not — so the numbers are identical across serial/process backends and
traced/untraced runs, and tests pin them field for field against the
engine's live ``SearchStats`` / ``TranspositionTable`` counters.

The table-watch registry here is how private per-cell tables become
visible without a task attribute: ``TranspositionTable.bind`` calls
:func:`observe_table` (one global read when nothing watches), and the
task's collection scope dedupes by object identity.

Leaf module: stdlib only.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Any, Iterator, Optional

__all__ = [
    "KernelStats",
    "KernelAccumulator",
    "observe_table",
    "watching_tables",
]


@dataclass(frozen=True)
class KernelStats:
    """Frozen fold of a cell's deterministic search-kernel counters.

    ``steps``/``searches``/``restarts``/``batch_*`` mirror
    :class:`repro.adversaries.kernel.SearchStats`; the ``table_*``
    fields sum the counters of every transposition table the cell
    bound.  All sums, so :meth:`merge` is associative and a campaign
    can fold thousands of cells into one line.
    """

    steps: int = 0
    searches: int = 0
    restarts: int = 0
    batch_children: int = 0
    batch_kept: int = 0
    bound_prunes: int = 0
    table_hits: int = 0
    table_misses: int = 0
    table_stores: int = 0
    table_entries: int = 0
    tables: int = 0
    frontier_hits: int = 0
    frontier_stores: int = 0

    @property
    def batch_occupancy(self) -> float:
        """Fraction of batch-stepped lanes that survived compaction;
        0.0 when no batched stepping happened."""
        if not self.batch_children:
            return 0.0
        return self.batch_kept / self.batch_children

    @property
    def table_probes(self) -> int:
        return self.table_hits + self.table_misses

    @property
    def table_hit_rate(self) -> float:
        probes = self.table_probes
        return self.table_hits / probes if probes else 0.0

    def _astuple(self) -> tuple:
        return (
            self.steps, self.searches, self.restarts, self.batch_children,
            self.batch_kept, self.bound_prunes, self.table_hits,
            self.table_misses, self.table_stores, self.table_entries,
            self.tables, self.frontier_hits, self.frontier_stores,
        )

    def __bool__(self) -> bool:
        return any(self._astuple())

    def merge(self, other: "KernelStats") -> "KernelStats":
        return KernelStats(
            *(a + b for a, b in zip(self._astuple(), other._astuple()))
        )

    def to_jsonable(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_jsonable(cls, data: dict) -> "KernelStats":
        names = {f.name for f in fields(cls)}
        return cls(**{k: int(v) for k, v in data.items() if k in names})

    @classmethod
    def capture(cls, stats_list: Iterator, tables) -> "Optional[KernelStats]":
        """Fold live accounting objects (duck-typed ``SearchStats`` and
        transposition tables) into a snapshot; ``None`` when the cell
        observed nothing, so outcome kinds that never touched the
        search kernel stay equal to their pre-telemetry selves."""
        total = cls()
        for stats in stats_list:
            total = total.merge(cls(
                steps=stats.steps,
                searches=stats.searches,
                restarts=stats.restarts,
                batch_children=stats.batch_children,
                batch_kept=stats.batch_kept,
                bound_prunes=stats.bound_prunes,
            ))
        for table in tables:
            total = total.merge(cls(
                table_hits=table.hits,
                table_misses=table.misses,
                table_stores=table.stores,
                table_entries=len(table),
                tables=1,
                frontier_hits=table.frontier_hits,
                frontier_stores=table.frontier_stores,
            ))
        return total if total else None

    def summary(self) -> str:
        """The end-of-run kernel line (stress / campaign summaries)."""
        parts = [f"{self.steps} steps", f"{self.searches} searches"]
        if self.restarts:
            parts.append(f"{self.restarts} restarts")
        if self.batch_children:
            parts.append(f"batch occupancy {self.batch_occupancy:.2f}")
        if self.bound_prunes:
            parts.append(f"{self.bound_prunes} bound prunes")
        if self.tables:
            parts.append(
                f"table hit-rate {self.table_hit_rate:.2f} "
                f"({self.table_probes} probes, "
                f"{self.table_entries} entries)"
            )
        if self.frontier_hits or self.frontier_stores:
            parts.append(
                f"frontiers {self.frontier_hits} hits / "
                f"{self.frontier_stores} stores"
            )
        return ", ".join(parts)


class _TableWatch:
    """Identity-deduplicated set of tables seen during one scope."""

    __slots__ = ("tables",)

    def __init__(self) -> None:
        self.tables: dict[int, Any] = {}


_watch: Optional[_TableWatch] = None


def observe_table(table) -> None:
    """Register a transposition table with the watching scope, if any.

    Called from ``TranspositionTable.bind`` — once per search, one
    global read when nothing watches.  Id-deduplicated, so a shared
    table bound by four strategies still counts once.
    """
    watch = _watch
    if watch is not None:
        watch.tables[id(table)] = table


def _push_watch() -> "tuple[_TableWatch, Optional[_TableWatch]]":
    global _watch
    previous = _watch
    watch = _TableWatch()
    _watch = watch
    return watch, previous


def _pop_watch(previous: "Optional[_TableWatch]") -> None:
    global _watch
    _watch = previous


@contextmanager
def watching_tables() -> Iterator[_TableWatch]:
    """Collect every table bound inside the block (tests and ad-hoc
    instrumentation; tasks use :class:`~repro.telemetry.collect.
    TaskCollection`, which does the same push/pop inline)."""
    watch, previous = _push_watch()
    try:
        yield watch
    finally:
        _pop_watch(previous)


class KernelAccumulator:
    """Mutable driving-process fold of per-task :class:`KernelStats`
    (CLI end-of-run summaries, campaign meta persistence)."""

    def __init__(self) -> None:
        self.kernel: Optional[KernelStats] = None
        self.outcomes = 0

    def add(self, stats: Optional[KernelStats]) -> None:
        if stats is None:
            return
        self.outcomes += 1
        self.kernel = (
            stats if self.kernel is None else self.kernel.merge(stats)
        )
