"""The parent-side run session: JSONL event stream + run manifest.

Only the driving process writes telemetry files.  Workers ship their
payloads home inside ``TaskOutcome`` (mirroring the campaign rule that
the store is the only shared state), and the :class:`RunTelemetry`
session serializes them as they stream out of the backend:

* ``run-start`` line, then one ``plan`` line per lowered plan;
* one ``task`` line per outcome (arrival offset, deterministic kernel
  snapshot, tracing payload when present) and one ``store-hit`` line
  per cache-served cell;
* at :meth:`finish`, the parent tracer's own ``span``/``event`` lines
  (store latencies, shard lowering/reassembly) and a final ``manifest``
  line — machine metadata, plan spec digests, folded metric summaries —
  also mirrored to a sibling ``*.manifest.json``.

Opening a session turns tracing on for this process and future workers
(:func:`~repro.telemetry.tracer.set_tracing`); closing restores the
previous setting.  Everything is observation-only: the session wraps
sinks (:class:`TelemetrySink`) without touching what flows through
them, so merged reports are byte-identical with or without a session.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import time
import uuid
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from .metrics import merge_metric_summaries
from .stats import KernelStats
from .tracer import Tracer, activated, set_tracing, tracing_enabled

__all__ = [
    "SCHEMA_VERSION",
    "RunTelemetry",
    "TelemetrySink",
    "machine_metadata",
    "plan_spec_digest",
]

SCHEMA_VERSION = 1


def machine_metadata() -> dict:
    """Where this run happened: enough to interpret its timings."""
    counter = getattr(os, "process_cpu_count", None) or os.cpu_count
    meta = {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": counter() or 1,
    }
    try:
        import numpy

        meta["numpy"] = numpy.__version__
    except Exception:  # noqa: BLE001 - numpy is optional at runtime
        meta["numpy"] = None
    return meta


def plan_spec_digest(plan) -> str:
    """A short digest tying a trace to the exact durable work identity.

    Hashes the plan's task fingerprints (which already fold every cell
    spec and the code-version salt), so two traces with equal digests
    describe byte-identical work.  Falls back to a structural digest if
    fingerprinting fails (e.g. an unpicklable ad-hoc checker).
    """
    import hashlib

    try:
        from ..campaigns.store import task_fingerprint

        material = [task_fingerprint(task) for task in plan.tasks]
    except Exception:  # noqa: BLE001 - digest must never fail a run
        material = [repr((plan.mode, plan.protocol_names,
                          plan.model_names, len(plan.tasks)))]
    return hashlib.sha256("\n".join(material).encode()).hexdigest()[:16]


class RunTelemetry:
    """One run's telemetry session (driving process only)."""

    def __init__(self, path, *, command: str = "",
                 argv: Optional[list] = None) -> None:
        self.path = str(path)
        self.run_id = uuid.uuid4().hex[:12]
        self.command = command
        self.argv = list(argv) if argv is not None else []
        self.tracer = Tracer()
        self.kernel = KernelStats()
        self.task_metrics: dict = {}
        self.tasks = 0
        self.traced_tasks = 0
        self.store_hits = 0
        self.plans: list[dict] = []
        self._started_at = time.time()
        self._manifest: Optional[dict] = None
        self._was_enabled = tracing_enabled()
        self._fh = open(self.path, "w", encoding="utf-8")
        set_tracing(True)
        self._emit({
            "type": "run-start",
            "schema": SCHEMA_VERSION,
            "run_id": self.run_id,
            "command": self.command,
            "argv": self.argv,
            "started_at": self._started_at,
        })

    # -- event stream --------------------------------------------------

    def _emit(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def add_plan(self, plan) -> None:
        entry = {
            "mode": plan.mode,
            "protocols": list(plan.protocol_names),
            "models": list(plan.model_names),
            "tasks": len(plan.tasks),
            "spec_digest": plan_spec_digest(plan),
        }
        self.plans.append(entry)
        self._emit({"type": "plan", **entry})

    def record_outcome(self, outcome) -> None:
        """One ``task`` line per outcome, the moment the parent has it
        (``received_at`` offsets expose queue/reassembly gaps per task
        index without workers ever timing each other)."""
        self.tasks += 1
        record = {
            "type": "task",
            "index": outcome.index,
            "received_at": self.tracer.now(),
        }
        kernel = getattr(outcome, "kernel_stats", None)
        if kernel is not None:
            self.kernel = self.kernel.merge(kernel)
            record["kernel"] = kernel.to_jsonable()
        telemetry = getattr(outcome, "telemetry", None)
        if telemetry is not None:
            self.traced_tasks += 1
            record["telemetry"] = telemetry.to_jsonable()
            merge_metric_summaries(self.task_metrics, telemetry.metrics)
        self._emit(record)

    def record_hit(self, index: int,
                   fingerprint: Optional[str] = None) -> None:
        self.store_hits += 1
        record = {"type": "store-hit", "index": index,
                  "t": self.tracer.now()}
        if fingerprint is not None:
            record["fingerprint"] = fingerprint[:12]
        self._emit(record)

    # -- integration seams --------------------------------------------

    @contextmanager
    def activate(self) -> Iterator["RunTelemetry"]:
        """Install the session's parent tracer for the block, so
        driving-process instrumentation (store latencies, shard
        lowering/reassembly) lands in the run stream.  Per-task tracers
        nest inside and restore it on exit."""
        with activated(self.tracer):
            yield self

    def sink(self, inner) -> "TelemetrySink":
        """Wrap a result sink so every outcome is recorded after the
        inner sink (i.e. after any store commit) accepts it."""
        return TelemetrySink(self, inner)

    # -- manifest ------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        root, ext = os.path.splitext(self.path)
        return (root if ext else self.path) + ".manifest.json"

    def _build_manifest(self, status: str) -> dict:
        metrics = dict(self.task_metrics)
        merge_metric_summaries(metrics, self.tracer.metrics.to_jsonable())
        return {
            "schema": SCHEMA_VERSION,
            "run_id": self.run_id,
            "command": self.command,
            "argv": self.argv,
            "status": status,
            "started_at": self._started_at,
            "finished_at": time.time(),
            "wall_seconds": self.tracer.now(),
            "machine": machine_metadata(),
            "plans": list(self.plans),
            "tasks": self.tasks,
            "traced_tasks": self.traced_tasks,
            "store_hits": self.store_hits,
            "kernel": self.kernel.to_jsonable() if self.kernel else None,
            "metrics": metrics,
        }

    def finish(self, status: str = "ok") -> dict:
        """Flush parent spans/events, write the manifest (stream tail +
        sibling file), close, and restore the tracing flag.  Idempotent:
        later calls return the same manifest."""
        if self._manifest is not None:
            return self._manifest
        for record in self.tracer.spans:
            self._emit({"type": "span", **record.to_jsonable()})
        for name, t, attrs in self.tracer.events:
            self._emit({"type": "event", "name": name, "t": t,
                        "attrs": attrs})
        manifest = self._build_manifest(status)
        self._emit({"type": "manifest", **manifest})
        self._fh.close()
        with open(self.manifest_path, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        if not self._was_enabled:
            set_tracing(False)
        self._manifest = manifest
        return manifest

    def __enter__(self) -> "RunTelemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.finish("ok" if exc_type is None else "error")
        return False


class TelemetrySink:
    """Duck-typed ``ResultSink`` wrapper: delegate first (so a store
    commit is durable before its trace line exists), then record."""

    def __init__(self, session: RunTelemetry, inner: Any) -> None:
        self.session = session
        self.inner = inner

    def add(self, outcome) -> None:
        self.inner.add(outcome)
        self.session.record_outcome(outcome)

    def result(self) -> Any:
        return self.inner.result()
