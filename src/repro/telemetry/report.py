"""Render a human-readable report from a JSONL trace.

Backs both ``repro telemetry report`` and ``tools/trace_report.py``:
per-cell timing tables, deterministic kernel counters, top-k hotspot
spans, shard-imbalance flags and store latency summaries — everything a
"why was this run slow" triage needs, from one file, offline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from .schema import TraceSchemaError, validate_trace_lines

__all__ = ["TraceData", "load_trace", "render_report"]

IMBALANCE_FLAG = 1.5


@dataclass
class TraceData:
    """A parsed trace: the manifest plus the per-record views the
    report renders from."""

    manifest: dict
    tasks: list = field(default_factory=list)
    plans: list = field(default_factory=list)
    hits: list = field(default_factory=list)
    spans: list = field(default_factory=list)
    events: list = field(default_factory=list)


def load_trace(path, validate: bool = True) -> TraceData:
    """Read a JSONL trace into a :class:`TraceData`.

    With ``validate`` (the default) the stream is schema-checked first,
    so a malformed trace fails loudly instead of rendering nonsense.
    """
    with open(path, encoding="utf-8") as fh:
        lines = fh.readlines()
    if validate:
        manifest = validate_trace_lines(lines)
    else:
        manifest = None
    data = TraceData(manifest=manifest or {})
    for line in lines:
        if not line.strip():
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind == "task":
            data.tasks.append(record)
        elif kind == "plan":
            data.plans.append(record)
        elif kind == "store-hit":
            data.hits.append(record)
        elif kind == "span":
            data.spans.append(record)
        elif kind == "event":
            data.events.append(record)
        elif kind == "manifest" and manifest is None:
            data.manifest = record
    if not data.manifest:
        raise TraceSchemaError(f"{path}: no manifest record")
    return data


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _table(headers: list, rows: list) -> list:
    """Plain monospace columns (same idiom as the analysis tables)."""
    cells = [headers] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for j, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    return lines


def _task_row(record: dict) -> list:
    """One per-cell row: identity from the task span's attrs,
    duration/metrics from the payload, counters from the kernel."""
    telemetry = record.get("telemetry") or {}
    attrs = {}
    for span in telemetry.get("spans", ()):
        if span.get("name") == "task":
            attrs = span.get("attrs", {})
            break
    kernel = record.get("kernel") or {}
    metrics = telemetry.get("metrics", {})
    explored = metrics.get("search.explored", {}).get("value", "-")
    probes = kernel.get("table_hits", 0) + kernel.get("table_misses", 0)
    hit_rate = f"{kernel['table_hits'] / probes:.2f}" if probes else "-"
    children = kernel.get("batch_children", 0)
    occupancy = (
        f"{kernel.get('batch_kept', 0) / children:.2f}" if children else "-"
    )
    # A sharded cell merges in the parent, so no per-task tracer ever
    # wrapped it: identity lives in the plan line, not a task span.
    cell = "(merged in parent)"
    mode = "-"
    if attrs:
        cell = f"{attrs.get('protocol', '?')}/n={attrs.get('n', '?')}"
        if attrs.get("batch"):
            cell += " [batch]"
        mode = attrs.get("mode", "?")
    return [
        record["index"],
        cell,
        mode,
        _fmt_seconds(telemetry.get("duration")),
        kernel.get("steps", "-"),
        explored,
        hit_rate,
        occupancy,
    ]


def _hotspots(trace: TraceData, top: int) -> list:
    """Top-k spans by total time, folded by name across tasks and the
    parent stream."""
    totals: dict = {}
    all_spans = list(trace.spans)
    for record in trace.tasks:
        all_spans.extend((record.get("telemetry") or {}).get("spans", ()))
    for span in all_spans:
        name = span["name"]
        total, count = totals.get(name, (0.0, 0))
        totals[name] = (total + span["duration"], count + 1)
    ranked = sorted(totals.items(), key=lambda kv: -kv[1][0])[:top]
    return [
        [name, count, _fmt_seconds(total),
         _fmt_seconds(total / count if count else None)]
        for name, (total, count) in ranked
    ]


def _shard_lines(trace: TraceData) -> list:
    lines = []
    for record in trace.events:
        if record["name"] != "shard.lots":
            continue
        attrs = record["attrs"]
        imbalance = attrs.get("imbalance")
        flag = ""
        if isinstance(imbalance, (int, float)) and imbalance > IMBALANCE_FLAG:
            flag = "  <-- IMBALANCED"
        ratio = (
            f"{imbalance:.2f}" if isinstance(imbalance, (int, float)) else "?"
        )
        lines.append(
            f"  task {attrs.get('index', '?')}: {attrs.get('lots', '?')} "
            f"lots, max/mean weight {ratio}{flag}"
        )
    fallbacks = [r for r in trace.events if r["name"] == "shard.fallback"]
    for record in fallbacks:
        attrs = record["attrs"]
        lines.append(
            f"  task {attrs.get('index', '?')}: serial fallback "
            f"({attrs.get('reason', 'unknown')})"
        )
    return lines


def _store_lines(manifest: dict) -> list:
    metrics = manifest.get("metrics", {})
    lines = []
    for name, label in (("store.get_seconds", "get"),
                        ("store.put_seconds", "put")):
        summary = metrics.get(name)
        if not summary or summary.get("type") != "histogram":
            continue
        count = summary.get("count", 0)
        mean = summary.get("mean")
        p95 = summary.get("p95")
        lines.append(
            f"  {label}: {count} ops, mean {_fmt_seconds(mean)}, "
            f"p95 {_fmt_seconds(p95)}"
        )
    hits = metrics.get("store.hits", {}).get("value")
    misses = metrics.get("store.misses", {}).get("value")
    if hits is not None or misses is not None:
        lines.append(
            f"  cache: {hits or 0} hits / {misses or 0} misses"
        )
    return lines


def render_report(trace: TraceData, top: int = 10) -> str:
    manifest = trace.manifest
    machine = manifest.get("machine", {})
    out = [
        f"trace {manifest.get('run_id', '?')}: "
        f"{manifest.get('command') or 'run'} "
        f"[{manifest.get('status', '?')}]",
        f"  machine: {machine.get('hostname', '?')} "
        f"({machine.get('platform', '?')}, "
        f"python {machine.get('python', '?')}, "
        f"{machine.get('cpu_count', '?')} cpus)",
        f"  wall: {_fmt_seconds(manifest.get('wall_seconds'))}, "
        f"tasks: {manifest.get('tasks', 0)} "
        f"({manifest.get('traced_tasks', 0)} traced, "
        f"{manifest.get('store_hits', 0)} store hits)",
    ]
    for plan in manifest.get("plans", ()):
        out.append(
            f"  plan: {plan.get('mode', '?')} x "
            f"{len(plan.get('protocols', ()))} protocols x "
            f"{len(plan.get('models', ()))} models "
            f"({plan.get('tasks', '?')} tasks, "
            f"spec {plan.get('spec_digest', '?')})"
        )
    kernel = manifest.get("kernel")
    if kernel:
        from .stats import KernelStats

        out.append(f"  kernel: {KernelStats.from_jsonable(kernel).summary()}")
    if trace.tasks:
        out.append("")
        out.append("per-cell timings:")
        rows = [_task_row(r) for r in sorted(trace.tasks,
                                             key=lambda r: r["index"])]
        out.extend(
            "  " + line for line in _table(
                ["index", "cell", "mode", "time", "steps", "explored",
                 "tbl-hit", "occup"],
                rows,
            )
        )
    hotspots = _hotspots(trace, top)
    if hotspots:
        out.append("")
        out.append(f"hotspots (top {len(hotspots)} spans by total time):")
        out.extend(
            "  " + line for line in _table(
                ["span", "count", "total", "mean"], hotspots,
            )
        )
    shard = _shard_lines(trace)
    if shard:
        out.append("")
        out.append("sharding:")
        out.extend(shard)
    store = _store_lines(manifest)
    if store:
        out.append("")
        out.append("store latency:")
        out.extend(store)
    return "\n".join(out) + "\n"
