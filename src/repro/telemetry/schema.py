"""Hand-rolled trace/manifest validation (no external jsonschema dep).

Deliberately strict about *shape* — record types, required keys, value
types, cross-line consistency (task/hit counts must match the manifest)
— and deliberately loose about *values*: new metric names, span names
or span attributes must never break an old reader.  CI runs
:func:`validate_trace` over a real 2-job stress trace, so the published
shape and the emitter cannot drift apart.
"""

from __future__ import annotations

import json
from typing import Any, Optional

__all__ = [
    "TraceSchemaError",
    "validate_manifest",
    "validate_trace_lines",
    "validate_trace",
]

NUM = (int, float)


class TraceSchemaError(ValueError):
    """A trace file or manifest violates the published schema."""


def _require(record: dict, where: str, **fields) -> None:
    for key, types in fields.items():
        if key not in record:
            raise TraceSchemaError(
                f"{where}: {record.get('type', 'record')!s} missing {key!r}"
            )
        if not isinstance(record[key], types):
            names = (
                "/".join(t.__name__ for t in types)
                if isinstance(types, tuple) else types.__name__
            )
            raise TraceSchemaError(
                f"{where}: {key!r} should be {names}, "
                f"got {type(record[key]).__name__}"
            )


def _check_kernel(payload: Any, where: str) -> None:
    if payload is None:
        return
    if not isinstance(payload, dict):
        raise TraceSchemaError(f"{where}: kernel should be object or null")
    for key, value in payload.items():
        if not isinstance(value, int) or value < 0:
            raise TraceSchemaError(
                f"{where}: kernel[{key!r}] should be a non-negative int"
            )


def _check_span(payload: dict, where: str) -> None:
    _require(payload, where, name=str, start=NUM, duration=NUM, attrs=dict)


def _check_event(payload: dict, where: str) -> None:
    _require(payload, where, name=str, t=NUM, attrs=dict)


def _check_metrics(payload: Any, where: str) -> None:
    if not isinstance(payload, dict):
        raise TraceSchemaError(f"{where}: metrics should be an object")
    for name, summary in payload.items():
        if not isinstance(summary, dict) or "type" not in summary:
            raise TraceSchemaError(
                f"{where}: metric {name!r} should be a typed object"
            )
        kind = summary["type"]
        if kind == "counter":
            _require(summary, f"{where} metric {name!r}", value=NUM)
        elif kind == "gauge":
            if "value" not in summary:
                raise TraceSchemaError(
                    f"{where}: gauge {name!r} missing 'value'"
                )
        elif kind == "histogram":
            _require(summary, f"{where} metric {name!r}", count=int,
                     total=NUM)
        else:
            raise TraceSchemaError(
                f"{where}: metric {name!r} has unknown type {kind!r}"
            )


def _check_telemetry(payload: dict, where: str) -> None:
    _require(payload, where, duration=NUM, spans=list, events=list,
             metrics=dict)
    for i, span in enumerate(payload["spans"]):
        if not isinstance(span, dict):
            raise TraceSchemaError(f"{where}: spans[{i}] should be object")
        _check_span(span, f"{where} spans[{i}]")
    for i, ev in enumerate(payload["events"]):
        if not isinstance(ev, dict):
            raise TraceSchemaError(f"{where}: events[{i}] should be object")
        _check_event(ev, f"{where} events[{i}]")
    _check_metrics(payload["metrics"], where)


def _check_plan(payload: dict, where: str) -> None:
    _require(payload, where, mode=str, protocols=list, models=list,
             tasks=int, spec_digest=str)


def validate_manifest(manifest: dict, where: str = "manifest") -> None:
    """Validate a manifest object (stream tail or sibling file)."""
    _require(
        manifest, where, schema=int, run_id=str, command=str, argv=list,
        status=str, started_at=NUM, finished_at=NUM, wall_seconds=NUM,
        machine=dict, plans=list, tasks=int, traced_tasks=int,
        store_hits=int, metrics=dict,
    )
    if manifest["schema"] != 1:
        raise TraceSchemaError(
            f"{where}: unsupported schema version {manifest['schema']!r}"
        )
    _require(manifest["machine"], f"{where} machine", python=str,
             platform=str, cpu_count=int)
    for i, plan in enumerate(manifest["plans"]):
        if not isinstance(plan, dict):
            raise TraceSchemaError(f"{where}: plans[{i}] should be object")
        _check_plan(plan, f"{where} plans[{i}]")
    _check_kernel(manifest.get("kernel"), where)
    _check_metrics(manifest["metrics"], where)


def validate_trace_lines(lines) -> dict:
    """Validate a JSONL event stream; returns the (validated) manifest.

    Checks per-line shape, stream framing (``run-start`` first,
    ``manifest`` last), ``run_id`` consistency, and that the manifest's
    task/traced/hit counts equal the stream's actual line counts.
    """
    records: list[dict] = []
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceSchemaError(f"line {line_no}: invalid JSON ({exc})")
        if not isinstance(record, dict) or not isinstance(
                record.get("type"), str):
            raise TraceSchemaError(
                f"line {line_no}: every record is an object with a "
                "string 'type'"
            )
        records.append(record)
    if not records:
        raise TraceSchemaError("empty trace: no records")
    if records[0]["type"] != "run-start":
        raise TraceSchemaError("first record must be 'run-start'")
    if records[-1]["type"] != "manifest":
        raise TraceSchemaError(
            "last record must be 'manifest' (incomplete trace?)"
        )
    start = records[0]
    _require(start, "line 1", schema=int, run_id=str, command=str,
             argv=list, started_at=NUM)
    tasks = traced = hits = 0
    for line_no, record in enumerate(records[1:-1], start=2):
        where = f"line {line_no}"
        kind = record["type"]
        if kind == "task":
            _require(record, where, index=int, received_at=NUM)
            if record["index"] < 0:
                raise TraceSchemaError(f"{where}: negative task index")
            _check_kernel(record.get("kernel"), where)
            if "telemetry" in record:
                if not isinstance(record["telemetry"], dict):
                    raise TraceSchemaError(
                        f"{where}: telemetry should be an object"
                    )
                _check_telemetry(record["telemetry"], where)
                traced += 1
            tasks += 1
        elif kind == "store-hit":
            _require(record, where, index=int, t=NUM)
            hits += 1
        elif kind == "plan":
            _check_plan(record, where)
        elif kind == "span":
            _check_span(record, where)
        elif kind == "event":
            _check_event(record, where)
        elif kind in ("run-start", "manifest"):
            raise TraceSchemaError(f"{where}: {kind!r} must frame the stream")
        else:
            raise TraceSchemaError(f"{where}: unknown record type {kind!r}")
    manifest = records[-1]
    validate_manifest(manifest, where=f"line {len(records)}")
    if manifest["run_id"] != start["run_id"]:
        raise TraceSchemaError("manifest run_id differs from run-start")
    for key, actual in (("tasks", tasks), ("traced_tasks", traced),
                        ("store_hits", hits)):
        if manifest[key] != actual:
            raise TraceSchemaError(
                f"manifest says {key}={manifest[key]}, stream has {actual}"
            )
    return manifest


def validate_trace(path) -> dict:
    """Validate the JSONL trace at ``path``; returns its manifest.

    If a sibling ``*.manifest.json`` exists it must validate too and
    carry the same ``run_id``.
    """
    import os

    with open(path, encoding="utf-8") as fh:
        manifest = validate_trace_lines(fh)
    root, ext = os.path.splitext(str(path))
    sibling = (root if ext else str(path)) + ".manifest.json"
    if os.path.exists(sibling):
        with open(sibling, encoding="utf-8") as fh:
            try:
                side = json.load(fh)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(f"{sibling}: invalid JSON ({exc})")
        validate_manifest(side, where=sibling)
        if side["run_id"] != manifest["run_id"]:
            raise TraceSchemaError(
                f"{sibling}: run_id differs from the event stream"
            )
    return manifest
