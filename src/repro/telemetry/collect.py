"""Per-task observation scope: the ``ExecutionTask.execute`` seam.

A :class:`TaskCollection` is the one object a task opens around its
cell.  It always watches transposition tables and search-context stats
(their counters are deterministic and cheap to snapshot), and — only
when :func:`~repro.telemetry.tracer.tracing_enabled` — hosts a per-task
:class:`~repro.telemetry.tracer.Tracer` whose frozen payload rides home
in ``TaskOutcome.telemetry``.  Workers never write shared files: the
collection's output is plain picklable data on the outcome, folded by
the parent exactly like reports.

``NULL_COLLECTION`` is the instrumentation-free reference path the
``telemetry_overhead_n6`` benchmark gate compares against.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Optional

from .stats import KernelStats, _pop_watch, _push_watch
from .tracer import Tracer, _pop_active, _push_active, tracing_enabled

__all__ = ["TaskCollection", "NULL_COLLECTION"]


class TaskCollection:
    """Observation scope for one task execution (context manager)."""

    def __init__(self, task: Any) -> None:
        self.task = task
        self.tracer: Optional[Tracer] = (
            Tracer() if tracing_enabled() else None
        )
        self._contexts: list[Any] = []
        self._watch = None
        self._prev_watch = None
        self._prev_active = None
        self._span = None

    def __enter__(self) -> "TaskCollection":
        self._watch, self._prev_watch = _push_watch()
        if self.tracer is not None:
            self._prev_active = _push_active(self.tracer)
            task = self.task
            self._span = self.tracer.span(
                "task",
                index=task.index,
                mode=task.mode,
                protocol=task.protocol.name,
                model=task.model_name,
                n=task.graph.n,
                faults=task.faults,
                batch=task.batch,
            )
            self._span.__enter__()
        return self

    def __exit__(self, *exc_info) -> bool:
        if self._span is not None:
            self._span.__exit__(*exc_info)
        if self.tracer is not None:
            _pop_active(self._prev_active)
        _pop_watch(self._prev_watch)
        return False

    def observe_context(self, context) -> None:
        """Register a ``SearchContext`` whose cumulative stats the final
        snapshot folds (observation-only: the context is never read
        back into the search)."""
        if context is not None:
            self._contexts.append(context.stats)

    def finalize(self, outcome):
        """Attach the captured snapshot/payload to ``outcome``.

        Returns the *identical* object when nothing was observed, so
        cells that never touch the search kernel produce outcomes
        byte-equal to their pre-telemetry selves.
        """
        kernel = KernelStats.capture(
            self._contexts,
            self._watch.tables.values() if self._watch is not None else (),
        )
        telemetry = self.tracer.finish() if self.tracer is not None else None
        if kernel is None and telemetry is None:
            return outcome
        return replace(outcome, kernel_stats=kernel, telemetry=telemetry)


class _NullCollection:
    """The do-nothing collection: the pre-telemetry execute path.

    Exists so the overhead benchmark can run the same cell body with
    zero observation and gate the instrumented tracing-off path against
    it on the same machine.
    """

    __slots__ = ()
    tracer = None

    def __enter__(self) -> "_NullCollection":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def observe_context(self, context) -> None:
        pass

    def finalize(self, outcome):
        return outcome


NULL_COLLECTION = _NullCollection()
