"""Zero-overhead-when-off tracing: spans, events, the active tracer.

The observation-only contract every instrumentation site in the engine
relies on:

* :func:`active` is a single module-global read.  Hot paths guard on
  ``active() is None`` (or call the module-level :func:`span` /
  :func:`count` / :func:`observe` helpers, which do the guard), so an
  untraced run pays one ``is None`` check per instrumented operation
  and allocates nothing.
* Enablement rides the ``REPRO_TRACE`` environment variable — *not* a
  task attribute — so campaign fingerprints cannot see it and worker
  processes inherit it through the pool environment (the parent flips
  the flag before the pool exists).
* Tracers observe; nothing in the engine ever reads a value back out
  of one.  Timing data is nondeterministic by nature, which is why a
  task's :class:`TaskTelemetry` rides *beside* its report in the
  ``TaskOutcome``, never inside it.

Leaf module: stdlib plus :mod:`repro.telemetry.metrics` only.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Optional

from .metrics import MetricsRegistry

__all__ = [
    "TRACE_ENV",
    "tracing_enabled",
    "set_tracing",
    "SpanRecord",
    "Span",
    "Tracer",
    "TaskTelemetry",
    "active",
    "activated",
    "span",
    "event",
    "count",
    "observe",
]

TRACE_ENV = "REPRO_TRACE"
_TRUTHY = frozenset({"1", "true", "yes", "on"})

_enabled: Optional[bool] = None


def tracing_enabled() -> bool:
    """Whether this process should collect per-task telemetry.

    The environment decision is cached after the first read; worker
    processes inherit the variable and decide identically.
    """
    global _enabled
    if _enabled is None:
        _enabled = os.environ.get(TRACE_ENV, "").strip().lower() in _TRUTHY
    return _enabled


def set_tracing(on: bool) -> None:
    """Flip tracing for this process *and* future workers.

    Pools are created after the flag is set (inside ``Backend.map`` at
    call time), so the exported environment variable is what makes the
    flag travel — no task attribute, no fingerprint change.
    """
    global _enabled
    _enabled = bool(on)
    if on:
        os.environ[TRACE_ENV] = "1"
    else:
        os.environ.pop(TRACE_ENV, None)


def _reset_tracing() -> None:
    """Forget the cached environment decision (tests only)."""
    global _enabled
    _enabled = None


@dataclass(frozen=True)
class SpanRecord:
    """One finished span; offsets are seconds since the tracer origin."""

    name: str
    start: float
    duration: float
    attrs: tuple[tuple[str, Any], ...] = ()

    def to_jsonable(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "SpanRecord":
        return cls(
            data["name"], data["start"], data["duration"],
            tuple(data.get("attrs", {}).items()),
        )


class Span:
    """Live span handle (context manager); :meth:`set` adds attributes
    discovered mid-span (result sizes, verdicts)."""

    __slots__ = ("_tracer", "name", "_attrs", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self._attrs = attrs
        self._t0 = 0.0

    def set(self, key: str, value) -> None:
        self._attrs[key] = value

    def __enter__(self) -> "Span":
        self._t0 = self._tracer._clock()
        return self

    def __exit__(self, *exc_info) -> bool:
        tracer = self._tracer
        now = tracer._clock()
        tracer.spans.append(SpanRecord(
            self.name, self._t0 - tracer.origin, now - self._t0,
            tuple(self._attrs.items()),
        ))
        return False


class _NullSpan:
    """The off-path span: enters, sets, exits; allocates nothing."""

    __slots__ = ()

    def set(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """One scope's collection of spans, events and metrics — a run's
    (parent side) or a single task's (worker side)."""

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self.origin = clock()
        self.spans: list[SpanRecord] = []
        self.events: list[tuple[str, float, dict]] = []
        self.metrics = MetricsRegistry()

    def now(self) -> float:
        """Seconds since this tracer was created."""
        return self._clock() - self.origin

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        self.events.append((name, self.now(), attrs))

    def count(self, name: str, n: int = 1) -> None:
        self.metrics.counter(name).inc(n)

    def observe(self, name: str, value) -> None:
        self.metrics.histogram(name).observe(value)

    def gauge(self, name: str, value) -> None:
        self.metrics.gauge(name).set(value)

    def finish(self) -> "TaskTelemetry":
        """Freeze everything collected into a picklable payload."""
        return TaskTelemetry(
            duration=self.now(),
            spans=tuple(self.spans),
            events=tuple((n, t, dict(a)) for n, t, a in self.events),
            metrics=self.metrics.to_jsonable(),
        )


_active: Optional[Tracer] = None


def active() -> Optional[Tracer]:
    """The tracer observing this process right now, or ``None`` — the
    one global read every instrumentation guard performs."""
    return _active


def _push_active(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer``; returns the previous one for :func:`_pop_active`."""
    global _active
    previous = _active
    _active = tracer
    return previous


def _pop_active(previous: Optional[Tracer]) -> None:
    global _active
    _active = previous


@contextmanager
def activated(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Install ``tracer`` as the active one for the block.

    Stack-like: the previous tracer is restored on exit, so a per-task
    tracer nests cleanly inside a run-level (parent) tracer.
    """
    previous = _push_active(tracer)
    try:
        yield tracer
    finally:
        _pop_active(previous)


def span(name: str, **attrs):
    """A span on the active tracer, or the shared no-op span."""
    tracer = _active
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def event(name: str, **attrs) -> None:
    tracer = _active
    if tracer is not None:
        tracer.event(name, **attrs)


def count(name: str, n: int = 1) -> None:
    tracer = _active
    if tracer is not None:
        tracer.count(name, n)


def observe(name: str, value) -> None:
    tracer = _active
    if tracer is not None:
        tracer.observe(name, value)


@dataclass(frozen=True)
class TaskTelemetry:
    """Tracing payload one task ships home inside its ``TaskOutcome``.

    Plain picklable data (tuples, dicts, floats).  Timing-bearing and
    therefore nondeterministic — which is why it lives *beside* the
    report, never inside it, and why no equality-pinned path compares
    it: with tracing off the field is simply ``None``.
    """

    duration: float
    spans: tuple[SpanRecord, ...]
    events: tuple[tuple[str, float, dict], ...]
    metrics: dict

    def to_jsonable(self) -> dict:
        return {
            "duration": self.duration,
            "spans": [s.to_jsonable() for s in self.spans],
            "events": [
                {"name": n, "t": t, "attrs": a} for n, t, a in self.events
            ],
            "metrics": self.metrics,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "TaskTelemetry":
        return cls(
            duration=data["duration"],
            spans=tuple(SpanRecord.from_jsonable(s) for s in data["spans"]),
            events=tuple(
                (e["name"], e["t"], dict(e["attrs"])) for e in data["events"]
            ),
            metrics=dict(data["metrics"]),
        )
