"""Counters, gauges and histograms for the run-telemetry subsystem.

A :class:`MetricsRegistry` is a name-addressed bag of metrics owned by
one :class:`~repro.telemetry.tracer.Tracer`.  Metrics are observation
accumulators, nothing more: no locks (the engine is single-threaded per
process), no global registry (a worker's metrics ride home inside its
``TaskOutcome``; the parent folds them), no export protocol beyond
``to_jsonable``.

This module is a leaf: stdlib only, importable from every layer.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_metric_summaries",
]


class Counter:
    """Monotonic event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_jsonable(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (e.g. the width a frontier ended at)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value) -> None:
        self.value = value

    def to_jsonable(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming distribution summary.

    ``count``/``total``/``min``/``max`` are exact for every observation;
    up to ``cap`` raw values are retained for percentile estimates, so
    memory stays bounded on million-observation runs (past the cap the
    percentiles describe the retained prefix, which is fine for the
    diagnostic use here).
    """

    __slots__ = ("count", "total", "min", "max", "cap", "_values")

    def __init__(self, cap: int = 4096) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.cap = cap
        self._values: list[float] = []

    def observe(self, value) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._values) < self.cap:
            self._values.append(value)

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def percentile(self, q: float) -> Optional[float]:
        if not self._values:
            return None
        ordered = sorted(self._values)
        pos = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[int(pos)]

    def to_jsonable(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
        }


class MetricsRegistry:
    """Name-addressed metric set; one per tracer.

    ``counter``/``gauge``/``histogram`` create on first use and
    type-check on every later one, so a name can never silently change
    meaning mid-run.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}

    def _named(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls()
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._named(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._named(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._named(name, Histogram)

    def get(self, name: str):
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def to_jsonable(self) -> dict:
        return {
            name: metric.to_jsonable()
            for name, metric in sorted(self._metrics.items())
        }


def merge_metric_summaries(into: dict, new: dict) -> dict:
    """Fold one jsonable metric summary into an accumulator in place
    (both shaped like :meth:`MetricsRegistry.to_jsonable` output).

    Counters sum; gauges keep the last non-``None`` value; histograms
    combine count/total/min/max exactly and drop percentiles (a merged
    percentile would be a lie).  The run session uses this to aggregate
    per-task metric summaries into the manifest.
    """
    for name, summary in new.items():
        have = into.get(name)
        if have is None:
            merged = dict(summary)
            if merged.get("type") == "histogram":
                merged["p50"] = merged["p95"] = None
            into[name] = merged
            continue
        if have.get("type") != summary.get("type"):
            raise ValueError(f"metric {name!r} changed type across tasks")
        kind = summary.get("type")
        if kind == "counter":
            have["value"] += summary["value"]
        elif kind == "gauge":
            if summary["value"] is not None:
                have["value"] = summary["value"]
        else:
            have["count"] += summary["count"]
            have["total"] += summary["total"]
            for key, pick in (("min", min), ("max", max)):
                values = [v for v in (have[key], summary[key])
                          if v is not None]
                have[key] = pick(values) if values else None
            have["mean"] = (
                have["total"] / have["count"] if have["count"] else None
            )
            have["p50"] = have["p95"] = None
    return into
