"""BUILD: whiteboard reconstruction of bounded-degeneracy graphs.

Section 3 of the paper.  Every node simultaneously (``SIMASYNC``) writes

``(ID(v), d_G(v), b_1, ..., b_k)``  with  ``b_p = Σ_{w ∈ N(v)} ID(w)^p``

— ``O(k^2 log n)`` bits (Lemma 1).  The output function (Algorithm 1)
repeatedly *prunes* a node of residual degree ≤ k: its current
neighbourhood is the unique set with those power sums (Wright's theorem),
and pruning subtracts its contribution from every neighbour's tuple.
For ``k = 1`` this is exactly the forest protocol of Section 3.1.

The protocol is *robust* (end of Section 3): on inputs outside the
degeneracy-≤k class the pruning gets stuck or a decode fails, and the
output is the sentinel :data:`NOT_IN_CLASS` instead of a wrong graph.
"""

from __future__ import annotations

from typing import Literal, Union

from ..encoding.bits import Payload
from ..encoding.power_sums import DecodeError, SubsetLookupTable, decode_power_sums, power_sums
from ..graphs.labeled_graph import Edge, LabeledGraph
from ..core.protocol import NodeView, Protocol
from ..core.whiteboard import BoardView

__all__ = [
    "NOT_IN_CLASS",
    "BuildOutput",
    "DegenerateBuildProtocol",
    "ForestBuildProtocol",
    "decode_build_board",
]

#: Sentinel output when the input graph is not k-degenerate (the
#: recognition behaviour noted after Theorem 2).
NOT_IN_CLASS = "NOT_IN_CLASS"

BuildOutput = Union[LabeledGraph, Literal["NOT_IN_CLASS"]]


class DegenerateBuildProtocol(Protocol):
    """Theorem 2: ``BUILD`` for degeneracy-≤k graphs in ``SIMASYNC[log n]``.

    Parameters
    ----------
    k:
        Degeneracy bound; all nodes must agree on it (the paper assumes
        ``k`` is common knowledge).
    decoder:
        ``"newton"`` (exact algebraic inversion, default) or ``"lookup"``
        (the paper's Lemma 2 table — only viable for small ``n``/``k``).
    """

    designed_for = "SIMASYNC"

    def __init__(self, k: int, decoder: str = "newton") -> None:
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        if decoder not in ("newton", "lookup"):
            raise ValueError(f"unknown decoder {decoder!r}")
        self.k = k
        self.decoder = decoder
        self.name = f"build-degenerate(k={k})"
        self._lookup: SubsetLookupTable | None = None

    def message(self, view: NodeView) -> Payload:
        # The message ignores the whiteboard entirely: SIMASYNC-legal.
        return (view.node, view.degree) + power_sums(sorted(view.neighbors), self.k)

    def output(self, board: BoardView, n: int) -> BuildOutput:
        lookup = None
        if self.decoder == "lookup":
            if self._lookup is None or self._lookup.n != n:
                self._lookup = SubsetLookupTable(n, self.k)
            lookup = self._lookup
        return decode_build_board(board, n, self.k, lookup=lookup)


class ForestBuildProtocol(DegenerateBuildProtocol):
    """Section 3.1's special case ``k = 1``: forests.

    The message is the paper's triple ``(ID, d_T(v), Σ ID(w))``.
    """

    def __init__(self, decoder: str = "newton") -> None:
        super().__init__(k=1, decoder=decoder)
        self.name = "build-forest"


def decode_build_board(
    board: BoardView,
    n: int,
    k: int,
    lookup: SubsetLookupTable | None = None,
) -> BuildOutput:
    """Algorithm 1: reconstruct the graph from a complete BUILD board.

    Runs the pruning loop on mutable copies of the whiteboard tuples,
    ``O(n^2)`` arithmetic operations overall.  Returns
    :data:`NOT_IN_CLASS` when the board is not the trace of a
    degeneracy-≤k graph (stuck pruning, failed decode, or inconsistent
    bookkeeping).
    """
    # Parse and validate the board: one message per identifier.
    state: dict[int, tuple[int, list[int]]] = {}
    for payload in board:
        if not (
            isinstance(payload, tuple)
            and len(payload) == k + 2
            and all(isinstance(x, int) for x in payload)
        ):
            return NOT_IN_CLASS
        node, deg = payload[0], payload[1]
        if not (1 <= node <= n) or node in state or deg < 0:
            return NOT_IN_CLASS
        state[node] = (deg, list(payload[2:]))
    if len(state) != n:
        return NOT_IN_CLASS

    remaining = set(state)
    edges: list[Edge] = []
    while remaining:
        # "take an element ... s.t. d_G(x) <= k"; smallest ID for
        # determinism.  No such node => graph not k-degenerate => reject.
        x = min((v for v in remaining if state[v][0] <= k), default=None)
        if x is None:
            return NOT_IN_CLASS
        deg_x, sums_x = state[x]
        try:
            if lookup is not None:
                neigh = lookup.decode(sums_x, deg_x)
            else:
                neigh = decode_power_sums(sums_x, deg_x, n)
        except DecodeError:
            return NOT_IN_CLASS
        remaining.discard(x)
        for w in neigh:
            # Neighbours must still be present: an already-pruned or
            # out-of-range neighbour certifies an inconsistent board.
            if w not in remaining:
                return NOT_IN_CLASS
            edges.append((min(x, w), max(x, w)))
            deg_w, sums_w = state[w]
            power = 1
            for p in range(len(sums_w)):
                power *= x
                sums_w[p] -= power
            state[w] = (deg_w - 1, sums_w)
    try:
        return LabeledGraph(n, edges)
    except ValueError:
        return NOT_IN_CLASS
