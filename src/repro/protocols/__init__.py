"""The paper's protocol library.

One module per result:

* :mod:`~repro.protocols.build` — Theorem 2 (BUILD, bounded degeneracy)
* :mod:`~repro.protocols.mis` — Theorem 5 (rooted MIS, SIMSYNC)
* :mod:`~repro.protocols.two_cliques` — Section 5.1 (2-CLIQUES, SIMSYNC)
* :mod:`~repro.protocols.bfs` — Theorems 7/10, Corollary 4 (BFS family)
* :mod:`~repro.protocols.subgraph` — Theorem 9 (SUBGRAPH_f)
* :mod:`~repro.protocols.triangle` — TRIANGLE on degenerate inputs
* :mod:`~repro.protocols.naive` — O(n)-bit full-information baselines
* :mod:`~repro.protocols.randomized` — Section 7's randomized 2-CLIQUES
"""

from .census import CENSUS, CENSUS_BY_KEY, ProtocolEntry, render_census
from .build_extended import ExtendedBuildProtocol, has_mixed_elimination_order
from .connectivity import ConnectivityProtocol, SpanningForestProtocol
from .distance import (
    DISCONNECTED,
    DegenerateDiameterProtocol,
    DegenerateSquareProtocol,
    NaiveDiameterProtocol,
    NaiveSquareProtocol,
)
from .build import (
    NOT_IN_CLASS,
    BuildOutput,
    DegenerateBuildProtocol,
    ForestBuildProtocol,
    decode_build_board,
)
from .bfs import (
    BfsRecord,
    BipartiteBfsAsyncProtocol,
    BoardState,
    EobBfsProtocol,
    SyncBfsProtocol,
    parse_board,
)
from .mis import IN_SET, NOT_IN_SET, RootedMisProtocol
from .naive import (
    NOT_EOB,
    NaiveBuildProtocol,
    NaiveEobBfsProtocol,
    NaiveMisProtocol,
    NaiveTriangleProtocol,
    graph_from_mask_board,
    neighborhood_mask,
)
from .randomized import MERSENNE_61, RandomizedTwoCliquesProtocol, set_fingerprint
from .sketching import (
    SketchConnectivityProtocol,
    SketchSpanningForestProtocol,
    SketchSpec,
    edge_slot,
    slot_edge,
)
from .subgraph import SubgraphProtocol, default_f, subgraph_reference
from .triangle import DegenerateTriangleProtocol
from .two_cliques import MIXED, NOT_TWO_CLIQUES, TWO_CLIQUES, TwoCliquesProtocol

__all__ = [
    "CENSUS",
    "CENSUS_BY_KEY",
    "ProtocolEntry",
    "render_census",
    "ExtendedBuildProtocol",
    "has_mixed_elimination_order",
    "ConnectivityProtocol",
    "SpanningForestProtocol",
    "DISCONNECTED",
    "DegenerateDiameterProtocol",
    "DegenerateSquareProtocol",
    "NaiveDiameterProtocol",
    "NaiveSquareProtocol",
    "NOT_IN_CLASS",
    "BuildOutput",
    "DegenerateBuildProtocol",
    "ForestBuildProtocol",
    "decode_build_board",
    "BfsRecord",
    "BipartiteBfsAsyncProtocol",
    "BoardState",
    "EobBfsProtocol",
    "SyncBfsProtocol",
    "parse_board",
    "IN_SET",
    "NOT_IN_SET",
    "RootedMisProtocol",
    "NOT_EOB",
    "NaiveBuildProtocol",
    "NaiveEobBfsProtocol",
    "NaiveMisProtocol",
    "NaiveTriangleProtocol",
    "graph_from_mask_board",
    "neighborhood_mask",
    "MERSENNE_61",
    "SketchConnectivityProtocol",
    "SketchSpanningForestProtocol",
    "SketchSpec",
    "edge_slot",
    "slot_edge",
    "RandomizedTwoCliquesProtocol",
    "set_fingerprint",
    "SubgraphProtocol",
    "default_f",
    "subgraph_reference",
    "DegenerateTriangleProtocol",
    "MIXED",
    "NOT_TWO_CLIQUES",
    "TWO_CLIQUES",
    "TwoCliquesProtocol",
]
