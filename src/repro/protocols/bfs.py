"""Layer-certified BFS protocols (Theorems 7 and 10, Corollary 4).

All three protocols share one idea: activate the nodes *layer by layer*,
using edge-counting certificates written on the whiteboard to detect
that a layer is complete.  Per epoch (connected component, roots chosen
in increasing identifier order) each node writes one record

``("B", ID, l, p, d-1, [d0,] d+1)``

where ``l`` is its BFS layer, ``p`` its parent (or ``"ROOT"``), ``d-1``
its edge count toward the previous layer, ``d0`` (general-graph variant
only) its count of *already written* same-layer neighbours, and ``d+1``
the remainder of its degree.

Layer ``k`` of the current epoch is complete exactly when

``Σ_{u∈L_k} d-1(u) = Σ_{u∈L_{k-1}} d+1(u) - 2·Σ_{u∈L_{k-1}} d0(u)``

(both sums over written records; the ``d0`` term vanishes in the
bipartite variants).  Every layer-``k`` node has at least one edge to
layer ``k-1``, so the left side stays strictly short until the whole
layer is on the board — the certificate cannot fire early.  A component
is exhausted when additionally ``Σ_{u∈L_last} d+1 - 2·Σ d0 = 0``, which
licenses the smallest unwritten identifier to start the next epoch.

Variants:

* :class:`EobBfsProtocol` — Theorem 7, ``ASYNC[log n]``: inputs are
  arbitrary, but the answer is :data:`NOT_EOB` unless the graph is
  even-odd-bipartite.  Nodes seeing a same-parity neighbour activate
  immediately with an ``("INV", id)`` message; once any such message is
  visible every awake node aborts with ``("ABT", id)``, so the protocol
  terminates (successfully, with the negative answer) on every input —
  the paper sketches this and we make it concrete.
* :class:`BipartiteBfsAsyncProtocol` — Corollary 4, ``ASYNC[log n]``:
  same machinery without the parity guard.  Correct on every bipartite
  graph; on non-bipartite inputs it may deadlock (the behaviour Section
  6 describes, measured in the open-problems benchmark).
* :class:`SyncBfsProtocol` — Theorem 10, ``SYNC[log n]``: arbitrary
  graphs.  Needs the synchronous right to recompute the message at
  write time, because ``d0`` counts same-layer records that appear
  *after* the node activates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Union

from ..encoding.bits import Payload
from ..graphs.properties import ROOT, BfsForest
from ..core.protocol import NodeView, Protocol
from ..core.whiteboard import BoardView
from .naive import NOT_EOB

__all__ = [
    "BfsRecord",
    "BoardState",
    "parse_board",
    "EobBfsProtocol",
    "BipartiteBfsAsyncProtocol",
    "SyncBfsProtocol",
    "NOT_EOB",
]

_TAG_BFS = "B"
_TAG_INVALID = "INV"
_TAG_ABORT = "ABT"


@dataclass(frozen=True)
class BfsRecord:
    """One parsed BFS whiteboard record."""

    node: int
    layer: int
    parent: Union[int, str]
    d_prev: int
    d_same: int  # 0 in the bipartite variants
    d_next: int


@dataclass
class _Epoch:
    """Records of one connected component, in write order."""

    records: list[BfsRecord]

    def layer_nodes(self, k: int) -> list[BfsRecord]:
        return [r for r in self.records if r.layer == k]

    def max_layer(self) -> int:
        return max(r.layer for r in self.records)

    def layer_complete(self, k: int) -> bool:
        """The edge-counting certificate for layer ``k`` (trusted only
        when layers ``0..k-1`` are already known complete)."""
        if k == 0:
            return any(r.layer == 0 for r in self.records)
        prev = self.layer_nodes(k - 1)
        here = self.layer_nodes(k)
        expected = sum(r.d_next for r in prev) - 2 * sum(r.d_same for r in prev)
        return bool(prev) and sum(r.d_prev for r in here) == expected

    def complete_prefix(self) -> int:
        """Largest ``c`` such that layers ``0..c-1`` are all complete
        (``0`` if even the root is missing)."""
        c = 0
        while self.layer_complete(c):
            c += 1
            if c > self.max_layer() + 1:
                break
        return c

    def exhausted(self) -> bool:
        """All layers complete and the last layer emits no further edges."""
        top = self.max_layer()
        if self.complete_prefix() < top + 1:
            return False
        last = self.layer_nodes(top)
        return sum(r.d_next for r in last) - 2 * sum(r.d_same for r in last) == 0


@dataclass
class BoardState:
    """Parsed view of a BFS whiteboard."""

    epochs: list[_Epoch]
    written: set[int]  # every author seen, including INV/ABT writers
    invalid_seen: bool

    @property
    def current(self) -> Optional[_Epoch]:
        return self.epochs[-1] if self.epochs else None

    def record_of(self, node: int) -> Optional[BfsRecord]:
        for epoch in self.epochs:
            for r in epoch.records:
                if r.node == node:
                    return r
        return None


def parse_board(board: BoardView) -> BoardState:
    """Split the whiteboard into epochs (``ROOT`` records open a new one),
    skipping INV/ABT messages but tracking their authors."""
    epochs: list[_Epoch] = []
    written: set[int] = set()
    invalid_seen = False
    for payload in board:
        tag = payload[0]
        if tag == _TAG_INVALID:
            invalid_seen = True
            written.add(payload[1])
        elif tag == _TAG_ABORT:
            written.add(payload[1])
        elif tag == _TAG_BFS:
            if len(payload) == 6:
                _, node, layer, parent, d_prev, d_next = payload
                d_same = 0
            else:
                _, node, layer, parent, d_prev, d_same, d_next = payload
            rec = BfsRecord(node, layer, parent, d_prev, d_same, d_next)
            written.add(node)
            if parent == ROOT:
                epochs.append(_Epoch([rec]))
            else:
                if not epochs:
                    raise ValueError("BFS record before any root")
                epochs[-1].records.append(rec)
        else:
            raise ValueError(f"unrecognised whiteboard payload {payload!r}")
    return BoardState(epochs, written, invalid_seen)


def _forest_from_state(state: BoardState) -> BfsForest:
    parent: dict[int, Union[int, str]] = {}
    layer: dict[int, int] = {}
    roots: list[int] = []
    for epoch in state.epochs:
        for r in epoch.records:
            parent[r.node] = r.parent
            layer[r.node] = r.layer
            if r.parent == ROOT:
                roots.append(r.node)
    return BfsForest(parent, layer, tuple(roots))


class _LayeredBfsBase(Protocol):
    """Shared activation/record logic for the three variants."""

    #: Whether records carry the ``d0`` field (general-graph variant).
    track_same_layer = False

    # -- helpers ------------------------------------------------------
    def _written_neighbor_records(
        self, view: NodeView, state: BoardState
    ) -> list[BfsRecord]:
        epoch = state.current
        if epoch is None:
            return []
        return [r for r in epoch.records if r.node in view.neighbors]

    def _may_root(self, view: NodeView, state: BoardState) -> bool:
        """Condition (c): previous component exhausted (or empty board),
        smallest unwritten identifier, no written neighbour."""
        if any(w in state.written for w in view.neighbors):
            return False
        unwritten_min = min(
            v for v in range(1, view.n + 1) if v not in state.written
        )
        if view.node != unwritten_min:
            return False
        return state.current is None or state.current.exhausted()

    def _may_join_layer(self, view: NodeView, state: BoardState) -> bool:
        """Conditions (a)+(b): some neighbour written and the minimal
        such layer certified complete."""
        neigh = self._written_neighbor_records(view, state)
        if not neigh:
            return False
        epoch = state.current
        assert epoch is not None
        lam = min(r.layer for r in neigh)
        return epoch.complete_prefix() >= lam + 1

    def _bfs_payload(self, view: NodeView, state: BoardState) -> Payload:
        neigh = self._written_neighbor_records(view, state)
        if not neigh:
            # Root record: layer 0, full degree pointing outward.
            if self.track_same_layer:
                return (_TAG_BFS, view.node, 0, ROOT, 0, 0, view.degree)
            return (_TAG_BFS, view.node, 0, ROOT, 0, view.degree)
        lam = min(r.layer for r in neigh)
        layer = lam + 1
        prev = [r for r in neigh if r.layer == lam]
        parent = min(r.node for r in prev)
        d_prev = len(prev)
        if self.track_same_layer:
            d_same = sum(1 for r in neigh if r.layer == layer)
            return (_TAG_BFS, view.node, layer, parent, d_prev, d_same,
                    view.degree - d_prev)
        return (_TAG_BFS, view.node, layer, parent, d_prev, view.degree - d_prev)

    # -- protocol interface -------------------------------------------
    def wants_to_activate(self, view: NodeView) -> bool:
        state = parse_board(view.board)
        return self._may_root(view, state) or self._may_join_layer(view, state)

    def message(self, view: NodeView) -> Payload:
        return self._bfs_payload(view, parse_board(view.board))

    def output(self, board: BoardView, n: int) -> Any:
        return _forest_from_state(parse_board(board))


class BipartiteBfsAsyncProtocol(_LayeredBfsBase):
    """Corollary 4: BFS forest of any *bipartite* graph in ``ASYNC[log n]``.

    No parity guard, no ``d0``: on bipartite inputs the layer
    certificates are exact; on odd-cycle inputs the protocol deadlocks
    (corrupted configuration) — the paper's noted behaviour.
    """

    name = "bfs-bipartite-async"
    designed_for = "ASYNC"
    track_same_layer = False


class EobBfsProtocol(_LayeredBfsBase):
    """Theorem 7: EOB-BFS in ``ASYNC[log n]``.

    Output on even-odd-bipartite inputs is the canonical BFS forest;
    otherwise the negative answer :data:`NOT_EOB` (the invalid/abort
    mechanism guarantees termination on every input, see module doc).
    """

    name = "eob-bfs-async"
    designed_for = "ASYNC"
    track_same_layer = False

    @staticmethod
    def _parity_violation(view: NodeView) -> bool:
        return any((w - view.node) % 2 == 0 for w in view.neighbors)

    def wants_to_activate(self, view: NodeView) -> bool:
        if self._parity_violation(view):
            return True
        state = parse_board(view.board)
        if state.invalid_seen:
            return True
        return self._may_root(view, state) or self._may_join_layer(view, state)

    def message(self, view: NodeView) -> Payload:
        if self._parity_violation(view):
            return (_TAG_INVALID, view.node)
        state = parse_board(view.board)
        if state.invalid_seen:
            return (_TAG_ABORT, view.node)
        return self._bfs_payload(view, state)

    def output(self, board: BoardView, n: int) -> Any:
        state = parse_board(board)
        if state.invalid_seen:
            return NOT_EOB
        return _forest_from_state(state)


class SyncBfsProtocol(_LayeredBfsBase):
    """Theorem 10: BFS on arbitrary graphs in ``SYNC[log n]``.

    The ``d0`` field counts same-layer records present *at write time*;
    summed over a completed layer it equals the number of intra-layer
    edges (each counted once, by its later-written endpoint), which is
    exactly the correction term the general-graph certificate needs.
    """

    name = "bfs-sync"
    designed_for = "SYNC"
    track_same_layer = True
