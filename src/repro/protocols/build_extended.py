"""Extended BUILD: mixed low-/high-degree elimination orders.

The last remark of Section 3: *"with our tools we can deal with graphs
having a node ordering where each node v has degree at most k or at
least n - k - 1, in the graph induced by nodes appearing later than v
in the ordering."*  Cliques plus sparse attachments, split-like graphs
and complements of k-degenerate graphs live in this class but not in
the bounded-degeneracy class.

The construction doubles Theorem 2's message: each node publishes power
sums of its neighbourhood **and** of its non-neighbourhood,

``(ID(v), d_G(v), b_1..b_k, c_1..c_k)``  with
``c_p = Σ_{w ∉ N(v), w ≠ v} ID(w)^p``

— still ``O(k² log n)`` bits.  The output function prunes a remaining
node ``x`` whose *residual* degree is at most ``k`` (decode its
neighbours from ``b``) or at least ``r - 1 - k`` where ``r`` is the
number of remaining nodes (decode its non-neighbours from ``c``; its
neighbours are the rest).  Either way the pruner learns ``x``'s exact
residual neighbourhood, so it can maintain both sum vectors of every
remaining node when ``x`` leaves.
"""

from __future__ import annotations

from ..encoding.bits import Payload
from ..encoding.power_sums import DecodeError, decode_power_sums, power_sums
from ..graphs.labeled_graph import Edge, LabeledGraph
from ..core.protocol import NodeView, Protocol
from ..core.whiteboard import BoardView
from .build import NOT_IN_CLASS, BuildOutput

__all__ = [
    "ExtendedBuildProtocol",
    "decode_extended_board",
    "has_mixed_elimination_order",
]


def has_mixed_elimination_order(graph: LabeledGraph, k: int) -> bool:
    """Oracle for the extended class: greedily eliminate any node whose
    residual degree is ≤ k or ≥ (remaining - 1) - k."""
    remaining = set(graph.nodes())
    deg = {v: graph.degree(v) for v in graph.nodes()}
    while remaining:
        r = len(remaining)
        pick = next(
            (v for v in sorted(remaining) if deg[v] <= k or deg[v] >= r - 1 - k),
            None,
        )
        if pick is None:
            return False
        remaining.discard(pick)
        for w in graph.neighbors(pick):
            if w in remaining:
                deg[w] -= 1
    return True


class ExtendedBuildProtocol(Protocol):
    """BUILD for the mixed low-/high-degree class in ``SIMASYNC[log n]``."""

    designed_for = "SIMASYNC"

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        self.k = k
        self.name = f"build-extended(k={k})"

    def message(self, view: NodeView) -> Payload:
        non_neighbors = [
            w for w in range(1, view.n + 1)
            if w != view.node and w not in view.neighbors
        ]
        return (
            (view.node, view.degree)
            + power_sums(sorted(view.neighbors), self.k)
            + power_sums(non_neighbors, self.k)
        )

    def output(self, board: BoardView, n: int) -> BuildOutput:
        return decode_extended_board(board, n, self.k)


def decode_extended_board(board: BoardView, n: int, k: int) -> BuildOutput:
    """The two-sided pruning loop (robust: rejects out-of-class boards)."""
    state: dict[int, tuple[int, list[int], list[int]]] = {}
    for payload in board:
        if not (
            isinstance(payload, tuple)
            and len(payload) == 2 * k + 2
            and all(isinstance(x, int) for x in payload)
        ):
            return NOT_IN_CLASS
        node, deg = payload[0], payload[1]
        if not (1 <= node <= n) or node in state or deg < 0:
            return NOT_IN_CLASS
        state[node] = (deg, list(payload[2 : 2 + k]), list(payload[2 + k :]))
    if len(state) != n:
        return NOT_IN_CLASS

    remaining = set(state)
    edges: list[Edge] = []
    while remaining:
        r = len(remaining)
        x = low = high = None
        for v in sorted(remaining):
            deg_v = state[v][0]
            if deg_v <= k:
                x, low = v, True
                break
            if deg_v >= r - 1 - k:
                x, low = v, False
                break
        if x is None:
            return NOT_IN_CLASS
        deg_x, sums_x, cosums_x = state[x]
        try:
            if low:
                neigh = decode_power_sums(sums_x, deg_x, n)
            else:
                codeg = (r - 1) - deg_x
                non_neigh = decode_power_sums(cosums_x, codeg, n)
                if not non_neigh <= remaining - {x}:
                    return NOT_IN_CLASS
                neigh = frozenset(remaining - non_neigh - {x})
        except DecodeError:
            return NOT_IN_CLASS
        if not neigh <= remaining - {x}:
            return NOT_IN_CLASS
        remaining.discard(x)
        for w in remaining:
            deg_w, sums_w, cosums_w = state[w]
            target = sums_w if w in neigh else cosums_w
            power = 1
            for p in range(k):
                power *= x
                target[p] -= power
            if w in neigh:
                edges.append((min(x, w), max(x, w)))
                state[w] = (deg_w - 1, sums_w, cosums_w)
    try:
        return LabeledGraph(n, edges)
    except ValueError:
        return NOT_IN_CLASS
