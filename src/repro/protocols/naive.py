"""Naive full-information baselines (``O(n)`` bits per node).

"Clearly, if every node communicates its whole neighborhood (which can
be done with O(n) bits), the whole graph is described on the whiteboard;
therefore, any question can be easily answered." — Section 1.

These protocols make that remark executable.  They are the baselines
against which the ``O(log n)`` protocols are compared in the benchmarks,
and — crucially — they instantiate the *claimed protocols* that the
Theorem 3/6/8 reduction transformers consume, letting the test suite
validate the reductions end to end.
"""

from __future__ import annotations

from typing import Any

from ..encoding.bits import Payload
from ..graphs.labeled_graph import LabeledGraph
from ..graphs.properties import (
    BfsForest,
    canonical_bfs_forest,
    has_triangle,
    is_even_odd_bipartite,
)
from ..core.protocol import NodeView, Protocol
from ..core.whiteboard import BoardView

__all__ = [
    "NOT_EOB",
    "neighborhood_mask",
    "graph_from_mask_board",
    "NaiveBuildProtocol",
    "NaiveTriangleProtocol",
    "NaiveMisProtocol",
    "NaiveEobBfsProtocol",
]

#: Negative answer of EOB-BFS protocols on non-even-odd-bipartite inputs.
NOT_EOB = "NOT_EOB"


def neighborhood_mask(neighbors: frozenset[int]) -> int:
    """Adjacency row as an integer bitmask (bit ``i-1`` = neighbour ``i``)."""
    mask = 0
    for w in neighbors:
        mask |= 1 << (w - 1)
    return mask


def graph_from_mask_board(board: BoardView, n: int) -> LabeledGraph:
    """Rebuild the graph from ``(id, mask)`` messages (any order)."""
    rows: dict[int, int] = {}
    for payload in board:
        if not (isinstance(payload, tuple) and len(payload) == 2):
            raise ValueError(f"malformed naive message {payload!r}")
        node, mask = payload
        rows[node] = mask
    if set(rows) != set(range(1, n + 1)):
        raise ValueError("incomplete naive board")
    edges = [
        (u, v)
        for u in range(1, n + 1)
        for v in range(u + 1, n + 1)
        if rows[u] >> (v - 1) & 1
    ]
    g = LabeledGraph(n, edges)
    # Symmetry sanity check: each row must agree with its transpose.
    for u in range(1, n + 1):
        if rows[u] != neighborhood_mask(g.neighbors(u)):
            raise ValueError("asymmetric adjacency rows")
    return g


class NaiveBuildProtocol(Protocol):
    """BUILD on *arbitrary* graphs with ``n + log n`` bit messages."""

    name = "naive-build"
    designed_for = "SIMASYNC"

    def message(self, view: NodeView) -> Payload:
        return (view.node, neighborhood_mask(view.neighbors))

    def output(self, board: BoardView, n: int) -> LabeledGraph:
        return graph_from_mask_board(board, n)


class NaiveTriangleProtocol(Protocol):
    """TRIANGLE decided centrally from full rows — the ``SIMASYNC[n]``
    upper bound that Theorem 3 proves cannot be improved to ``o(n)``."""

    name = "naive-triangle"
    designed_for = "SIMASYNC"

    def message(self, view: NodeView) -> Payload:
        return (view.node, neighborhood_mask(view.neighbors))

    def output(self, board: BoardView, n: int) -> int:
        return 1 if has_triangle(graph_from_mask_board(board, n)) else 0


class NaiveMisProtocol(Protocol):
    """Rooted MIS from full rows: output the *lexicographically greedy*
    maximal independent set containing the root.

    Determinism matters: a ``SIMASYNC`` output function only sees the
    final board, whose payload multiset is schedule-independent, so the
    answer is identical under every adversary — as required for the
    Theorem 6 reduction."""

    designed_for = "SIMASYNC"

    def __init__(self, root: int) -> None:
        self.root = root
        self.name = f"naive-mis(x={root})"

    def message(self, view: NodeView) -> Payload:
        return (view.node, neighborhood_mask(view.neighbors))

    def output(self, board: BoardView, n: int) -> frozenset[int]:
        g = graph_from_mask_board(board, n)
        chosen = {self.root}
        for v in g.nodes():
            if v != self.root and not (g.neighbors(v) & chosen):
                chosen.add(v)
        return frozenset(chosen)


class NaiveEobBfsProtocol(Protocol):
    """EOB-BFS from full rows: canonical BFS forest, or :data:`NOT_EOB`."""

    name = "naive-eob-bfs"
    designed_for = "SIMASYNC"

    def message(self, view: NodeView) -> Payload:
        return (view.node, neighborhood_mask(view.neighbors))

    def output(self, board: BoardView, n: int) -> Any:
        g = graph_from_mask_board(board, n)
        if not is_even_odd_bipartite(g):
            return NOT_EOB
        return canonical_bfs_forest(g)
