"""Randomized SIMASYNC connectivity via graph sketching (AGM).

The paper leaves connectivity-type problems in the weak models open
(Open Problems 1/2) and asks about randomized protocols (Open Problem
4).  With *public coins* — the same assumption as the randomized
2-CLIQUES protocol — the graph-sketching technique of Ahn, Guibas and
McGregor answers both in one stroke: every node simultaneously writes a
``polylog(n)``-bit **linear sketch** of its incidence vector, and the
output function runs Borůvka entirely on the whiteboard:

* edge ``{u, v}`` (``u < v``) gets a coordinate; node ``u`` counts it
  ``+1``, node ``v`` counts it ``-1``.  Summing the incidence vectors of
  a node set ``S`` cancels every edge inside ``S`` and leaves exactly
  the boundary ``∂S`` — and the sketches are linear, so the *sketch* of
  ``∂S`` is the sum of the members' sketches;
* each Borůvka round therefore samples one outgoing edge per component
  from the combined sketches (a fresh ℓ₀-sampler per round keeps the
  samples independent of earlier merges) and unions components;
* after ``≤ log2 n`` rounds the components are exactly the connected
  components, giving SPANNING-FOREST and CONNECTIVITY.

This is a *strict* extension of the paper (2012) by a contemporaneous
technique (AGM, SODA 2012); DESIGN.md lists it as the repro's
"future-work" implementation for Section 7.
"""

from __future__ import annotations

import math

from ..encoding.bits import Payload
from ..encoding.l0_sampling import L0Sampler
from ..graphs.labeled_graph import Edge
from ..core.protocol import NodeView, Protocol
from ..core.whiteboard import BoardView

__all__ = [
    "SketchSpec",
    "SketchConnectivityProtocol",
    "SketchSpanningForestProtocol",
    "edge_slot",
    "slot_edge",
]


def edge_slot(u: int, v: int, n: int) -> int:
    """Bijection from edges ``{u, v}`` (``u < v``) to slots ``1..C(n,2)``."""
    if not (1 <= u < v <= n):
        raise ValueError(f"need 1 <= u < v <= n, got ({u}, {v})")
    # slots are ordered lexicographically by (u, v)
    before_u = (u - 1) * (2 * n - u) // 2
    return before_u + (v - u)


def slot_edge(slot: int, n: int) -> Edge:
    """Inverse of :func:`edge_slot`."""
    if slot < 1:
        raise ValueError(f"slots start at 1, got {slot}")
    u = 1
    remaining = slot
    while remaining > n - u:
        remaining -= n - u
        u += 1
        if u >= n:
            raise ValueError(f"slot {slot} out of range for n={n}")
    return (u, u + remaining)


class SketchSpec:
    """Shared sketch dimensions, derived from ``n`` and the public seed.

    ``rounds`` independent samplers (one per Borůvka round), each with
    ``levels = ceil(log2 C(n,2)) + 2`` subsampling levels.
    """

    def __init__(self, n: int, shared_seed: int, rounds: int | None = None) -> None:
        self.n = n
        self.shared_seed = shared_seed
        # Borůvka halves the component count per round, so ceil(log2 n)
        # rounds suffice when every sample lands; doubling that absorbs
        # per-round sampling failures (each round is independent).
        self.rounds = (
            rounds
            if rounds is not None
            else 2 * max(1, math.ceil(math.log2(max(2, n)))) + 1
        )
        slots = max(2, n * (n - 1) // 2)
        self.levels = math.ceil(math.log2(slots)) + 2

    def fresh_sampler(self, round_index: int) -> L0Sampler:
        return L0Sampler(
            seed=self.shared_seed * 1_000_003 + round_index, levels=self.levels
        )

    def node_sketches(self, view: NodeView) -> list[L0Sampler]:
        """The node's incidence sketches, one per Borůvka round."""
        out = []
        for r in range(self.rounds):
            sampler = self.fresh_sampler(r)
            for w in view.neighbors:
                u, v = min(view.node, w), max(view.node, w)
                sign = 1 if view.node == u else -1
                sampler.update(edge_slot(u, v, self.n), sign)
            out.append(sampler)
        return out


class _SketchBase(Protocol):
    """Shared message format and Borůvka decoder."""

    designed_for = "SIMASYNC"

    def __init__(self, shared_seed: int, rounds: int | None = None) -> None:
        self.shared_seed = shared_seed
        self.rounds = rounds

    def _spec(self, n: int) -> SketchSpec:
        return SketchSpec(n, self.shared_seed, self.rounds)

    def message(self, view: NodeView) -> Payload:
        spec = self._spec(view.n)
        body = tuple(s.state() for s in spec.node_sketches(view))
        return (view.node, body)

    # -- decoding -------------------------------------------------------
    def _spanning_forest(self, board: BoardView, n: int) -> frozenset[Edge]:
        spec = self._spec(n)
        sketches: dict[int, list[L0Sampler]] = {}
        for node, body in board:
            sketches[node] = [
                L0Sampler.from_state(spec.fresh_sampler(r).seed, spec.levels, state)
                for r, state in enumerate(body)
            ]
        if set(sketches) != set(range(1, n + 1)):
            raise ValueError("incomplete sketch board")

        parent = list(range(n + 1))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        # combined[c][r]: sketch of component c's member-sum for round r
        combined: dict[int, list[L0Sampler]] = {
            v: sketches[v] for v in range(1, n + 1)
        }
        forest: set[Edge] = set()
        for r in range(spec.rounds):
            roots = {find(v) for v in range(1, n + 1)}
            if len(roots) == 1:
                break
            picks: list[tuple[int, Edge]] = []
            for c in roots:
                got = combined[c][r].sample()
                if got is None:
                    continue
                slot, _weight = got
                try:
                    edge = slot_edge(slot, n)
                except ValueError:
                    continue  # failed recovery (negligible probability)
                picks.append((c, edge))
            for c, (u, v) in picks:
                ru, rv = find(u), find(v)
                if ru == rv:
                    continue
                # merge: union-find + sketch addition (linearity!)
                new = [a.combine(b) for a, b in zip(combined[ru], combined[rv])]
                parent[ru] = rv
                combined[rv] = new
                forest.add((min(u, v), max(u, v)))
            # A merge-less round is not terminal: later rounds use
            # independent samplers and may succeed where this one failed.
        return frozenset(forest)


class SketchSpanningForestProtocol(_SketchBase):
    """SPANNING-FOREST in randomized public-coin ``SIMASYNC[polylog n]``."""

    def __init__(self, shared_seed: int, rounds: int | None = None) -> None:
        super().__init__(shared_seed, rounds)
        self.name = f"sketch-spanning-forest(seed={shared_seed})"

    def output(self, board: BoardView, n: int) -> frozenset[Edge]:
        return self._spanning_forest(board, n)


class SketchConnectivityProtocol(_SketchBase):
    """CONNECTIVITY in randomized public-coin ``SIMASYNC[polylog n]``.

    Output 1 iff the recovered spanning forest has ``n - 1`` edges.
    One-sided in practice: sampling failures can only under-connect, so
    a ``1`` answer is always backed by an explicit spanning tree."""

    def __init__(self, shared_seed: int, rounds: int | None = None) -> None:
        super().__init__(shared_seed, rounds)
        self.name = f"sketch-connectivity(seed={shared_seed})"

    def output(self, board: BoardView, n: int) -> int:
        return 1 if len(self._spanning_forest(board, n)) == n - 1 else 0
