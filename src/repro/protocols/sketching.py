"""Randomized SIMASYNC connectivity via graph sketching (AGM).

The paper leaves connectivity-type problems in the weak models open
(Open Problems 1/2) and asks about randomized protocols (Open Problem
4).  With *public coins* — the same assumption as the randomized
2-CLIQUES protocol — the graph-sketching technique of Ahn, Guibas and
McGregor answers both in one stroke: every node simultaneously writes a
``polylog(n)``-bit **linear sketch** of its incidence vector, and the
output function runs Borůvka entirely on the whiteboard:

* edge ``{u, v}`` (``u < v``) gets a coordinate; node ``u`` counts it
  ``+1``, node ``v`` counts it ``-1``.  Summing the incidence vectors of
  a node set ``S`` cancels every edge inside ``S`` and leaves exactly
  the boundary ``∂S`` — and the sketches are linear, so the *sketch* of
  ``∂S`` is the sum of the members' sketches;
* each Borůvka round therefore samples one outgoing edge per component
  from the combined sketches (a fresh ℓ₀-sampler per round keeps the
  samples independent of earlier merges) and unions components;
* after ``≤ log2 n`` rounds the components are exactly the connected
  components, giving SPANNING-FOREST and CONNECTIVITY.

This is a *strict* extension of the paper (2012) by a contemporaneous
technique (AGM, SODA 2012); DESIGN.md lists it as the repro's
"future-work" implementation for Section 7.

Performance architecture.  All sketch randomness is public-coin, i.e. a
pure function of ``(n, shared_seed, rounds)``, so the expensive derived
tables are computed once and shared:

* :class:`SketchSpec` instances are interned per
  ``(n, shared_seed, rounds)`` (see :meth:`SketchSpec.cached`), so the
  protocol objects stop rebuilding specs on every ``message``/``output``
  call;
* :class:`SketchEngine` (one per spec, also interned) holds the
  per-round sampler seeds and feeds each node's incidence stream through
  :meth:`~repro.encoding.l0_sampling.L0Sampler.batch_update`, reusing
  the level/fingerprint tables across all nodes, rounds, and repeated
  benchmark runs;
* :func:`slot_edge` inverts the edge↔slot bijection in closed form
  (``isqrt``) instead of an O(n) walk, and rejects out-of-range slots up
  front.

The sketches produced are bit-for-bit identical to the original
implementation; golden tests pin that invariant.
"""

from __future__ import annotations

import math
from functools import lru_cache

from ..adversaries.scoring import ScoreHook
from ..encoding.bits import Payload
from ..encoding.l0_sampling import L0Sampler
from ..graphs.labeled_graph import Edge
from ..core.protocol import NodeView, Protocol
from ..core.whiteboard import BoardView

__all__ = [
    "SketchSpec",
    "SketchEngine",
    "SketchConnectivityProtocol",
    "SketchDecodeScore",
    "SketchSpanningForestProtocol",
    "edge_slot",
    "slot_edge",
]


def edge_slot(u: int, v: int, n: int) -> int:
    """Bijection from edges ``{u, v}`` (``u < v``) to slots ``1..C(n,2)``."""
    if not (1 <= u < v <= n):
        raise ValueError(f"need 1 <= u < v <= n, got ({u}, {v})")
    # slots are ordered lexicographically by (u, v)
    before_u = (u - 1) * (2 * n - u) // 2
    return before_u + (v - u)


def slot_edge(slot: int, n: int) -> Edge:
    """Inverse of :func:`edge_slot`, in closed form.

    Counting the ``t = C(n,2) - slot`` pairs lexicographically *after*
    the target edge ``(u, v)`` gives ``t = C(n-u, 2) + (n - v)``, so
    ``w = n - u`` is the unique integer with ``C(w,2) <= t < C(w+1,2)``
    — recoverable with one integer square root.
    """
    if slot < 1:
        raise ValueError(f"slots start at 1, got {slot}")
    if slot > n * (n - 1) // 2:
        raise ValueError(f"slot {slot} out of range for n={n}")
    t = n * (n - 1) // 2 - slot
    w = (1 + math.isqrt(1 + 8 * t)) // 2
    u = n - w
    v = n - (t - w * (w - 1) // 2)
    return (u, v)


class SketchSpec:
    """Shared sketch dimensions, derived from ``n`` and the public seed.

    ``rounds`` independent samplers (one per Borůvka round), each with
    ``levels = ceil(log2 C(n,2)) + 2`` subsampling levels.
    """

    def __init__(self, n: int, shared_seed: int, rounds: int | None = None) -> None:
        self.n = n
        self.shared_seed = shared_seed
        # Borůvka halves the component count per round, so ceil(log2 n)
        # rounds suffice when every sample lands; doubling that absorbs
        # per-round sampling failures (each round is independent).
        self.rounds = (
            rounds
            if rounds is not None
            else 2 * max(1, math.ceil(math.log2(max(2, n)))) + 1
        )
        slots = max(2, n * (n - 1) // 2)
        self.levels = math.ceil(math.log2(slots)) + 2

    @staticmethod
    @lru_cache(maxsize=1 << 12)
    def cached(n: int, shared_seed: int, rounds: int | None = None) -> "SketchSpec":
        """Interned spec per ``(n, shared_seed, rounds)``."""
        return SketchSpec(n, shared_seed, rounds)

    def engine(self) -> "SketchEngine":
        return SketchEngine.for_spec(self)

    def round_seed(self, round_index: int) -> int:
        """Public-coin seed of the Borůvka round's sampler."""
        return self.shared_seed * 1_000_003 + round_index

    def fresh_sampler(self, round_index: int) -> L0Sampler:
        return L0Sampler(seed=self.round_seed(round_index), levels=self.levels)

    def node_sketches(self, view: NodeView) -> list[L0Sampler]:
        """The node's incidence sketches, one per Borůvka round."""
        return self.engine().node_sketches(view.node, view.neighbors)


class SketchEngine:
    """Batched sketch builder for one interned :class:`SketchSpec`.

    Everything a node writes is a pure function of the public coins and
    its incidence list, so the engine derives the per-round sampler
    seeds once and streams each node's ``(slot, sign)`` incidence pairs
    through :meth:`L0Sampler.batch_update`.  The level and fingerprint
    power tables behind those updates are module-level caches in
    :mod:`repro.encoding.l0_sampling`, shared across nodes, rounds, and
    repeated runs — the first node on a graph warms them for everyone.
    """

    _instances: dict[tuple[int, int, int], "SketchEngine"] = {}

    def __init__(self, spec: SketchSpec) -> None:
        self.spec = spec
        self.round_seeds = tuple(spec.round_seed(r) for r in range(spec.rounds))
        # message bodies per (node, neighbors): pure in the public coins,
        # so repeated runs on the same graph reuse them outright.
        self._state_cache: dict[tuple[int, frozenset[int]], tuple] = {}

    @classmethod
    def for_spec(cls, spec: SketchSpec) -> "SketchEngine":
        key = (spec.n, spec.shared_seed, spec.rounds)
        engine = cls._instances.get(key)
        if engine is None:
            if len(cls._instances) > 4096:  # bound long-run memory
                cls._instances.clear()
            engine = cls._instances[key] = cls(spec)
        return engine

    def incidence(self, node: int, neighbors) -> tuple[list[int], list[int]]:
        """The node's incidence stream as parallel (slots, signs) lists."""
        n = self.spec.n
        slots: list[int] = []
        signs: list[int] = []
        for w in neighbors:
            if node < w:
                slots.append(edge_slot(node, w, n))
                signs.append(1)
            else:
                slots.append(edge_slot(w, node, n))
                signs.append(-1)
        return slots, signs

    def node_sketches(self, node: int, neighbors) -> list[L0Sampler]:
        """The node's incidence sketches, one per Borůvka round."""
        slots, signs = self.incidence(node, neighbors)
        levels = self.spec.levels
        out = []
        for seed in self.round_seeds:
            sampler = L0Sampler(seed=seed, levels=levels)
            sampler.batch_update(slots, signs)
            out.append(sampler)
        return out

    def node_states(self, node: int, neighbors) -> tuple:
        """The node's message body: per-round sampler states (cached)."""
        key = (node, frozenset(neighbors))
        body = self._state_cache.get(key)
        if body is None:
            if len(self._state_cache) > 8192:  # bound long-run memory
                self._state_cache.clear()
            body = tuple(s.state() for s in self.node_sketches(node, neighbors))
            self._state_cache[key] = body
        return body

    def samplers_from_states(self, body) -> list[L0Sampler]:
        """Rebuild one node's per-round samplers from a message body."""
        levels = self.spec.levels
        return [
            L0Sampler.from_state(self.round_seeds[r], levels, state)
            for r, state in enumerate(body)
        ]


class _SketchBase(Protocol):
    """Shared message format and Borůvka decoder."""

    designed_for = "SIMASYNC"

    def __init__(self, shared_seed: int, rounds: int | None = None) -> None:
        self.shared_seed = shared_seed
        self.rounds = rounds

    def _spec(self, n: int) -> SketchSpec:
        return SketchSpec.cached(n, self.shared_seed, self.rounds)

    def message(self, view: NodeView) -> Payload:
        engine = self._spec(view.n).engine()
        return (view.node, engine.node_states(view.node, view.neighbors))

    # -- decoding -------------------------------------------------------
    def _spanning_forest(self, board: BoardView, n: int) -> frozenset[Edge]:
        spec = self._spec(n)
        engine = spec.engine()
        sketches: dict[int, list[L0Sampler]] = {}
        for node, body in board:
            sketches[node] = engine.samplers_from_states(body)
        if set(sketches) != set(range(1, n + 1)):
            raise ValueError("incomplete sketch board")

        parent = list(range(n + 1))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        # combined[c][r]: sketch of component c's member-sum for round r
        combined: dict[int, list[L0Sampler]] = {
            v: sketches[v] for v in range(1, n + 1)
        }
        forest: set[Edge] = set()
        for r in range(spec.rounds):
            roots = {find(v) for v in range(1, n + 1)}
            if len(roots) == 1:
                break
            picks: list[tuple[int, Edge]] = []
            for c in roots:
                got = combined[c][r].sample()
                if got is None:
                    continue
                slot, _weight = got
                try:
                    edge = slot_edge(slot, n)
                except ValueError:
                    continue  # failed recovery (negligible probability)
                picks.append((c, edge))
            for c, (u, v) in picks:
                ru, rv = find(u), find(v)
                if ru == rv:
                    continue
                # merge: union-find + sketch addition (linearity!)
                new = [a.combine(b) for a, b in zip(combined[ru], combined[rv])]
                parent[ru] = rv
                combined[rv] = new
                forest.add((min(u, v), max(u, v)))
            # A merge-less round is not terminal: later rounds use
            # independent samplers and may succeed where this one failed.
        return frozenset(forest)


class SketchSpanningForestProtocol(_SketchBase):
    """SPANNING-FOREST in randomized public-coin ``SIMASYNC[polylog n]``."""

    def __init__(self, shared_seed: int, rounds: int | None = None) -> None:
        super().__init__(shared_seed, rounds)
        self.name = f"sketch-spanning-forest(seed={shared_seed})"

    def output(self, board: BoardView, n: int) -> frozenset[Edge]:
        return self._spanning_forest(board, n)


class SketchDecodeScore(ScoreHook):
    """Protocol-supplied badness for the sketch protocols: hunt boards
    the Borůvka decoder cannot recover a full spanning structure from.

    Under-connection is the sketches' one-sided failure mode (ℓ₀-sample
    misses can only *lose* forest edges), so the score rewards — in
    lexicographic order — terminal boards the decoder rejects outright,
    then missing forest edges / a 0 connectivity verdict, then raw bits.
    Registered by the census as ``sketch-decode``.
    """

    name = "sketch-decode"

    def _badness(self, state) -> int:
        try:
            out = state.proto.output(state.board.view(), state.n)
        except Exception:
            # Partial prefixes cannot decode yet; only a terminal board
            # the decoder rejects (lost/crashed writers) is the jackpot.
            return (1 << 20) if state.terminal else 0
        if isinstance(out, frozenset):
            return max((state.n - 1) - len(out), 0) * (1 << 10)
        return 0 if out else (1 << 10)

    def step_score(self, state) -> float:
        return self._badness(state) + state.last_event_bits

    def prefix_score(self, state) -> tuple:
        board = state.board
        return (self._badness(state), board.max_bits(), board.total_bits())


class SketchConnectivityProtocol(_SketchBase):
    """CONNECTIVITY in randomized public-coin ``SIMASYNC[polylog n]``.

    Output 1 iff the recovered spanning forest has ``n - 1`` edges.
    One-sided in practice: sampling failures can only under-connect, so
    a ``1`` answer is always backed by an explicit spanning tree."""

    def __init__(self, shared_seed: int, rounds: int | None = None) -> None:
        super().__init__(shared_seed, rounds)
        self.name = f"sketch-connectivity(seed={shared_seed})"

    def output(self, board: BoardView, n: int) -> int:
        return 1 if len(self._spanning_forest(board, n)) == n - 1 else 0
