"""Connectivity-type problems on top of Theorem 10 (Section 6 / Open
Problem 2).

The paper opens Section 6 with: "One of the main questions in
distributed environments concerns connectivity ... computing a connected
spanning subgraph (e.g., a spanning tree) since the links of such
subgraph are used for communication."  Open Problem 2 asks whether
SPANNING-TREE or CONNECTIVITY are solvable in ``ASYNC[f(n)]`` — open.
In ``SYNC[log n]``, however, both are immediate corollaries of
Theorem 10, and this module makes the corollaries concrete:

* :class:`SpanningForestProtocol` — same messages as
  :class:`~repro.protocols.bfs.SyncBfsProtocol`; the output function
  returns the forest's edge set (a spanning tree per component).
* :class:`ConnectivityProtocol` — same messages; output is 1 iff the
  final board contains exactly one ``ROOT`` record (each epoch = one
  component).

These sit outside Table 2 but inside the paper's stated motivation, and
their ASYNC-model status inherits Open Problem 2's openness: running
them under ASYNC semantics (freeze at activation) loses the ``d0``
updates and deadlocks exactly like Corollary 4's protocol — measured in
the open-problems benchmark.
"""

from __future__ import annotations

from ..graphs.labeled_graph import Edge
from ..graphs.properties import ROOT
from ..core.whiteboard import BoardView
from .bfs import SyncBfsProtocol, parse_board

__all__ = ["SpanningForestProtocol", "ConnectivityProtocol"]


class SpanningForestProtocol(SyncBfsProtocol):
    """A spanning forest (BFS tree per component) in ``SYNC[log n]``.

    Output: the frozenset of tree edges ``{v, p(v)}``.
    """

    name = "spanning-forest-sync"
    designed_for = "SYNC"

    def output(self, board: BoardView, n: int) -> frozenset[Edge]:
        forest = super().output(board, n)
        return forest.tree_edges()


class ConnectivityProtocol(SyncBfsProtocol):
    """CONNECTIVITY in ``SYNC[log n]``: 1 iff the graph is connected.

    The number of epochs on the final board equals the number of
    connected components (each epoch starts with exactly one ``ROOT``
    record), so the output function just counts roots.
    """

    name = "connectivity-sync"
    designed_for = "SYNC"

    def output(self, board: BoardView, n: int) -> int:
        state = parse_board(board)
        roots = sum(
            1
            for epoch in state.epochs
            for rec in epoch.records
            if rec.parent == ROOT
        )
        return 1 if roots <= 1 else 0
