"""TRIANGLE detection protocols.

Table 2 marks TRIANGLE solvable in ``SIMSYNC[log n]`` but the paper
gives no protocol for general graphs (the claim appears as a remark
after Corollary 2).  What *is* fully specified is:

* TRIANGLE ∉ ``SIMASYNC[o(n)]`` (Theorem 3, via the Figure 1 reduction —
  see :mod:`repro.reductions`);
* BUILD ∈ ``SIMASYNC[log n]`` for bounded-degeneracy graphs (Theorem 2),
  which *implies* TRIANGLE on that class in every model: reconstruct,
  then decide centrally.

:class:`DegenerateTriangleProtocol` implements that implication — it is
the strongest positive cell we can justify from the paper's text, and
EXPERIMENTS.md flags the general-graph cell accordingly.  Together with
the naive ``O(n)``-bit protocol (:class:`~repro.protocols.naive.
NaiveTriangleProtocol`) it brackets the problem from both sides.
"""

from __future__ import annotations

from ..graphs.properties import has_triangle
from ..core.protocol import NodeView
from ..core.whiteboard import BoardView
from .build import NOT_IN_CLASS, DegenerateBuildProtocol, decode_build_board

__all__ = ["DegenerateTriangleProtocol", "NOT_IN_CLASS"]


class DegenerateTriangleProtocol(DegenerateBuildProtocol):
    """TRIANGLE on degeneracy-≤k graphs in ``SIMASYNC[log n]``.

    Same messages as Theorem 2's BUILD; the output function reconstructs
    and answers ``1``/``0``, or :data:`NOT_IN_CLASS` when the input
    violates the degeneracy promise.

    Note that for ``k >= 2`` a triangle can exist inside the class
    (e.g. ``K_3`` is 2-degenerate), so the answer is non-trivial.
    """

    def __init__(self, k: int, decoder: str = "newton") -> None:
        super().__init__(k=k, decoder=decoder)
        self.name = f"triangle-degenerate(k={k})"

    def output(self, board: BoardView, n: int):
        graph = decode_build_board(board, n, self.k)
        if graph == NOT_IN_CLASS:
            return NOT_IN_CLASS
        return 1 if has_triangle(graph) else 0
