"""The protocol census: one table of everything this library ships.

Each entry records where a protocol comes from (paper result or
extension), the weakest model it runs in, its message bound, and a
factory producing a ready instance — powering the ``python -m repro
protocols`` listing and the hygiene tests that keep metadata and code in
sync.

Two optional per-protocol extension points ride on the same table:

* ``fault_claims`` — robustness claims, one canonical fault-budget
  string each (``"crash:1"``), asserting *liveness*: on the protocol's
  claim family (see :mod:`repro.faults.claims`), no adversary
  interleaving of that many faults can drive an execution into
  deadlock.  Claims are machine-checked by ``campaign claims``; a
  violated claim surfaces as a replayable, minimised deadlock witness.
* ``score_hook`` — a protocol-supplied
  :class:`~repro.adversaries.scoring.ScoreHook` factory, auto-registered
  in the global hook registry at import time so stress searches can
  select it by its primitive name (``stress --score sketch-decode``).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Optional

from ..core.protocol import Protocol

__all__ = ["ProtocolEntry", "CENSUS", "CENSUS_BY_KEY", "render_census"]


@dataclass(frozen=True)
class ProtocolEntry:
    """Census row for one protocol."""

    key: str
    problem: str
    model: str
    message_bound: str
    source: str
    factory: Callable[[], Protocol]
    #: Liveness claims under fault budgets, e.g. ``("crash:1", "dup:1")``
    #: — checked against exhaustive ground truth by ``campaign claims``.
    fault_claims: tuple[str, ...] = ()
    #: Optional protocol-supplied badness hook (registered globally).
    score_hook: Optional[Callable[[], object]] = None

    def instantiate(self) -> Protocol:
        proto = self.factory()
        if proto.designed_for != self.model:
            raise AssertionError(
                f"census says {self.model} but {proto.name} declares "
                f"{proto.designed_for}"
            )
        return proto


def _census() -> tuple[ProtocolEntry, ...]:
    from .bfs import BipartiteBfsAsyncProtocol, EobBfsProtocol, SyncBfsProtocol
    from .build import DegenerateBuildProtocol, ForestBuildProtocol
    from .build_extended import ExtendedBuildProtocol
    from .connectivity import ConnectivityProtocol, SpanningForestProtocol
    from .distance import (
        DegenerateDiameterProtocol,
        DegenerateSquareProtocol,
        NaiveDiameterProtocol,
        NaiveSquareProtocol,
    )
    from .mis import RootedMisProtocol
    from .naive import (
        NaiveBuildProtocol,
        NaiveEobBfsProtocol,
        NaiveMisProtocol,
        NaiveTriangleProtocol,
    )
    from .randomized import RandomizedTwoCliquesProtocol
    from .sketching import (
        SketchConnectivityProtocol,
        SketchDecodeScore,
        SketchSpanningForestProtocol,
    )
    from .subgraph import SubgraphProtocol
    from .triangle import DegenerateTriangleProtocol
    from .two_cliques import TwoCliquesProtocol

    return (
        ProtocolEntry("build-forest", "BUILD (forests)", "SIMASYNC",
                      "O(log n)", "Section 3.1", ForestBuildProtocol),
        ProtocolEntry("build-degenerate", "BUILD (degeneracy <= k)", "SIMASYNC",
                      "O(k^2 log n)", "Theorem 2",
                      lambda: DegenerateBuildProtocol(2),
                      # Simultaneous activation: every surviving node is
                      # active from round one, so no fault interleaving
                      # can starve the schedule — both claims hold.
                      fault_claims=("crash:1", "dup:1")),
        ProtocolEntry("build-extended", "BUILD (mixed low/high degree)",
                      "SIMASYNC", "O(k^2 log n)", "Section 3 (remark)",
                      lambda: ExtendedBuildProtocol(2)),
        ProtocolEntry("mis-greedy", "rooted MIS", "SIMSYNC", "O(log n)",
                      "Theorem 5", lambda: RootedMisProtocol(1)),
        ProtocolEntry("two-cliques", "2-CLIQUES", "SIMSYNC", "O(log n)",
                      "Section 5.1", TwoCliquesProtocol),
        # The crash:1 claim is *deliberately false*: free asynchronous
        # activation relies on earlier writes waking later writers, so
        # crashing the right node starves the rest — ``campaign claims``
        # finds and minimises the deadlock witness refuting it.
        ProtocolEntry("eob-bfs", "EOB-BFS", "ASYNC", "O(log n)",
                      "Theorem 7", EobBfsProtocol,
                      fault_claims=("crash:1",)),
        ProtocolEntry("bfs-bipartite-async", "BFS (bipartite promise)",
                      "ASYNC", "O(log n)", "Corollary 4",
                      BipartiteBfsAsyncProtocol),
        ProtocolEntry("bfs-sync", "BFS (arbitrary graphs)", "SYNC",
                      "O(log n)", "Theorem 10", SyncBfsProtocol),
        ProtocolEntry("subgraph-f", "SUBGRAPH_f", "SIMASYNC", "f(n) + O(log n)",
                      "Theorem 9", SubgraphProtocol),
        ProtocolEntry("triangle-degenerate", "TRIANGLE (degeneracy promise)",
                      "SIMASYNC", "O(k^2 log n)", "Theorem 2 corollary",
                      lambda: DegenerateTriangleProtocol(2)),
        ProtocolEntry("square-degenerate", "SQUARE (degeneracy promise)",
                      "SIMASYNC", "O(k^2 log n)", "Section 1 / [2], via Thm 2",
                      lambda: DegenerateSquareProtocol(2)),
        ProtocolEntry("diameter-degenerate", "DIAMETER (degeneracy promise)",
                      "SIMASYNC", "O(k^2 log n)", "Section 1 / [2], via Thm 2",
                      lambda: DegenerateDiameterProtocol(2)),
        ProtocolEntry("connectivity-sync", "CONNECTIVITY", "SYNC", "O(log n)",
                      "Theorem 10 corollary (Open Problem 2 in ASYNC)",
                      ConnectivityProtocol),
        ProtocolEntry("spanning-forest-sync", "SPANNING-FOREST", "SYNC",
                      "O(log n)", "Theorem 10 corollary", SpanningForestProtocol),
        ProtocolEntry("naive-build", "BUILD (all graphs)", "SIMASYNC",
                      "n + O(log n)", "Section 1 baseline", NaiveBuildProtocol),
        ProtocolEntry("naive-triangle", "TRIANGLE", "SIMASYNC", "n + O(log n)",
                      "baseline (optimal by Thm 3)", NaiveTriangleProtocol),
        ProtocolEntry("naive-mis", "rooted MIS", "SIMASYNC", "n + O(log n)",
                      "baseline (optimal by Thm 6)", lambda: NaiveMisProtocol(1)),
        ProtocolEntry("naive-eob-bfs", "EOB-BFS", "SIMASYNC", "n + O(log n)",
                      "baseline (optimal by Thm 8)", NaiveEobBfsProtocol),
        ProtocolEntry("naive-square", "SQUARE", "SIMASYNC", "n + O(log n)",
                      "baseline", NaiveSquareProtocol),
        ProtocolEntry("naive-diameter", "DIAMETER", "SIMASYNC", "n + O(log n)",
                      "baseline", NaiveDiameterProtocol),
        ProtocolEntry("two-cliques-randomized", "2-CLIQUES (public coins)",
                      "SIMASYNC", "O(log n + log p)", "Section 7 remark",
                      lambda: RandomizedTwoCliquesProtocol(shared_seed=0)),
        ProtocolEntry("sketch-connectivity", "CONNECTIVITY (public coins)",
                      "SIMASYNC", "O(log^3 n)", "extension: AGM sketching",
                      lambda: SketchConnectivityProtocol(shared_seed=0),
                      score_hook=SketchDecodeScore),
        ProtocolEntry("sketch-spanning-forest", "SPANNING-FOREST (public coins)",
                      "SIMASYNC", "O(log^3 n)", "extension: AGM sketching",
                      lambda: SketchSpanningForestProtocol(shared_seed=0),
                      score_hook=SketchDecodeScore),
    )


CENSUS: tuple[ProtocolEntry, ...] = _census()

#: The protocol registry, addressable by key — the single source for
#: every CLI listing/choice that names protocols.
CENSUS_BY_KEY: dict[str, ProtocolEntry] = {e.key: e for e in CENSUS}


def _register_census_score_hooks() -> None:
    """Make every protocol-supplied hook selectable by name.

    Registration is idempotent (shared factories register once), so
    re-importing the census — or two entries sharing a hook — is safe.
    """
    from ..adversaries.scoring import register_score_hook

    for entry in CENSUS:
        if entry.score_hook is not None:
            register_score_hook(entry.score_hook)


_register_census_score_hooks()


def render_census() -> str:
    """ASCII table of every shipped protocol."""
    lines = [
        f"{'protocol':<24} {'problem':<32} {'model':<9} "
        f"{'message bound':<16} source"
    ]
    lines.append("-" * 110)
    for e in CENSUS:
        lines.append(
            f"{e.key:<24} {e.problem:<32} {e.model:<9} "
            f"{e.message_bound:<16} {e.source}"
        )
    return "\n".join(lines)
