"""Rooted maximal independent set in ``SIMSYNC[log n]`` (Theorem 5).

The protocol is the paper's greedy: when the adversary picks node ``v``,

* ``v`` writes its own identifier if ``v = x`` (the root), or if ``v`` is
  not a neighbour of ``x`` and no neighbour of ``v`` has its identifier
  on the whiteboard yet;
* otherwise ``v`` writes "no".

The set of identifiers on the final whiteboard is a maximal independent
set containing ``x`` — *whatever order* the adversary chose (the output
varies with the schedule, but is always a correct MIS; the verification
harness checks exactly that, over all schedules for small ``n``).

The message genuinely depends on the current whiteboard, which is why
this sits in ``SIMSYNC`` and not ``SIMASYNC`` — and Theorem 6 (see
:mod:`repro.reductions.transformers`) shows no ``SIMASYNC[o(n)]``
protocol exists.
"""

from __future__ import annotations

from ..encoding.bits import Payload
from ..core.protocol import NodeView, Protocol
from ..core.whiteboard import BoardView

__all__ = ["RootedMisProtocol", "IN_SET", "NOT_IN_SET"]

#: Message tags: ``(IN_SET, id)`` claims membership, ``(NOT_IN_SET, id)``
#: is the paper's "no".
IN_SET = "I"
NOT_IN_SET = "no"


class RootedMisProtocol(Protocol):
    """Theorem 5's greedy MIS protocol, rooted at ``x``."""

    designed_for = "SIMSYNC"

    def __init__(self, root: int) -> None:
        if root < 1:
            raise ValueError(f"root must be a valid identifier, got {root}")
        self.root = root
        self.name = f"mis-greedy(x={root})"

    def message(self, view: NodeView) -> Payload:
        v = view.node
        if v == self.root:
            return (IN_SET, v)
        if self.root in view.neighbors:
            return (NOT_IN_SET, v)
        claimed = {
            payload[1]
            for payload in view.board
            if isinstance(payload, tuple) and payload[0] == IN_SET
        }
        if claimed & view.neighbors:
            return (NOT_IN_SET, v)
        return (IN_SET, v)

    def output(self, board: BoardView, n: int) -> frozenset[int]:
        return frozenset(
            payload[1]
            for payload in board
            if isinstance(payload, tuple) and payload[0] == IN_SET
        )
