"""SUBGRAPH_f in ``SIMASYNC[f(n)]`` (Theorem 9).

The problem: output the subgraph induced by the first ``f(n)``
identifiers ``{v_1, ..., v_{f(n)}}``.  The protocol is the paper's
one-liner: every node writes the first ``f(n)`` bits of its adjacency
row.  Its role in the paper is to witness that *message size* is a
resource orthogonal to synchronisation power: ``SUBGRAPH_f`` is in
``SIMASYNC[f(n)]`` (the weakest model) yet outside ``SYNC[g(n)]`` (the
strongest) for every ``g = o(f)`` — see
:func:`repro.reductions.counting.subgraph_lower_bound`.
"""

from __future__ import annotations

from collections.abc import Callable

from ..encoding.bits import Payload
from ..graphs.labeled_graph import Edge
from ..core.protocol import NodeView, Protocol
from ..core.whiteboard import BoardView

__all__ = ["SubgraphProtocol", "default_f", "subgraph_reference"]


def default_f(n: int) -> int:
    """A convenient ``f(n) = ceil(sqrt(n))`` prefix size: ``ω(log n)``
    and ``o(n)``, i.e. strictly between the hierarchy's endpoints."""
    return max(1, int(n ** 0.5) + (0 if int(n ** 0.5) ** 2 == n else 1))


def subgraph_reference(graph, f: int) -> frozenset[Edge]:
    """Oracle: edges of the subgraph induced by ``{1..f}``."""
    return graph.induced_edge_set(range(1, min(f, graph.n) + 1))


class SubgraphProtocol(Protocol):
    """Theorem 9's prefix-row protocol.

    Parameters
    ----------
    f:
        Map ``n -> f(n)``, the identifier-prefix length.  Message size is
        ``f(n) + O(log n)`` bits.
    """

    designed_for = "SIMASYNC"

    def __init__(self, f: Callable[[int], int] = default_f) -> None:
        self.f = f
        self.name = "subgraph-f"

    def message(self, view: NodeView) -> Payload:
        limit = min(self.f(view.n), view.n)
        mask = 0
        for w in view.neighbors:
            if w <= limit:
                mask |= 1 << (w - 1)
        return (view.node, mask)

    def output(self, board: BoardView, n: int) -> frozenset[Edge]:
        limit = min(self.f(n), n)
        rows: dict[int, int] = {}
        for node, mask in board:
            rows[node] = mask
        edges = set()
        for u in range(1, limit + 1):
            for v in range(u + 1, limit + 1):
                if rows[u] >> (v - 1) & 1:
                    if not rows[v] >> (u - 1) & 1:
                        raise ValueError("asymmetric prefix rows on the board")
                    edges.add((u, v))
        return frozenset(edges)
