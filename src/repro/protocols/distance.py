"""Square detection and diameter — the Section 1 / Section 4 hard cases.

The paper states (citing its IPDPS'11 companion [2]) that questions like
"Does G contain a square?" or "Is the diameter of G at most 3?" cannot
be solved by SIMASYNC protocols with o(n) bits.  This module brackets
those problems from both sides, exactly as :mod:`repro.protocols.triangle`
does for TRIANGLE:

* naive ``Θ(n)``-bit upper bounds (reconstruct, then decide centrally) —
  the baselines the impossibility results say are essentially optimal;
* bounded-degeneracy ``O(k² log n)`` versions via Theorem 2's messages —
  showing the hardness evaporates on sparse promise classes;
* at tiny scale, :mod:`repro.reductions.protocol_search` settles the
  question exhaustively (see the protocol-search benchmark, which adds a
  SQUARE row to the phase diagram).
"""

from __future__ import annotations

from typing import Union

from ..encoding.bits import Payload
from ..graphs.properties import diameter, has_square, is_connected
from ..core.protocol import NodeView, Protocol
from ..core.whiteboard import BoardView
from .build import NOT_IN_CLASS, DegenerateBuildProtocol, decode_build_board
from .naive import graph_from_mask_board, neighborhood_mask

__all__ = [
    "DISCONNECTED",
    "NaiveSquareProtocol",
    "NaiveDiameterProtocol",
    "DegenerateSquareProtocol",
    "DegenerateDiameterProtocol",
]

#: Diameter output on disconnected inputs (where diameter is undefined).
DISCONNECTED = "DISCONNECTED"


def _diameter_or_marker(graph) -> Union[int, str]:
    if graph.n == 0 or not is_connected(graph):
        return DISCONNECTED
    return diameter(graph)


class NaiveSquareProtocol(Protocol):
    """SQUARE (C4 subgraph) decided from full adjacency rows —
    the ``Θ(n)``-bit upper bound the lower bound matches."""

    name = "naive-square"
    designed_for = "SIMASYNC"

    def message(self, view: NodeView) -> Payload:
        return (view.node, neighborhood_mask(view.neighbors))

    def output(self, board: BoardView, n: int) -> int:
        return 1 if has_square(graph_from_mask_board(board, n)) else 0


class NaiveDiameterProtocol(Protocol):
    """Exact diameter from full adjacency rows (``DISCONNECTED`` marker
    when undefined); restricting the output to the paper's "diameter at
    most 3?" question is a trivial post-filter."""

    name = "naive-diameter"
    designed_for = "SIMASYNC"

    def message(self, view: NodeView) -> Payload:
        return (view.node, neighborhood_mask(view.neighbors))

    def output(self, board: BoardView, n: int) -> Union[int, str]:
        return _diameter_or_marker(graph_from_mask_board(board, n))


class DegenerateSquareProtocol(DegenerateBuildProtocol):
    """SQUARE on degeneracy-≤k graphs in ``SIMASYNC[log n]``."""

    def __init__(self, k: int, decoder: str = "newton") -> None:
        super().__init__(k=k, decoder=decoder)
        self.name = f"square-degenerate(k={k})"

    def output(self, board: BoardView, n: int):
        graph = decode_build_board(board, n, self.k)
        if graph == NOT_IN_CLASS:
            return NOT_IN_CLASS
        return 1 if has_square(graph) else 0


class DegenerateDiameterProtocol(DegenerateBuildProtocol):
    """Exact diameter on degeneracy-≤k graphs in ``SIMASYNC[log n]``.

    On the promise class, the "diameter ≤ 3?" question the paper calls
    unsolvable for general graphs becomes a one-line output function."""

    def __init__(self, k: int, decoder: str = "newton") -> None:
        super().__init__(k=k, decoder=decoder)
        self.name = f"diameter-degenerate(k={k})"

    def output(self, board: BoardView, n: int):
        graph = decode_build_board(board, n, self.k)
        if graph == NOT_IN_CLASS:
            return NOT_IN_CLASS
        return _diameter_or_marker(graph)
