"""Randomized whiteboard protocols (Section 7, Open Problem 4).

The paper remarks that "2-CLIQUES admits a randomized protocol for these
models" without details.  This module supplies a concrete *public-coin*
construction in the weakest model, ``SIMASYNC[log n]``:

Every node hashes its **closed** neighbourhood ``N[v]`` with a random
polynomial fingerprint drawn from shared randomness and writes
``(ID(v), h(N[v]))``.  For an ``(n-1)``-regular graph on ``2n`` nodes,
being two disjoint ``K_n``'s is equivalent to the closed neighbourhoods
taking exactly two values, each shared by exactly ``n`` nodes (a clique
of ``K_n`` *is* the common closed neighbourhood of its members).  The
output function therefore accepts iff the fingerprints form two groups
of size ``n``.

Error analysis: fingerprints of *equal* sets always agree, and any two
*unequal* closed neighbourhoods collide with probability at most
``n / p`` (degree-bounded polynomial identity test over ``F_p``).  A
union bound over ``< (2n)^2`` pairs bounds the total error — wrongly
accepting a NO instance, or wrongly rejecting a YES instance because its
two distinct clique sets collided — by ``4 n^3 / p``, vanishing for the
default 61-bit prime.

The *public coin* (a seed shared by all nodes but unknown to the graph)
is the standard simultaneous-messages notion of randomness; the paper
leaves the private-coin question open and so do we.
"""

from __future__ import annotations

import random

from ..encoding.bits import Payload
from ..core.protocol import NodeView, Protocol
from ..core.whiteboard import BoardView
from .two_cliques import NOT_TWO_CLIQUES, TWO_CLIQUES

__all__ = ["RandomizedTwoCliquesProtocol", "set_fingerprint", "MERSENNE_61"]

#: Default field size: the Mersenne prime ``2^61 - 1``.
MERSENNE_61 = (1 << 61) - 1


def set_fingerprint(values: frozenset[int] | set[int], r: int, p: int = MERSENNE_61) -> int:
    """Polynomial identity fingerprint ``prod (r - x) mod p`` of a set.

    Two equal sets always agree; two different subsets of ``{1..n}``
    agree for at most ``n`` choices of ``r`` (degree bound), hence with
    probability ``<= n/p`` over uniform ``r``.
    """
    acc = 1
    for x in values:
        acc = acc * ((r - x) % p) % p
    return acc


class RandomizedTwoCliquesProtocol(Protocol):
    """Public-coin 2-CLIQUES in ``SIMASYNC[log n]`` with one-sided error.

    Parameters
    ----------
    shared_seed:
        The public coin.  All nodes derive the same evaluation point
        ``r`` from it; the adversary (scheduler) cannot depend on it.
    p:
        Field size; error probability scales as ``O(n^3 / p)``.
    """

    designed_for = "SIMASYNC"

    def __init__(self, shared_seed: int, p: int = MERSENNE_61) -> None:
        self.shared_seed = shared_seed
        self.p = p
        self._r = random.Random(shared_seed).randrange(1, p)
        self.name = f"two-cliques-randomized(seed={shared_seed})"

    def message(self, view: NodeView) -> Payload:
        closed = frozenset(view.neighbors) | {view.node}
        return (view.node, set_fingerprint(closed, self._r, self.p))

    def output(self, board: BoardView, n: int) -> str:
        if n % 2 != 0:
            return NOT_TWO_CLIQUES
        groups: dict[int, int] = {}
        for _, fp in board:
            groups[fp] = groups.get(fp, 0) + 1
        if len(groups) == 2 and set(groups.values()) == {n // 2}:
            return TWO_CLIQUES
        # Exactly-two-groups check degenerates when both cliques hash
        # equally (probability <= n/p): accept the single-group case only
        # if it is consistent with two same-fingerprint cliques.
        if len(groups) == 1 and n >= 2:
            return NOT_TWO_CLIQUES  # conservative: cannot distinguish K_n pairs
        return NOT_TWO_CLIQUES
