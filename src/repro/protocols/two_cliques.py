"""2-CLIQUES in ``SIMSYNC[log n]`` (Section 5.1).

Input promise: an ``(n-1)``-regular graph on ``2n`` nodes.  Question: is
it the disjoint union of two ``K_n``'s?  (Equivalently: is it
*disconnected* — the link to CONNECTIVITY the paper draws.)

Protocol (verbatim from the paper):

* the first node picked writes ``(ID, 0)``;
* a later node ``v`` with no written neighbour writes ``(ID, 1)``;
* a node whose written neighbours all claimed the same clique ``c``
  writes ``(ID, c)``; mixed claims produce ``(ID, "no")``.

Output: YES iff no "no" appears *and* both claimed cliques have exactly
``n`` members.  The size check matters: on a *connected* instance an
adversary that grows one connected region never triggers a "no", but
then every node claims clique 0 and the partition ``(V, ∅)`` is exposed
by the cardinality test (a clique of size ``2n`` is impossible in an
``(n-1)``-regular graph).  NO-instances are always connected — an
``(n-1)``-regular disconnected graph on ``2n`` nodes *is* two cliques —
so this decides the promise problem under every adversary.

A public-coin randomized ``SIMASYNC`` variant (Section 7's remark that
"2-CLIQUES admits a randomized protocol") lives in
:mod:`repro.protocols.randomized`.
"""

from __future__ import annotations

from ..encoding.bits import Payload
from ..core.protocol import NodeView, Protocol
from ..core.whiteboard import BoardView

__all__ = ["TwoCliquesProtocol", "TWO_CLIQUES", "NOT_TWO_CLIQUES", "MIXED"]

TWO_CLIQUES = "TWO_CLIQUES"
NOT_TWO_CLIQUES = "NOT_TWO_CLIQUES"
MIXED = "no"


class TwoCliquesProtocol(Protocol):
    """The Section 5.1 clique-labelling protocol."""

    name = "two-cliques"
    designed_for = "SIMSYNC"

    def message(self, view: NodeView) -> Payload:
        v = view.node
        if view.board.empty:
            return (v, 0)
        labels = set()
        for payload in view.board:
            other, claim = payload
            if other in view.neighbors and isinstance(claim, int):
                labels.add(claim)
        if not labels:
            return (v, 1)
        if len(labels) == 1:
            return (v, labels.pop())
        return (v, MIXED)

    def output(self, board: BoardView, n: int) -> str:
        counts = {0: 0, 1: 0}
        for payload in board:
            _, claim = payload
            if claim == MIXED:
                return NOT_TWO_CLIQUES
            counts[claim] += 1
        half = n // 2
        if n % 2 == 0 and counts[0] == half and counts[1] == half:
            return TWO_CLIQUES
        return NOT_TWO_CLIQUES
