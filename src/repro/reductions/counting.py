"""Lemma 3 — the whiteboard counting bound, made executable.

    If BUILD restricted to a class ``G`` with ``g(n)`` members is
    solvable in any of the four models with ``f(n)``-bit messages, then
    ``log g(n) = O(n · f(n))``.

The final whiteboard carries at most ``n · f(n)`` bits, and a
deterministic output function must map boards to graphs injectively over
the class, so the class cannot out-count the boards.  This module
provides:

* exact/closed-form ``log2`` counts for the graph classes the paper's
  reductions use (all graphs, fixed-part bipartite, even-odd-bipartite,
  labeled trees, a k-degenerate lower bound);
* the capacity comparison itself (:func:`build_feasible`,
  :func:`min_message_bits_for_build`);
* the sharper *SIMASYNC multiset* bound: simultaneous messages depend
  only on local views, the adversary controls the order, so the board is
  determined by the message **multiset** — of which there are only
  ``C(M + n - 1, n)`` for ``M`` distinct messages;
* :func:`find_simasync_collision` — a concrete pigeonhole witness
  generator: two different graphs in a class on which a given SIMASYNC
  protocol produces identical message multisets, certifying that this
  protocol cannot solve BUILD (and hence any problem separating the two
  graphs) on that class.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass
from typing import Optional

from ..encoding.bits import payload_bits
from ..graphs.labeled_graph import LabeledGraph
from ..core.protocol import NodeView, Protocol
from ..core.whiteboard import BoardView

__all__ = [
    "whiteboard_capacity",
    "log2_all_graphs",
    "log2_bipartite_fixed_parts",
    "log2_even_odd_bipartite",
    "log2_labeled_trees",
    "log2_k_degenerate_lower",
    "build_feasible",
    "min_message_bits_for_build",
    "distinct_messages_upto",
    "simasync_multiset_capacity",
    "simasync_messages",
    "find_simasync_collision",
    "CollisionWitness",
    "subgraph_lower_bound_bits",
]


def whiteboard_capacity(n: int, f_bits: int) -> int:
    """Total bits on a final whiteboard: ``n`` messages of ``f_bits``."""
    return n * f_bits


def log2_all_graphs(n: int) -> float:
    """``log2`` of the number of labeled graphs on ``n`` nodes."""
    return n * (n - 1) / 2


def log2_bipartite_fixed_parts(n: int) -> float:
    """``log2`` count of bipartite graphs with parts ``{1..n/2}`` and
    ``{n/2+1..n}`` — the class in Theorem 3's reduction
    (``Ω(2^{(n/2)^2})`` in the paper)."""
    a = n // 2
    return float(a * (n - a))


def log2_even_odd_bipartite(n: int) -> float:
    """``log2`` count of even-odd-bipartite graphs on ``n`` nodes — the
    class in Theorem 8's reduction (``2^{Ω(n^2)}`` in the paper)."""
    odd = (n + 1) // 2
    even = n // 2
    return float(odd * even)


def log2_labeled_trees(n: int) -> float:
    """Cayley: ``n^{n-2}`` labeled trees."""
    if n < 2:
        return 0.0
    return (n - 2) * math.log2(n)


def log2_k_degenerate_lower(n: int, k: int) -> float:
    """A constructive lower bound on the ``log2`` count of
    degeneracy-≤k graphs: insert nodes one by one, each choosing exactly
    ``k`` back-neighbours freely once ``k`` predecessors exist.  Distinct
    choice sequences give distinct graphs."""
    total = 0.0
    for j in range(k, n):
        total += math.log2(math.comb(j, k))
    return total


def build_feasible(log2_count: float, n: int, f_bits: int) -> bool:
    """Lemma 3's necessary condition: the class fits in the whiteboard."""
    return log2_count <= whiteboard_capacity(n, f_bits)


def min_message_bits_for_build(log2_count: float, n: int) -> float:
    """Smallest per-node message size (bits) Lemma 3 permits for BUILD
    on a class of ``2^log2_count`` graphs."""
    return log2_count / n


def subgraph_lower_bound_bits(n: int, f: int) -> float:
    """Theorem 9's counting step: graphs on ``n`` nodes whose edges live
    inside ``{1..f}`` number ``2^{C(f,2)}``, so any model needs
    ``>= C(f,2)/n`` bits per message to solve ``SUBGRAPH_f`` — which is
    ``ω(g(n))`` whenever ``g = o(f)`` and ``f = ω(sqrt(n log n))``...
    the exact threshold the benchmark tabulates."""
    return (f * (f - 1) / 2) / n


# ----------------------------------------------------------------------
# SIMASYNC-specific multiset bound and concrete collision witnesses
# ----------------------------------------------------------------------

def distinct_messages_upto(bits: int) -> int:
    """Number of distinct binary messages of length ``1..bits`` plus the
    empty message: ``2^{bits+1} - 1``."""
    if bits < 0:
        raise ValueError("bits must be >= 0")
    return (1 << (bits + 1)) - 1


def simasync_multiset_capacity(n: int, bits: int) -> int:
    """Max number of graphs distinguishable by *any* SIMASYNC protocol
    with ``<= bits``-bit messages: the number of size-``n`` multisets
    over the message space.

    In SIMASYNC every message is a function of the writer's local view
    only and the adversary picks the order, so two inputs yielding equal
    multisets admit executions with identical whiteboards."""
    m = distinct_messages_upto(bits)
    return math.comb(m + n - 1, n)


def simasync_messages(protocol: Protocol, graph: LabeledGraph) -> tuple:
    """The (local-view-only) messages a SIMASYNC protocol produces on a
    graph, as a tuple indexed by node."""
    proto = protocol.fresh()
    empty = BoardView(())
    return tuple(
        proto.message(NodeView(v, graph.neighbors(v), graph.n, empty))
        for v in graph.nodes()
    )


@dataclass(frozen=True)
class CollisionWitness:
    """Two different graphs with identical SIMASYNC message multisets."""

    first: LabeledGraph
    second: LabeledGraph
    multiset: tuple

    @property
    def max_bits(self) -> int:
        return max(payload_bits(p) for p in self.multiset) if self.multiset else 0


def find_simasync_collision(
    protocol: Protocol,
    graphs: Iterable[LabeledGraph],
) -> Optional[CollisionWitness]:
    """Search a graph family for a pigeonhole collision under
    ``protocol``'s SIMASYNC messages.

    Returns the first pair of distinct graphs whose message multisets
    coincide — a machine-checkable certificate that the protocol cannot
    solve BUILD (or distinguish the two graphs at all) on this family.
    ``None`` means the protocol separates every pair in the family.
    """
    seen: dict[tuple, LabeledGraph] = {}
    for g in graphs:
        key = tuple(sorted(Counter(simasync_messages(protocol, g)).items(),
                           key=repr))
        if key in seen and seen[key] != g:
            multiset = tuple(m for m, c in key for _ in range(c))
            return CollisionWitness(seen[key], g, multiset)
        seen.setdefault(key, g)
    return None
