"""Exhaustive search over SIMASYNC protocol space for tiny instances.

The paper's SIMASYNC lower bounds (Theorems 3, 6) are asymptotic:
reductions plus the Lemma 3 counting argument.  At very small scale a
stronger statement is checkable outright: *enumerate every protocol*.

A SIMASYNC protocol on ``n``-node graphs is determined by its message
function alone — a map from *local views* ``(ID(v), N(v))`` to messages
— because messages are computed on the empty whiteboard, and because the
adversary controls the write order the output function effectively
receives the **multiset** of messages.  Hence, for a decision problem
``P``:

    ``P`` is solvable in SIMASYNC with message alphabet ``M``
    ⟺ there is an assignment ``msg : views → M`` such that no YES
    instance and NO instance produce equal message multisets.

This module decides that statement by backtracking over assignments with
collision-based pruning: a graph's multiset is fixed the moment its last
view is assigned, and a YES/NO signature clash prunes the branch.  The
result is either a *witness protocol* (an explicit assignment, plus the
multiset→answer output table), a proof of unsolvability (the search
space is exhausted), or an explicit budget-exhaustion report.

Scale limits: ``n = 3`` (12 views) is instant for any small alphabet;
``n = 4`` (32 views) is feasible for alphabets of size 2–3 thanks to
pruning.  That is exactly the regime where "no protocol exists" stops
being an asymptotic claim and becomes a finite fact.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import Optional

from ..graphs.generators import all_labeled_graphs
from ..graphs.labeled_graph import LabeledGraph

__all__ = [
    "View",
    "SearchResult",
    "views_of",
    "search_simasync_decision",
    "search_simasync_construction",
    "rooted_mis_candidates",
    "verify_assignment",
    "verify_construction_assignment",
    "output_table",
]

#: A local view: (identifier, neighbourhood).
View = tuple[int, frozenset[int]]


def views_of(graph: LabeledGraph) -> tuple[View, ...]:
    """The ``n`` local views of a graph, in identifier order."""
    return tuple((v, graph.neighbors(v)) for v in graph.nodes())


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a protocol-space search.

    ``status``:

    * ``"solvable"`` — ``assignment`` is a witness message function;
    * ``"unsolvable"`` — the whole space was exhausted without a witness
      (a machine-checked impossibility at this ``n`` and alphabet);
    * ``"exhausted"`` — the node budget ran out first (no conclusion).
    """

    status: str
    assignment: Optional[dict[View, int]]
    nodes_explored: int
    num_views: int
    alphabet_size: int

    @property
    def conclusive(self) -> bool:
        return self.status in ("solvable", "unsolvable")


def search_simasync_decision(
    graphs: Sequence[LabeledGraph],
    predicate: Callable[[LabeledGraph], bool],
    alphabet_size: int,
    node_budget: int = 5_000_000,
) -> SearchResult:
    """Decide whether any SIMASYNC protocol with ``alphabet_size``
    distinct messages solves the decision problem ``predicate`` on the
    instance family ``graphs``.

    Parameters
    ----------
    graphs:
        The instance family (e.g. ``all_labeled_graphs(4)``).  All
        graphs must share the same ``n``.
    predicate:
        The decision problem (YES/NO per graph).
    alphabet_size:
        Number of distinct messages available; ``2^b`` fixed-length
        ``b``-bit messages, or ``2^{b+1}-1`` length-≤b ones — the caller
        chooses the accounting.
    node_budget:
        Backtracking-node cap; exceeded ⇒ ``status="exhausted"``.
    """
    if alphabet_size < 1:
        raise ValueError("alphabet must contain at least one message")
    graphs = list(graphs)
    if not graphs:
        raise ValueError("need at least one instance")
    n = graphs[0].n
    if any(g.n != n for g in graphs):
        raise ValueError("all instances must have the same number of nodes")

    labels = [bool(predicate(g)) for g in graphs]

    # Collect views and index them.
    view_index: dict[View, int] = {}
    graph_views: list[list[int]] = []
    for g in graphs:
        idxs = []
        for view in views_of(g):
            if view not in view_index:
                view_index[view] = len(view_index)
            idxs.append(view_index[view])
        graph_views.append(idxs)
    num_views = len(view_index)

    # Order views so that graphs complete as early as possible: process
    # views by how many graphs use them (most-shared first empirically
    # maximises early collisions and hence pruning).
    usage = [0] * num_views
    for idxs in graph_views:
        for i in idxs:
            usage[i] += 1
    order = sorted(range(num_views), key=lambda i: -usage[i])
    rank = [0] * num_views
    for pos, i in enumerate(order):
        rank[i] = pos

    # For each graph: the position (in search order) at which it becomes
    # fully assigned, so completion checks are O(graphs finishing here).
    finish_at: dict[int, list[int]] = {}
    for gi, idxs in enumerate(graph_views):
        last = max(rank[i] for i in idxs)
        finish_at.setdefault(last, []).append(gi)

    assignment = [-1] * num_views  # by original view index
    signatures: dict[tuple[int, ...], bool] = {}  # multiset -> label
    sig_of_graph: list[Optional[tuple[int, ...]]] = [None] * len(graphs)
    nodes = 0

    def backtrack(pos: int) -> Optional[bool]:
        """Returns True if a full consistent assignment was found,
        None if the node budget is exhausted, False otherwise."""
        nonlocal nodes
        if pos == num_views:
            return True
        view_i = order[pos]
        for message in range(alphabet_size):
            nodes += 1
            if nodes > node_budget:
                return None
            assignment[view_i] = message
            completed: list[int] = []
            ok = True
            for gi in finish_at.get(pos, ()):
                sig = tuple(sorted(assignment[i] for i in graph_views[gi]))
                prev = signatures.get(sig)
                if prev is None:
                    signatures[sig] = labels[gi]
                    sig_of_graph[gi] = sig
                    completed.append(gi)
                elif prev != labels[gi]:
                    ok = False
                    break
                else:
                    sig_of_graph[gi] = None  # nothing to undo
            if ok:
                result = backtrack(pos + 1)
                if result is not False:
                    # bubble up success (True) or budget-exhaustion (None)
                    if result is True:
                        return True
                    # undo before propagating exhaustion
                    for gi in completed:
                        del signatures[sig_of_graph[gi]]
                        sig_of_graph[gi] = None
                    assignment[view_i] = -1
                    return None
            for gi in completed:
                del signatures[sig_of_graph[gi]]
                sig_of_graph[gi] = None
        assignment[view_i] = -1
        return False

    outcome = backtrack(0)
    by_view = {v: assignment[i] for v, i in view_index.items()}
    if outcome is True:
        return SearchResult("solvable", by_view, nodes, num_views, alphabet_size)
    if outcome is None:
        return SearchResult("exhausted", None, nodes, num_views, alphabet_size)
    return SearchResult("unsolvable", None, nodes, num_views, alphabet_size)


def verify_assignment(
    graphs: Iterable[LabeledGraph],
    predicate: Callable[[LabeledGraph], bool],
    assignment: dict[View, int],
) -> bool:
    """Independently re-check a witness: no YES/NO multiset collision."""
    seen: dict[tuple[int, ...], bool] = {}
    for g in graphs:
        sig = tuple(sorted(assignment[v] for v in views_of(g)))
        label = bool(predicate(g))
        if seen.setdefault(sig, label) != label:
            return False
    return True


def output_table(
    graphs: Iterable[LabeledGraph],
    predicate: Callable[[LabeledGraph], bool],
    assignment: dict[View, int],
) -> dict[tuple[int, ...], bool]:
    """The witness protocol's output function: multiset -> answer."""
    table: dict[tuple[int, ...], bool] = {}
    for g in graphs:
        sig = tuple(sorted(assignment[v] for v in views_of(g)))
        label = bool(predicate(g))
        if table.setdefault(sig, label) != label:
            raise ValueError("assignment is not a valid witness")
    return table


def search_simasync_construction(
    graphs: Sequence[LabeledGraph],
    candidates: Callable[[LabeledGraph], frozenset],
    alphabet_size: int,
    node_budget: int = 5_000_000,
) -> SearchResult:
    """Decide solvability of a *construction* problem in SIMASYNC.

    A construction problem admits several correct outputs per instance
    (``candidates(g)`` is the set of acceptable answers — e.g. every
    maximal independent set containing the root).  A SIMASYNC protocol
    with message map ``msg`` solves it iff every *signature class* (the
    graphs sharing a message multiset) has a **common** acceptable
    output, since the output function sees only the multiset.

    Same backtracking engine as :func:`search_simasync_decision`, with
    label equality replaced by running intersections of candidate sets.
    A machine-checked "unsolvable" here is the finite companion of the
    Theorem 6 lower bound (rooted MIS ∉ SIMASYNC with small messages).
    """
    if alphabet_size < 1:
        raise ValueError("alphabet must contain at least one message")
    graphs = list(graphs)
    if not graphs:
        raise ValueError("need at least one instance")
    n = graphs[0].n
    if any(g.n != n for g in graphs):
        raise ValueError("all instances must have the same number of nodes")

    answer_sets = [frozenset(candidates(g)) for g in graphs]
    if any(not s for s in answer_sets):
        raise ValueError("every instance needs at least one acceptable output")

    view_index: dict[View, int] = {}
    graph_views: list[list[int]] = []
    for g in graphs:
        idxs = []
        for view in views_of(g):
            if view not in view_index:
                view_index[view] = len(view_index)
            idxs.append(view_index[view])
        graph_views.append(idxs)
    num_views = len(view_index)

    usage = [0] * num_views
    for idxs in graph_views:
        for i in idxs:
            usage[i] += 1
    order = sorted(range(num_views), key=lambda i: -usage[i])
    rank = [0] * num_views
    for pos, i in enumerate(order):
        rank[i] = pos
    finish_at: dict[int, list[int]] = {}
    for gi, idxs in enumerate(graph_views):
        finish_at.setdefault(max(rank[i] for i in idxs), []).append(gi)

    assignment = [-1] * num_views
    pools: dict[tuple[int, ...], frozenset] = {}  # signature -> common outputs
    nodes = 0

    def backtrack(pos: int):
        nonlocal nodes
        if pos == num_views:
            return True
        view_i = order[pos]
        for message in range(alphabet_size):
            nodes += 1
            if nodes > node_budget:
                return None
            assignment[view_i] = message
            undo: list[tuple[tuple[int, ...], Optional[frozenset]]] = []
            ok = True
            for gi in finish_at.get(pos, ()):
                sig = tuple(sorted(assignment[i] for i in graph_views[gi]))
                prev = pools.get(sig)
                merged = answer_sets[gi] if prev is None else prev & answer_sets[gi]
                if not merged:
                    ok = False
                    break
                undo.append((sig, prev))
                pools[sig] = merged
            if ok:
                result = backtrack(pos + 1)
                if result is True:
                    return True
                if result is None:
                    for sig, prev in reversed(undo):
                        if prev is None:
                            del pools[sig]
                        else:
                            pools[sig] = prev
                    assignment[view_i] = -1
                    return None
            for sig, prev in reversed(undo):
                if prev is None:
                    del pools[sig]
                else:
                    pools[sig] = prev
        assignment[view_i] = -1
        return False

    outcome = backtrack(0)
    by_view = {v: assignment[i] for v, i in view_index.items()}
    if outcome is True:
        return SearchResult("solvable", by_view, nodes, num_views, alphabet_size)
    if outcome is None:
        return SearchResult("exhausted", None, nodes, num_views, alphabet_size)
    return SearchResult("unsolvable", None, nodes, num_views, alphabet_size)


def verify_construction_assignment(
    graphs: Iterable[LabeledGraph],
    candidates: Callable[[LabeledGraph], frozenset],
    assignment: dict[View, int],
) -> bool:
    """Independently re-check a construction witness: every signature
    class retains a common acceptable output."""
    pools: dict[tuple[int, ...], frozenset] = {}
    for g in graphs:
        sig = tuple(sorted(assignment[v] for v in views_of(g)))
        answers = frozenset(candidates(g))
        pools[sig] = pools[sig] & answers if sig in pools else answers
        if not pools[sig]:
            return False
    return True


def rooted_mis_candidates(root: int) -> Callable[[LabeledGraph], frozenset]:
    """Candidate-set function for the rooted MIS construction problem:
    all maximal independent sets containing ``root`` (tiny ``n`` only —
    enumerates subsets)."""
    from itertools import combinations

    from ..graphs.properties import is_rooted_mis

    def candidates(g: LabeledGraph) -> frozenset:
        outs = set()
        nodes = list(g.nodes())
        for r in range(1, g.n + 1):
            for subset in combinations(nodes, r):
                s = frozenset(subset)
                if is_rooted_mis(g, s, root):
                    outs.add(s)
        return frozenset(outs)

    return candidates
