"""Executable reductions for Theorems 3, 6 and 8.

Each lower bound in the paper has the same shape: *if* problem P were
solvable with small messages, *then* BUILD would be solvable on a class
too large for the whiteboard (Lemma 3).  This module implements the
"then" parts as code that mechanically compiles a claimed protocol for P
into a BUILD solver, with exact bit bookkeeping:

* :class:`TriangleToBuildProtocol` — Theorem 3.  Any SIMASYNC TRIANGLE
  protocol ``A`` becomes a SIMASYNC BUILD protocol for bipartite graphs:
  node ``i`` writes ``(i, m'_i, m''_i)`` — its ``A``-messages without and
  with the Figure 1 apex — and the output function replays ``A``'s
  decision on every ``G'_{s,t}``.  Message size: ``2 f(n+1) + O(log n)``.
* :class:`MisToBuildProtocol` — Theorem 6.  Any SIMASYNC rooted-MIS
  protocol becomes a SIMASYNC BUILD protocol for *arbitrary* graphs via
  the ``G^(x)_{i,j}`` gadgets.
* :class:`EobBfsToBuildScheme` — Theorem 8.  A SIMSYNC protocol's
  messages may depend on the board, so the compiled object is not a
  protocol but a *communication scheme*: a sequential encoder producing
  the fixed-order transcript (which Lemma 3's pigeonhole applies to
  verbatim) and a decoder that replays the claimed protocol on every
  Figure 2 gadget ``G_i``.

Instantiating the transformers with the naive ``O(n)``-bit protocols
(:mod:`repro.protocols.naive`) validates the constructions end to end;
instantiating them with a hypothetical ``o(n)``-bit protocol would
contradict :mod:`repro.reductions.counting` — which is precisely the
paper's argument.
"""

from __future__ import annotations

from collections.abc import Callable

from ..encoding.bits import Payload, payload_bits
from ..graphs.labeled_graph import Edge, LabeledGraph
from ..graphs.properties import BfsForest, ROOT
from ..core.protocol import NodeView, Protocol
from ..core.whiteboard import BoardView

__all__ = [
    "TriangleToBuildProtocol",
    "MisToBuildProtocol",
    "EobBfsToBuildScheme",
]

_EMPTY = BoardView(())


class TriangleToBuildProtocol(Protocol):
    """Theorem 3's ``A -> A'`` compiler.

    Parameters
    ----------
    triangle_factory:
        ``n -> Protocol``; must return a *SIMASYNC* TRIANGLE protocol for
        ``n``-node graphs (its ``message`` may only read the local view —
        the compiler always hands it an empty board, so a board-dependent
        protocol would silently degrade, not cheat).
        Output contract: ``1`` iff the input graph has a triangle.

    The compiled protocol solves BUILD on triangle-free (in the paper:
    bipartite) graphs.
    """

    designed_for = "SIMASYNC"

    def __init__(self, triangle_factory: Callable[[int], Protocol]) -> None:
        self.factory = triangle_factory
        self.name = "reduction-triangle->build"

    def message(self, view: NodeView) -> Payload:
        inner = self.factory(view.n + 1).fresh()
        apex = view.n + 1
        without = inner.message(
            NodeView(view.node, view.neighbors, view.n + 1, _EMPTY)
        )
        with_apex = inner.message(
            NodeView(view.node, view.neighbors | {apex}, view.n + 1, _EMPTY)
        )
        return (view.node, without, with_apex)

    def output(self, board: BoardView, n: int) -> LabeledGraph:
        inner = self.factory(n + 1).fresh()
        apex = n + 1
        pairs: dict[int, tuple[Payload, Payload]] = {}
        for node, without, with_apex in board:
            pairs[node] = (without, with_apex)
        if set(pairs) != set(range(1, n + 1)):
            raise ValueError("incomplete reduction board")
        edges: list[Edge] = []
        for s in range(1, n + 1):
            for t in range(s + 1, n + 1):
                simulated = [
                    pairs[i][1] if i in (s, t) else pairs[i][0]
                    for i in range(1, n + 1)
                ]
                # The output function itself computes the apex's message:
                # the apex's local view in G'_{s,t} is fully known.
                simulated.append(
                    inner.message(
                        NodeView(apex, frozenset((s, t)), n + 1, _EMPTY)
                    )
                )
                if inner.output(BoardView(tuple(simulated)), n + 1) == 1:
                    edges.append((s, t))
        return LabeledGraph(n, edges)


class MisToBuildProtocol(Protocol):
    """Theorem 6's compiler: SIMASYNC rooted-MIS => SIMASYNC BUILD.

    Parameters
    ----------
    mis_factory:
        ``(n, root) -> Protocol``; a SIMASYNC protocol whose output is a
        maximal independent set (a set of identifiers) containing
        ``root``.
    """

    designed_for = "SIMASYNC"

    def __init__(self, mis_factory: Callable[[int, int], Protocol]) -> None:
        self.factory = mis_factory
        self.name = "reduction-mis->build"

    def message(self, view: NodeView) -> Payload:
        x = view.n + 1
        inner = self.factory(view.n + 1, x).fresh()
        # m_k: x is NOT adjacent to me (I am one of {v_i, v_j}).
        non_adjacent = inner.message(
            NodeView(view.node, view.neighbors, view.n + 1, _EMPTY)
        )
        # m'_k: x IS adjacent to me.
        adjacent = inner.message(
            NodeView(view.node, view.neighbors | {x}, view.n + 1, _EMPTY)
        )
        return (view.node, non_adjacent, adjacent)

    def output(self, board: BoardView, n: int) -> LabeledGraph:
        x = n + 1
        inner = self.factory(n + 1, x).fresh()
        pairs: dict[int, tuple[Payload, Payload]] = {}
        for node, non_adjacent, adjacent in board:
            pairs[node] = (non_adjacent, adjacent)
        if set(pairs) != set(range(1, n + 1)):
            raise ValueError("incomplete reduction board")
        edges: list[Edge] = []
        for i in range(1, n + 1):
            for j in range(i + 1, n + 1):
                simulated = [
                    pairs[k][0] if k in (i, j) else pairs[k][1]
                    for k in range(1, n + 1)
                ]
                x_neighbors = frozenset(
                    v for v in range(1, n + 1) if v not in (i, j)
                )
                simulated.append(
                    inner.message(NodeView(x, x_neighbors, n + 1, _EMPTY))
                )
                mis = inner.output(BoardView(tuple(simulated)), n + 1)
                # {x, v_i, v_j} is the unique rooted MIS iff {v_i,v_j} ∉ E.
                if set(mis) != {x, i, j}:
                    edges.append((i, j))
        return LabeledGraph(n, edges)


class EobBfsToBuildScheme:
    """Theorem 8's compiler, as a fixed-order communication scheme.

    The claimed protocol ``A`` is SIMSYNC for EOB-BFS on ``(2n-1)``-node
    graphs.  Running ``A`` on every Figure 2 gadget ``G_i`` under the
    activation order ``(v_2, ..., v_{2n-1}, v_1)`` makes the messages of
    the base nodes ``v_2..v_n`` *independent of i* — their neighbourhoods
    and everything written before them coincide across all ``G_i``.
    Those ``n-1`` messages are therefore a code for the base graph:

    * :meth:`encode` — compute them by sequential simulation
      (``O(f(2n-1))`` bits per node: Lemma 3 then bounds the class);
    * :meth:`decode` — for each odd ``i``, extend the transcript with the
      auxiliary and root messages (computable without knowing the base
      graph), feed ``A``'s output function, and read ``N(v_i)`` off the
      third BFS layer.

    Parameters
    ----------
    protocol_factory:
        ``() -> Protocol``; the claimed SIMSYNC EOB-BFS protocol.  Its
        output must be a :class:`~repro.graphs.properties.BfsForest` on
        even-odd-bipartite inputs.
    """

    def __init__(self, protocol_factory: Callable[[], Protocol]) -> None:
        self.factory = protocol_factory

    # -- gadget structure helpers --------------------------------------
    @staticmethod
    def _aux_of(j: int, n: int) -> int:
        """The unique auxiliary neighbour of base node ``j`` in every
        ``G_i`` (independent of ``i``)."""
        return j + n - 2 if j % 2 == 1 else j + n

    @staticmethod
    def _aux_neighbors(a: int, n: int, i: int) -> frozenset[int]:
        """Neighbourhood of auxiliary node ``a`` in ``G_i`` given the
        base-independent wiring plus the ``v_1 ~ v_{i+n-2}`` edge."""
        neigh = set()
        j_odd = a - (n - 2)
        if 3 <= j_odd <= n and j_odd % 2 == 1:
            neigh.add(j_odd)
        j_even = a - n
        if 2 <= j_even <= n - 1 and j_even % 2 == 0:
            neigh.add(j_even)
        if a == i + n - 2:
            neigh.add(1)
        return frozenset(neigh)

    # -- scheme ---------------------------------------------------------
    def encode(self, base: LabeledGraph) -> tuple[Payload, ...]:
        """Messages of ``v_2..v_n`` under the fixed order (the code word).

        ``base`` must satisfy the Theorem 8 preconditions (labels
        ``2..n`` inside an odd-``n`` graph, even-odd-bipartite).
        """
        from .gadgets import eob_gadget_base_ok

        n = base.n
        if not eob_gadget_base_ok(base, n):
            raise ValueError("base violates the Theorem 8 preconditions")
        proto = self.factory().fresh()
        big_n = 2 * n - 1
        transcript: list[Payload] = []
        for j in range(2, n + 1):
            neighbors = frozenset(base.neighbors(j)) | {self._aux_of(j, n)}
            view = NodeView(j, neighbors, big_n, BoardView(tuple(transcript)))
            transcript.append(proto.message(view))
        return tuple(transcript)

    def _full_board(self, code: tuple[Payload, ...], n: int, i: int) -> BoardView:
        """Extend the code word to the complete fixed-order transcript of
        ``A`` on ``G_i`` (auxiliaries ``v_{n+1}..v_{2n-1}``, then ``v_1``)."""
        proto = self.factory().fresh()
        big_n = 2 * n - 1
        transcript = list(code)
        for a in range(n + 1, 2 * n):
            view = NodeView(
                a, self._aux_neighbors(a, n, i), big_n, BoardView(tuple(transcript))
            )
            transcript.append(proto.message(view))
        root_view = NodeView(
            1, frozenset({i + n - 2}), big_n, BoardView(tuple(transcript))
        )
        transcript.append(proto.message(root_view))
        return BoardView(tuple(transcript))

    def decode(self, code: tuple[Payload, ...], n: int) -> LabeledGraph:
        """Reconstruct the base graph from the code word."""
        proto = self.factory().fresh()
        big_n = 2 * n - 1
        edges: list[Edge] = []
        for i in range(3, n + 1, 2):
            forest = proto.output(self._full_board(code, n, i), big_n)
            if not isinstance(forest, BfsForest):
                raise ValueError(
                    f"claimed protocol returned {forest!r}, not a BFS forest"
                )
            for j in self._layer3_of_root1(forest):
                edges.append((min(i, j), max(i, j)))
        return LabeledGraph(n, sorted(set(edges)))

    @staticmethod
    def _layer3_of_root1(forest: BfsForest) -> list[int]:
        """Nodes at layer 3 of the tree rooted at ``v_1``."""
        out = []
        for v, l in forest.layer.items():
            if l != 3:
                continue
            # Walk to the root of v's tree.
            cur = v
            while forest.parent[cur] != ROOT:
                cur = forest.parent[cur]  # type: ignore[assignment]
            if cur == 1:
                out.append(v)
        return out

    def bits_per_node(self, base: LabeledGraph) -> int:
        """Largest encoded message in the code word — the quantity that
        Lemma 3 compares against ``log2`` of the class size."""
        return max(payload_bits(p) for p in self.encode(base))
