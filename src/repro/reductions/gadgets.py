"""Gadget constructions behind the paper's lower-bound reductions.

* :func:`triangle_gadget` — Figure 1 / Theorem 3: ``G'_{s,t}`` adds an
  apex adjacent to ``v_s`` and ``v_t``; for triangle-free (e.g.
  bipartite) ``G``, the gadget has a triangle iff ``{v_s, v_t} ∈ E``.
* :func:`mis_gadget` — Theorem 6: ``G^(x)_{i,j}`` adds ``x`` adjacent to
  everything except ``v_i, v_j``; the rooted MIS at ``x`` is
  ``{x, v_i, v_j}`` iff ``{v_i, v_j} ∉ E``.
* :func:`eob_gadget` — Figure 2 / Theorem 8: ``G_i`` wires auxiliary
  nodes so that the third BFS layer from ``v_1`` is exactly
  ``N_G(v_i)``.

Each builder validates its preconditions and ships with a
``*_property`` checker used by tests and the figure benchmarks to
confirm the construction's claimed behaviour on concrete inputs.
"""

from __future__ import annotations

from ..graphs.labeled_graph import LabeledGraph
from ..graphs.properties import (
    bfs_layers_from,
    has_triangle,
    is_even_odd_bipartite,
    is_maximal_independent_set,
)

__all__ = [
    "triangle_gadget",
    "triangle_gadget_property",
    "figure1_example",
    "mis_gadget",
    "mis_gadget_property",
    "eob_gadget",
    "eob_gadget_base_ok",
    "eob_gadget_property",
    "figure2_example",
]


# ----------------------------------------------------------------------
# Figure 1 — TRIANGLE reduction
# ----------------------------------------------------------------------

def triangle_gadget(graph: LabeledGraph, s: int, t: int) -> LabeledGraph:
    """``G'_{s,t}``: append node ``n+1`` adjacent to ``v_s`` and ``v_t``."""
    if s == t:
        raise ValueError("s and t must be distinct")
    return graph.add_node_with_edges((s, t))


def triangle_gadget_property(graph: LabeledGraph, s: int, t: int) -> bool:
    """Check: for triangle-free ``graph``, ``G'_{s,t}`` has a triangle
    iff ``{s, t}`` is an edge."""
    if has_triangle(graph):
        raise ValueError("the gadget equivalence assumes a triangle-free base")
    return has_triangle(triangle_gadget(graph, s, t)) == graph.has_edge(s, t)


def figure1_example() -> tuple[LabeledGraph, LabeledGraph]:
    """The paper's Figure 1 instance: a 7-node graph and ``G'_{2,7}``
    (node 8 added adjacent to 2 and 7)."""
    g = LabeledGraph(7, [(1, 2), (1, 4), (2, 3), (2, 7), (3, 6), (4, 5), (5, 6), (6, 7)])
    return g, triangle_gadget(g, 2, 7)


# ----------------------------------------------------------------------
# Theorem 6 — MIS reduction
# ----------------------------------------------------------------------

def mis_gadget(graph: LabeledGraph, i: int, j: int) -> LabeledGraph:
    """``G^(x)_{i,j}``: append ``x = n+1`` adjacent to all nodes except
    ``v_i`` and ``v_j``."""
    if i == j:
        raise ValueError("i and j must be distinct")
    others = [v for v in graph.nodes() if v not in (i, j)]
    return graph.add_node_with_edges(others)


def mis_gadget_property(graph: LabeledGraph, i: int, j: int) -> bool:
    """Check Theorem 6's dichotomy on a concrete instance:

    * ``{v_i, v_j} ∉ E``  =>  ``{x, v_i, v_j}`` is the *unique* maximal
      independent set containing ``x``;
    * ``{v_i, v_j} ∈ E``  =>  the maximal independent sets containing
      ``x`` are exactly ``{x, v_i}`` and ``{x, v_j}``.
    """
    gadget = mis_gadget(graph, i, j)
    x = gadget.n
    if graph.has_edge(i, j):
        expected = [{x, i}, {x, j}]
    else:
        expected = [{x, i, j}]
    for cand in expected:
        if not is_maximal_independent_set(gadget, cand):
            return False
    # No other maximal independent set may contain x: every node outside
    # {x, v_i, v_j} is adjacent to x, so candidates are subsets of that
    # triple and the enumeration above is exhaustive.
    non_expected = (
        [{x}, {x, i, j}] if graph.has_edge(i, j) else [{x}, {x, i}, {x, j}]
    )
    return all(not is_maximal_independent_set(gadget, c) for c in non_expected)


# ----------------------------------------------------------------------
# Figure 2 — EOB-BFS reduction
# ----------------------------------------------------------------------

def eob_gadget_base_ok(base: LabeledGraph, n: int) -> bool:
    """Preconditions of Theorem 8: ``base`` lives on labels ``{2..n}``
    inside an ``n``-node graph (node 1 isolated), ``n`` odd, and the
    base is even-odd-bipartite."""
    return (
        base.n == n
        and n % 2 == 1
        and base.degree(1) == 0
        and is_even_odd_bipartite(base)
    )


def eob_gadget(base: LabeledGraph, i: int) -> LabeledGraph:
    """``G_i`` (Figure 2): extend ``base`` (labels ``2..n``, node 1
    isolated, ``n`` odd) with auxiliary nodes ``v_{n+1}..v_{2n-1}``:

    * ``v_1 ~ v_{i+n-2}``,
    * ``v_j ~ v_{j+n-2}`` for every odd ``j``, ``3 <= j <= n``,
    * ``v_j ~ v_{j+n}`` for every even ``j``, ``2 <= j <= n-1``.

    The result is even-odd-bipartite, and the third BFS layer from
    ``v_1`` equals ``N_base(v_i)``.
    """
    n = base.n
    if not eob_gadget_base_ok(base, n):
        raise ValueError(
            "base must be an n-node even-odd-bipartite graph on labels 2..n "
            "with n odd and node 1 isolated"
        )
    if not (3 <= i <= n and i % 2 == 1):
        raise ValueError(f"i must be odd in 3..{n}, got {i}")
    edges = list(base.edges())
    edges.append((1, i + n - 2))
    for j in range(3, n + 1, 2):
        edges.append((j, j + n - 2))
    for j in range(2, n, 2):
        edges.append((j, j + n))
    return LabeledGraph(2 * n - 1, edges)


def eob_gadget_property(base: LabeledGraph, i: int) -> bool:
    """Check Figure 2's caption: ``j`` is in the third BFS layer from
    ``v_1`` in ``G_i`` iff ``{v_i, v_j}`` is a base edge — and ``G_i``
    is even-odd-bipartite."""
    gadget = eob_gadget(base, i)
    if not is_even_odd_bipartite(gadget):
        return False
    layers = bfs_layers_from(gadget, 1)
    layer3 = {v for v, l in layers.items() if l == 3}
    return layer3 == set(base.neighbors(i))


def figure2_example() -> tuple[LabeledGraph, LabeledGraph]:
    """The paper's Figure 2 instance: base on labels ``{2..7}`` inside
    ``n = 7`` and the gadget ``G_5`` (auxiliaries 8..13 plus root 1).

    The base edge set is chosen to match the figure's depicted graph:
    edges between the odd part {3, 5, 7} and the even part {2, 4, 6}.
    """
    base = LabeledGraph(7, [(2, 3), (2, 5), (3, 4), (4, 5), (5, 6), (6, 7)])
    return base, eob_gadget(base, 5)
