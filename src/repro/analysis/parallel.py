"""Deprecated shim: process-parallel verification sweeps.

This module predates the unified execution runtime; its hand-rolled
``ProcessPoolExecutor`` fan-out and report-merging loop now live in
:class:`repro.runtime.backends.ProcessPoolBackend` and
:meth:`repro.runtime.results.VerificationReport.merge`.
:func:`verify_protocol_parallel` remains as a thin wrapper so existing
callers keep working, but new code should pass a backend directly::

    from repro.analysis.verify import verify_protocol
    from repro.runtime import ProcessPoolBackend

    report = verify_protocol(..., backend=ProcessPoolBackend(jobs=4))

Requirements imposed by pickling are unchanged: the protocol, the
schedulers and the checker must be picklable — lambdas are not, so use
the callable classes in :mod:`repro.analysis.checkers` (or your own
module-level callables).  The serial path remains the default
everywhere; parallelism pays off once instances take hundreds of
milliseconds each (see ``benchmarks/bench_parallel.py`` for the
crossover measurement).
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence
from typing import Optional

from ..core.models import ModelSpec
from ..core.protocol import Protocol
from ..core.schedulers import Scheduler
from ..graphs.labeled_graph import LabeledGraph
from ..runtime.backends import ProcessPoolBackend
from .verify import Checker, VerificationReport, verify_protocol

__all__ = ["verify_protocol_parallel"]

warnings.warn(
    "repro.analysis.parallel is deprecated; use "
    "repro.runtime.ProcessPoolBackend with verify_protocol(..., backend=...) "
    "instead",
    DeprecationWarning,
    stacklevel=2,
)


def verify_protocol_parallel(
    protocol: Protocol,
    model: ModelSpec,
    instances: Sequence[LabeledGraph],
    checker: Checker,
    schedulers: Optional[Sequence[Scheduler]] = None,
    exhaustive_threshold: int = 5,
    allow_deadlock: bool = False,
    n_jobs: Optional[int] = None,
) -> VerificationReport:
    """Parallel counterpart of :func:`~repro.analysis.verify.verify_protocol`.

    Deprecated: equivalent to ``verify_protocol(..., backend=
    ProcessPoolBackend(jobs=n_jobs))``, which is the supported spelling.
    Semantics match the serial version exactly — asserted by the test
    suite, which runs both and compares reports field by field.
    """
    warnings.warn(
        "verify_protocol_parallel is deprecated; call verify_protocol with "
        "backend=repro.runtime.ProcessPoolBackend(jobs=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return verify_protocol(
        protocol,
        model,
        instances,
        checker,
        schedulers=schedulers,
        exhaustive_threshold=exhaustive_threshold,
        allow_deadlock=allow_deadlock,
        backend=ProcessPoolBackend(jobs=n_jobs, chunk_size=1),
    )
