"""Process-parallel verification sweeps.

Correctness sweeps are embarrassingly parallel across instances: each
(graph, protocol, adversary set) cell is independent.  For the pure-
Python simulator the GIL rules out threads, so this module fans the
instance list out to a :class:`~concurrent.futures.ProcessPoolExecutor`
and merges per-instance reports.

Requirements imposed by pickling: the protocol, the schedulers and the
checker must be picklable — lambdas are not, so use the callable classes
in :mod:`repro.analysis.checkers` (or your own module-level callables).

The serial path (:func:`repro.analysis.verify.verify_protocol`) remains
the default everywhere; parallelism pays off once instances take
hundreds of milliseconds each (see ``benchmarks/bench_parallel.py`` for
the crossover measurement).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from collections.abc import Sequence
from typing import Optional

from ..graphs.labeled_graph import LabeledGraph
from ..core.models import MODELS_BY_NAME, ModelSpec
from ..core.protocol import Protocol
from ..core.schedulers import Scheduler, default_portfolio
from .verify import Checker, VerificationReport, verify_protocol

__all__ = ["verify_protocol_parallel"]


def _verify_one(payload) -> VerificationReport:
    """Worker: verify a single instance (top-level for pickling)."""
    (protocol, model_name, graph, checker, schedulers,
     exhaustive_threshold, allow_deadlock) = payload
    return verify_protocol(
        protocol,
        MODELS_BY_NAME[model_name],
        [graph],
        checker,
        schedulers=schedulers,
        exhaustive_threshold=exhaustive_threshold,
        allow_deadlock=allow_deadlock,
    )


def verify_protocol_parallel(
    protocol: Protocol,
    model: ModelSpec,
    instances: Sequence[LabeledGraph],
    checker: Checker,
    schedulers: Optional[Sequence[Scheduler]] = None,
    exhaustive_threshold: int = 5,
    allow_deadlock: bool = False,
    n_jobs: Optional[int] = None,
) -> VerificationReport:
    """Parallel counterpart of :func:`~repro.analysis.verify.verify_protocol`.

    Splits ``instances`` across ``n_jobs`` worker processes (default:
    ``os.cpu_count()``) and merges the per-instance reports.  Semantics
    match the serial version exactly — asserted by the test suite, which
    runs both and compares reports field by field.
    """
    scheds = list(schedulers) if schedulers is not None else default_portfolio()
    payloads = [
        (protocol, model.name, g, checker, scheds, exhaustive_threshold,
         allow_deadlock)
        for g in instances
    ]
    merged = VerificationReport(protocol.name, model.name)
    if not payloads:
        return merged
    with ProcessPoolExecutor(max_workers=n_jobs) as pool:
        for report in pool.map(_verify_one, payloads):
            merged.instances += report.instances
            merged.executions += report.executions
            merged.exhaustive_instances += report.exhaustive_instances
            merged.failures.extend(report.failures)
            merged.max_message_bits = max(
                merged.max_message_bits, report.max_message_bits
            )
            for n, b in report.max_bits_by_n.items():
                merged.max_bits_by_n[n] = max(merged.max_bits_by_n.get(n, 0), b)
    return merged
