"""Analysis layer: verification harness, growth fits, table/figure regeneration."""

from .checkers import (
    BfsCanonical,
    BuildEqualsInput,
    ConnectivityCorrect,
    EobBfsCorrect,
    MisValid,
    SpanningForestCanonical,
    SquareCorrect,
    TriangleCorrect,
    TwoCliquesCorrect,
)
from .budgets import klogn_budget, linear_budget, logn_budget, polylog_budget
from .latex import escape_latex, lemma1_to_latex, table2_to_latex
from .figures import ascii_adjacency, render_figure1, render_figure2
from .sensitivity import SensitivityReport, analyze
from .message_stats import MessageStats, cost_by_core, cost_by_degree, message_stats
from .serialize import dumps_run, graph_from_dict, graph_to_dict, report_to_dict, run_to_dict
from .scaling import FitResult, fit_against, fit_klog, fit_log, is_sublinear
from .trace import activation_timeline, narrate
from .table2 import EmpiricalCell, Table2Result, generate_table2, render_table2
from .verify import Checker, Failure, VerificationReport, verify_protocol


def __getattr__(name):
    # Lazy: importing the deprecated parallel shim emits its
    # DeprecationWarning, which must hit shim users only — not everyone
    # who imports the analysis package.
    if name == "verify_protocol_parallel":
        from .parallel import verify_protocol_parallel

        return verify_protocol_parallel
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BfsCanonical",
    "BuildEqualsInput",
    "ConnectivityCorrect",
    "EobBfsCorrect",
    "MisValid",
    "SpanningForestCanonical",
    "SquareCorrect",
    "TriangleCorrect",
    "TwoCliquesCorrect",
    "verify_protocol_parallel",
    "klogn_budget",
    "linear_budget",
    "logn_budget",
    "polylog_budget",
    "escape_latex",
    "lemma1_to_latex",
    "table2_to_latex",
    "ascii_adjacency",
    "render_figure1",
    "render_figure2",
    "activation_timeline",
    "narrate",
    "dumps_run",
    "graph_from_dict",
    "graph_to_dict",
    "report_to_dict",
    "run_to_dict",
    "MessageStats",
    "cost_by_core",
    "cost_by_degree",
    "message_stats",
    "SensitivityReport",
    "analyze",
    "FitResult",
    "fit_against",
    "fit_klog",
    "fit_log",
    "is_sublinear",
    "EmpiricalCell",
    "Table2Result",
    "generate_table2",
    "render_table2",
    "Checker",
    "Failure",
    "VerificationReport",
    "verify_protocol",
]
