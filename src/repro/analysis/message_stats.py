"""Per-node message statistics and cost attribution.

Max message size tells you the protocol's ``f(n)``; the *distribution*
tells you who pays.  For Theorem 2, message cost is driven by degree
(the power sums grow with the neighbour count's magnitude); this module
computes per-run distributions and attributes cost to node properties —
degree and core number — powering the cost-attribution ablation
benchmark.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from ..graphs.degeneracy import core_numbers
from ..graphs.labeled_graph import LabeledGraph
from ..core.simulator import RunResult

__all__ = ["MessageStats", "message_stats", "cost_by_degree", "cost_by_core"]


@dataclass(frozen=True)
class MessageStats:
    """Summary of one run's per-message bit sizes."""

    count: int
    min_bits: int
    median_bits: float
    mean_bits: float
    max_bits: int
    total_bits: int

    @classmethod
    def from_sizes(cls, sizes: list[int]) -> "MessageStats":
        if not sizes:
            return cls(0, 0, 0.0, 0.0, 0, 0)
        return cls(
            count=len(sizes),
            min_bits=min(sizes),
            median_bits=float(statistics.median(sizes)),
            mean_bits=float(statistics.mean(sizes)),
            max_bits=max(sizes),
            total_bits=sum(sizes),
        )


def message_stats(result: RunResult) -> MessageStats:
    """Distribution of message sizes in one execution."""
    return MessageStats.from_sizes([e.bits for e in result.board.entries])


def cost_by_degree(result: RunResult, graph: LabeledGraph) -> dict[int, MessageStats]:
    """Message-size distribution grouped by the author's degree."""
    buckets: dict[int, list[int]] = {}
    for e in result.board.entries:
        buckets.setdefault(graph.degree(e.author), []).append(e.bits)
    return {d: MessageStats.from_sizes(sizes) for d, sizes in sorted(buckets.items())}


def cost_by_core(result: RunResult, graph: LabeledGraph) -> dict[int, MessageStats]:
    """Message-size distribution grouped by the author's core number.

    For Theorem 2's protocol the interesting observation is that cost
    tracks *degree*, not core number: a low-core node with many
    neighbours still pays for its large power sums, even though the
    pruning handles it early.
    """
    cores = core_numbers(graph)
    buckets: dict[int, list[int]] = {}
    for e in result.board.entries:
        buckets.setdefault(cores[e.author], []).append(e.bits)
    return {c: MessageStats.from_sizes(sizes) for c, sizes in sorted(buckets.items())}
