"""JSON-friendly serialization of runs, reports and graphs.

Downstream analysis (notebooks, pandas, dashboards) wants plain data,
not simulator objects.  This module flattens the main result types into
dictionaries of JSON-compatible primitives, and round-trips graphs
through their graph6 form so whole experiment outputs can be archived
and re-loaded.
"""

from __future__ import annotations

import json
from typing import Any

from ..graphs.codec import from_graph6, to_graph6
from ..graphs.labeled_graph import LabeledGraph
from ..core.simulator import RunResult
from .verify import VerificationReport

__all__ = [
    "run_to_dict",
    "report_to_dict",
    "graph_to_dict",
    "graph_from_dict",
    "dumps_run",
]


def graph_to_dict(graph: LabeledGraph) -> dict[str, Any]:
    """Graph as ``{"n": ..., "graph6": ...}`` (compact, lossless)."""
    return {"n": graph.n, "m": graph.m, "graph6": to_graph6(graph)}


def graph_from_dict(data: dict[str, Any]) -> LabeledGraph:
    """Inverse of :func:`graph_to_dict`."""
    g = from_graph6(data["graph6"])
    if g.n != data.get("n", g.n):
        raise ValueError("inconsistent serialized graph")
    return g


def _payload_to_jsonable(payload: Any) -> Any:
    if isinstance(payload, tuple):
        return ["tuple"] + [_payload_to_jsonable(p) for p in payload]
    return payload


def run_to_dict(result: RunResult) -> dict[str, Any]:
    """Flatten one execution to JSON-compatible data.

    The protocol *output* is stringified (it may be an arbitrary Python
    object); everything quantitative is preserved exactly.
    """
    return {
        "protocol": result.protocol_name,
        "model": result.model.name,
        "n": result.n,
        "success": result.success,
        "write_order": list(result.write_order),
        "activation_round": {str(k): v for k, v in result.activation_round.items()},
        "max_message_bits": result.max_message_bits,
        "total_bits": result.total_bits,
        "deadlocked_nodes": sorted(result.deadlocked_nodes),
        "output_repr": repr(result.output),
        "board": [
            {
                "index": e.index,
                "author": e.author,
                "bits": e.bits,
                "round": e.round_written,
                "payload": _payload_to_jsonable(e.payload),
            }
            for e in result.board.entries
        ],
    }


def report_to_dict(report: VerificationReport) -> dict[str, Any]:
    """Flatten a verification report (failures summarized, graphs as
    graph6)."""
    return {
        "protocol": report.protocol_name,
        "model": report.model_name,
        "instances": report.instances,
        "executions": report.executions,
        "exhaustive_instances": report.exhaustive_instances,
        "ok": report.ok,
        "max_message_bits": report.max_message_bits,
        "max_bits_by_n": {str(k): v for k, v in report.max_bits_by_n.items()},
        "failures": [
            {
                "kind": f.kind,
                "graph": graph_to_dict(f.graph),
                "schedule": list(f.schedule),
                "output_repr": repr(f.output),
            }
            for f in report.failures
        ],
        "witnesses": [
            {
                "strategy": w.strategy,
                "graph": graph_to_dict(w.graph),
                "model": w.model_name,
                "schedule": list(w.schedule),
                "bits": w.bits,
                "deadlock": w.deadlock,
            }
            for w in report.witnesses
        ],
    }


def dumps_run(result: RunResult, **kwargs: Any) -> str:
    """``json.dumps`` of :func:`run_to_dict` (kwargs forwarded)."""
    return json.dumps(run_to_dict(result), **kwargs)
