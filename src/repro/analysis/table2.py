"""Regenerate Table 2 — the paper's classification of problems × models.

Every cell is *recomputed*, not transcribed:

* ``yes`` cells run the corresponding protocol (lifted along Lemma 4
  where needed) over a workload of graph instances under the adversary
  portfolio — exhaustively over all schedules for the smallest
  instances — and report measured correctness plus maximum message bits;
* ``no`` cells execute the paper's reduction on concrete inputs
  (transformer/scheme round-trip) and evaluate Lemma 3's counting
  inequality that the reduction feeds;
* ``open``/``yes*`` cells report the paper's status together with the
  empirical evidence this repo can add (e.g. deadlock measurements for
  BFS in ASYNC, bounded-degeneracy TRIANGLE runs for the ``yes*``
  cells).

``render_table2`` produces the ASCII table the benchmark prints next to
the paper's original for side-by-side comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graphs import generators as gen
from ..graphs.labeled_graph import LabeledGraph
from ..graphs.degeneracy import is_k_degenerate
from ..graphs.properties import (
    canonical_bfs_forest,
    has_triangle,
    is_even_odd_bipartite,
    is_rooted_mis,
)
from ..core.models import ALL_MODELS, ASYNC, SIMASYNC, SIMSYNC, SYNC, ModelSpec
from ..core.schedulers import default_portfolio
from ..core.simulator import run
from ..hierarchy.adapters import lift
from ..hierarchy.lattice import TABLE2_ROWS
from ..protocols.bfs import BipartiteBfsAsyncProtocol, EobBfsProtocol, SyncBfsProtocol
from ..protocols.build import DegenerateBuildProtocol
from ..protocols.mis import RootedMisProtocol
from ..protocols.naive import (
    NOT_EOB,
    NaiveEobBfsProtocol,
    NaiveMisProtocol,
    NaiveTriangleProtocol,
)
from ..protocols.triangle import DegenerateTriangleProtocol
from ..reductions.counting import (
    log2_all_graphs,
    log2_bipartite_fixed_parts,
    log2_even_odd_bipartite,
    min_message_bits_for_build,
)
from ..reductions.transformers import (
    EobBfsToBuildScheme,
    MisToBuildProtocol,
    TriangleToBuildProtocol,
)
from .verify import VerificationReport, verify_protocol

__all__ = ["EmpiricalCell", "Table2Result", "generate_table2", "render_table2"]

_K = 2  # degeneracy bound for the BUILD / TRIANGLE workloads


@dataclass
class EmpiricalCell:
    """One regenerated cell."""

    status: str
    ok: bool
    evidence: list[str] = field(default_factory=list)
    max_message_bits: int = 0


@dataclass
class Table2Result:
    """All regenerated cells plus the paper's claims for comparison."""

    cells: dict[tuple[str, str], EmpiricalCell]

    def cell(self, problem: str, model: ModelSpec | str) -> EmpiricalCell:
        name = model if isinstance(model, str) else model.name
        return self.cells[(problem, name)]

    @property
    def all_ok(self) -> bool:
        return all(c.ok for c in self.cells.values())

    def matches_paper(self) -> bool:
        for row in TABLE2_ROWS:
            for model in ALL_MODELS:
                ours = self.cell(row.key, model).status
                theirs = row.cell(model).status
                if ours != theirs:
                    return False
        return True


def _sizes(quick: bool) -> tuple[list[int], int]:
    """(portfolio sizes, exhaustive threshold)."""
    return ([8, 12, 16] if quick else [8, 12, 16, 24, 32], 5)


def _verified_cell(report: VerificationReport, note: str) -> EmpiricalCell:
    status = "yes" if report.ok else "FAILED"
    return EmpiricalCell(
        status=status,
        ok=report.ok,
        evidence=[note, report.summary()],
        max_message_bits=report.max_message_bits,
    )


def _build_instances(quick: bool, seed: int) -> list[LabeledGraph]:
    sizes, _ = _sizes(quick)
    out: list[LabeledGraph] = [gen.random_graph(4, 0.5, seed), gen.path_graph(5)]
    for i, n in enumerate(sizes):
        out.append(gen.random_k_degenerate(n, _K, seed=seed + i))
    return out


def _mis_instances(quick: bool, seed: int) -> list[LabeledGraph]:
    sizes, _ = _sizes(quick)
    out: list[LabeledGraph] = [gen.random_graph(5, 0.5, seed + 50)]
    for i, n in enumerate(sizes):
        out.append(gen.random_connected_graph(n, 0.3, seed=seed + i))
    return out


def _eob_instances(quick: bool, seed: int) -> list[LabeledGraph]:
    sizes, _ = _sizes(quick)
    out: list[LabeledGraph] = [gen.random_even_odd_bipartite(5, 0.6, seed)]
    for i, n in enumerate(sizes):
        out.append(gen.random_even_odd_bipartite(n, 0.35, seed=seed + i))
    # One invalid instance: the negative answer must also be exercised.
    out.append(LabeledGraph(6, [(1, 3), (2, 3), (4, 5), (5, 6)]))
    return out


def _bfs_instances(quick: bool, seed: int) -> list[LabeledGraph]:
    sizes, _ = _sizes(quick)
    out: list[LabeledGraph] = [gen.random_graph(5, 0.4, seed + 9)]
    for i, n in enumerate(sizes):
        out.append(gen.random_graph(n, 0.25, seed=seed + i))
    out.append(gen.petersen_graph())
    out.append(LabeledGraph(7, [(1, 2), (2, 3), (3, 1), (5, 6), (6, 7)]))
    return out


def _reduction_cell_triangle(seed: int) -> EmpiricalCell:
    """TRIANGLE ∉ SIMASYNC[o(n)] — execute Theorem 3 on real inputs."""
    evidence = []
    ok = True
    transformer = TriangleToBuildProtocol(lambda n: NaiveTriangleProtocol())
    for i, (a, b) in enumerate([(3, 3), (4, 4)]):
        g = gen.random_bipartite(a, b, 0.5, seed=seed + i)
        result = run(g, transformer, SIMASYNC, default_portfolio()[i % 4])
        good = result.success and result.output == g
        ok &= good
        evidence.append(
            f"Theorem 3 transformer rebuilt K({a},{b})-random bipartite graph: "
            f"{'ok' if good else 'FAILED'}"
        )
    n = 64
    need = min_message_bits_for_build(log2_bipartite_fixed_parts(n), n)
    evidence.append(
        f"Lemma 3: BUILD on fixed-part bipartite graphs (n={n}) needs "
        f">= {need:.1f} bits/message = Ω(n); any o(n) TRIANGLE protocol "
        f"would beat it via the transformer"
    )
    return EmpiricalCell("no", ok, evidence)


def _reduction_cell_mis(seed: int) -> EmpiricalCell:
    """MIS ∉ SIMASYNC[o(n)] — execute Theorem 6 on real inputs."""
    evidence = []
    ok = True
    transformer = MisToBuildProtocol(lambda n, root: NaiveMisProtocol(root))
    for i, n in enumerate([6, 7]):
        g = gen.random_graph(n, 0.5, seed=seed + 20 + i)
        result = run(g, transformer, SIMASYNC, default_portfolio()[i % 4])
        good = result.success and result.output == g
        ok &= good
        evidence.append(
            f"Theorem 6 transformer rebuilt a random graph on {n} nodes: "
            f"{'ok' if good else 'FAILED'}"
        )
    n = 64
    need = min_message_bits_for_build(log2_all_graphs(n), n)
    evidence.append(
        f"Lemma 3: BUILD on all graphs (n={n}) needs >= {need:.1f} "
        f"bits/message = Ω(n)"
    )
    return EmpiricalCell("no", ok, evidence)


def _reduction_cell_eob(seed: int, simasync: bool) -> EmpiricalCell:
    """EOB-BFS ∉ SIMSYNC[o(n)] (and a fortiori SIMASYNC) — Theorem 8."""
    evidence = []
    ok = True
    scheme = EobBfsToBuildScheme(lambda: NaiveEobBfsProtocol())
    for i, n in enumerate([7, 9]):
        base = _random_theorem8_base(n, seed + i)
        code = scheme.encode(base)
        good = scheme.decode(code, n) == base
        ok &= good
        evidence.append(
            f"Theorem 8 scheme round-tripped an EOB base on labels 2..{n}: "
            f"{'ok' if good else 'FAILED'}"
        )
    n = 64
    need = min_message_bits_for_build(log2_even_odd_bipartite(n), n)
    evidence.append(
        f"Lemma 3: BUILD on even-odd-bipartite graphs (n={n}) needs "
        f">= {need:.1f} bits/message = Ω(n)"
    )
    if simasync:
        evidence.append("SIMASYNC cell follows from the SIMSYNC 'no' by Lemma 4")
    return EmpiricalCell("no", ok, evidence)


def _random_theorem8_base(n: int, seed: int) -> LabeledGraph:
    """A random Theorem 8 base: odd ``n``, node 1 isolated, EOB on 2..n."""
    import random as _random

    rng = _random.Random(seed)
    edges = [
        (u, v)
        for u in range(2, n + 1)
        for v in range(u + 1, n + 1)
        if (u - v) % 2 == 1 and rng.random() < 0.5
    ]
    return LabeledGraph(n, edges)


def _open_cell_bfs(model: ModelSpec, seed: int) -> EmpiricalCell:
    """The BFS '?' cells, annotated with this repo's deadlock evidence."""
    evidence = [f"paper marks BFS in {model.name} as open"]
    if model == ASYNC:
        deadlocks = 0
        trials = 0
        proto = BipartiteBfsAsyncProtocol()
        for i in range(4):
            g = gen.random_connected_graph(9, 0.35, seed=seed + i)
            for sched in default_portfolio((0, 1)):
                trials += 1
                if not run(g, proto, ASYNC, sched).success:
                    deadlocks += 1
        evidence.append(
            f"Corollary 4 protocol on non-bipartite inputs: "
            f"{deadlocks}/{trials} runs deadlocked (Open Problem 3 evidence)"
        )
    return EmpiricalCell("open", True, evidence)


def generate_table2(quick: bool = True, seed: int = 0) -> Table2Result:
    """Recompute every cell of Table 2.  ``quick`` trims workload sizes
    (used by tests); the benchmark runs the full version."""
    _, exhaustive = _sizes(quick)
    scheds = default_portfolio((0, 1, 2))
    cells: dict[tuple[str, str], EmpiricalCell] = {}

    # --- BUILD on degeneracy-<=k graphs: yes in all four models -------
    build_instances = [
        g for g in _build_instances(quick, seed) if is_k_degenerate(g, _K)
    ]
    build = DegenerateBuildProtocol(_K)
    for model in ALL_MODELS:
        report = verify_protocol(
            lift(build, model), model, build_instances,
            lambda g, out, r: out == g,
            schedulers=scheds, exhaustive_threshold=exhaustive,
        )
        cells[("BUILD k-degenerate", model.name)] = _verified_cell(
            report, f"Theorem 2 protocol (k={_K}) under {model.name}"
        )

    # --- rooted MIS ----------------------------------------------------
    cells[("rooted MIS", "SIMASYNC")] = _reduction_cell_mis(seed)
    for model in (SIMSYNC, ASYNC, SYNC):
        reports = []
        for g in _mis_instances(quick, seed):
            root = 1 + (seed % g.n)
            proto = lift(RootedMisProtocol(root), model)
            reports.append(
                verify_protocol(
                    proto, model, [g],
                    lambda gg, out, r, _root=root: is_rooted_mis(gg, out, _root),
                    schedulers=scheds, exhaustive_threshold=exhaustive,
                )
            )
        merged = _merge_reports(reports)
        cells[("rooted MIS", model.name)] = _verified_cell(
            merged, f"Theorem 5 greedy protocol under {model.name}"
        )

    # --- TRIANGLE --------------------------------------------------------
    cells[("TRIANGLE", "SIMASYNC")] = _reduction_cell_triangle(seed)
    tri_instances = [
        g for g in _build_instances(quick, seed + 100) if is_k_degenerate(g, _K)
    ]
    tri = DegenerateTriangleProtocol(_K)
    for model in (SIMSYNC, ASYNC, SYNC):
        report = verify_protocol(
            lift(tri, model), model, tri_instances,
            lambda g, out, r: out == (1 if has_triangle(g) else 0),
            schedulers=scheds, exhaustive_threshold=exhaustive,
        )
        cell = _verified_cell(
            report,
            "paper claims the cell without a protocol; verified here on "
            f"degeneracy-<={_K} inputs via Theorem 2",
        )
        cell.status = "yes*" if report.ok else "FAILED"
        cells[("TRIANGLE", model.name)] = cell

    # --- EOB-BFS ---------------------------------------------------------
    cells[("EOB-BFS", "SIMASYNC")] = _reduction_cell_eob(seed, simasync=True)
    cells[("EOB-BFS", "SIMSYNC")] = _reduction_cell_eob(seed, simasync=False)

    def eob_checker(g, out, r):
        if not is_even_odd_bipartite(g):
            return out == NOT_EOB
        return out == canonical_bfs_forest(g)

    eob_instances = _eob_instances(quick, seed)
    for model in (ASYNC, SYNC):
        report = verify_protocol(
            lift(EobBfsProtocol(), model), model, eob_instances, eob_checker,
            schedulers=scheds, exhaustive_threshold=exhaustive,
        )
        cells[("EOB-BFS", model.name)] = _verified_cell(
            report, f"Theorem 7 layer-certificate protocol under {model.name}"
        )

    # --- BFS ---------------------------------------------------------------
    for model in (SIMASYNC, SIMSYNC, ASYNC):
        cells[("BFS", model.name)] = _open_cell_bfs(model, seed)
    report = verify_protocol(
        SyncBfsProtocol(), SYNC, _bfs_instances(quick, seed),
        lambda g, out, r: out == canonical_bfs_forest(g),
        schedulers=scheds, exhaustive_threshold=exhaustive,
    )
    cells[("BFS", "SYNC")] = _verified_cell(
        report, "Theorem 10 d0-corrected certificates under SYNC"
    )

    return Table2Result(cells)


def _merge_reports(reports: list[VerificationReport]) -> VerificationReport:
    merged = VerificationReport(reports[0].protocol_name, reports[0].model_name)
    for r in reports:
        merged.instances += r.instances
        merged.executions += r.executions
        merged.exhaustive_instances += r.exhaustive_instances
        merged.failures.extend(r.failures)
        merged.max_message_bits = max(merged.max_message_bits, r.max_message_bits)
        for n, b in r.max_bits_by_n.items():
            merged.max_bits_by_n[n] = max(merged.max_bits_by_n.get(n, 0), b)
    return merged


def render_table2(result: Table2Result) -> str:
    """ASCII rendering mirroring the paper's Table 2, with the paper's
    claims alongside the regenerated statuses."""
    headers = ["problem"] + [m.name for m in ALL_MODELS]
    lines = []
    widths = [24, 14, 14, 14, 14]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in TABLE2_ROWS:
        cols = [row.key.ljust(widths[0])]
        for i, model in enumerate(ALL_MODELS):
            ours = result.cell(row.key, model).status
            theirs = row.cell(model).status
            mark = ours if ours == theirs else f"{ours}(paper:{theirs})"
            cols.append(mark.ljust(widths[i + 1]))
        lines.append(" | ".join(cols))
    lines.append("")
    lines.append("paper Table 2 (for reference): yes cells use O(log n) bits, "
                 "no cells exclude every o(n)-bit protocol, ? is open")
    return "\n".join(lines)
