"""Growth-law fitting for measured message sizes.

The paper's quantitative claims are asymptotic: message size
``O(log n)`` for the Section 5/6 protocols, ``O(k^2 log n)`` for
Theorem 2 (Lemma 1), ``f(n) + O(log n)`` for Theorem 9.  The benchmarks
measure exact bit sizes with :mod:`repro.encoding.bits`; this module
fits the measurements against the claimed laws (ordinary least squares
on the design matrix ``[basis(n), 1]``) and reports the coefficient,
intercept and ``R^2`` so EXPERIMENTS.md can state *measured vs claimed*
precisely.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["FitResult", "fit_against", "fit_log", "fit_klog", "is_sublinear"]


@dataclass(frozen=True)
class FitResult:
    """Least-squares fit of ``y ≈ slope * basis(x) + intercept``."""

    slope: float
    intercept: float
    r_squared: float
    basis_name: str

    def predict(self, basis_value: float) -> float:
        return self.slope * basis_value + self.intercept

    def __str__(self) -> str:
        return (
            f"y = {self.slope:.3f}·{self.basis_name} + {self.intercept:.2f} "
            f"(R² = {self.r_squared:.4f})"
        )


def fit_against(
    xs: Sequence[float],
    ys: Sequence[float],
    basis: Callable[[float], float],
    basis_name: str = "b(n)",
) -> FitResult:
    """OLS fit of ``ys`` against ``basis(xs)`` with intercept."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs of equal length")
    bx = np.array([basis(x) for x in xs], dtype=float)
    y = np.array(ys, dtype=float)
    design = np.column_stack([bx, np.ones_like(bx)])
    coef, *_ = np.linalg.lstsq(design, y, rcond=None)
    slope, intercept = float(coef[0]), float(coef[1])
    pred = design @ coef
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return FitResult(slope, intercept, r2, basis_name)


def fit_log(ns: Sequence[int], bits: Sequence[int]) -> FitResult:
    """Fit measured bits against ``log2 n`` (the O(log n) protocols)."""
    return fit_against(ns, bits, lambda n: math.log2(n), "log2(n)")


def fit_klog(ks: Sequence[int], bits: Sequence[int], n: int) -> FitResult:
    """Fit measured bits against ``k^2 log2 n`` at fixed ``n`` (Lemma 1)."""
    return fit_against(ks, bits, lambda k: k * k * math.log2(n), f"k²·log2({n})")


def is_sublinear(ns: Sequence[int], bits: Sequence[int], slack: float = 0.5) -> bool:
    """Sanity predicate: measured sizes grow strictly slower than ``n``.

    Compares the bits/n ratio at the largest and smallest measured
    sizes; a truly ``Θ(n)`` curve keeps the ratio constant, an
    ``O(log n)`` one drives it down.  ``slack`` is the required decay
    factor.
    """
    pairs = sorted(zip(ns, bits))
    (n0, b0), (n1, b1) = pairs[0], pairs[-1]
    if n1 <= n0:
        raise ValueError("need a non-trivial range of n")
    return (b1 / n1) <= slack * (b0 / n0) + 1e-9
