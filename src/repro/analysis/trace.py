"""Human-readable execution narration.

Turns a :class:`~repro.core.simulator.RunResult` into a round-by-round
story: who activated when, who the adversary picked, what was written
and how many bits it cost, and how the run ended (successful or
corrupted configuration).  Used by ``python -m repro demo --trace`` and
by the examples; handy when developing new protocols against the
Section 2 semantics.
"""

from __future__ import annotations

from ..core.simulator import RunResult

__all__ = ["narrate", "activation_timeline"]


def activation_timeline(result: RunResult) -> dict[int, list[int]]:
    """Map write-event index -> nodes that activated at that event
    (0 = the initial activation round)."""
    timeline: dict[int, list[int]] = {}
    for node, event in sorted(result.activation_round.items()):
        timeline.setdefault(event, []).append(node)
    return timeline


def narrate(result: RunResult, max_payload_chars: int = 60) -> str:
    """Render a full execution transcript."""
    lines = [
        f"execution of {result.protocol_name!r} under {result.model.name} "
        f"on {result.n} nodes",
        "",
    ]
    timeline = activation_timeline(result)
    if 0 in timeline:
        mode = "all nodes" if result.model.simultaneous else "nodes"
        lines.append(f"round 0: {mode} {timeline[0]} become active"
                     + (" (messages frozen)" if result.model.asynchronous else ""))
    for entry in result.board.entries:
        payload = repr(entry.payload)
        if len(payload) > max_payload_chars:
            payload = payload[: max_payload_chars - 3] + "..."
        lines.append(
            f"round {entry.round_written}: adversary picks node "
            f"{entry.author}; it writes {payload} [{entry.bits} bits]"
        )
        woken = timeline.get(entry.round_written, [])
        woken = [w for w in woken if w != entry.author]
        if woken:
            frozen = " (messages frozen)" if result.model.asynchronous else ""
            lines.append(f"         -> nodes {woken} become active{frozen}")
    lines.append("")
    if result.success:
        lines.append(
            f"successful configuration: all {result.n} nodes terminated; "
            f"board holds {result.total_bits} bits "
            f"(max message {result.max_message_bits})"
        )
        lines.append(f"output: {result.output!r}")
    else:
        starved = sorted(result.deadlocked_nodes)
        lines.append(
            f"CORRUPTED configuration: nodes {starved} never became "
            f"active-and-written (deadlock); no output"
        )
    return "\n".join(lines)
