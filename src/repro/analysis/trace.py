"""Human-readable execution narration.

Turns a :class:`~repro.core.simulator.RunResult` into a round-by-round
story: who activated when, who the adversary picked, what was written
and how many bits it cost, and how the run ended (successful or
corrupted configuration).  Used by ``python -m repro demo --trace`` and
by the examples; handy when developing new protocols against the
Section 2 semantics.

:func:`narrate_witness` extends the same narration to the worst-case
witness schedules that stress sweeps record
(:class:`~repro.runtime.results.WitnessRecord`): the schedule is
replayed through the step machine and rendered with a header naming the
strategy that found it — so "the adversary can force 23-bit messages"
is always backed by a transcript anyone can read.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.execution import replay_schedule
from ..core.models import MODELS_BY_NAME
from ..core.protocol import Protocol
from ..core.simulator import RunResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.results import WitnessRecord

__all__ = ["narrate", "narrate_witness", "activation_timeline"]


def activation_timeline(result: RunResult) -> dict[int, list[int]]:
    """Map write-event index -> nodes that activated at that event
    (0 = the initial activation round)."""
    timeline: dict[int, list[int]] = {}
    for node, event in sorted(result.activation_round.items()):
        timeline.setdefault(event, []).append(node)
    return timeline


def narrate(result: RunResult, max_payload_chars: int = 60) -> str:
    """Render a full execution transcript."""
    lines = [
        f"execution of {result.protocol_name!r} under {result.model.name} "
        f"on {result.n} nodes",
        "",
    ]
    timeline = activation_timeline(result)
    if 0 in timeline:
        mode = "all nodes" if result.model.simultaneous else "nodes"
        lines.append(f"round 0: {mode} {timeline[0]} become active"
                     + (" (messages frozen)" if result.model.asynchronous else ""))
    for entry in result.board.entries:
        payload = repr(entry.payload)
        if len(payload) > max_payload_chars:
            payload = payload[: max_payload_chars - 3] + "..."
        lines.append(
            f"round {entry.round_written}: adversary picks node "
            f"{entry.author}; it writes {payload} [{entry.bits} bits]"
        )
        woken = timeline.get(entry.round_written, [])
        woken = [w for w in woken if w != entry.author]
        if woken:
            frozen = " (messages frozen)" if result.model.asynchronous else ""
            lines.append(f"         -> nodes {woken} become active{frozen}")
    lines.append("")
    if result.success:
        lines.append(
            f"successful configuration: all {result.n} nodes terminated; "
            f"board holds {result.total_bits} bits "
            f"(max message {result.max_message_bits})"
        )
        lines.append(f"output: {result.output!r}")
    else:
        starved = sorted(result.deadlocked_nodes)
        lines.append(
            f"CORRUPTED configuration: nodes {starved} never became "
            f"active-and-written (deadlock); no output"
        )
    return "\n".join(lines)


def narrate_witness(
    witness: "WitnessRecord",
    protocol: Protocol,
    bit_budget: Optional[int] = None,
    max_payload_chars: int = 60,
) -> str:
    """Replay a stress-sweep witness schedule and narrate the transcript.

    ``protocol`` must be the protocol the witness was recorded against
    (reports are per-protocol, so the caller always has it); the model
    and instance travel inside the record.  The replayed accounting is
    cross-checked against the record — a mismatch raises
    :class:`ValueError`, since a witness that does not reproduce is a
    bug, not a rendering concern.
    """
    model = MODELS_BY_NAME[witness.model_name]
    result = replay_schedule(
        witness.graph, protocol, model, witness.schedule, bit_budget
    )
    if (result.max_message_bits, result.corrupted) != (
            witness.bits, witness.deadlock):
        raise ValueError(
            f"witness does not reproduce: recorded ({witness.bits} bits, "
            f"deadlock={witness.deadlock}), replayed "
            f"({result.max_message_bits} bits, deadlock={result.corrupted})"
        )
    outcome = ("deadlock" if witness.deadlock
               else f"max message {witness.bits} bits")
    header = (
        f"worst witness found by {witness.strategy!r} on n={witness.graph.n} "
        f"under {witness.model_name}: {outcome}\n"
        f"schedule: {witness.schedule}\n"
    )
    minimal = witness.minimal_schedule
    if minimal is not None:
        from ..adversaries.base import schedule_forces

        if not schedule_forces(witness.graph, protocol, model, minimal,
                               bits=witness.bits, deadlock=witness.deadlock,
                               bit_budget=bit_budget):
            raise ValueError(
                f"minimal schedule {minimal} does not force the recorded "
                f"badness ({witness.bits} bits, deadlock={witness.deadlock})"
            )
    if minimal is not None and minimal != witness.schedule:
        kind = ("minimal deadlocking schedule" if witness.deadlock
                else "minimal forcing prefix")
        header += (
            f"{kind}: {minimal} "
            f"({len(minimal)} of {len(witness.schedule)} events)\n"
        )
    return header + narrate(result, max_payload_chars=max_payload_chars)
