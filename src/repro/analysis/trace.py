"""Human-readable execution narration.

Turns a :class:`~repro.core.simulator.RunResult` into a round-by-round
story: who activated when, who the adversary picked, what was written
and how many bits it cost, and how the run ended (successful or
corrupted configuration).  Used by ``python -m repro demo --trace`` and
by the examples; handy when developing new protocols against the
Section 2 semantics.

:func:`narrate_witness` extends the same narration to the worst-case
witness schedules that stress sweeps record
(:class:`~repro.runtime.results.WitnessRecord`): the schedule is
replayed through the step machine and rendered with a header naming the
strategy that found it — so "the adversary can force 23-bit messages"
is always backed by a transcript anyone can read.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.execution import replay_schedule
from ..core.models import MODELS_BY_NAME
from ..faults.spec import decode_choice
from ..core.protocol import Protocol
from ..core.simulator import RunResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.results import WitnessRecord

__all__ = ["narrate", "narrate_witness", "activation_timeline"]


def activation_timeline(result: RunResult) -> dict[int, list[int]]:
    """Map write-event index -> nodes that activated at that event
    (0 = the initial activation round)."""
    timeline: dict[int, list[int]] = {}
    for node, event in sorted(result.activation_round.items()):
        timeline.setdefault(event, []).append(node)
    return timeline


def narrate(result: RunResult, max_payload_chars: int = 60) -> str:
    """Render a full execution transcript."""
    lines = [
        f"execution of {result.protocol_name!r} under {result.model.name} "
        f"on {result.n} nodes",
        "",
    ]
    timeline = activation_timeline(result)
    if 0 in timeline:
        mode = "all nodes" if result.model.simultaneous else "nodes"
        lines.append(f"round 0: {mode} {timeline[0]} become active"
                     + (" (messages frozen)" if result.model.asynchronous else ""))
    if any(choice < 0 for choice in result.schedule):
        lines.extend(_faulted_event_lines(result, timeline,
                                          max_payload_chars))
    else:
        for entry in result.board.entries:
            payload = _format_payload(entry.payload, max_payload_chars)
            lines.append(
                f"round {entry.round_written}: adversary picks node "
                f"{entry.author}; it writes {payload} [{entry.bits} bits]"
            )
            lines.extend(_woken_lines(result, timeline, entry.round_written,
                                      entry.author))
    lines.append("")
    if result.success:
        lines.append(
            f"successful configuration: all {result.n} nodes terminated; "
            f"board holds {result.total_bits} bits "
            f"(max message {result.max_message_bits})"
        )
        if result.crashed:
            lines.append(
                f"crashed nodes (adversary fault events): "
                f"{sorted(result.crashed)}"
            )
        if result.output_error is not None:
            lines.append(f"output: DECODE FAILURE ({result.output_error})")
        else:
            lines.append(f"output: {result.output!r}")
    else:
        starved = sorted(result.deadlocked_nodes)
        lines.append(
            f"CORRUPTED configuration: nodes {starved} never became "
            f"active-and-written (deadlock); no output"
        )
        if result.crashed:
            lines.append(
                f"crashed nodes (adversary fault events): "
                f"{sorted(result.crashed)}"
            )
    return "\n".join(lines)


def _format_payload(payload, max_payload_chars: int) -> str:
    text = repr(payload)
    if len(text) > max_payload_chars:
        text = text[: max_payload_chars - 3] + "..."
    return text


def _woken_lines(result: RunResult, timeline: dict[int, list[int]],
                 event: int, author: Optional[int]) -> list[str]:
    woken = timeline.get(event, [])
    woken = [w for w in woken if w != author]
    if not woken:
        return []
    frozen = " (messages frozen)" if result.model.asynchronous else ""
    return [f"         -> nodes {woken} become active{frozen}"]


def _faulted_event_lines(result: RunResult, timeline: dict[int, list[int]],
                         max_payload_chars: int) -> list[str]:
    """Event lines for a schedule that contains fault events.

    The board alone no longer tells the whole story (crashes and losses
    leave no entry; a duplication leaves two), so this walks the
    schedule with a board-entry cursor, keeping the 1-based event
    counter aligned with ``entry.round_written``.
    """
    lines: list[str] = []
    entries = result.board.entries
    cursor = 0
    for event, choice in enumerate(result.schedule, start=1):
        kind, node = decode_choice(choice, result.n)
        if kind == "write":
            entry = entries[cursor]
            cursor += 1
            payload = _format_payload(entry.payload, max_payload_chars)
            lines.append(
                f"round {event}: adversary picks node "
                f"{entry.author}; it writes {payload} [{entry.bits} bits]"
            )
            lines.extend(_woken_lines(result, timeline, event, entry.author))
        elif kind == "dup":
            entry = entries[cursor]
            cursor += 2
            payload = _format_payload(entry.payload, max_payload_chars)
            lines.append(
                f"round {event}: FAULT -- node {node}'s write is applied "
                f"twice; it writes {payload} [{entry.bits} bits x2]"
            )
            lines.extend(_woken_lines(result, timeline, event, node))
        elif kind == "crash":
            discarded = (" and its frozen message is discarded"
                         if result.model.asynchronous else "")
            lines.append(
                f"round {event}: FAULT -- node {node} crashes "
                f"(crash-stop); it never writes{discarded}"
            )
        else:  # loss
            lines.append(
                f"round {event}: FAULT -- node {node} writes, but the "
                f"message is lost; the board is unchanged"
            )
    return lines


def narrate_witness(
    witness: "WitnessRecord",
    protocol: Protocol,
    bit_budget: Optional[int] = None,
    max_payload_chars: int = 60,
) -> str:
    """Replay a stress-sweep witness schedule and narrate the transcript.

    ``protocol`` must be the protocol the witness was recorded against
    (reports are per-protocol, so the caller always has it); the model
    and instance travel inside the record.  The replayed accounting is
    cross-checked against the record — a mismatch raises
    :class:`ValueError`, since a witness that does not reproduce is a
    bug, not a rendering concern.
    """
    model = MODELS_BY_NAME[witness.model_name]
    faults = getattr(witness, "faults", None)
    result = replay_schedule(
        witness.graph, protocol, model, witness.schedule, bit_budget,
        faults=faults,
    )
    if (result.max_message_bits, result.corrupted) != (
            witness.bits, witness.deadlock):
        raise ValueError(
            f"witness does not reproduce: recorded ({witness.bits} bits, "
            f"deadlock={witness.deadlock}), replayed "
            f"({result.max_message_bits} bits, deadlock={result.corrupted})"
        )
    outcome = ("deadlock" if witness.deadlock
               else f"max message {witness.bits} bits")
    header = (
        f"worst witness found by {witness.strategy!r} on n={witness.graph.n} "
        f"under {witness.model_name}: {outcome}\n"
        f"schedule: {witness.schedule}\n"
    )
    if faults is not None:
        header += f"fault budget: {faults}\n"
    minimal = witness.minimal_schedule
    if minimal is not None:
        from ..adversaries.base import schedule_forces

        if not schedule_forces(witness.graph, protocol, model, minimal,
                               bits=witness.bits, deadlock=witness.deadlock,
                               bit_budget=bit_budget, faults=faults):
            raise ValueError(
                f"minimal schedule {minimal} does not force the recorded "
                f"badness ({witness.bits} bits, deadlock={witness.deadlock})"
            )
    if minimal is not None and minimal != witness.schedule:
        kind = ("minimal deadlocking schedule" if witness.deadlock
                else "minimal forcing prefix")
        header += (
            f"{kind}: {minimal} "
            f"({len(minimal)} of {len(witness.schedule)} events)\n"
        )
    return header + narrate(result, max_payload_chars=max_payload_chars)
