"""Regenerate Figures 1 and 2 as verified ASCII artefacts.

A "figure" in this paper is a gadget construction plus a claimed
equivalence in its caption.  Regenerating it therefore means: build the
exact instance shown in the paper, render its structure, and *check* the
caption's claim on it (and on randomized instances, in the benchmarks).
"""

from __future__ import annotations

from ..graphs.labeled_graph import LabeledGraph
from ..graphs.properties import bfs_layers_from, has_triangle
from ..reductions.gadgets import (
    eob_gadget_property,
    figure1_example,
    figure2_example,
    triangle_gadget,
)

__all__ = ["render_figure1", "render_figure2", "ascii_adjacency"]


def ascii_adjacency(graph: LabeledGraph, label: str) -> str:
    """Compact adjacency-list rendering."""
    lines = [f"{label}: n={graph.n}, m={graph.m}"]
    for v in graph.nodes():
        neigh = " ".join(str(w) for w in sorted(graph.neighbors(v)))
        lines.append(f"  {v:>3}: {neigh}")
    return "\n".join(lines)


def render_figure1() -> str:
    """Figure 1: the 7-node graph, the gadget ``G'_{2,7}``, and the
    caption check 'G'_{s,t} has a triangle iff (s,t) is an edge of G'
    verified over *every* pair ``(s, t)``."""
    g, gadget = figure1_example()
    lines = ["Figure 1 — reducing BUILD to TRIANGLE detection", ""]
    lines.append(ascii_adjacency(g, "base graph G (circled nodes)"))
    lines.append("")
    lines.append(ascii_adjacency(gadget, "G'_{2,7} (node 8 added, adjacent to 2 and 7)"))
    lines.append("")
    lines.append(f"G has a triangle: {has_triangle(g)}")
    lines.append(f"G'_{{2,7}} has a triangle: {has_triangle(gadget)} "
                 f"(and (2,7) in E(G): {g.has_edge(2, 7)})")
    checks = []
    for s in range(1, g.n + 1):
        for t in range(s + 1, g.n + 1):
            got = has_triangle(triangle_gadget(g, s, t))
            want = g.has_edge(s, t)
            checks.append(got == want)
    lines.append(
        f"caption equivalence holds for all {len(checks)} pairs: {all(checks)}"
    )
    return "\n".join(lines)


def render_figure2() -> str:
    """Figure 2: the base on labels {2..7}, the gadget ``G_5``, its BFS
    layers from node 1, and the caption check for every odd ``i``."""
    base, gadget = figure2_example()
    lines = ["Figure 2 — reducing BUILD (EOB graphs) to EOB-BFS", ""]
    lines.append(ascii_adjacency(base, "base graph G on labels {2..7} (node 1 isolated)"))
    lines.append("")
    lines.append(ascii_adjacency(gadget, "gadget G_5 (auxiliaries 8..13, root 1)"))
    lines.append("")
    layers = bfs_layers_from(gadget, 1)
    by_layer: dict[int, list[int]] = {}
    for v, l in layers.items():
        by_layer.setdefault(l, []).append(v)
    for l in sorted(by_layer):
        lines.append(f"  BFS layer {l} from node 1: {sorted(by_layer[l])}")
    layer3 = sorted(by_layer.get(3, []))
    lines.append(f"layer 3 = {layer3}, N_G(5) = {sorted(base.neighbors(5))}")
    checks = {i: eob_gadget_property(base, i) for i in (3, 5, 7)}
    lines.append(f"caption equivalence for every odd i: {checks}")
    return "\n".join(lines)
