"""Adversary-sensitivity analysis.

The adversary controls the write order; protocols differ sharply in how
much that control leaks into the observable outcome:

* Theorem 2's BUILD is *output-invariant*: SIMASYNC messages are fixed
  before any write, so every schedule yields the same reconstruction.
* Theorem 7/10's BFS protocols are output-invariant by a subtler
  mechanism — the layer certificates serialise the schedule's freedom
  away (the canonical forest is schedule-independent even though the
  write order is not).
* Theorem 5's MIS is *output-variant by design*: the greedy set depends
  on who the adversary favours, and correctness is a property of the
  whole output family.

:func:`analyze` quantifies this per protocol: number of distinct outputs,
distinct boards and bit-cost spread across a schedule sample (or, for
small inputs, across *all* schedules).  The numbers feed the
adversary-sensitivity benchmark (E14) and make a nice lens on what the
four models actually buy.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any, Optional

from ..graphs.labeled_graph import LabeledGraph
from ..core.models import ModelSpec
from ..core.protocol import Protocol
from ..core.schedulers import Scheduler, default_portfolio
from ..core.simulator import all_executions, run

__all__ = ["SensitivityReport", "analyze"]


def _freeze(value: Any) -> Any:
    """Make an output hashable for counting distinct outcomes.

    Structure-aware: dicts and dataclasses (e.g.
    :class:`~repro.graphs.properties.BfsForest`) are frozen by sorted
    content, so two equal-but-differently-ordered outputs count as one.
    """
    import dataclasses

    try:
        hash(value)
        return value
    except TypeError:
        pass
    if isinstance(value, dict):
        return (
            "dict",
            tuple(sorted(((k, _freeze(v)) for k, v in value.items()), key=repr)),
        )
    if isinstance(value, (set, frozenset)):
        return ("set", frozenset(_freeze(x) for x in value))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(_freeze(x) for x in value))
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (f.name, _freeze(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            ),
        )
    return repr(value)


@dataclass(frozen=True)
class SensitivityReport:
    """How much the adversary influenced a protocol on one input."""

    protocol_name: str
    model_name: str
    executions: int
    exhaustive: bool
    distinct_outputs: int
    distinct_boards: int
    distinct_write_orders: int
    min_total_bits: int
    max_total_bits: int
    deadlocks: int
    most_common_output: Any

    @property
    def output_invariant(self) -> bool:
        return self.distinct_outputs <= 1

    @property
    def board_invariant(self) -> bool:
        return self.distinct_boards <= 1

    def summary(self) -> str:
        kind = "exhaustive" if self.exhaustive else "sampled"
        return (
            f"{self.protocol_name} / {self.model_name}: "
            f"{self.distinct_outputs} output(s), {self.distinct_boards} "
            f"board(s), {self.distinct_write_orders} order(s) over "
            f"{self.executions} {kind} runs; board bits in "
            f"[{self.min_total_bits}, {self.max_total_bits}]; "
            f"{self.deadlocks} deadlock(s)"
        )


def analyze(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
    schedulers: Optional[Sequence[Scheduler]] = None,
    exhaustive_threshold: int = 5,
    exhaustive_limit: Optional[int] = 2000,
) -> SensitivityReport:
    """Measure schedule sensitivity of ``protocol`` on one input."""
    if graph.n <= exhaustive_threshold:
        runs = list(
            all_executions(graph, protocol, model, limit=exhaustive_limit)
        )
        exhaustive = True
    else:
        scheds = list(schedulers) if schedulers is not None else default_portfolio(
            tuple(range(8))
        )
        runs = [run(graph, protocol, model, s) for s in scheds]
        exhaustive = False

    outputs = Counter()
    representatives: dict[Any, Any] = {}
    boards = set()
    orders = set()
    bits = []
    deadlocks = 0
    for r in runs:
        orders.add(r.write_order)
        if r.corrupted:
            deadlocks += 1
            continue
        key = _freeze(r.output)
        outputs[key] += 1
        representatives.setdefault(key, r.output)
        boards.add(tuple(e.payload for e in r.board.entries))
        bits.append(r.total_bits)

    return SensitivityReport(
        protocol_name=protocol.name,
        model_name=model.name,
        executions=len(runs),
        exhaustive=exhaustive,
        distinct_outputs=len(outputs),
        distinct_boards=len(boards),
        distinct_write_orders=len(orders),
        min_total_bits=min(bits) if bits else 0,
        max_total_bits=max(bits) if bits else 0,
        deadlocks=deadlocks,
        most_common_output=(
            representatives[outputs.most_common(1)[0][0]] if outputs else None
        ),
    )
