"""Picklable output checkers.

The verification harness accepts any callable, but *parallel* sweeps
(:mod:`repro.analysis.parallel`) ship work to worker processes, and
lambdas don't pickle.  These small callable classes cover every oracle
the experiments use; they are equally usable in serial sweeps, so test
code can share one vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs.labeled_graph import LabeledGraph
from ..graphs.properties import (
    canonical_bfs_forest,
    has_square,
    has_triangle,
    is_connected,
    is_even_odd_bipartite,
    is_rooted_mis,
    is_two_cliques,
)

__all__ = [
    "AcceptAny",
    "BuildEqualsInput",
    "MisValid",
    "BfsCanonical",
    "EobBfsCorrect",
    "TwoCliquesCorrect",
    "TriangleCorrect",
    "SquareCorrect",
    "ConnectivityCorrect",
    "SpanningForestCanonical",
    "default_checker",
]


@dataclass(frozen=True)
class AcceptAny:
    """Vacuous oracle: every successful execution counts as correct.

    Used by sweeps without a known output oracle (e.g. ``repro sweep``
    on a protocol with no registered checker), which then still measure
    deadlocks and exact message sizes across the adversary product.
    """

    def __call__(self, graph: LabeledGraph, output, result) -> bool:
        return True


@dataclass(frozen=True)
class BuildEqualsInput:
    """BUILD oracle: the output graph equals the input graph."""

    def __call__(self, graph: LabeledGraph, output, result) -> bool:
        return output == graph


@dataclass(frozen=True)
class MisValid:
    """Rooted-MIS oracle: output is a maximal independent set ∋ root."""

    root: int

    def __call__(self, graph, output, result) -> bool:
        return is_rooted_mis(graph, output, self.root)


@dataclass(frozen=True)
class BfsCanonical:
    """BFS oracle: output equals the canonical BFS forest."""

    def __call__(self, graph, output, result) -> bool:
        return output == canonical_bfs_forest(graph)


@dataclass(frozen=True)
class EobBfsCorrect:
    """EOB-BFS oracle: canonical forest on EOB inputs, NOT_EOB otherwise."""

    def __call__(self, graph, output, result) -> bool:
        if is_even_odd_bipartite(graph):
            return output == canonical_bfs_forest(graph)
        return output == "NOT_EOB"


@dataclass(frozen=True)
class TwoCliquesCorrect:
    """2-CLIQUES oracle under the promise."""

    def __call__(self, graph, output, result) -> bool:
        want = "TWO_CLIQUES" if is_two_cliques(graph) else "NOT_TWO_CLIQUES"
        return output == want


@dataclass(frozen=True)
class TriangleCorrect:
    """TRIANGLE oracle (1/0 output convention)."""

    def __call__(self, graph, output, result) -> bool:
        return output == (1 if has_triangle(graph) else 0)


@dataclass(frozen=True)
class SquareCorrect:
    """SQUARE (C4) oracle."""

    def __call__(self, graph, output, result) -> bool:
        return output == (1 if has_square(graph) else 0)


@dataclass(frozen=True)
class ConnectivityCorrect:
    """CONNECTIVITY oracle."""

    def __call__(self, graph, output, result) -> bool:
        return output == (1 if is_connected(graph) else 0)


@dataclass(frozen=True)
class SpanningForestCanonical:
    """Spanning-forest oracle: canonical BFS forest's edge set."""

    def __call__(self, graph, output, result) -> bool:
        return output == canonical_bfs_forest(graph).tree_edges()


def default_checker(census_key: str):
    """The registered output oracle for a census protocol.

    One table shared by the CLI sweeps and the campaign subsystem, so
    the two cannot drift apart.  Protocols without a known oracle get
    :class:`AcceptAny` — their sweeps still measure deadlocks and exact
    message sizes.  (``sketch-spanning-forest`` stays on ``AcceptAny``
    deliberately: its forest is valid but seed-dependent, never the
    canonical BFS forest; ``bfs-bipartite-async`` does too, because off
    the bipartite promise its deadlocks — not outputs — are the
    measurement, per Corollary 4.)
    """
    table = {
        "build-forest": BuildEqualsInput(),
        "build-degenerate": BuildEqualsInput(),
        "build-extended": BuildEqualsInput(),
        "naive-build": BuildEqualsInput(),
        "mis-greedy": MisValid(1),
        "naive-mis": MisValid(1),
        "two-cliques": TwoCliquesCorrect(),
        "eob-bfs": EobBfsCorrect(),
        "naive-eob-bfs": EobBfsCorrect(),
        "bfs-sync": BfsCanonical(),
        "connectivity-sync": ConnectivityCorrect(),
        "sketch-connectivity": ConnectivityCorrect(),
        "spanning-forest-sync": SpanningForestCanonical(),
        "triangle-degenerate": TriangleCorrect(),
        "naive-triangle": TriangleCorrect(),
        "square-degenerate": SquareCorrect(),
        "naive-square": SquareCorrect(),
    }
    return table.get(census_key, AcceptAny())
