"""Verification harness: run a protocol over instances × adversaries and
check every output against an oracle.

The paper's positive results are universally quantified over adversaries;
the harness approximates that with

* **exhaustive** schedule enumeration when the instance is small enough
  (``n <= exhaustive_threshold``), which makes the check a proof for
  those instances, and
* a **portfolio** of structured + seeded-random schedulers otherwise.

Alongside correctness it records exact message-size statistics so the
``O(log n)`` / ``O(k^2 log n)`` claims are measured by the same runs
that establish correctness.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any, Optional

from ..graphs.labeled_graph import LabeledGraph
from ..core.models import ModelSpec
from ..core.protocol import Protocol
from ..core.schedulers import Scheduler, default_portfolio
from ..core.simulator import RunResult, all_executions, run

__all__ = ["Failure", "VerificationReport", "verify_protocol", "Checker"]

#: ``checker(graph, output, result) -> bool`` — truthy means correct.
Checker = Callable[[LabeledGraph, Any, RunResult], bool]


@dataclass(frozen=True)
class Failure:
    """One incorrect or deadlocked execution."""

    graph: LabeledGraph
    schedule: tuple[int, ...]
    output: Any
    kind: str  # "wrong-output" | "deadlock"


@dataclass
class VerificationReport:
    """Aggregated result of a verification sweep."""

    protocol_name: str
    model_name: str
    instances: int = 0
    executions: int = 0
    exhaustive_instances: int = 0
    failures: list[Failure] = field(default_factory=list)
    max_message_bits: int = 0
    max_bits_by_n: dict[int, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def record(self, graph: LabeledGraph, result: RunResult, correct: bool) -> None:
        self.executions += 1
        self.max_message_bits = max(self.max_message_bits, result.max_message_bits)
        prev = self.max_bits_by_n.get(graph.n, 0)
        self.max_bits_by_n[graph.n] = max(prev, result.max_message_bits)
        if result.corrupted:
            self.failures.append(
                Failure(graph, result.write_order, None, "deadlock")
            )
        elif not correct:
            self.failures.append(
                Failure(graph, result.write_order, result.output, "wrong-output")
            )

    def summary(self) -> str:
        state = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"{self.protocol_name} under {self.model_name}: {state} "
            f"({self.instances} instances, {self.executions} executions, "
            f"{self.exhaustive_instances} exhaustive, "
            f"max message {self.max_message_bits} bits)"
        )


def verify_protocol(
    protocol: Protocol,
    model: ModelSpec,
    instances: Iterable[LabeledGraph],
    checker: Checker,
    schedulers: Optional[Sequence[Scheduler]] = None,
    exhaustive_threshold: int = 5,
    exhaustive_limit: Optional[int] = None,
    bit_budget: Optional[Callable[[int], int]] = None,
    allow_deadlock: bool = False,
) -> VerificationReport:
    """Sweep ``protocol`` under ``model`` over ``instances``.

    Parameters
    ----------
    checker:
        Output oracle; called only on successful executions.
    exhaustive_threshold:
        Instances with ``n`` at most this are checked under *every*
        adversary schedule.
    bit_budget:
        Optional ``n -> bits`` cap enforced during simulation.
    allow_deadlock:
        When ``True`` deadlocks are not failures (used for the
        open-problem measurements, e.g. Corollary 4 on odd cycles).
    """
    scheds = list(schedulers) if schedulers is not None else default_portfolio()
    report = VerificationReport(protocol.name, model.name)
    for graph in instances:
        report.instances += 1
        budget = bit_budget(graph.n) if bit_budget else None
        if graph.n <= exhaustive_threshold:
            report.exhaustive_instances += 1
            runs: Iterable[RunResult] = all_executions(
                graph, protocol, model, bit_budget=budget, limit=exhaustive_limit
            )
        else:
            runs = (
                run(graph, protocol, model, sched, bit_budget=budget)
                for sched in scheds
            )
        for result in runs:
            if result.corrupted and allow_deadlock:
                report.executions += 1
                continue
            correct = (
                bool(checker(graph, result.output, result))
                if result.success
                else False
            )
            report.record(graph, result, correct)
    return report
