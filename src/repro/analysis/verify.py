"""Verification harness: run a protocol over instances × adversaries and
check every output against an oracle.

The paper's positive results are universally quantified over adversaries;
the harness approximates that with

* **exhaustive** schedule enumeration when the instance is small enough
  (``n <= exhaustive_threshold``), which makes the check a proof for
  those instances, and
* above the threshold, either a **portfolio** of structured +
  seeded-random schedulers (``mode="verify"``, the default) or **guided
  adversary search** (``mode="stress"``), where the strategies in
  :mod:`repro.adversaries` hunt for worst-case schedules and every cell
  reports concrete, replayable witness schedules in
  ``VerificationReport.witnesses``.

Alongside correctness it records exact message-size statistics so the
``O(log n)`` / ``O(k^2 log n)`` claims are measured by the same runs
that establish correctness.

Since the unified execution runtime landed this module is a thin policy
layer: :func:`verify_protocol` builds a ``verify``-mode
:class:`~repro.runtime.plan.ExecutionPlan` and runs it on a
:class:`~repro.runtime.backends.Backend` (serial by default; pass a
:class:`~repro.runtime.backends.ProcessPoolBackend` to fan instances
across processes — then the checker and schedulers must be picklable).
:class:`VerificationReport` and :class:`Failure` now live in
:mod:`repro.runtime.results` and are re-exported here unchanged.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from typing import Optional

from ..adversaries import AdversarySearch
from ..core.models import ModelSpec
from ..core.protocol import Protocol
from ..core.schedulers import Scheduler
from ..graphs.labeled_graph import LabeledGraph
from ..runtime.backends import Backend
from ..runtime.plan import Checker, ExecutionPlan
from ..runtime.results import Failure, VerificationReport, WitnessRecord

__all__ = [
    "Failure",
    "VerificationReport",
    "WitnessRecord",
    "verify_protocol",
    "Checker",
]


def verify_protocol(
    protocol: Protocol,
    model: ModelSpec,
    instances: Iterable[LabeledGraph],
    checker: Checker,
    schedulers: Optional[Sequence[Scheduler]] = None,
    exhaustive_threshold: int = 5,
    exhaustive_limit: Optional[int] = None,
    bit_budget: Optional[Callable[[int], int]] = None,
    allow_deadlock: bool = False,
    backend: Optional[Backend] = None,
    mode: str = "verify",
    adversaries: Optional[Sequence[AdversarySearch]] = None,
    store=None,
    score: Optional[str] = None,
    share_table: bool = False,
    faults: Optional[str] = None,
) -> VerificationReport:
    """Sweep ``protocol`` under ``model`` over ``instances``.

    Parameters
    ----------
    checker:
        Output oracle; called only on successful executions.
    exhaustive_threshold:
        Instances with ``n`` at most this are checked under *every*
        adversary schedule.
    bit_budget:
        Optional ``n -> bits`` cap enforced during simulation.
    allow_deadlock:
        When ``True`` deadlocks are not failures (used for the
        open-problem measurements, e.g. Corollary 4 on odd cycles).
    backend:
        Execution backend for the per-instance cells; ``None`` means
        serial.  Any backend yields a field-identical report.
    mode:
        ``"verify"`` (scheduler portfolio above the threshold) or
        ``"stress"`` (adversary search above the threshold, witness
        schedules reported in ``VerificationReport.witnesses``).
    adversaries:
        Search strategies for stress mode; defaults to
        :func:`repro.adversaries.default_search_portfolio`.
    score:
        Stress mode only: name of a
        :data:`repro.adversaries.SCORE_HOOKS` badness hook baked into
        the default portfolio's greedy/beam policies.
    share_table:
        Stress mode only: run each search cell's strategies through one
        shared :class:`~repro.adversaries.SearchContext`, so they reuse
        one transposition table of completion values.
    faults:
        Optional fault-budget spec (``"crash:2,loss:1"``); stress mode
        only — exhaustive cells then enumerate the joint fault ×
        schedule space and search cells hunt it with fault-choosing
        adversaries.  Witnesses record their fault events inline.
    store:
        Optional :class:`repro.campaigns.store.ResultStore` for
        opportunistic reuse: cells whose fingerprint is already stored
        are served from the store (field-identical to recomputing),
        everything executed here becomes a future hit.  The merged
        report is identical with or without a store.
    """
    if mode not in ("verify", "stress"):
        raise ValueError(
            f"verify_protocol mode must be 'verify' or 'stress', got {mode!r}"
        )
    plan = ExecutionPlan.build(
        protocol,
        model,
        instances,
        mode=mode,
        schedulers=schedulers,
        adversaries=adversaries,
        checker=checker,
        exhaustive_threshold=exhaustive_threshold,
        exhaustive_limit=exhaustive_limit,
        bit_budget=bit_budget,
        allow_deadlock=allow_deadlock,
        score=score,
        share_table=share_table,
        faults=faults,
    )
    if store is not None:
        from ..campaigns.runner import run_plan_with_store

        return run_plan_with_store(plan, store, backend=backend)
    return plan.verification_report(backend=backend)
