"""LaTeX rendering of the regenerated artefacts.

A reproduction repo's tables end up in write-ups; these helpers emit
ready-to-paste LaTeX for the two headline artefacts:

* :func:`table2_to_latex` — the regenerated classification table in the
  paper's own layout (Table 2);
* :func:`lemma1_to_latex` — the measured message-size table with fitted
  growth laws (Lemma 1).

Pure string generation, no TeX dependencies; structure is covered by
unit tests.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from ..core.models import ALL_MODELS
from ..hierarchy.lattice import TABLE2_ROWS
from .table2 import Table2Result

__all__ = ["table2_to_latex", "lemma1_to_latex", "escape_latex"]

_STATUS_TEX = {
    "yes": r"\textbf{yes}",
    "yes*": r"\textbf{yes}$^{*}$",
    "no": "no",
    "open": "?",
}


_ESCAPES = {
    "\\": r"\textbackslash{}",
    "&": r"\&",
    "%": r"\%",
    "#": r"\#",
    "_": r"\_",
    "{": r"\{",
    "}": r"\}",
}


def escape_latex(text: str) -> str:
    """Escape the LaTeX special characters that can appear in our labels.

    Character-by-character so an escape's own output is never re-escaped.
    """
    return "".join(_ESCAPES.get(c, c) for c in text)


def table2_to_latex(result: Table2Result) -> str:
    """The regenerated Table 2 as a LaTeX ``tabular``."""
    lines = [
        r"\begin{tabular}{l" + "c" * len(ALL_MODELS) + "}",
        r"\hline",
        " & ".join(
            ["problem"] + [rf"\textsc{{{m.name.lower()}}}" for m in ALL_MODELS]
        )
        + r" \\",
        r"\hline",
    ]
    for row in TABLE2_ROWS:
        cells = [escape_latex(row.key)]
        for model in ALL_MODELS:
            status = result.cell(row.key, model).status
            cells.append(_STATUS_TEX.get(status, escape_latex(status)))
        lines.append(" & ".join(cells) + r" \\")
    lines += [
        r"\hline",
        r"\multicolumn{%d}{l}{\footnotesize yes: $O(\log n)$-bit protocol "
        r"verified by simulation; no: excluded for $o(n)$ bits; "
        r"$^{*}$: paper-claimed, verified on bounded degeneracy.}"
        % (len(ALL_MODELS) + 1),
        r"\end{tabular}",
    ]
    return "\n".join(lines)


def lemma1_to_latex(
    ks: Sequence[int],
    sizes: Sequence[int],
    bits: dict[tuple[int, int], int],
) -> str:
    """The Lemma 1 measurement grid as a LaTeX ``tabular``.

    ``bits[(k, n)]`` is the measured max message size.
    """
    lines = [
        r"\begin{tabular}{r" + "r" * len(sizes) + "r}",
        r"\hline",
        " & ".join(["$k$"] + [f"$n={n}$" for n in sizes] + ["fit slope"]) + r" \\",
        r"\hline",
    ]
    for k in ks:
        row_bits = [bits[(k, n)] for n in sizes]
        # least-squares slope against log2(n), matching analysis.scaling
        xs = [math.log2(n) for n in sizes]
        xbar = sum(xs) / len(xs)
        ybar = sum(row_bits) / len(row_bits)
        slope = sum((x - xbar) * (y - ybar) for x, y in zip(xs, row_bits)) / sum(
            (x - xbar) ** 2 for x in xs
        )
        cells = [str(k)] + [str(b) for b in row_bits] + [f"${slope:.1f}\\log_2 n$"]
        lines.append(" & ".join(cells) + r" \\")
    lines += [
        r"\hline",
        r"\multicolumn{%d}{l}{\footnotesize measured max message bits of "
        r"the Theorem~2 protocol (exact codec); Lemma~1 predicts "
        r"$O(k^2 \log n)$.}" % (len(sizes) + 2),
        r"\end{tabular}",
    ]
    return "\n".join(lines)
