"""Message-budget helpers: turning ``f(n)`` into enforceable limits.

The classes ``MODEL[f(n)]`` are parametrized by an asymptotic message
bound.  The simulator enforces *concrete* per-message bit budgets, so
asymptotic claims need concrete envelopes.  This module centralises
them:

* :func:`logn_budget` — ``c · log2(n) + b`` bits, the envelope for the
  paper's ``O(log n)`` protocols (constants calibrated in the tests
  against measured sizes, then *enforced* so regressions that bloat
  messages fail loudly);
* :func:`klogn_budget` — ``c · k² · log2(n) + b``, Lemma 1's envelope;
* :func:`polylog_budget` — ``c · log2(n)^e + b`` for the sketching
  extension;
* :func:`linear_budget` — ``c · n + b``, the trivial upper bound.
"""

from __future__ import annotations

import math
from collections.abc import Callable

__all__ = ["logn_budget", "klogn_budget", "polylog_budget", "linear_budget"]

BudgetFn = Callable[[int], int]


def _log2(n: int) -> float:
    return math.log2(max(2, n))


def logn_budget(c: float = 8.0, b: int = 64) -> BudgetFn:
    """``n -> ceil(c · log2 n) + b`` bits."""
    return lambda n: math.ceil(c * _log2(n)) + b


def klogn_budget(k: int, c: float = 4.0, b: int = 32) -> BudgetFn:
    """Lemma 1 envelope: ``n -> ceil(c · k² · log2 n) + b`` bits."""
    if k < 0:
        raise ValueError("k must be non-negative")
    kk = max(1, k * k)
    return lambda n: math.ceil(c * kk * _log2(n)) + b


def polylog_budget(exponent: int = 3, c: float = 12.0, b: int = 512) -> BudgetFn:
    """``n -> ceil(c · log2(n)^exponent) + b`` bits."""
    if exponent < 1:
        raise ValueError("exponent must be >= 1")
    return lambda n: math.ceil(c * _log2(n) ** exponent) + b


def linear_budget(c: float = 2.0, b: int = 32) -> BudgetFn:
    """``n -> ceil(c · n) + b`` bits — the naive-protocol envelope."""
    return lambda n: math.ceil(c * n) + b
