"""Command-line interface.

``python -m repro <command>`` (or the installed ``repro-whiteboard``):

* ``table2``  — regenerate the paper's Table 2 classification
* ``fig1``    — regenerate Figure 1 (triangle gadget) with caption check
* ``fig2``    — regenerate Figure 2 (EOB-BFS gadget) with caption check
* ``lemma1``  — measure Theorem 2 message sizes against the
  ``O(k^2 log n)`` bound
* ``lemma3``  — print the counting-bound table for the paper's classes
* ``demo``    — run one protocol on one graph and dump the whiteboard
* ``sweep``   — verification sweep over (protocol × instances ×
  adversaries) through the execution runtime, optionally ``--jobs N``;
  ``--store PATH`` serves unchanged cells from a SQLite result store
* ``stress``  — adversarial stress: exhaustive schedules at small n,
  guided adversary search above, reporting worst witness schedules
  (raw and minimised); ``--share-table`` shares one transposition
  table across each cell's strategies, ``--score`` swaps the badness
  hook, ``--faults crash:2,loss:1`` lets the adversary interleave
  crash-stop/lossy/duplicated-write events with the schedule,
  ``--store PATH`` serves unchanged cells from a result store
* ``campaign`` — persistent, resumable stress campaigns over a SQLite
  :class:`~repro.campaigns.store.ResultStore`: ``run`` (store hits are
  served from cache, misses execute and become durable the moment they
  finish), ``status``, ``report`` (cross-run witness trajectories),
  ``gc`` (drop results no longer live under the current spec + code
  version), ``claims`` (exhaustively check every census fault claim;
  violations exit nonzero with replayable deadlock witnesses)

``stress`` and ``campaign run`` degrade gracefully: Ctrl-C (or an
exhausted search budget) commits every already-streamed outcome to the
store, prints a partial summary, and exits 130 — re-running the same
command resumes from the committed prefix.
* ``experiment`` / ``reproduce-all`` — the E1–E20 index (``--jobs`` fans
  experiments across worker processes)
* ``protocols`` — list every shipped protocol (the census registry)
* ``telemetry`` — inspect run traces: ``report`` renders per-cell
  timings, hotspot spans and shard-imbalance flags from a ``--trace-out``
  JSONL file; ``validate`` schema-checks a trace and its manifest

``sweep``, ``stress`` and ``campaign run`` accept ``--trace-out PATH``:
the run writes a JSONL telemetry event stream (plus a sibling
``*.manifest.json``) without changing any result — reports are
byte-identical traced or not.  End-of-run kernel summaries (steps,
batch occupancy, transposition hit-rate) print to *stderr*, keeping
stdout stable across semantics-free knobs like ``--batch``/``--jobs``.

Protocol names come from one registry — :data:`repro.protocols.census.
CENSUS_BY_KEY` — so ``demo`` choices, ``sweep`` choices and the
``protocols`` listing cannot drift apart; output oracles come from
:func:`repro.analysis.checkers.default_checker` for the same reason.
"""

from __future__ import annotations

import argparse
import math
import sys
from collections.abc import Callable

__all__ = ["main", "build_parser"]

#: ``demo`` registry: CLI name -> (census key, instance family).  The
#: protocol itself always comes from the census entry, so the demo list
#: and the ``protocols`` listing share one source of truth.
_DEMOS: dict[str, tuple[str, Callable]] = {
    "build": ("build-degenerate",
              lambda gen, n, seed: gen.random_k_degenerate(n, 2, seed=seed)),
    "mis": ("mis-greedy",
            lambda gen, n, seed: gen.random_connected_graph(n, 0.3, seed=seed)),
    "two-cliques": ("two-cliques",
                    lambda gen, n, seed: gen.two_cliques(max(2, n // 2))),
    "eob-bfs": ("eob-bfs",
                lambda gen, n, seed: gen.random_even_odd_bipartite(
                    n, 0.4, seed=seed)),
    "bfs": ("bfs-sync",
            lambda gen, n, seed: gen.random_graph(n, 0.3, seed=seed)),
}

#: ``sweep`` instance families: name -> builder over the generators module.
_FAMILIES: dict[str, Callable] = {
    "k-degenerate": lambda gen, n, seed: gen.random_k_degenerate(n, 2, seed=seed),
    "random": lambda gen, n, seed: gen.random_graph(n, 0.3, seed=seed),
    "connected": lambda gen, n, seed: gen.random_connected_graph(n, 0.3, seed=seed),
    "eob": lambda gen, n, seed: gen.random_even_odd_bipartite(n, 0.4, seed=seed),
    "path": lambda gen, n, seed: gen.path_graph(n),
    "cycle": lambda gen, n, seed: gen.cycle_graph(n),
    # CLI convenience: clamp to the nearest valid (odd, large-enough) size
    # so e.g. --sizes 4 8 still sweeps something sensible.
    "odd-cycle": lambda gen, n, seed: gen.odd_cycle_graph(
        max(3, n if n % 2 else n - 1)),
    "odd-cycle-probe": lambda gen, n, seed: gen.odd_cycle_with_probe(
        max(5, n if n % 2 else n - 1)),
    "two-cliques": lambda gen, n, seed: gen.two_cliques(max(2, n // 2)),
}


def _build_instances(args) -> list:
    """One instance per (size × seed) of the requested family.

    Seed-invariant families (path, cycle, two-cliques) produce the same
    instance for every seed; drop duplicates instead of re-verifying them.
    """
    from .graphs import generators as gen

    built = [
        _FAMILIES[args.family](gen, n, seed)
        for n in args.sizes for seed in args.seeds
    ]
    return [g for i, g in enumerate(built) if g not in built[:i]]


def _sweep_checker(census_key: str):
    """Output oracle for a census protocol (vacuous when none is known).

    The table itself lives in :func:`repro.analysis.checkers.
    default_checker`, shared with the campaign subsystem.
    """
    from .analysis.checkers import default_checker

    return default_checker(census_key)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-whiteboard",
        description="Shared whiteboard models (Becker et al.) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    t2 = sub.add_parser("table2", help="regenerate Table 2")
    t2.add_argument("--full", action="store_true", help="larger workloads")
    t2.add_argument("--seed", type=int, default=0)

    sub.add_parser("fig1", help="regenerate Figure 1")
    sub.add_parser("fig2", help="regenerate Figure 2")

    l1 = sub.add_parser("lemma1", help="Theorem 2 message-size law")
    l1.add_argument("--kmax", type=int, default=4)
    l1.add_argument("--sizes", type=int, nargs="+", default=[16, 32, 64, 128, 256])

    l3 = sub.add_parser("lemma3", help="counting-bound table")
    l3.add_argument("--sizes", type=int, nargs="+", default=[16, 32, 64, 128])

    demo = sub.add_parser("demo", help="run a protocol and dump the whiteboard")
    demo.add_argument("--protocol", default="build", choices=sorted(_DEMOS))
    demo.add_argument("--n", type=int, default=10)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--trace", action="store_true",
                      help="narrate the execution round by round")

    from .protocols.census import CENSUS_BY_KEY

    sw = sub.add_parser(
        "sweep",
        help="verification sweep over (protocol x instances x adversaries)")
    sw.add_argument("--protocol", dest="protocols", action="append",
                    required=True, choices=sorted(CENSUS_BY_KEY),
                    help="census protocol key (repeatable)")
    sw.add_argument("--family", default="random", choices=sorted(_FAMILIES),
                    help="instance family (default: random)")
    sw.add_argument("--sizes", type=int, nargs="+", default=[6, 9],
                    help="instance sizes n")
    sw.add_argument("--seeds", type=int, nargs="+", default=[0],
                    help="instance seeds (one instance per size x seed)")
    sw.add_argument("--mode", default="verify",
                    choices=["verify", "single", "exhaustive"],
                    help="verify = exhaustive below the threshold, "
                         "portfolio above (default)")
    sw.add_argument("--threshold", type=int, default=5,
                    help="exhaustive-enumeration size threshold")
    sw.add_argument("--jobs", type=int, default=None,
                    help="worker processes (default: serial)")
    sw.add_argument("--store", default=None, metavar="PATH",
                    help="SQLite result store for opportunistic reuse: "
                         "cells already stored are served from it, "
                         "everything executed becomes a future hit")
    sw.add_argument("--trace-out", default=None, metavar="PATH",
                    help="write a JSONL telemetry event stream (plus a "
                         "sibling *.manifest.json); results are identical "
                         "with or without it")

    st = sub.add_parser(
        "stress",
        help="adversary stress: exhaustive at small n, guided search above")
    st.add_argument("--protocol", dest="protocols", action="append",
                    required=True, choices=sorted(CENSUS_BY_KEY),
                    help="census protocol key (repeatable)")
    st.add_argument("--family", default="random", choices=sorted(_FAMILIES),
                    help="instance family (default: random)")
    st.add_argument("--sizes", type=int, nargs="+", default=[5, 9],
                    help="instance sizes n")
    st.add_argument("--seeds", type=int, nargs="+", default=[0],
                    help="instance seeds (one instance per size x seed)")
    st.add_argument("--threshold", type=int, default=5,
                    help="exhaustive-enumeration size threshold; larger "
                         "instances use adversary search")
    st.add_argument("--jobs", type=int, default=None,
                    help="worker processes (default: serial); heavy "
                         "exhaustive cells additionally shard their "
                         "schedule tree across the workers")
    st.add_argument("--trace", action="store_true",
                    help="narrate the overall worst witness transcript")
    from .adversaries import SCORE_HOOKS

    st.add_argument("--score", default=None, choices=sorted(SCORE_HOOKS),
                    help="badness hook for the greedy/beam searches "
                         "(default: bits-greedy)")
    st.add_argument("--share-table", action="store_true",
                    help="share one transposition table across the "
                         "strategies of each search cell")
    st.add_argument("--faults", default=None, metavar="SPEC",
                    help="adversary fault budget, e.g. 'crash:2,loss:1' "
                         "(kinds: crash, loss, dup); fault events join "
                         "the searched schedule space")
    st.add_argument("--batch", dest="batch", action="store_true",
                    default=None,
                    help="step cells through the batched structure-of-"
                         "arrays engine where supported (field-identical "
                         "reports, just faster)")
    st.add_argument("--no-batch", dest="batch", action="store_false",
                    help="pin every cell to the scalar reference engine")
    st.add_argument("--store", default=None, metavar="PATH",
                    help="SQLite result store for opportunistic reuse: "
                         "cells already stored are served from it, "
                         "everything executed becomes a future hit")
    st.add_argument("--trace-out", default=None, metavar="PATH",
                    help="write a JSONL telemetry event stream (plus a "
                         "sibling *.manifest.json); results are identical "
                         "with or without it")

    from .graphs.families import FAMILIES as GRAPH_CLASSES

    camp = sub.add_parser(
        "campaign",
        help="persistent, resumable stress campaigns over a result store")
    csub = camp.add_subparsers(dest="campaign_command", required=True)

    def _spec_args(p, required: bool) -> None:
        p.add_argument("--protocol", dest="protocols", action="append",
                       required=required, choices=sorted(CENSUS_BY_KEY),
                       help="census protocol key (repeatable)")
        p.add_argument("--family", dest="families", action="append",
                       choices=sorted(GRAPH_CLASSES),
                       help="instance family from the graph-class registry "
                            "(repeatable; default: degenerate2)")
        p.add_argument("--sizes", type=int, nargs="+", default=[4, 6],
                       help="instance sizes n")
        p.add_argument("--seeds", type=int, nargs="+", default=[0],
                       help="instance seeds (one instance per size x seed)")
        p.add_argument("--mode", default="stress",
                       choices=["stress", "verify"],
                       help="plan mode per cell (default: stress)")
        p.add_argument("--threshold", type=int, default=5,
                       help="exhaustive-enumeration size threshold")
        p.add_argument("--allow-deadlock", action="store_true",
                       help="deadlocks count as executions, not failures "
                            "(the Corollary 4 off-promise setting)")
        p.add_argument("--score", default=None, choices=sorted(SCORE_HOOKS),
                       help="badness hook for the stress searches "
                            "(participates in task fingerprints)")
        p.add_argument("--share-table", action="store_true",
                       help="share one transposition table per search cell "
                            "(participates in task fingerprints)")
        p.add_argument("--faults", default=None, metavar="SPEC",
                       help="adversary fault budget for every cell, e.g. "
                            "'crash:1' (participates in task fingerprints)")

    crun = csub.add_parser(
        "run", help="run (or resume, or replay from cache) a campaign")
    crun.add_argument("--store", required=True,
                      help="path to the SQLite result store")
    crun.add_argument("--name", default="default",
                      help="campaign name (default: 'default')")
    _spec_args(crun, required=False)
    crun.add_argument("--quick", action="store_true",
                      help="use the built-in smoke campaign spec instead of "
                           "the --protocol/--family arguments")
    crun.add_argument("--warm-smoke", action="store_true",
                      help="use the built-in warm-frontier smoke spec (one "
                           "searched n=6 cell) instead of --protocol/--family")
    crun.add_argument("--warm-frontiers", action="store_true",
                      help="seed each search cell's transposition table from "
                           "the store's persistent frontiers and commit what "
                           "the run learned back; reports are identical, "
                           "re-expansion work shrinks run over run")
    crun.add_argument("--jobs", type=int, default=None,
                      help="worker processes (default: serial)")
    crun.add_argument("--expect-hit-rate", type=float, default=None,
                      metavar="P",
                      help="exit nonzero unless at least this fraction of "
                           "tasks was served from the store (CI resume smoke)")
    crun.add_argument("--trace-out", default=None, metavar="PATH",
                      help="write a JSONL telemetry event stream (plus a "
                           "sibling *.manifest.json); results are identical "
                           "with or without it")

    cstatus = csub.add_parser("status", help="store and campaign overview")
    cstatus.add_argument("--store", required=True)

    creport = csub.add_parser(
        "report", help="render cross-run witness trajectories")
    creport.add_argument("--store", required=True)
    creport.add_argument("--name", default=None,
                         help="one campaign (default: all)")
    creport.add_argument("--diff", type=int, nargs=2, default=None,
                         metavar=("OLD", "NEW"),
                         help="also diff two generations of --name")

    cgc = csub.add_parser(
        "gc", help="drop stored results not live under the given spec "
                   "(and the current code version)")
    cgc.add_argument("--store", required=True)
    cgc.add_argument("--name", default="default")
    _spec_args(cgc, required=False)
    cgc.add_argument("--quick", action="store_true",
                     help="liveness from the built-in smoke campaign spec")
    cgc.add_argument("--warm-smoke", action="store_true",
                     help="liveness from the built-in warm-frontier smoke "
                          "spec")

    cclaims = csub.add_parser(
        "claims",
        help="check every census fault claim exhaustively; a violated "
             "claim exits nonzero with a replayable deadlock witness")
    cclaims.add_argument("--store", default=None,
                         help="optional result store (claim cells cache and "
                              "resume like any campaign)")
    cclaims.add_argument("--name", default="fault-claims",
                         help="campaign name for stored claim cells")
    cclaims.add_argument("--protocol", dest="protocols", action="append",
                         default=None, choices=sorted(CENSUS_BY_KEY),
                         help="restrict to specific protocols (repeatable)")
    cclaims.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: serial)")
    cclaims.add_argument("--trace", action="store_true",
                         help="narrate the minimised witness of every "
                              "violated claim")

    exp = sub.add_parser("experiment", help="regenerate one experiment (E1-E20)")
    exp.add_argument("experiment_id", help="e.g. E5")
    exp.add_argument("--full", action="store_true", help="larger workloads")

    allp = sub.add_parser("reproduce-all", help="regenerate the whole E1-E20 index")
    size = allp.add_mutually_exclusive_group()
    size.add_argument("--full", action="store_true", help="larger workloads")
    size.add_argument("--quick", action="store_true",
                      help="small workloads (the default; explicit for scripts)")
    allp.add_argument("--jobs", type=int, default=None,
                      help="fan experiments across worker processes")

    tel = sub.add_parser("telemetry", help="inspect run telemetry traces")
    tsub = tel.add_subparsers(dest="telemetry_command", required=True)
    trep = tsub.add_parser(
        "report", help="render per-cell timings, hotspots and shard "
                       "imbalance from a trace")
    trep.add_argument("trace", help="path to a --trace-out JSONL file")
    trep.add_argument("--top", type=int, default=10,
                      help="hotspot spans to show (default: 10)")
    tval = tsub.add_parser(
        "validate", help="schema-validate a trace (and its manifest)")
    tval.add_argument("trace", help="path to a --trace-out JSONL file")

    sub.add_parser("protocols", help="list every shipped protocol")
    return parser


def _cmd_table2(args) -> int:
    from .analysis.table2 import generate_table2, render_table2

    result = generate_table2(quick=not args.full, seed=args.seed)
    print(render_table2(result))
    print()
    print("regeneration matches the paper:", result.matches_paper())
    return 0 if result.all_ok else 1


def _cmd_fig(which: int) -> int:
    from .analysis.figures import render_figure1, render_figure2

    print(render_figure1() if which == 1 else render_figure2())
    return 0


def _cmd_lemma1(args) -> int:
    from .analysis.scaling import fit_klog, fit_log
    from .core import SIMASYNC, MinIdScheduler, run
    from .graphs.generators import random_k_degenerate
    from .protocols.build import DegenerateBuildProtocol

    print("Theorem 2 / Lemma 1: measured max message bits vs O(k^2 log n)")
    print(f"{'k':>3} {'n':>6} {'max bits':>9} {'k(k+1)log2(n)+2log2(n)':>24}")
    by_k: dict[int, list[tuple[int, int]]] = {}
    for k in range(1, args.kmax + 1):
        for n in args.sizes:
            g = random_k_degenerate(n, k, seed=n + k)
            r = run(g, DegenerateBuildProtocol(k), SIMASYNC, MinIdScheduler())
            bound = (k * (k + 1) + 2) * math.log2(n)
            print(f"{k:>3} {n:>6} {r.max_message_bits:>9} {bound:>24.1f}")
            by_k.setdefault(k, []).append((n, r.max_message_bits))
    for k, pairs in by_k.items():
        fit = fit_log([p[0] for p in pairs], [p[1] for p in pairs])
        print(f"  k={k}: {fit}")
    return 0


def _cmd_lemma3(args) -> int:
    from .reductions.counting import (
        log2_all_graphs,
        log2_bipartite_fixed_parts,
        log2_even_odd_bipartite,
        log2_labeled_trees,
        min_message_bits_for_build,
    )

    families = [
        ("all graphs", log2_all_graphs),
        ("bipartite (fixed parts)", log2_bipartite_fixed_parts),
        ("even-odd-bipartite", log2_even_odd_bipartite),
        ("labeled trees", log2_labeled_trees),
    ]
    print("Lemma 3: minimum bits/message for BUILD on each class")
    header = f"{'class':<26}" + "".join(f" n={n:<8}" for n in args.sizes)
    print(header)
    for name, f in families:
        row = f"{name:<26}"
        for n in args.sizes:
            row += f" {min_message_bits_for_build(f(n), n):<9.1f}"
        print(row)
    print("\n(all-graphs and bipartite rows grow like n — hence the o(n) "
          "impossibility results; the trees row grows like log n — hence "
          "Theorem 2 is tight.)")
    return 0


def _cmd_demo(args) -> int:
    from .core import MODELS_BY_NAME, RandomScheduler, run
    from .graphs import generators as gen
    from .protocols.census import CENSUS_BY_KEY

    census_key, make_graph = _DEMOS[args.protocol]
    entry = CENSUS_BY_KEY[census_key]
    proto = entry.instantiate()
    model = MODELS_BY_NAME[entry.model]
    g = make_graph(gen, args.n, args.seed)

    result = run(g, proto, model, RandomScheduler(args.seed))
    if args.trace:
        from .analysis.trace import narrate

        print(narrate(result))
        return 0
    print(f"graph: {g}")
    print(f"protocol: {proto.name}  model: {model.name}")
    print(f"success: {result.success}")
    print("whiteboard (in write order):")
    for e in result.board.entries:
        print(f"  [{e.index:>3}] node {e.author:>3} ({e.bits:>3} bits): {e.payload}")
    print(f"output: {result.output}")
    print(f"max message: {result.max_message_bits} bits; "
          f"board total: {result.total_bits} bits")
    return 0


def _open_store(path):
    """A ResultStore for ``--store`` sweeps (created when missing — an
    opportunistic cache starts empty), or ``None`` without the flag."""
    if path is None:
        return None
    from .campaigns import ResultStore

    return ResultStore(path)


def _open_session(args, command: str):
    """A RunTelemetry session for ``--trace-out``, or ``None``."""
    path = getattr(args, "trace_out", None)
    if path is None:
        return None
    from .telemetry import RunTelemetry

    return RunTelemetry(path, command=command,
                        argv=getattr(args, "_argv", None))


def _activated(session):
    """The session's tracer scope, or a no-op block without one."""
    from contextlib import nullcontext

    return session.activate() if session is not None else nullcontext()


def _kernel_line(kernel) -> None:
    """End-of-run kernel summary (steps, batch occupancy, table
    hit-rate).  Printed to *stderr* on purpose: stdout reports are
    pinned byte-identical across semantics-free knobs (``--batch``,
    ``--jobs``, tracing), and occupancy is exactly the kind of number
    that differs across them."""
    if kernel is not None:
        print(f"    kernel: {kernel.summary()}", file=sys.stderr)


def _run_plan(plan, backend, store, telemetry=None, kernel=None):
    """Run ``plan``, through ``store`` when one is given; returns the
    merged report plus a cache-accounting suffix for the listing line.

    ``telemetry``/``kernel`` are observation-only sink layers — the
    report is field-identical with or without them."""
    if telemetry is not None:
        telemetry.add_plan(plan)
    if store is None:
        from .runtime.results import KernelStatsSink, ReportMergeSink

        sink = ReportMergeSink(
            "+".join(plan.protocol_names), "+".join(plan.model_names)
        )
        if kernel is not None:
            sink = KernelStatsSink(sink, kernel)
        if telemetry is not None:
            sink = telemetry.sink(sink)
        return plan.run(backend=backend, sink=sink), ""
    from .campaigns.runner import run_plan_with_store

    hits_before, writes_before = store.hits, store.writes
    report = run_plan_with_store(plan, store, backend=backend,
                                 telemetry=telemetry, kernel=kernel)
    hits = store.hits - hits_before
    executed = store.writes - writes_before
    return report, f" [store: {hits} hits, {executed} executed]"


def _cmd_sweep(args) -> int:
    from .core.models import MODELS_BY_NAME
    from .protocols.census import CENSUS_BY_KEY
    from .runtime import ExecutionPlan, resolve_backend

    backend = resolve_backend(args.jobs)
    instances = _build_instances(args)
    from .analysis.checkers import AcceptAny

    from .telemetry import KernelAccumulator

    all_ok = True
    store = _open_store(args.store)
    session = _open_session(args, "sweep")
    kernel = KernelAccumulator()
    try:
        with _activated(session):
            for key in args.protocols:
                entry = CENSUS_BY_KEY[key]
                checker = _sweep_checker(key)
                plan = ExecutionPlan.build(
                    entry.instantiate(),
                    MODELS_BY_NAME[entry.model],
                    instances,
                    mode=args.mode,
                    checker=checker,
                    exhaustive_threshold=args.threshold,
                    keep_runs=False,
                )
                report, cached = _run_plan(plan, backend, store,
                                           telemetry=session, kernel=kernel)
                all_ok &= report.ok
                vacuous = (
                    "  (no oracle registered: success/size only)"
                    if isinstance(checker, AcceptAny) else ""
                )
                print(f"[{len(plan):>3} tasks via {backend.name}]{cached} "
                      f"{report.summary()}{vacuous}")
                for n, bits in sorted(report.max_bits_by_n.items()):
                    print(f"    n={n}: max message {bits} bits")
    finally:
        if session is not None:
            session.finish()
        if store is not None:
            store.close()
    _kernel_line(kernel.kernel)
    return 0 if all_ok else 1


def _cmd_stress(args) -> int:
    from .adversaries import OutOfBudget
    from .faults.spec import resolve_faults
    from .runtime import resolve_backend

    try:
        resolve_faults(args.faults)  # typos fail as usage errors
    except ValueError as exc:
        raise SystemExit(f"stress: {exc}")
    from .telemetry import KernelAccumulator

    backend = resolve_backend(args.jobs)
    instances = _build_instances(args)
    store = _open_store(args.store)
    session = _open_session(args, "stress")
    kernel = KernelAccumulator()
    try:
        with _activated(session):
            all_ok = _stress_protocols(args, backend, instances, store,
                                       telemetry=session, kernel=kernel)
    except (KeyboardInterrupt, OutOfBudget) as exc:
        if session is not None:
            session.finish("interrupted")
        print()
        print(_interrupt_summary("stress", exc, store))
        return 130
    finally:
        if session is not None:
            session.finish()
        if store is not None:
            store.close()
    _kernel_line(kernel.kernel)
    return 0 if all_ok else 1


def _interrupt_summary(command: str, exc: BaseException, store) -> str:
    """One partial-progress line for an interrupted run.

    Outcomes stream into the store as they complete, so everything
    committed before the interrupt is durable — re-running the same
    command resumes from there instead of starting over.
    """
    reason = type(exc).__name__
    if store is None:
        return (f"{command}: interrupted ({reason}); no --store, so "
                "partial results are discarded")
    return (f"{command}: interrupted ({reason}); {store.writes} executed "
            f"outcome(s) committed, {store.hits} served from cache — "
            "re-run the same command to resume")


def _stress_protocols(args, backend, instances, store,
                      telemetry=None, kernel=None) -> bool:
    from .core.models import MODELS_BY_NAME
    from .protocols.census import CENSUS_BY_KEY
    from .runtime import ExecutionPlan

    all_ok = True
    for key in args.protocols:
        entry = CENSUS_BY_KEY[key]
        proto = entry.instantiate()
        plan = ExecutionPlan.build(
            proto,
            MODELS_BY_NAME[entry.model],
            instances,
            mode="stress",
            checker=_sweep_checker(key),
            exhaustive_threshold=args.threshold,
            score=args.score,
            share_table=args.share_table,
            faults=args.faults,
            batch=args.batch,
        )
        report, cached = _run_plan(plan, backend, store,
                                   telemetry=telemetry, kernel=kernel)
        all_ok &= report.ok
        print(f"[{len(plan):>3} tasks via {backend.name}]{cached} "
              f"{report.summary()}")
        for witness in report.witnesses:
            outcome = ("DEADLOCK" if witness.deadlock
                       else f"{witness.bits:>3} bits")
            schedule = ",".join(map(str, witness.schedule))
            if len(schedule) > 48:
                schedule = schedule[:45] + "..."
            minimal = ""
            if witness.minimal_schedule is not None:
                shrunk = ",".join(map(str, witness.minimal_schedule))
                if len(shrunk) > 32:
                    shrunk = shrunk[:29] + "..."
                minimal = (f"  minimal {shrunk or '()'} "
                           f"({len(witness.minimal_schedule)}"
                           f"/{len(witness.schedule)} events)")
            print(f"    n={witness.graph.n:>3} {witness.strategy:<20} "
                  f"{outcome}  schedule {schedule}{minimal}")
        if args.trace and report.witnesses:
            from .analysis.trace import narrate_witness

            worst = max(
                report.witnesses,
                key=lambda w: (w.deadlock, w.bits),
            )
            print()
            print(narrate_witness(worst, entry.instantiate()))
    return all_ok


def _campaign_spec(args):
    """Build a CampaignSpec from CLI arguments (or the --quick preset).

    Spec mistakes — unknown cells, sizes a family cannot sample —
    surface here as clean usage errors; anything raised later in the
    run is a real failure and keeps its traceback.
    """
    from .campaigns import (
        CampaignCell,
        CampaignSpec,
        quick_campaign,
        warm_smoke_campaign,
    )

    try:
        if getattr(args, "quick", False) or getattr(args, "warm_smoke", False):
            preset = (
                quick_campaign if getattr(args, "quick", False)
                else warm_smoke_campaign
            )
            spec = preset(args.name)
            if getattr(args, "faults", None) is not None:
                import dataclasses

                spec = dataclasses.replace(spec, faults=args.faults)
            return spec
        if not args.protocols:
            raise SystemExit(
                "campaign: provide at least one --protocol (or use --quick)"
            )
        families = args.families or ["degenerate2"]
        cells = tuple(
            CampaignCell(
                protocol_key=key,
                family=fam,
                sizes=tuple(args.sizes),
                seeds=tuple(args.seeds),
                allow_deadlock=args.allow_deadlock,
            )
            for key in args.protocols
            for fam in families
        )
        spec = CampaignSpec(
            name=args.name,
            cells=cells,
            mode=args.mode,
            exhaustive_threshold=args.threshold,
            score=args.score,
            share_table=args.share_table,
            faults=args.faults,
        )
        for campaign_cell in spec.cells:
            campaign_cell.instances()  # eager: invalid sizes fail here
        return spec
    except ValueError as exc:
        raise SystemExit(f"campaign: {exc}")


def _existing_store(path: str):
    """Open a store that must already exist (status/report/gc must not
    conjure an empty database out of a typo'd path)."""
    from pathlib import Path

    from .campaigns import ResultStore

    if path != ":memory:" and not Path(path).exists():
        raise SystemExit(
            f"campaign: store {path!r} does not exist — create one with "
            f"`campaign run --store {path} ...`"
        )
    return ResultStore(path)


def _cmd_campaign_run(args) -> int:
    from .adversaries import OutOfBudget
    from .campaigns import Campaign, ResultStore
    from .runtime import resolve_backend

    spec = _campaign_spec(args)
    backend = resolve_backend(args.jobs)
    session = _open_session(args, "campaign run")
    with ResultStore(args.store) as store:
        try:
            with _activated(session):
                result = Campaign(spec).run(
                    store, backend=backend, telemetry=session,
                    warm_frontiers=getattr(args, "warm_frontiers", False),
                )
        except (KeyboardInterrupt, OutOfBudget) as exc:
            if session is not None:
                session.finish("interrupted")
            print()
            print(_interrupt_summary(f"campaign {spec.name!r}", exc, store))
            return 130
        finally:
            if session is not None:
                session.finish()
        print(f"[store {args.store}, backend {backend.name}]")
        for cell_result in result.cells:
            cell = cell_result.cell
            print(f"  {cell.protocol_key} x {cell.family}: "
                  f"{cell_result.tasks} tasks, {cell_result.hits} hits, "
                  f"{cell_result.executed} executed — "
                  f"{cell_result.report.summary()}")
        print(result.summary())
        _kernel_line(result.kernel)
        if args.expect_hit_rate is not None and (
            result.hit_rate < args.expect_hit_rate
        ):
            print(f"EXPECTED hit rate >= {args.expect_hit_rate:.0%}, "
                  f"got {result.hit_rate:.0%}")
            return 1
        return 0 if result.ok else 1


def _cmd_campaign_status(args) -> int:
    with _existing_store(args.store) as store:
        stats = store.stats()
        print(f"store {stats['path']} (code salt {stats['salt']})")
        print(f"  cached results: {stats['results']}")
        print(f"  frontier rows: {stats['frontiers']}")
        names = sorted(
            set(stats["results_by_campaign"]) | set(stats["generations"])
        )
        for campaign in names:
            count = stats["results_by_campaign"].get(campaign, 0)
            generations = stats["generations"].get(campaign, 0)
            print(f"    {campaign}: {count} results, "
                  f"{generations} trajectory generation(s)")
            kernel = store.kernel_summary(campaign)
            if kernel is not None:
                print(f"      kernel (last run): {kernel.summary()}")
    return 0


def _cmd_campaign_report(args) -> int:
    from .campaigns import diff_generations, render_trajectories

    with _existing_store(args.store) as store:
        print(render_trajectories(store, args.name))
        if args.diff is not None:
            if args.name is None:
                raise SystemExit("campaign report --diff needs --name")
            old, new = args.diff
            lines = diff_generations(store, args.name, old, new)
            print()
            print(f"diff of {args.name!r} generations {old} -> {new}:")
            for line in lines or ["  (identical extremal records)"]:
                print(f"  {line}")
    return 0


def _cmd_campaign_gc(args) -> int:
    from .campaigns import Campaign

    spec = _campaign_spec(args)
    with _existing_store(args.store) as store:
        before = store.result_count()
        campaign = Campaign(spec)
        removed = store.gc(
            campaign.live_fingerprints(store), campaign=spec.name
        )
        frontiers_removed = store.gc_frontiers(
            campaign.live_frontier_cell_keys()
        )
        print(f"gc[{spec.name}]: removed {removed} stale results, "
              f"{before - removed} remain in the store; "
              f"{frontiers_removed} stale frontier rows removed, "
              f"{store.frontier_count()} remain")
    return 0


def _cmd_campaign_claims(args) -> int:
    from .faults.claims import verify_claims
    from .protocols.census import CENSUS_BY_KEY
    from .runtime import resolve_backend

    backend = resolve_backend(args.jobs)
    store = _open_store(args.store)
    try:
        try:
            verdicts = verify_claims(
                store=store, backend=backend,
                keys=args.protocols, name=args.name,
            )
        except ValueError as exc:
            raise SystemExit(f"campaign claims: {exc}")
        violated = [v for v in verdicts if v.violated]
        for verdict in verdicts:
            print(verdict.summary())
        if args.trace and violated:
            from .analysis.trace import narrate_witness

            for verdict in violated:
                entry = CENSUS_BY_KEY[verdict.protocol_key]
                print()
                print(f"-- witness refuting {verdict.protocol_key} "
                      f"under {verdict.claim} --")
                print(narrate_witness(verdict.witnesses[0],
                                      entry.instantiate()))
        print()
        print(f"{len(verdicts) - len(violated)}/{len(verdicts)} fault "
              "claims hold (checked exhaustively)")
    finally:
        if store is not None:
            store.close()
    return 1 if violated else 0


def _cmd_campaign(args) -> int:
    handler = {
        "run": _cmd_campaign_run,
        "status": _cmd_campaign_status,
        "report": _cmd_campaign_report,
        "gc": _cmd_campaign_gc,
        "claims": _cmd_campaign_claims,
    }[args.campaign_command]
    return handler(args)


def _cmd_telemetry(args) -> int:
    from .telemetry import (
        TraceSchemaError,
        load_trace,
        render_report,
        validate_trace,
    )

    try:
        if args.telemetry_command == "validate":
            manifest = validate_trace(args.trace)
            print(f"ok: run {manifest['run_id']} "
                  f"({manifest['command'] or 'run'}) — "
                  f"{manifest['tasks']} tasks, "
                  f"{manifest['traced_tasks']} traced, "
                  f"{manifest['store_hits']} store hits, "
                  f"schema {manifest['schema']}")
            return 0
        trace = load_trace(args.trace)
    except FileNotFoundError:
        raise SystemExit(f"telemetry: no such trace {args.trace!r}")
    except TraceSchemaError as exc:
        print(f"INVALID: {exc}")
        return 1
    print(render_report(trace, top=args.top), end="")
    return 0


def _cmd_experiment(args) -> int:
    from .experiments import get_experiment

    exp = get_experiment(args.experiment_id)
    print(f"{exp.experiment_id} — {exp.title}  (paper artefact: {exp.paper_artifact})")
    print()
    result = exp.run(quick=not args.full)
    print(result.artifact)
    print()
    print("verdict:", "OK" if result.ok else "FAILED")
    return 0 if result.ok else 1


def _cmd_reproduce_all(args) -> int:
    from .experiments import run_all

    results = run_all(quick=not args.full, jobs=args.jobs)
    failed = [r for r in results if not r.ok]
    for r in results:
        print(f"{r.experiment_id:<5} {'OK' if r.ok else 'FAILED'}   ", end="")
        first = r.artifact.splitlines()[0] if r.artifact else ""
        print(first)
    print()
    print(f"{len(results) - len(failed)}/{len(results)} experiments regenerated OK")
    return 0 if not failed else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # Remembered for run manifests (--trace-out); parse_args already
    # fell back to sys.argv itself when argv is None.
    args._argv = list(argv) if argv is not None else sys.argv[1:]
    if args.command == "table2":
        return _cmd_table2(args)
    if args.command == "fig1":
        return _cmd_fig(1)
    if args.command == "fig2":
        return _cmd_fig(2)
    if args.command == "lemma1":
        return _cmd_lemma1(args)
    if args.command == "lemma3":
        return _cmd_lemma3(args)
    if args.command == "demo":
        return _cmd_demo(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "stress":
        return _cmd_stress(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "telemetry":
        return _cmd_telemetry(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "reproduce-all":
        return _cmd_reproduce_all(args)
    if args.command == "protocols":
        from .protocols.census import render_census

        print(render_census())
        return 0
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
