"""Pluggable scoring: what "bad for the protocol" means to a search.

Greedy and beam searches used to hard-code one badness measure (bits
just written / board maxima).  A :class:`ScoreHook` makes the measure a
policy object a protocol author can swap — the ROADMAP's "plug
domain-specific badness into the same search harness" item — without
touching the search mechanics:

* :meth:`ScoreHook.step_score` rates one freshly applied write event
  (greedy's one-step lookahead; higher = more adversarial);
* :meth:`ScoreHook.prefix_score` rates a whole schedule prefix (beam's
  frontier ranking; lexicographic tuple, higher = more adversarial).

Hooks are identified by a primitive ``name`` and must carry only
primitive construction attributes, so a strategy configured with a hook
still fingerprints deterministically in campaign stores (the PR-4
invariant: compound attributes contribute their class name; the
behavioural knob rides along as the strategy's primitive ``score_name``
attribute).  The builtin hooks live in :data:`SCORE_HOOKS` and are
addressable from the CLI (``stress --score``).
"""

from __future__ import annotations

from typing import Callable, Union

from ..core.execution import ExecutionState

__all__ = [
    "ScoreHook",
    "BitsGreedyScore",
    "DeadlockFirstScore",
    "DecodeFailureScore",
    "SCORE_HOOKS",
    "resolve_score",
]


class ScoreHook:
    """Strategy-independent badness measure over execution states.

    Subclasses override one or both methods; the defaults reproduce the
    historical hard-coded behaviour (bits-greedy).  Implementations
    must be deterministic, side-effect free on the state, and picklable
    (stress plans cross process boundaries).
    """

    name: str = "score"

    def step_score(self, state: ExecutionState) -> float:
        """Badness of the *last applied write event* (the state is the
        child configuration just after it).  Higher is worse for the
        protocol; greedy descents may negate it for their deferring
        polarity."""
        return state.board.entries[-1].bits

    def prefix_score(self, state: ExecutionState) -> tuple:
        """Badness of the whole prefix, as a lexicographic tuple;
        beam keeps the ``width`` highest."""
        board = state.board
        return (board.max_bits(), board.total_bits())


class BitsGreedyScore(ScoreHook):
    """The default: maximise message bits (exactly the pre-hook
    behaviour of greedy and beam, pinned by the witness-identity
    tests)."""

    name = "bits-greedy"


class DeadlockFirstScore(ScoreHook):
    """Starvation first: prefer children that leave the fewest
    schedulable candidates (the deadlock seeker's child ordering as a
    score), with bits as the tiebreak."""

    name = "deadlock-first"

    def step_score(self, state: ExecutionState) -> float:
        # A candidate-free non-terminal child is a deadlock — the
        # searches already short-circuit on state.deadlocked, so the
        # score only has to steer towards starvation.
        n = state.n
        return (n - len(state.candidates)) * (n + 1) + min(
            state.board.entries[-1].bits, n
        )

    def prefix_score(self, state: ExecutionState) -> tuple:
        board = state.board
        return (-len(state.candidates), board.max_bits(),
                board.total_bits())


class DecodeFailureScore(ScoreHook):
    """Hunt configurations whose board the protocol cannot decode.

    Probes ``protocol.output`` on the current (possibly partial) board;
    an exception — e.g. a sketch whose ℓ₀-samplers all fail — is the
    jackpot and dominates any bit count.  Decode attempts cost real
    time, so this hook is opt-in (``stress --score decode-failure``).
    """

    name = "decode-failure"

    def _decodes(self, state: ExecutionState) -> bool:
        try:
            state.proto.output(state.board.view(), state.n)
        except Exception:
            return False
        return True

    def step_score(self, state: ExecutionState) -> float:
        fails = not self._decodes(state)
        return (1 << 20 if fails else 0) + state.board.entries[-1].bits

    def prefix_score(self, state: ExecutionState) -> tuple:
        board = state.board
        return (0 if self._decodes(state) else 1, board.max_bits(),
                board.total_bits())


SCORE_HOOKS: dict[str, Callable[[], ScoreHook]] = {
    BitsGreedyScore.name: BitsGreedyScore,
    DeadlockFirstScore.name: DeadlockFirstScore,
    DecodeFailureScore.name: DecodeFailureScore,
}


def resolve_score(score: Union[None, str, ScoreHook]) -> ScoreHook:
    """A hook instance from a name, an instance, or ``None`` (default
    bits-greedy); unknown names raise with the known ones listed."""
    if score is None:
        return BitsGreedyScore()
    if isinstance(score, ScoreHook):
        return score
    try:
        return SCORE_HOOKS[score]()
    except KeyError:
        known = ", ".join(sorted(SCORE_HOOKS))
        raise ValueError(
            f"unknown score hook {score!r}; known hooks: {known}"
        ) from None
