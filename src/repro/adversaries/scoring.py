"""Pluggable scoring: what "bad for the protocol" means to a search.

Greedy and beam searches used to hard-code one badness measure (bits
just written / board maxima).  A :class:`ScoreHook` makes the measure a
policy object a protocol author can swap — the ROADMAP's "plug
domain-specific badness into the same search harness" item — without
touching the search mechanics:

* :meth:`ScoreHook.step_score` rates one freshly applied write event
  (greedy's one-step lookahead; higher = more adversarial);
* :meth:`ScoreHook.prefix_score` rates a whole schedule prefix (beam's
  frontier ranking; lexicographic tuple, higher = more adversarial).

Hooks are identified by a primitive ``name`` and must carry only
primitive construction attributes, so a strategy configured with a hook
still fingerprints deterministically in campaign stores (the PR-4
invariant: compound attributes contribute their class name; the
behavioural knob rides along as the strategy's primitive ``score_name``
attribute).  The builtin hooks live in :data:`SCORE_HOOKS` and are
addressable from the CLI (``stress --score``).
"""

from __future__ import annotations

from typing import Callable, Union

from ..core.execution import ExecutionState

__all__ = [
    "ScoreHook",
    "BitsGreedyScore",
    "DeadlockFirstScore",
    "DecodeFailureScore",
    "SCORE_HOOKS",
    "register_score_hook",
    "resolve_score",
]


class ScoreHook:
    """Strategy-independent badness measure over execution states.

    Subclasses override one or both methods; the defaults reproduce the
    historical hard-coded behaviour (bits-greedy).  Implementations
    must be deterministic, side-effect free on the state, and picklable
    (stress plans cross process boundaries).
    """

    name: str = "score"

    def step_score(self, state: ExecutionState) -> float:
        """Badness of the *last applied event* (the state is the child
        configuration just after it).  Higher is worse for the protocol;
        greedy descents may negate it for their deferring polarity.
        Reads ``last_event_bits`` rather than the board tail because a
        crash or loss fault event leaves the board untouched."""
        return state.last_event_bits

    def prefix_score(self, state: ExecutionState) -> tuple:
        """Badness of the whole prefix, as a lexicographic tuple;
        beam keeps the ``width`` highest."""
        board = state.board
        return (board.max_bits(), board.total_bits())

    # -- batched scoring ----------------------------------------------
    #
    # A hook may score a whole BatchedExecutionState generation at once.
    # The consistency guard is load-bearing: a subclass that customises
    # ``prefix_score`` without providing a matching batched form (e.g. a
    # protocol-supplied census hook) must NOT inherit its parent's
    # batched scoring — the beam then falls back to the scalar pass,
    # keeping batched and scalar witnesses field-identical by
    # construction.

    #: Whether :meth:`batch_prefix_scores` probes board payloads — the
    #: batched beam then tracks view ids even for models that do not
    #: otherwise need them.
    batch_needs_views: bool = False

    def _batch_consistent(self, cls: type) -> bool:
        """True iff ``self`` still uses ``cls``'s scalar prefix_score
        (so ``cls``'s batched form scores identically)."""
        return type(self).prefix_score is cls.prefix_score

    def supports_batch(self) -> bool:
        """Whether batched beam passes may use this hook's
        :meth:`batch_prefix_scores` (False falls back to scalar)."""
        return self._batch_consistent(ScoreHook)

    def batch_prefix_scores(self, batch, lanes) -> list:
        """``prefix_score`` tuples for ``lanes`` of a
        :class:`~repro.core.batch.BatchedExecutionState`, in order.
        Only called when :meth:`supports_batch` is true."""
        return list(zip(batch.maxb[lanes].tolist(),
                        batch.totb[lanes].tolist()))


class BitsGreedyScore(ScoreHook):
    """The default: maximise message bits (exactly the pre-hook
    behaviour of greedy and beam, pinned by the witness-identity
    tests)."""

    name = "bits-greedy"


class DeadlockFirstScore(ScoreHook):
    """Starvation first: prefer children that leave the fewest
    schedulable candidates (the deadlock seeker's child ordering as a
    score), with bits as the tiebreak."""

    name = "deadlock-first"

    def step_score(self, state: ExecutionState) -> float:
        # A candidate-free non-terminal child is a deadlock — the
        # searches already short-circuit on state.deadlocked, so the
        # score only has to steer towards starvation.
        n = state.n
        return (n - len(state.write_candidates)) * (n + 1) + min(
            state.last_event_bits, n
        )

    def prefix_score(self, state: ExecutionState) -> tuple:
        board = state.board
        return (-len(state.write_candidates), board.max_bits(),
                board.total_bits())

    def supports_batch(self) -> bool:
        return self._batch_consistent(DeadlockFirstScore)

    def batch_prefix_scores(self, batch, lanes) -> list:
        import numpy as np

        writable = np.bitwise_count(batch.write_mask()[lanes])
        return list(zip((-writable.astype(np.int64)).tolist(),
                        batch.maxb[lanes].tolist(),
                        batch.totb[lanes].tolist()))


class DecodeFailureScore(ScoreHook):
    """Hunt configurations whose board the protocol cannot decode.

    Probes ``protocol.output`` on the current (possibly partial) board;
    an exception — e.g. a sketch whose ℓ₀-samplers all fail — is the
    jackpot and dominates any bit count.  Decode attempts cost real
    time, so this hook is opt-in (``stress --score decode-failure``).
    """

    name = "decode-failure"

    def _decodes(self, state: ExecutionState) -> bool:
        try:
            state.proto.output(state.board.view(), state.n)
        except Exception:
            return False
        return True

    def step_score(self, state: ExecutionState) -> float:
        fails = not self._decodes(state)
        return (1 << 20 if fails else 0) + state.last_event_bits

    def prefix_score(self, state: ExecutionState) -> tuple:
        board = state.board
        return (0 if self._decodes(state) else 1, board.max_bits(),
                board.total_bits())

    batch_needs_views = True  # the probe reads board payloads per lane

    def supports_batch(self) -> bool:
        return (self._batch_consistent(DecodeFailureScore)
                and type(self)._decodes is DecodeFailureScore._decodes)

    def batch_prefix_scores(self, batch, lanes) -> list:
        decodes = batch.cell._decodes
        return [(0 if decodes(vid) else 1, m, t)
                for vid, m, t in zip(batch.view[lanes].tolist(),
                                     batch.maxb[lanes].tolist(),
                                     batch.totb[lanes].tolist())]


SCORE_HOOKS: dict[str, Callable[[], ScoreHook]] = {
    BitsGreedyScore.name: BitsGreedyScore,
    DeadlockFirstScore.name: DeadlockFirstScore,
    DecodeFailureScore.name: DecodeFailureScore,
}


def register_score_hook(factory: Callable[[], ScoreHook],
                        name: Union[None, str] = None) -> str:
    """Register a protocol-supplied hook under a primitive name.

    ``name`` defaults to ``factory().name`` (probing one instance).  The
    registration is idempotent for the same factory; a *different*
    factory under an existing name raises — names are fingerprinted into
    campaign stores, so silently rebinding one would alias distinct
    behaviours.  Returns the registered name so census wiring can thread
    it straight into ``score_name`` knobs.
    """
    hook_name = name if name is not None else factory().name
    existing = SCORE_HOOKS.get(hook_name)
    if existing is not None and existing is not factory:
        raise ValueError(
            f"score hook name {hook_name!r} is already registered to "
            f"{existing!r}"
        )
    SCORE_HOOKS[hook_name] = factory
    return hook_name


def resolve_score(score: Union[None, str, ScoreHook]) -> ScoreHook:
    """A hook instance from a name, an instance, or ``None`` (default
    bits-greedy); unknown names raise with the known ones listed."""
    if score is None:
        return BitsGreedyScore()
    if isinstance(score, ScoreHook):
        return score
    try:
        return SCORE_HOOKS[score]()
    except KeyError:
        known = ", ".join(sorted(SCORE_HOOKS))
        raise ValueError(
            f"unknown score hook {score!r}; known hooks: {known}"
        ) from None
