"""Beam search over schedule prefixes."""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Optional, Union

from ..core.execution import ExecutionState
from ..core.models import ModelSpec
from ..core.protocol import Protocol
from ..graphs.labeled_graph import LabeledGraph
from ..faults.spec import FaultSpec, resolve_faults
from .base import AdversarySearch, Witness, worst_witness
from .kernel import OutOfBudget, SearchContext, complete_ascending
from .scoring import ScoreHook, resolve_score
from .transposition import TranspositionTable

__all__ = ["BeamSearchAdversary"]


class BeamSearchAdversary(AdversarySearch):
    """Breadth-first over schedule prefixes, keeping the ``width`` most
    promising per depth.

    Each frontier state is an independent :class:`ExecutionState` fork
    (:meth:`~repro.core.execution.ExecutionState.copy`); expanding it
    applies every adversary choice once.  Prefixes are ranked worst-first
    by the :class:`~repro.adversaries.scoring.ScoreHook` prefix score
    (default: largest message so far, board total) — a deadlocked or
    completed child leaves the frontier and competes for the returned
    witness directly, so terminal worst cases are never pruned away,
    only unfinished prefixes are.

    For stateless protocols the sorted frontier is **deduplicated by
    configuration digest** (:meth:`~repro.core.execution.ExecutionState.
    config_key`) before truncation: two prefixes that digest to the
    same configuration have identical futures, so keeping the
    better-sorted one loses nothing and frees a beam slot for a
    genuinely different prefix.

    The first pass ranks deterministically (ties towards the
    lexicographically smaller schedule); every *restart* re-runs the
    whole beam with a seeded random tiebreak, which lets equal-scoring
    prefixes survive in a different order and escape ties that hide the
    optimum.  Cost per pass: at most ``width · n`` expansions of at most
    ``n`` children each.

    When the cell supports the batched structure-of-arrays core
    (:func:`repro.core.batch.batch_supported`) and the scoring hook has
    a vectorized twin, the whole frontier is stepped as one
    :class:`~repro.core.batch.BatchedExecutionState` per generation —
    field-identical witnesses, step accounting and exceptions, just
    faster.  ``batch=None`` (default) auto-selects; ``False`` pins the
    scalar reference; the knob is underscore-private so campaign
    fingerprints never see it.
    """

    name = "beam"

    def __init__(self, width: int = 8, restarts: int = 1, seed: int = 0,
                 score: Union[None, str, ScoreHook] = None,
                 batch: Optional[bool] = None) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if restarts < 0:
            raise ValueError(f"restarts must be >= 0, got {restarts}")
        self.width = width
        self.restarts = restarts
        self.seed = seed
        self.score = resolve_score(score)
        #: Primitive mirror of the hook for campaign fingerprints.
        self.score_name = self.score.name
        # Stored underscore-private on purpose: the batched pass is an
        # equivalence-pinned accelerator, not a semantic knob, so it
        # must NOT enter campaign fingerprints (which harvest public
        # primitive attributes).  None = auto (batched when supported),
        # False = always scalar, True = batched when supported.
        self._batch = batch

    @property
    def batch(self) -> Optional[bool]:
        """The batching preference (None = auto)."""
        return self._batch

    def _use_batch(self, graph, protocol, model) -> bool:
        if self._batch is False:
            return False
        from ..core.batch import batch_supported

        return (batch_supported(graph, protocol, model)
                and self.score.supports_batch())

    def search(
        self,
        graph: LabeledGraph,
        protocol: Protocol,
        model: ModelSpec,
        bit_budget: Optional[int] = None,
        *,
        context: Optional[SearchContext] = None,
        faults: Union[None, str, FaultSpec] = None,
    ) -> Witness:
        spec = resolve_faults(faults)
        ctx = SearchContext.ensure(context)
        if ctx.table is not None:
            ctx.table.bind(graph, protocol, model, bit_budget, faults=spec)
        ctx.stats.searches += 1
        meter = ctx.meter(None)
        cell = None
        if self._use_batch(graph, protocol, model):
            from ..core.batch import _BatchCell

            # One cell per search: restarts share the interned message
            # records, view trie, and dedupe chains.  Built here so any
            # round-0 protocol exception surfaces exactly where the
            # scalar pass would raise it (uncaught below).
            cell = _BatchCell(graph, protocol, model, bit_budget, spec)
        best: Optional[Witness] = None
        try:
            for attempt in range(1 + self.restarts):
                rng = ctx.rng(self.seed, attempt) if attempt else None
                if attempt:
                    ctx.stats.restarts += 1
                if cell is not None:
                    witness = self._pass_batched(cell, rng, ctx, meter)
                else:
                    witness = self._pass(graph, protocol, model, bit_budget,
                                         rng, ctx, meter, spec)
                best = witness if best is None else worst_witness(best, witness)
        except OutOfBudget:
            pass  # context budget exhausted: return the incumbent
        if best is None:
            state = ExecutionState.initial(graph, protocol, model, bit_budget,
                                           faults=spec)
            complete_ascending(state, meter)
            best = self._witness(state, meter.spent)
        return replace(best, explored=meter.spent)

    def _pass(
        self,
        graph: LabeledGraph,
        protocol: Protocol,
        model: ModelSpec,
        bit_budget: Optional[int],
        rng: Optional[random.Random],
        ctx: SearchContext,
        meter,
        faults: FaultSpec = None,
    ) -> Witness:
        best: Optional[Witness] = None
        hook = self.score
        table = ctx.table
        initial = ExecutionState.initial(graph, protocol, model, bit_budget,
                                         faults=faults)
        if initial.terminal:  # 0 writes: deadlock at round 0, or n == 0
            return self._witness(initial, meter.spent)
        dedupe = initial.stateless
        frontier = [initial]
        while frontier:
            scored = []
            for state in frontier:
                for choice in state.candidates:
                    meter.spend()
                    child = state.copy().advance(choice)
                    if child.terminal:
                        witness = self._witness(child, meter.spent)
                        best = (witness if best is None
                                else worst_witness(best, witness))
                    else:
                        tiebreak = (rng.random() if rng is not None
                                    else 0.0)
                        scored.append((
                            tuple(-part for part in hook.prefix_score(child))
                            + (tiebreak, child.schedule),
                            child,
                        ))
            scored.sort(key=lambda item: item[0])
            frontier = []
            seen: set = set()
            for _, state in scored:
                if dedupe:
                    key = TranspositionTable.key_for(state)
                    if key in seen:
                        continue
                    seen.add(key)
                frontier.append(state)
                if len(frontier) >= self.width:
                    break
        if best is None:
            # Unreachable for a well-formed engine (the initial state of a
            # deadlocked instance is itself terminal-free only if some
            # prefix terminates), but guard against protocol bugs.
            raise RuntimeError("beam search found no terminal configuration")
        return best

    def _pass_batched(self, cell, rng: Optional[random.Random],
                      ctx: SearchContext, meter) -> Witness:
        """One beam pass on the batched core — field-identical to
        :meth:`_pass` (pinned by ``tests/adversaries/test_batched_beam``):
        same meter spending, same rng draws, same witness folds and
        ``explored`` counts, same dedupe/truncation, and per-lane
        violations re-raised at exactly the scalar generation index.
        """
        import numpy as np

        from ..core.batch import BatchedExecutionState

        hook = self.score
        best: Optional[Witness] = None
        frontier = BatchedExecutionState.root(
            cell, track_sched=True, track_bp=True,
            track_views=getattr(hook, "batch_needs_views", False))
        # frontier_rank[i] = position of lane i's schedule in the sorted
        # order of all frontier schedules.  Within a generation every
        # schedule has the same length, so children order exactly like
        # (parent schedule, choice); the parent component therefore only
        # needs the parents' *relative* order, which the previous
        # generation already computed — no schedule tuples are ever
        # materialized or sorted in the hot loop.
        frontier_rank = np.zeros(1, dtype=np.int64)

        def _terminal_witness(batch, lane, explored):
            return Witness(
                strategy=self.name,
                schedule=batch.schedule_of(lane),
                bits=int(batch.maxb[lane]),
                total_bits=int(batch.totb[lane]),
                deadlock=batch.deadlocked_at(lane),
                explored=explored,
            )

        if bool(frontier.terminal_mask()[0]):  # 0 writes possible
            return _terminal_witness(frontier, 0, meter.spent)
        while frontier.size:
            lanes, choices = frontier.expansion()
            children = frontier.fork(lanes, choices)
            total = children.size
            first_viol = children.first_violation()
            # The scalar pass interleaves meter.spend() with each child
            # advance, so a budget raise at child j beats a violation at
            # child j (spend-before-advance) and any violation beats the
            # budget of every later child.
            if meter.limit is None and meter.context_limit is None:
                if first_viol is not None:
                    meter.charge(first_viol + 1)
                    raise children.violations[first_viol]
                meter.charge(total)
            else:
                for j in range(total):
                    meter.spend()
                    if first_viol is not None and j == first_viol:
                        raise children.violations[j]
            spent_before = meter.spent - total
            done = children.done_mask()
            terminal = done | (children.write_mask() == np.uint64(0))
            term_idx = np.nonzero(terminal)[0]
            if term_idx.size:
                done_l = done.tolist()
                maxb_l = children.maxb.tolist()
                totb_l = children.totb.tolist()
                # Folding terminals lane-by-lane through worst_witness
                # keeps the FIRST maximal lane; max() over the rank
                # tuples with the same tie rule picks the same lane, so
                # only one Witness is built per generation.
                top = max(
                    term_idx.tolist(),
                    key=lambda j: (not done_l[j], maxb_l[j], totb_l[j],
                                   -j),
                )
                witness = Witness(
                    strategy=self.name,
                    schedule=children.schedule_of(top),
                    bits=maxb_l[top],
                    total_bits=totb_l[top],
                    deadlock=not done_l[top],
                    explored=spent_before + top + 1,
                )
                best = (witness if best is None
                        else worst_witness(best, witness))
            live = np.nonzero(~terminal)[0]
            ctx.stats.batch_children += total
            ctx.stats.batch_kept += int(term_idx.size)
            if live.size == 0:
                break
            live_l = live.tolist()
            scores = hook.batch_prefix_scores(children, live_l)
            parent_rank = frontier_rank[lanes[live]]
            choice_col = choices[live].astype(np.int64)
            if rng is None:
                tiebreak = np.zeros(live.size)
            else:
                tiebreak = np.array([rng.random() for _ in live_l])
            # Ascending sort on (-score parts..., tiebreak, schedule):
            # np.lexsort keys are lowest-priority first, and compares
            # column-wise exactly like the scalar tuple sort (the
            # (parent_rank, choice) pair is unique per child, so the
            # total order is strict and stability cannot differ).
            score_cols = [np.asarray(col, dtype=np.int64)
                          for col in zip(*scores)]
            order = np.lexsort(
                (choice_col, parent_rank, tiebreak)
                + tuple(-col for col in reversed(score_cols)))
            dedupe_key = children._dedupe_key_builder()
            seen: set = set()
            keep: list[int] = []
            for pos in order.tolist():
                j = live_l[pos]
                key = dedupe_key(j)
                if key in seen:
                    continue
                seen.add(key)
                keep.append(j)
                if len(keep) >= self.width:
                    break
            ctx.stats.batch_kept += len(keep)
            keep_arr = np.array(keep, dtype=np.int64)
            # Next generation's parent ranks: the kept children, ordered
            # by (parent rank, choice) — i.e. by schedule tuple.
            order_kept = np.lexsort((choices[keep_arr].astype(np.int64),
                                     frontier_rank[lanes[keep_arr]]))
            frontier_rank = np.empty(keep_arr.size, dtype=np.int64)
            frontier_rank[order_kept] = np.arange(keep_arr.size)
            frontier = children.compact(keep_arr)
        if best is None:
            raise RuntimeError("beam search found no terminal configuration")
        return best
