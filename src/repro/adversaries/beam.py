"""Beam search over schedule prefixes."""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Optional, Union

from ..core.execution import ExecutionState
from ..core.models import ModelSpec
from ..core.protocol import Protocol
from ..graphs.labeled_graph import LabeledGraph
from ..faults.spec import FaultSpec, resolve_faults
from .base import AdversarySearch, Witness, worst_witness
from .kernel import OutOfBudget, SearchContext, complete_ascending
from .scoring import ScoreHook, resolve_score
from .transposition import TranspositionTable

__all__ = ["BeamSearchAdversary"]


class BeamSearchAdversary(AdversarySearch):
    """Breadth-first over schedule prefixes, keeping the ``width`` most
    promising per depth.

    Each frontier state is an independent :class:`ExecutionState` fork
    (:meth:`~repro.core.execution.ExecutionState.copy`); expanding it
    applies every adversary choice once.  Prefixes are ranked worst-first
    by the :class:`~repro.adversaries.scoring.ScoreHook` prefix score
    (default: largest message so far, board total) — a deadlocked or
    completed child leaves the frontier and competes for the returned
    witness directly, so terminal worst cases are never pruned away,
    only unfinished prefixes are.

    For stateless protocols the sorted frontier is **deduplicated by
    configuration digest** (:meth:`~repro.core.execution.ExecutionState.
    config_key`) before truncation: two prefixes that digest to the
    same configuration have identical futures, so keeping the
    better-sorted one loses nothing and frees a beam slot for a
    genuinely different prefix.

    The first pass ranks deterministically (ties towards the
    lexicographically smaller schedule); every *restart* re-runs the
    whole beam with a seeded random tiebreak, which lets equal-scoring
    prefixes survive in a different order and escape ties that hide the
    optimum.  Cost per pass: at most ``width · n`` expansions of at most
    ``n`` children each.
    """

    name = "beam"

    def __init__(self, width: int = 8, restarts: int = 1, seed: int = 0,
                 score: Union[None, str, ScoreHook] = None) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if restarts < 0:
            raise ValueError(f"restarts must be >= 0, got {restarts}")
        self.width = width
        self.restarts = restarts
        self.seed = seed
        self.score = resolve_score(score)
        #: Primitive mirror of the hook for campaign fingerprints.
        self.score_name = self.score.name

    def search(
        self,
        graph: LabeledGraph,
        protocol: Protocol,
        model: ModelSpec,
        bit_budget: Optional[int] = None,
        *,
        context: Optional[SearchContext] = None,
        faults: Union[None, str, FaultSpec] = None,
    ) -> Witness:
        spec = resolve_faults(faults)
        ctx = SearchContext.ensure(context)
        if ctx.table is not None:
            ctx.table.bind(graph, protocol, model, bit_budget, faults=spec)
        ctx.stats.searches += 1
        meter = ctx.meter(None)
        best: Optional[Witness] = None
        try:
            for attempt in range(1 + self.restarts):
                rng = ctx.rng(self.seed, attempt) if attempt else None
                if attempt:
                    ctx.stats.restarts += 1
                witness = self._pass(graph, protocol, model, bit_budget,
                                     rng, ctx, meter, spec)
                best = witness if best is None else worst_witness(best, witness)
        except OutOfBudget:
            pass  # context budget exhausted: return the incumbent
        if best is None:
            state = ExecutionState.initial(graph, protocol, model, bit_budget,
                                           faults=spec)
            complete_ascending(state, meter)
            best = self._witness(state, meter.spent)
        return replace(best, explored=meter.spent)

    def _pass(
        self,
        graph: LabeledGraph,
        protocol: Protocol,
        model: ModelSpec,
        bit_budget: Optional[int],
        rng: Optional[random.Random],
        ctx: SearchContext,
        meter,
        faults: FaultSpec = None,
    ) -> Witness:
        best: Optional[Witness] = None
        hook = self.score
        table = ctx.table
        initial = ExecutionState.initial(graph, protocol, model, bit_budget,
                                         faults=faults)
        if initial.terminal:  # 0 writes: deadlock at round 0, or n == 0
            return self._witness(initial, meter.spent)
        dedupe = initial.stateless
        frontier = [initial]
        while frontier:
            scored = []
            for state in frontier:
                for choice in state.candidates:
                    meter.spend()
                    child = state.copy().advance(choice)
                    if child.terminal:
                        witness = self._witness(child, meter.spent)
                        best = (witness if best is None
                                else worst_witness(best, witness))
                    else:
                        tiebreak = (rng.random() if rng is not None
                                    else 0.0)
                        scored.append((
                            tuple(-part for part in hook.prefix_score(child))
                            + (tiebreak, child.schedule),
                            child,
                        ))
            scored.sort(key=lambda item: item[0])
            frontier = []
            seen: set = set()
            for _, state in scored:
                if dedupe:
                    key = TranspositionTable.key_for(state)
                    if key in seen:
                        continue
                    seen.add(key)
                frontier.append(state)
                if len(frontier) >= self.width:
                    break
        if best is None:
            # Unreachable for a well-formed engine (the initial state of a
            # deadlocked instance is itself terminal-free only if some
            # prefix terminates), but guard against protocol bugs.
            raise RuntimeError("beam search found no terminal configuration")
        return best
