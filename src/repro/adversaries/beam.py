"""Beam search over schedule prefixes."""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Optional

from ..core.execution import ExecutionState
from ..core.models import ModelSpec
from ..core.protocol import Protocol
from ..graphs.labeled_graph import LabeledGraph
from .base import AdversarySearch, Witness, worst_witness

__all__ = ["BeamSearchAdversary"]


class BeamSearchAdversary(AdversarySearch):
    """Breadth-first over schedule prefixes, keeping the ``width`` most
    promising per depth.

    Each frontier state is an independent :class:`ExecutionState` fork
    (:meth:`~repro.core.execution.ExecutionState.copy`); expanding it
    applies every adversary choice once.  Prefixes are ranked worst-first
    by (largest message so far, board total) — a deadlocked or completed
    child leaves the frontier and competes for the returned witness
    directly, so terminal worst cases are never pruned away, only
    unfinished prefixes are.

    The first pass ranks deterministically (ties towards the
    lexicographically smaller schedule); every *restart* re-runs the
    whole beam with a seeded random tiebreak, which lets equal-scoring
    prefixes survive in a different order and escape ties that hide the
    optimum.  Cost per pass: at most ``width · n`` expansions of at most
    ``n`` children each.
    """

    name = "beam"

    def __init__(self, width: int = 8, restarts: int = 1, seed: int = 0) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if restarts < 0:
            raise ValueError(f"restarts must be >= 0, got {restarts}")
        self.width = width
        self.restarts = restarts
        self.seed = seed

    def search(
        self,
        graph: LabeledGraph,
        protocol: Protocol,
        model: ModelSpec,
        bit_budget: Optional[int] = None,
    ) -> Witness:
        best: Optional[Witness] = None
        explored = 0
        for attempt in range(1 + self.restarts):
            rng = random.Random(f"{self.seed}:{attempt}") if attempt else None
            witness, cost = self._pass(graph, protocol, model, bit_budget, rng)
            explored += cost
            best = witness if best is None else worst_witness(best, witness)
        return replace(best, explored=explored)

    def _pass(
        self,
        graph: LabeledGraph,
        protocol: Protocol,
        model: ModelSpec,
        bit_budget: Optional[int],
        rng: Optional[random.Random],
    ) -> tuple[Witness, int]:
        explored = 0
        best: Optional[Witness] = None
        initial = ExecutionState.initial(graph, protocol, model, bit_budget)
        if initial.terminal:  # 0 writes: deadlock at round 0, or n == 0
            return self._witness(initial, 0), 0
        frontier = [initial]
        while frontier:
            scored = []
            for state in frontier:
                for choice in state.candidates:
                    child = state.copy().advance(choice)
                    explored += 1
                    if child.terminal:
                        witness = self._witness(child, explored)
                        best = (witness if best is None
                                else worst_witness(best, witness))
                    else:
                        board = child.board
                        tiebreak = (rng.random() if rng is not None
                                    else 0.0)
                        scored.append((
                            (-board.max_bits(), -board.total_bits(),
                             tiebreak, child.schedule),
                            child,
                        ))
            scored.sort(key=lambda item: item[0])
            frontier = [state for _, state in scored[: self.width]]
        if best is None:
            # Unreachable for a well-formed engine (the initial state of a
            # deadlocked instance is itself terminal-free only if some
            # prefix terminates), but guard against protocol bugs.
            raise RuntimeError("beam search found no terminal configuration")
        return best, explored
