"""Shared transposition table over canonical configuration keys.

The old ``DeadlockAdversary`` memo was private, deadlock-only, and keyed
by an ad-hoc tuple that silently switched itself off on unhashable
payloads.  This module generalises it into the durable half of the
search kernel: a :class:`TranspositionTable` maps
:meth:`~repro.core.execution.ExecutionState.config_key` digests to
**completion values** — what the rest of the execution can still do
from that configuration — so knowledge transfers *across* strategies
inside one stress cell:

* branch-and-bound stores the exact completion frontier of every
  subtree it fully sweeps, and skips re-expanding a configuration whose
  frontier it already knows;
* the deadlock seeker prunes subtrees recorded deadlock-free (by
  itself or by a branch-and-bound sweep) and records the fact when it
  exhausts one;
* greedy descents finish instantly from any configuration whose exact
  frontier is known; beam passes dedupe frontier prefixes that digest
  to the same configuration.

**Dominance semantics.**  Witness badness is ranked lexicographically
(:func:`~repro.adversaries.base.witness_rank`): ``(deadlock, max bits,
total bits)``.  The best completion of a configuration therefore
depends on the *context* it is reached with — a suffix with the larger
single message wins from an empty board, while a suffix with the larger
total wins once the prefix already wrote something bigger.  An entry
keeps a **frontier** of completions in first-discovered (DFS) order: a
later completion is dropped only when an *earlier* one dominates it
(wins or ties in every context), which both bounds the frontier and —
because ties keep the earlier witness, exactly like the incumbent
update in the searches — makes table-on and table-off sweeps return
field-identical witnesses.

A table is scoped to one ``(graph, protocol, model, bit budget)`` cell:
completion values do not transfer between cells, and :meth:`bind`
raises if a caller tries.  Only stateless-protocol configurations
participate (:meth:`key_for` returns ``None`` otherwise) — a stateful
protocol's future depends on hidden per-run state the key cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

from ..core.execution import ExecutionState
from ..faults.spec import resolve_faults
from ..telemetry.stats import observe_table
from .base import Witness

__all__ = ["Completion", "TableEntry", "TranspositionTable",
           "dominance_frontier", "iter_composed", "best_composed",
           "merge_bounds", "join_bounds"]

#: An admissible completion bound: ``(deadlock_possible, suffix max
#: bits, suffix total bits)`` — every completion of the configuration
#: is component-wise covered (see ``ExecutionState.suffix_bound``).
Bound = tuple[bool, int, int]


def merge_bounds(a: Optional[Bound], b: Optional[Bound]) -> Optional[Bound]:
    """The tighter of two admissible bounds, component-wise.

    Both are valid upper covers of the same completion set, so their
    component-wise minimum is too (``False`` beats ``True`` on the
    deadlock component: a subtree proven deadlock-free by either bound
    is deadlock-free).  ``None`` means unbounded and loses to anything.
    """
    if a is None:
        return b
    if b is None:
        return a
    return (a[0] and b[0], min(a[1], b[1]), min(a[2], b[2]))


def join_bounds(a: Optional[Bound], b: Optional[Bound]) -> Optional[Bound]:
    """An admissible cover of the *union* of two completion sets.

    Dual of :func:`merge_bounds`: each input covers its own set, so the
    component-wise maximum covers both (and dominates each input
    lexicographically, which is what prune checks compare).  ``None``
    means unbounded and is absorbing.
    """
    if a is None or b is None:
        return None
    return (a[0] or b[0], max(a[1], b[1]), max(a[2], b[2]))


@dataclass(frozen=True)
class Completion:
    """One way the execution can end from a given configuration.

    ``max_bits``/``total_bits`` cover the *suffix* only; composing with
    a prefix that has written ``b`` bits at most and ``t`` in total
    yields a run worth ``(deadlock, max(b, max_bits), t + total_bits)``.
    ``suffix`` is the replayable choice sequence, so a table hit still
    produces a concrete witness schedule, never just a number.
    """

    deadlock: bool
    max_bits: int
    total_bits: int
    suffix: tuple[int, ...]

    def dominates(self, other: "Completion") -> bool:
        """Whether this completion wins-or-ties ``other`` in *every*
        prefix context (the partial order behind the frontier)."""
        if self.deadlock != other.deadlock:
            return self.deadlock
        return (self.max_bits >= other.max_bits
                and self.total_bits >= other.total_bits)


@dataclass
class TableEntry:
    """What the table knows about one configuration.

    ``completions`` is the dominance frontier in first-discovered order;
    ``exact`` means it enumerates every non-dominated outcome of the
    full subtree; ``deadlock_free`` is the one fact that is useful on
    its own — no completion of the configuration deadlocks — and may be
    known even when the bits frontier is not.

    ``bound`` is an admissible bound ``(deadlock_possible, suffix max
    bits, suffix total bits)`` — never below the true maximum of what it
    covers — and *what it covers depends on the completions*:

    * ``completions`` empty: the bound covers **every** completion of
      the configuration (a truncated or fully bound-pruned subtree).
    * ``completions`` non-empty, not exact: a **partial frontier** —
      the bound covers only the *unexplored remainder*, every
      completion not dominated by a stored one.  A search whose
      incumbent already beats the remainder bound can consume the
      partial frontier exactly like an exact hit (the remainder could
      not have updated its incumbent), so one pruned child no longer
      poisons an ancestor chain for every later pass.

    An exact entry needs no bound (the frontier is strictly stronger),
    so ``record_bound``/``record_partial`` skip exact entries.

    ``warm`` marks an entry served from a persistent frontier store
    (a previous run) rather than recorded by the current one.  Warm
    entries are invisible to the greedy descent — which runs before any
    exact sweep and must behave byte-identically with or without a warm
    store — while branch-and-bound and the deadlock seeker may consume
    them freely (their results are invariant under any sound table
    content).  Re-recording an entry this run clears the flag.
    """

    completions: tuple[Completion, ...] = ()
    exact: bool = False
    deadlock_free: bool = False
    bound: Optional[Bound] = None
    warm: bool = False

    def effective_bound(self) -> Optional[Bound]:
        """The entry's bound with the standalone deadlock-free fact
        folded in (a deadlock-free subtree cannot complete with
        deadlock, whatever the stored bound says)."""
        bound = self.bound
        if bound is not None and self.deadlock_free and bound[0]:
            return (False, bound[1], bound[2])
        return bound


def dominance_frontier(
    completions: Iterable[Completion],
) -> tuple[Completion, ...]:
    """Dominance-filter ``completions``, preserving discovery order.

    A completion is kept unless an *earlier* kept one dominates it —
    never the other way around, because an earlier equal-rank witness
    is the one a plain DFS incumbent would have kept.
    """
    kept: list[Completion] = []
    for completion in completions:
        if not any(earlier.dominates(completion) for earlier in kept):
            kept.append(completion)
    return tuple(kept)


def iter_composed(strategy: str, state: ExecutionState,
                  completions: Iterable[Completion], explored: int,
                  choice: Optional[int] = None,
                  edge_bits: int = 0,
                  edge_total: Optional[int] = None) -> "Iterable[Witness]":
    """Full witnesses from composing ``completions`` onto the prefix
    held by ``state`` (optionally extended by one probed-but-rolled-back
    ``choice`` whose message cost ``edge_bits``), **in completion
    order**.

    This is the one composition rule behind every table hit: folding
    the yielded witnesses with :func:`~repro.adversaries.base.
    worst_witness` (or taking the :func:`~repro.adversaries.base.
    witness_rank` max — both keep the first on ties) reproduces exactly
    the incumbent updates the expanded subtree would have made, which
    is the field-identity guarantee of table-on sweeps.

    ``edge_total`` is the probed edge's contribution to the board total
    when it differs from ``edge_bits`` — a duplicated write costs
    ``2 × bits`` on the total while counting once for the maximum, and a
    crash or loss costs 0 — and defaults to ``edge_bits`` (the reliable
    write case).
    """
    board = state.board
    base_bits = max(board.max_bits(), edge_bits)
    base_total = board.total_bits() + (
        edge_total if edge_total is not None else edge_bits
    )
    prefix = state.schedule if choice is None else state.schedule + (choice,)
    for completion in completions:
        yield Witness(
            strategy=strategy,
            schedule=prefix + completion.suffix,
            bits=max(base_bits, completion.max_bits),
            total_bits=base_total + completion.total_bits,
            deadlock=completion.deadlock,
            explored=explored,
        )


def best_composed(strategy: str, state: ExecutionState, entry: TableEntry,
                  explored: int) -> Witness:
    """The worst full witness reachable from ``state`` given its exact
    completion frontier (first-discovered completion wins ties, matching
    the incumbent-update rule of the searches)."""
    from .base import witness_rank

    if not entry.exact or not entry.completions:
        raise ValueError("best_composed needs an exact, non-empty entry")
    return max(iter_composed(strategy, state, entry.completions, explored),
               key=witness_rank)


class TranspositionTable:
    """Per-configuration completion values shared across strategies.

    One instance serves one stress cell; the search kernel threads it
    through every strategy via
    :class:`~repro.adversaries.kernel.SearchContext`.  Hit/miss/store
    counters feed the bench's hit-rate report.
    """

    def __init__(self) -> None:
        self._entries: dict[Any, TableEntry] = {}
        self._scope: Optional[tuple] = None
        self._dirty: set = set()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.frontier_hits = 0
        self.frontier_stores = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def probes(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        probes = self.probes
        return self.hits / probes if probes else 0.0

    # -- scoping -------------------------------------------------------

    @staticmethod
    def _component_token(obj: Any) -> tuple:
        """Identity of a protocol for scope checks: class plus primitive
        constructor attributes (the same convention campaign
        fingerprints use)."""
        try:
            attrs = vars(obj)
        except TypeError:
            attrs = {}
        primitives = tuple(sorted(
            (key, value) for key, value in attrs.items()
            if not key.startswith("_")
            and isinstance(value, (bool, int, float, str, type(None)))
        ))
        return (type(obj).__module__, type(obj).__qualname__, primitives)

    def bind(self, graph, protocol, model, bit_budget, faults=None) -> None:
        """Pin (or re-check) the cell this table serves.

        Completion values are only valid for the exact (graph, protocol,
        model, budget, fault budget) they were computed under; reusing a
        table across cells would serve wrong answers, so it raises
        instead.
        """
        observe_table(self)  # telemetry visibility; one global read
        scope = (graph, self._component_token(protocol), model.name,
                 bit_budget, resolve_faults(faults).canonical())
        if self._scope is None:
            self._scope = scope
        elif self._scope != scope:
            raise ValueError(
                "TranspositionTable is scoped to one (graph, protocol, "
                "model, bit budget, fault budget) cell; create a fresh "
                "table (or a fresh SearchContext) per cell"
            )

    # -- lookups -------------------------------------------------------

    @staticmethod
    def key_for(state: ExecutionState) -> Optional[tuple]:
        """The state's table key, or ``None`` when it must not be
        memoised (stateful protocol: hidden state escapes the digest)."""
        if not state.stateless:
            return None
        return state.config_key()

    def lookup(self, key: Optional[tuple]) -> Optional[TableEntry]:
        """The entry for ``key`` (counting a hit), or ``None``."""
        if key is None:
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
            if entry.warm:
                self.frontier_hits += 1
        return entry

    def get(self, key: Optional[tuple]) -> Optional[TableEntry]:
        """Like :meth:`lookup` but without touching the counters (for
        bookkeeping reads that should not skew the hit rate)."""
        if key is None:
            return None
        return self._entries.get(key)

    # -- updates -------------------------------------------------------

    def _entry(self, key: tuple) -> TableEntry:
        entry = self._entries.get(key)
        if entry is None:
            entry = TableEntry()
            self._entries[key] = entry
        return entry

    def record_exact(self, key: Optional[tuple],
                     completions: Iterable[Completion]) -> Optional[TableEntry]:
        """Store the exact completion frontier of a fully swept subtree.

        Idempotent: an entry that is already exact is left untouched
        (the first recording was made in DFS-first order; later sweeps
        in shuffled order must not replace it).
        """
        if key is None:
            return None
        entry = self._entry(key)
        if not entry.exact:
            entry.completions = dominance_frontier(completions)
            entry.exact = True
            entry.deadlock_free = not any(
                c.deadlock for c in entry.completions
            )
            entry.bound = None  # the exact frontier subsumes any bound
            entry.warm = False
            self.stores += 1
            self._dirty.add(key)
        return entry

    def record_deadlock_free(self, key: Optional[tuple]) -> None:
        """Record the standalone fact that no deadlock is reachable
        (a complete deadlock-DFS exhausted the subtree)."""
        if key is None:
            return
        entry = self._entry(key)
        if not entry.deadlock_free:
            entry.deadlock_free = True
            self.stores += 1
            self._dirty.add(key)

    def record_bound(self, key: Optional[tuple],
                     bound: Optional[Bound]) -> None:
        """Record (or tighten) the admissible bound of a truncated
        subtree.  Exact entries are left alone — their frontier already
        answers every question the bound could.

        Tightening is sound for partial entries too: a whole-subtree
        bound covers the unexplored remainder a fortiori, so the
        component-wise minimum is still a remainder cover.  A bound
        whose deadlock component is ``False`` additionally proves the
        standalone ``deadlock_free`` fact — no completion it covers can
        deadlock — which the deadlock seeker prunes on.
        """
        if key is None or bound is None:
            return
        entry = self._entry(key)
        if entry.exact:
            return
        changed = False
        merged = merge_bounds(entry.bound, bound)
        if merged != entry.bound:
            entry.bound = merged
            changed = True
        if not bound[0] and not entry.completions and not entry.deadlock_free:
            entry.deadlock_free = True
            changed = True
        if changed:
            self.stores += 1
            self._dirty.add(key)

    def record_partial(self, key: Optional[tuple],
                       completions: Iterable[Completion],
                       bound: Optional[Bound]) -> None:
        """Record a partial frontier: the dominance-filtered completions
        an incompletely swept subtree *did* discover, plus an admissible
        bound over the pruned remainder.

        First frontier wins, like :meth:`record_exact` — a later pass in
        shuffled order must not replace the DFS-first one — and an entry
        that already holds completions keeps its own bound untouched
        (remainder bounds from *different* partial decompositions do not
        compose).  Entries without completions upgrade freely: their
        whole-subtree bound covers any remainder, so tightening with the
        new remainder bound stays sound.
        """
        if key is None:
            return
        entry = self._entry(key)
        if entry.exact or entry.completions:
            return
        entry.completions = dominance_frontier(completions)
        if not entry.completions:
            return
        entry.bound = merge_bounds(entry.bound, bound)
        entry.deadlock_free = entry.deadlock_free or (
            not any(c.deadlock for c in entry.completions)
            and entry.bound is not None and not entry.bound[0]
        )
        entry.warm = False
        self.stores += 1
        self._dirty.add(key)

    # -- persistent frontiers ------------------------------------------

    def preload(self, items: "Iterable[tuple[tuple, TableEntry]]") -> int:
        """Seed the table from a persistent frontier store.

        Every served entry is marked ``warm``; preloaded rows are not
        dirty (exporting them back would be a no-op write).  Returns the
        number of entries loaded.  Must run before any search probes the
        table (preloading never overwrites an existing entry).
        """
        count = 0
        for key, entry in items:
            if key in self._entries:
                continue
            entry.warm = True
            self._entries[key] = entry
            count += 1
        return count

    def export_dirty(self) -> list:
        """The ``(key, entry)`` rows recorded or tightened by this run,
        for the persistent frontier store.  Counts each exported row in
        ``frontier_stores`` and clears the dirty set."""
        rows = [(key, self._entries[key]) for key in self._dirty]
        self.frontier_stores += len(rows)
        self._dirty.clear()
        return rows
