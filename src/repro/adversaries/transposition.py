"""Shared transposition table over canonical configuration keys.

The old ``DeadlockAdversary`` memo was private, deadlock-only, and keyed
by an ad-hoc tuple that silently switched itself off on unhashable
payloads.  This module generalises it into the durable half of the
search kernel: a :class:`TranspositionTable` maps
:meth:`~repro.core.execution.ExecutionState.config_key` digests to
**completion values** — what the rest of the execution can still do
from that configuration — so knowledge transfers *across* strategies
inside one stress cell:

* branch-and-bound stores the exact completion frontier of every
  subtree it fully sweeps, and skips re-expanding a configuration whose
  frontier it already knows;
* the deadlock seeker prunes subtrees recorded deadlock-free (by
  itself or by a branch-and-bound sweep) and records the fact when it
  exhausts one;
* greedy descents finish instantly from any configuration whose exact
  frontier is known; beam passes dedupe frontier prefixes that digest
  to the same configuration.

**Dominance semantics.**  Witness badness is ranked lexicographically
(:func:`~repro.adversaries.base.witness_rank`): ``(deadlock, max bits,
total bits)``.  The best completion of a configuration therefore
depends on the *context* it is reached with — a suffix with the larger
single message wins from an empty board, while a suffix with the larger
total wins once the prefix already wrote something bigger.  An entry
keeps a **frontier** of completions in first-discovered (DFS) order: a
later completion is dropped only when an *earlier* one dominates it
(wins or ties in every context), which both bounds the frontier and —
because ties keep the earlier witness, exactly like the incumbent
update in the searches — makes table-on and table-off sweeps return
field-identical witnesses.

A table is scoped to one ``(graph, protocol, model, bit budget)`` cell:
completion values do not transfer between cells, and :meth:`bind`
raises if a caller tries.  Only stateless-protocol configurations
participate (:meth:`key_for` returns ``None`` otherwise) — a stateful
protocol's future depends on hidden per-run state the key cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

from ..core.execution import ExecutionState
from ..faults.spec import resolve_faults
from ..telemetry.stats import observe_table
from .base import Witness

__all__ = ["Completion", "TableEntry", "TranspositionTable",
           "dominance_frontier", "iter_composed", "best_composed"]


@dataclass(frozen=True)
class Completion:
    """One way the execution can end from a given configuration.

    ``max_bits``/``total_bits`` cover the *suffix* only; composing with
    a prefix that has written ``b`` bits at most and ``t`` in total
    yields a run worth ``(deadlock, max(b, max_bits), t + total_bits)``.
    ``suffix`` is the replayable choice sequence, so a table hit still
    produces a concrete witness schedule, never just a number.
    """

    deadlock: bool
    max_bits: int
    total_bits: int
    suffix: tuple[int, ...]

    def dominates(self, other: "Completion") -> bool:
        """Whether this completion wins-or-ties ``other`` in *every*
        prefix context (the partial order behind the frontier)."""
        if self.deadlock != other.deadlock:
            return self.deadlock
        return (self.max_bits >= other.max_bits
                and self.total_bits >= other.total_bits)


@dataclass
class TableEntry:
    """What the table knows about one configuration.

    ``completions`` is the dominance frontier in first-discovered order
    (meaningful only when ``exact``); ``exact`` means the frontier
    enumerates every non-dominated outcome of the full subtree;
    ``deadlock_free`` is the one fact that is useful on its own — a
    complete sweep below the configuration found no deadlock — and may
    be known even when the bits frontier is not.
    """

    completions: tuple[Completion, ...] = ()
    exact: bool = False
    deadlock_free: bool = False


def dominance_frontier(
    completions: Iterable[Completion],
) -> tuple[Completion, ...]:
    """Dominance-filter ``completions``, preserving discovery order.

    A completion is kept unless an *earlier* kept one dominates it —
    never the other way around, because an earlier equal-rank witness
    is the one a plain DFS incumbent would have kept.
    """
    kept: list[Completion] = []
    for completion in completions:
        if not any(earlier.dominates(completion) for earlier in kept):
            kept.append(completion)
    return tuple(kept)


def iter_composed(strategy: str, state: ExecutionState,
                  completions: Iterable[Completion], explored: int,
                  choice: Optional[int] = None,
                  edge_bits: int = 0,
                  edge_total: Optional[int] = None) -> "Iterable[Witness]":
    """Full witnesses from composing ``completions`` onto the prefix
    held by ``state`` (optionally extended by one probed-but-rolled-back
    ``choice`` whose message cost ``edge_bits``), **in completion
    order**.

    This is the one composition rule behind every table hit: folding
    the yielded witnesses with :func:`~repro.adversaries.base.
    worst_witness` (or taking the :func:`~repro.adversaries.base.
    witness_rank` max — both keep the first on ties) reproduces exactly
    the incumbent updates the expanded subtree would have made, which
    is the field-identity guarantee of table-on sweeps.

    ``edge_total`` is the probed edge's contribution to the board total
    when it differs from ``edge_bits`` — a duplicated write costs
    ``2 × bits`` on the total while counting once for the maximum, and a
    crash or loss costs 0 — and defaults to ``edge_bits`` (the reliable
    write case).
    """
    board = state.board
    base_bits = max(board.max_bits(), edge_bits)
    base_total = board.total_bits() + (
        edge_total if edge_total is not None else edge_bits
    )
    prefix = state.schedule if choice is None else state.schedule + (choice,)
    for completion in completions:
        yield Witness(
            strategy=strategy,
            schedule=prefix + completion.suffix,
            bits=max(base_bits, completion.max_bits),
            total_bits=base_total + completion.total_bits,
            deadlock=completion.deadlock,
            explored=explored,
        )


def best_composed(strategy: str, state: ExecutionState, entry: TableEntry,
                  explored: int) -> Witness:
    """The worst full witness reachable from ``state`` given its exact
    completion frontier (first-discovered completion wins ties, matching
    the incumbent-update rule of the searches)."""
    from .base import witness_rank

    if not entry.exact or not entry.completions:
        raise ValueError("best_composed needs an exact, non-empty entry")
    return max(iter_composed(strategy, state, entry.completions, explored),
               key=witness_rank)


class TranspositionTable:
    """Per-configuration completion values shared across strategies.

    One instance serves one stress cell; the search kernel threads it
    through every strategy via
    :class:`~repro.adversaries.kernel.SearchContext`.  Hit/miss/store
    counters feed the bench's hit-rate report.
    """

    def __init__(self) -> None:
        self._entries: dict[Any, TableEntry] = {}
        self._scope: Optional[tuple] = None
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def probes(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        probes = self.probes
        return self.hits / probes if probes else 0.0

    # -- scoping -------------------------------------------------------

    @staticmethod
    def _component_token(obj: Any) -> tuple:
        """Identity of a protocol for scope checks: class plus primitive
        constructor attributes (the same convention campaign
        fingerprints use)."""
        try:
            attrs = vars(obj)
        except TypeError:
            attrs = {}
        primitives = tuple(sorted(
            (key, value) for key, value in attrs.items()
            if not key.startswith("_")
            and isinstance(value, (bool, int, float, str, type(None)))
        ))
        return (type(obj).__module__, type(obj).__qualname__, primitives)

    def bind(self, graph, protocol, model, bit_budget, faults=None) -> None:
        """Pin (or re-check) the cell this table serves.

        Completion values are only valid for the exact (graph, protocol,
        model, budget, fault budget) they were computed under; reusing a
        table across cells would serve wrong answers, so it raises
        instead.
        """
        observe_table(self)  # telemetry visibility; one global read
        scope = (graph, self._component_token(protocol), model.name,
                 bit_budget, resolve_faults(faults).canonical())
        if self._scope is None:
            self._scope = scope
        elif self._scope != scope:
            raise ValueError(
                "TranspositionTable is scoped to one (graph, protocol, "
                "model, bit budget, fault budget) cell; create a fresh "
                "table (or a fresh SearchContext) per cell"
            )

    # -- lookups -------------------------------------------------------

    @staticmethod
    def key_for(state: ExecutionState) -> Optional[tuple]:
        """The state's table key, or ``None`` when it must not be
        memoised (stateful protocol: hidden state escapes the digest)."""
        if not state.stateless:
            return None
        return state.config_key()

    def lookup(self, key: Optional[tuple]) -> Optional[TableEntry]:
        """The entry for ``key`` (counting a hit), or ``None``."""
        if key is None:
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def get(self, key: Optional[tuple]) -> Optional[TableEntry]:
        """Like :meth:`lookup` but without touching the counters (for
        bookkeeping reads that should not skew the hit rate)."""
        if key is None:
            return None
        return self._entries.get(key)

    # -- updates -------------------------------------------------------

    def _entry(self, key: tuple) -> TableEntry:
        entry = self._entries.get(key)
        if entry is None:
            entry = TableEntry()
            self._entries[key] = entry
        return entry

    def record_exact(self, key: Optional[tuple],
                     completions: Iterable[Completion]) -> Optional[TableEntry]:
        """Store the exact completion frontier of a fully swept subtree.

        Idempotent: an entry that is already exact is left untouched
        (the first recording was made in DFS-first order; later sweeps
        in shuffled order must not replace it).
        """
        if key is None:
            return None
        entry = self._entry(key)
        if not entry.exact:
            entry.completions = dominance_frontier(completions)
            entry.exact = True
            entry.deadlock_free = not any(
                c.deadlock for c in entry.completions
            )
            self.stores += 1
        return entry

    def record_deadlock_free(self, key: Optional[tuple]) -> None:
        """Record the standalone fact that no deadlock is reachable
        (a complete deadlock-DFS exhausted the subtree)."""
        if key is None:
            return
        entry = self._entry(key)
        if not entry.deadlock_free:
            entry.deadlock_free = True
            self.stores += 1
