"""Searchable adversary strategies over the stepwise execution core.

"For every adversary" is checkable by brute force only up to ``n ≈ 7``;
above that, this package replaces the exhaustive quantifier with *guided
search* over schedule prefixes, each strategy steering one
:class:`~repro.core.execution.ExecutionState` and returning a concrete,
replayable worst :class:`~repro.adversaries.base.Witness` schedule:

* :class:`GreedyBitsAdversary` — one-step-lookahead bit maximisation
  with seeded random-restart tie-breaking; linear cost.
* :class:`BeamSearchAdversary` — width-bounded best-first frontier over
  prefixes, random-restart tiebreaks.
* :class:`BranchAndBoundAdversary` — exact sweep with structural
  pruning (SIMASYNC and frozen-tail collapses), anytime under a step
  budget with randomised restart passes.
* :class:`DeadlockAdversary` — complete deadlock-reachability DFS with
  starvation-first child ordering and configuration memoisation.

The ``stress`` plan mode (:mod:`repro.runtime.plan`) runs
:func:`default_search_portfolio` on every instance too large for
exhaustive enumeration; tests pin each strategy against the exhaustive
ground truth on small fixtures.
"""

from .base import (
    AdversarySearch,
    Witness,
    minimize_schedule,
    minimize_witness,
    schedule_forces,
    witness_rank,
    worst_witness,
)
from .beam import BeamSearchAdversary
from .bnb import BranchAndBoundAdversary
from .deadlock import DeadlockAdversary
from .greedy import GreedyBitsAdversary

__all__ = [
    "AdversarySearch",
    "Witness",
    "witness_rank",
    "worst_witness",
    "schedule_forces",
    "minimize_schedule",
    "minimize_witness",
    "BeamSearchAdversary",
    "BranchAndBoundAdversary",
    "DeadlockAdversary",
    "GreedyBitsAdversary",
    "default_search_portfolio",
]


def default_search_portfolio(seed: int = 0) -> list[AdversarySearch]:
    """The standard strategy portfolio used by ``stress`` plans.

    Budgets keep every strategy polynomial-ish at large ``n`` while the
    branch-and-bound pass stays exact on small instances.
    """
    return [
        GreedyBitsAdversary(restarts=4, seed=seed),
        BeamSearchAdversary(width=8, restarts=1, seed=seed),
        BranchAndBoundAdversary(max_steps=5000, restarts=2, seed=seed),
        DeadlockAdversary(max_steps=5000),
    ]
