"""Searchable adversary strategies over the stepwise execution core.

"For every adversary" is checkable by brute force only up to ``n ≈ 7``;
above that, this package replaces the exhaustive quantifier with *guided
search* over schedule prefixes, each strategy steering one
:class:`~repro.core.execution.ExecutionState` and returning a concrete,
replayable worst :class:`~repro.adversaries.base.Witness` schedule:

* :class:`GreedyBitsAdversary` — one-step-lookahead bit maximisation
  with seeded random-restart tie-breaking; linear cost.
* :class:`BeamSearchAdversary` — width-bounded best-first frontier over
  prefixes, random-restart tiebreaks.
* :class:`BranchAndBoundAdversary` — exact sweep with structural
  pruning (SIMASYNC and frozen-tail collapses), anytime under a step
  budget with randomised restart passes.
* :class:`DeadlockAdversary` — complete deadlock-reachability DFS with
  starvation-first child ordering and configuration memoisation.

Since the search-kernel refactor the strategies are thin policies over
one shared kernel (:mod:`repro.adversaries.kernel`): a
:class:`SearchContext` carries budgets, seeded RNG streams, stats and —
when sharing is on — one :class:`TranspositionTable`
(:mod:`repro.adversaries.transposition`) of per-configuration completion
values keyed by the engine's canonical
:meth:`~repro.core.execution.ExecutionState.config_key`, so pruning
knowledge transfers between strategies inside a stress cell.  What the
greedy and beam policies *optimise* is pluggable too: a
:class:`~repro.adversaries.scoring.ScoreHook` (``bits-greedy`` by
default) swaps the badness measure without touching search mechanics.

The ``stress`` plan mode (:mod:`repro.runtime.plan`) runs
:func:`default_search_portfolio` on every instance too large for
exhaustive enumeration; tests pin each strategy against the exhaustive
ground truth on small fixtures, table on and off.
"""

from .base import (
    AdversarySearch,
    Witness,
    minimize_schedule,
    minimize_witness,
    schedule_forces,
    witness_rank,
    worst_witness,
)
from .beam import BeamSearchAdversary
from .bnb import BranchAndBoundAdversary
from .deadlock import DeadlockAdversary
from .greedy import GreedyBitsAdversary
from .kernel import BudgetMeter, OutOfBudget, SearchContext, SearchStats
from .scoring import (
    SCORE_HOOKS,
    BitsGreedyScore,
    DeadlockFirstScore,
    DecodeFailureScore,
    ScoreHook,
    register_score_hook,
    resolve_score,
)
from .transposition import Completion, TableEntry, TranspositionTable

__all__ = [
    "AdversarySearch",
    "Witness",
    "witness_rank",
    "worst_witness",
    "schedule_forces",
    "minimize_schedule",
    "minimize_witness",
    "BeamSearchAdversary",
    "BranchAndBoundAdversary",
    "DeadlockAdversary",
    "GreedyBitsAdversary",
    "default_search_portfolio",
    "SearchContext",
    "SearchStats",
    "BudgetMeter",
    "OutOfBudget",
    "TranspositionTable",
    "TableEntry",
    "Completion",
    "ScoreHook",
    "BitsGreedyScore",
    "DeadlockFirstScore",
    "DecodeFailureScore",
    "SCORE_HOOKS",
    "register_score_hook",
    "resolve_score",
]


def default_search_portfolio(seed: int = 0, score=None,
                             batch=None) -> list[AdversarySearch]:
    """The standard strategy portfolio used by ``stress`` plans.

    Budgets keep every strategy polynomial-ish at large ``n`` while the
    branch-and-bound pass stays exact on small instances.  ``score``
    (a :class:`~repro.adversaries.scoring.ScoreHook`, a registry name,
    or ``None`` for the default bits-greedy measure) is threaded into
    the greedy and beam policies; ``batch`` is the beam's batched-core
    preference (``None`` = auto, field-identical either way).
    """
    return [
        GreedyBitsAdversary(restarts=4, seed=seed, score=score),
        BeamSearchAdversary(width=8, restarts=1, seed=seed, score=score,
                            batch=batch),
        BranchAndBoundAdversary(max_steps=5000, restarts=2, seed=seed),
        DeadlockAdversary(max_steps=5000),
    ]
