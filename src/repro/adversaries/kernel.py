"""The shared search kernel: budgets, seeded RNG, stats, table access.

PR 3 left each adversary strategy with its own private loop scaffolding
— two identical ``_OutOfBudget`` exceptions, hand-rolled step counters,
ad-hoc ``random.Random(f"{seed}:{i}")`` constructions, and exactly one
(private) memo.  The kernel extracts that scaffolding into one place so
the strategies are thin *policies* — what to expand next — over shared
*mechanism*:

* :class:`SearchContext` is the per-cell carrier: the optional shared
  :class:`~repro.adversaries.transposition.TranspositionTable`, a
  cumulative :class:`SearchStats`, an optional cell-wide step budget on
  top of each strategy's own, and the seeded-RNG factory every
  restart/tiebreak stream comes from.  A stress cell builds one context
  and threads it through every strategy it runs, which is what makes
  pruning knowledge transfer between them.
* :class:`BudgetMeter` meters ``advance`` calls: ``spend`` enforces the
  strategy budget and the context budget, ``charge`` counts without
  enforcing (the forced-completion paths, which must be allowed to
  reach a terminal configuration even on an exhausted budget).
* :exc:`OutOfBudget` replaces the per-module private exceptions.

Strategies remain deterministic for fixed construction parameters: the
context adds no entropy of its own (``rng`` hashes exactly the caller's
tokens), and a fresh default context is created per ``search`` call
when none is supplied.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.execution import ExecutionState
from .transposition import TranspositionTable

__all__ = ["OutOfBudget", "SearchStats", "BudgetMeter", "SearchContext",
           "complete_ascending"]


class OutOfBudget(Exception):
    """A step budget (strategy-level or context-level) ran out."""


class SearchStats:
    """Cumulative accounting across every search a context hosted."""

    __slots__ = ("steps", "searches", "restarts", "batch_children",
                 "batch_kept", "bound_prunes")

    def __init__(self) -> None:
        self.steps = 0
        self.searches = 0
        self.restarts = 0
        #: Lanes stepped by batched frontier expansions, and how many of
        #: them stayed useful (kept in the next frontier or folded into
        #: a terminal witness) after dedupe/truncation compacted the
        #: dead lanes away.  Both stay 0 on purely scalar searches.
        self.batch_children = 0
        self.batch_kept = 0
        #: Subtrees skipped because an admissible bound (intrinsic or
        #: table-stored) proved they cannot beat the incumbent.
        self.bound_prunes = 0

    @property
    def batch_occupancy(self) -> float:
        """Fraction of batch-stepped lanes that survived compaction
        (kept or terminal) — lane utilisation of the batched core;
        0.0 when no batched stepping happened."""
        if not self.batch_children:
            return 0.0
        return self.batch_kept / self.batch_children


class BudgetMeter:
    """Counts write events for one search, enforcing both budgets.

    ``spent`` is the strategy-local count — it is what every strategy
    reports as ``Witness.explored``, so explored counts stay comparable
    with the pre-kernel implementations step for step.
    """

    __slots__ = ("stats", "limit", "context_limit", "spent")

    def __init__(self, stats: SearchStats, max_steps: Optional[int],
                 context_limit: Optional[int]) -> None:
        self.stats = stats
        self.limit = max_steps
        self.context_limit = context_limit
        self.spent = 0

    def spend(self, n: int = 1) -> None:
        """Count ``n`` write events; raise :exc:`OutOfBudget` past
        either the strategy budget or the context budget."""
        self.spent += n
        self.stats.steps += n
        if self.limit is not None and self.spent > self.limit:
            raise OutOfBudget
        if (self.context_limit is not None
                and self.stats.steps > self.context_limit):
            raise OutOfBudget

    def charge(self, n: int = 1) -> None:
        """Count ``n`` write events without enforcement (forced
        completions that must terminate regardless of budget)."""
        self.spent += n
        self.stats.steps += n


class SearchContext:
    """Shared kernel state for every strategy run inside one cell.

    Parameters
    ----------
    table:
        Optional shared :class:`TranspositionTable`.  ``None`` keeps
        every strategy's pruning private exactly as before.
    max_steps:
        Optional cell-wide cap on *total* write events across all
        searches run through this context, on top of each strategy's
        own ``max_steps``.
    """

    def __init__(self, table: Optional[TranspositionTable] = None,
                 max_steps: Optional[int] = None) -> None:
        if max_steps is not None and max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {max_steps}")
        self.table = table
        self.max_steps = max_steps
        self.stats = SearchStats()

    @classmethod
    def ensure(cls, context: "Optional[SearchContext]") -> "SearchContext":
        """The given context, or a fresh private default."""
        return context if context is not None else cls()

    def meter(self, max_steps: Optional[int]) -> BudgetMeter:
        """A per-search meter enforcing ``max_steps`` and the context
        cap (absolute, so earlier searches' spending counts)."""
        return BudgetMeter(self.stats, max_steps, self.max_steps)

    @staticmethod
    def rng(*tokens) -> random.Random:
        """The kernel's one seeded-RNG construction: a deterministic
        stream from the joined tokens (``rng(7, 2)`` seeds exactly like
        the historical ``random.Random("7:2")``)."""
        return random.Random(":".join(str(token) for token in tokens))


def complete_ascending(state: ExecutionState,
                       meter: BudgetMeter) -> ExecutionState:
    """Drive ``state`` to a terminal configuration by always taking the
    smallest candidate; returns ``state``.

    This is every strategy's budget-exhausted fallback: steps are
    charged to the meter but never enforced, so the completion always
    reaches a terminal configuration and a witness always exists.
    """
    while not state.terminal:
        meter.charge()
        state.advance(state.candidates[0])
    return state
