"""Deadlock-seeking adversary: search for a corrupted configuration."""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Union

from ..core.execution import ExecutionState
from ..core.models import ModelSpec
from ..core.protocol import Protocol
from ..faults.spec import FaultSpec, resolve_faults
from ..graphs.labeled_graph import LabeledGraph
from .base import AdversarySearch, Witness, worst_witness
from .kernel import OutOfBudget, SearchContext, complete_ascending
from .transposition import TableEntry, iter_composed

__all__ = ["DeadlockAdversary"]


class DeadlockAdversary(AdversarySearch):
    """Depth-first hunt for a schedule that starves the protocol.

    A configuration is corrupted when unwritten nodes remain but none is
    active — only possible in the free models (simultaneous models keep
    every unwritten node active, so the search returns immediately with
    a completed run there).  The DFS steers one
    :class:`~repro.core.execution.ExecutionState` with snapshot/restore
    and stops at the *first* deadlock found:

    * children are probed one step ahead and explored in order of fewest
      resulting candidates first — choices that starve future
      activations are tried early, which is what finds deadlocks fast;
    * a probe that lands directly in a corrupted configuration returns
      its witness without recursing;
    * for stateless protocols, revisited configurations are pruned via
      the canonical :meth:`~repro.core.execution.ExecutionState.
      config_key` digest — deadlock reachability is a function of the
      configuration alone.  (The digest goes through the payload codec,
      so dict/list payloads memoise exactly like any other; the old
      ad-hoc key silently disabled the memo on unhashable payloads.)

    With a shared-table :class:`~repro.adversaries.kernel.SearchContext`
    the search additionally *exchanges deadlock-reachability facts*:
    subtrees whose **exact** completion frontier is recorded as
    deadlock-free (e.g. by a branch-and-bound sweep in the same cell)
    are pruned without descent, their worst completion folded into the
    fallback witness instead; and every subtree this DFS exhausts
    without a deadlock is recorded as a deadlock-free fact for later
    consumers.  Sharing never changes the *deadlock verdict* or a found
    deadlock's schedule (only deadlock-free subtrees are skipped, and
    the rest is explored in the identical order); for deadlock-free
    instances the fallback completion witness keeps the identical
    (bits, total) rank, though possibly via a different schedule.

    Within ``max_steps`` the search is complete: it finds a deadlock iff
    one is reachable.  If the budget runs out first, the worst completed
    run seen so far is returned (``deadlock=False`` then means "none
    found", not "none exists").
    """

    name = "deadlock-dfs"

    def __init__(self, max_steps: Optional[int] = 100_000) -> None:
        if max_steps is not None and max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {max_steps}")
        self.max_steps = max_steps

    def search(
        self,
        graph: LabeledGraph,
        protocol: Protocol,
        model: ModelSpec,
        bit_budget: Optional[int] = None,
        *,
        context: Optional[SearchContext] = None,
        faults: Union[None, str, FaultSpec] = None,
    ) -> Witness:
        spec = resolve_faults(faults)
        ctx = SearchContext.ensure(context)
        table = ctx.table
        if table is not None:
            table.bind(graph, protocol, model, bit_budget, faults=spec)
        ctx.stats.searches += 1
        self._meter = ctx.meter(self.max_steps)
        self._table = table
        state = ExecutionState.initial(graph, protocol, model, bit_budget,
                                       faults=spec)
        self._best_complete: Optional[Witness] = None
        self._seen: set = set()
        if model.simultaneous:
            # Every unwritten, uncrashed node is active — under faults
            # too (crashed nodes are terminated, not starved): no
            # deadlock exists.  One completion supplies the witness.
            return self._complete(state)
        try:
            found = self._dfs(state)
        except OutOfBudget:
            found = None
        if found is not None:
            return found
        if self._best_complete is None:
            # Budget too small to finish any probe: force one completion.
            return self._complete(state)
        return replace(self._best_complete, explored=self._meter.spent)

    def _complete(self, state: ExecutionState) -> Witness:
        complete_ascending(state, self._meter)
        return self._witness(state, self._meter.spent)

    def _key(self, state: ExecutionState):
        """Memo key: the canonical configuration digest (stateless
        protocols only — a stateful protocol's future depends on hidden
        state the digest cannot see)."""
        return state.config_key() if state.stateless else None

    def _fold_pruned(self, state: ExecutionState, choice: int,
                     edge_bits: int, edge_total: int,
                     entry: TableEntry) -> None:
        """A pruned deadlock-free subtree with a known exact frontier
        still contributes its worst completion to the fallback witness,
        so pruning never *loses* badness the plain DFS would have seen."""
        for witness in iter_composed(self.name, state, entry.completions,
                                     self._meter.spent, choice=choice,
                                     edge_bits=edge_bits,
                                     edge_total=edge_total):
            self._best_complete = (
                witness if self._best_complete is None
                else worst_witness(self._best_complete, witness)
            )

    def _dfs(self, state: ExecutionState) -> Optional[Witness]:
        if state.terminal:
            witness = self._witness(state, self._meter.spent)
            if state.deadlocked:
                return witness
            self._best_complete = (
                witness if self._best_complete is None
                else worst_witness(self._best_complete, witness)
            )
            return None
        table = self._table
        children = []
        for choice in state.candidates:
            checkpoint = state.snapshot()
            self._meter.spend()
            state.advance(choice)
            if state.deadlocked:
                witness = self._witness(state, self._meter.spent)
                state.restore(checkpoint)
                return witness
            key = self._key(state)
            # last_event accounting: a crash or loss probe leaves the
            # board untouched (possibly empty), so the board tail is not
            # the probed edge.
            edge_bits = state.last_event_bits
            edge_total = state.last_event_total
            children.append((len(state.candidates), choice, key, edge_bits,
                             edge_total))
            state.restore(checkpoint)
        for _, choice, key, edge_bits, edge_total in sorted(
                children, key=lambda c: c[:2]):
            if key is not None:
                if key in self._seen:
                    continue
                if table is not None:
                    entry = table.lookup(key)
                    # Prune only subtrees whose exact frontier is known:
                    # folding it keeps the fallback witness at the same
                    # badness rank the full DFS would have reached.  A
                    # bare deadlock-free fact (no completions) is not
                    # enough — skipping on it could lose the worst
                    # completion.
                    if (entry is not None and entry.deadlock_free
                            and entry.exact):
                        self._fold_pruned(state, choice, edge_bits,
                                          edge_total, entry)
                        continue
                self._seen.add(key)
            checkpoint = state.snapshot()
            self._meter.spend()
            state.advance(choice)
            found = self._dfs(state)
            state.restore(checkpoint)
            if found is not None:
                return found
            if table is not None:
                # The whole subtree under ``choice`` is deadlock-free.
                table.record_deadlock_free(key)
        return None
