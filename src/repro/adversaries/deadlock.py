"""Deadlock-seeking adversary: search for a corrupted configuration."""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..core.execution import ExecutionState
from ..core.models import ModelSpec
from ..core.protocol import Protocol
from ..graphs.labeled_graph import LabeledGraph
from .base import AdversarySearch, Witness, worst_witness

__all__ = ["DeadlockAdversary"]


class _OutOfBudget(Exception):
    """Internal: the step budget ran out mid-search."""


class DeadlockAdversary(AdversarySearch):
    """Depth-first hunt for a schedule that starves the protocol.

    A configuration is corrupted when unwritten nodes remain but none is
    active — only possible in the free models (simultaneous models keep
    every unwritten node active, so the search returns immediately with
    a completed run there).  The DFS steers one
    :class:`~repro.core.execution.ExecutionState` with snapshot/restore
    and stops at the *first* deadlock found:

    * children are probed one step ahead and explored in order of fewest
      resulting candidates first — choices that starve future
      activations are tried early, which is what finds deadlocks fast;
    * a probe that lands directly in a corrupted configuration returns
      its witness without recursing;
    * for stateless protocols, revisited configurations — same board
      view, same active set with the same frozen messages, same written
      set — are pruned, since deadlock reachability is a function of the
      configuration alone.

    Within ``max_steps`` the search is complete: it finds a deadlock iff
    one is reachable.  If the budget runs out first, the worst completed
    run seen so far is returned (``deadlock=False`` then means "none
    found", not "none exists").
    """

    name = "deadlock-dfs"

    def __init__(self, max_steps: Optional[int] = 100_000) -> None:
        if max_steps is not None and max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {max_steps}")
        self.max_steps = max_steps

    def search(
        self,
        graph: LabeledGraph,
        protocol: Protocol,
        model: ModelSpec,
        bit_budget: Optional[int] = None,
    ) -> Witness:
        state = ExecutionState.initial(graph, protocol, model, bit_budget)
        self._explored = 0
        self._best_complete: Optional[Witness] = None
        self._seen: set = set()
        if model.simultaneous:
            # Every unwritten node is active: no deadlock exists.  One
            # completion supplies the (vacuous) witness.
            return self._complete(state)
        try:
            found = self._dfs(state)
        except _OutOfBudget:
            found = None
        if found is not None:
            return found
        if self._best_complete is None:
            # Budget too small to finish any probe: force one completion.
            return self._complete(state)
        return replace(self._best_complete, explored=self._explored)

    def _complete(self, state: ExecutionState) -> Witness:
        while not state.terminal:
            state.advance(state.candidates[0])
            self._explored += 1
        return self._witness(state, self._explored)

    def _spend(self) -> None:
        self._explored += 1
        if self.max_steps is not None and self._explored > self.max_steps:
            raise _OutOfBudget

    def _key(self, state: ExecutionState):
        """Memo key: everything future dynamics depend on (stateless
        protocols only).  ``activation_round`` is deliberately absent —
        it is transcript metadata, not dynamics."""
        if not state.stateless:
            return None
        key = (
            tuple(state.board.view()),
            frozenset(state.written),
            frozenset(state.active),
            tuple(sorted((v, state.frozen[v]) for v in state.active))
            if state.model.asynchronous else None,
        )
        try:
            hash(key)
        except TypeError:  # unhashable payload: skip memoisation
            return None
        return key

    def _dfs(self, state: ExecutionState) -> Optional[Witness]:
        if state.terminal:
            witness = self._witness(state, self._explored)
            if state.deadlocked:
                return witness
            self._best_complete = (
                witness if self._best_complete is None
                else worst_witness(self._best_complete, witness)
            )
            return None
        children = []
        for choice in state.candidates:
            checkpoint = state.snapshot()
            self._spend()
            state.advance(choice)
            if state.deadlocked:
                witness = self._witness(state, self._explored)
                state.restore(checkpoint)
                return witness
            key = self._key(state)
            children.append((len(state.candidates), choice, key))
            state.restore(checkpoint)
        for _, choice, key in sorted(children, key=lambda c: c[:2]):
            if key is not None:
                if key in self._seen:
                    continue
                self._seen.add(key)
            checkpoint = state.snapshot()
            self._spend()
            state.advance(choice)
            found = self._dfs(state)
            state.restore(checkpoint)
            if found is not None:
                return found
        return None
