"""Deadlock-seeking adversary: search for a corrupted configuration."""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Union

from ..core.execution import ExecutionState
from ..core.models import MODELS_BY_NAME, ModelSpec
from ..core.protocol import Protocol
from ..faults.spec import FaultSpec, resolve_faults
from ..graphs.labeled_graph import LabeledGraph
from .base import AdversarySearch, Witness, worst_witness
from .kernel import (BudgetMeter, OutOfBudget, SearchContext, SearchStats,
                     complete_ascending)
from .transposition import TableEntry, iter_composed

__all__ = ["DeadlockAdversary"]


class _RecordingSeen(set):
    """The worker-side memo set: a plain ``set`` that also records
    process-stable digests of every key *checked* and every key *added*,
    so the parent merge can prove the worker saw exactly the serial
    exploration (its checks never hit a key another unit added)."""

    def __init__(self, checked: set, added: set) -> None:
        super().__init__()
        self._checked = checked
        self._added = added

    def __contains__(self, key) -> bool:
        from ..core.batch import config_key_digest

        self._checked.add(config_key_digest(key))
        return super().__contains__(key)

    def add(self, key) -> None:
        from ..core.batch import config_key_digest

        self._added.add(config_key_digest(key))
        super().add(key)


class _DigestSeen:
    """Parent-side memo set for the live continuation of a sharded
    search, keyed in digest space so worker-returned ``added`` sets and
    live additions pool into one serial-equivalent ``_seen``."""

    __slots__ = ("_digests",)

    def __init__(self, digests: set) -> None:
        self._digests = digests

    def __contains__(self, key) -> bool:
        from ..core.batch import config_key_digest

        return config_key_digest(key) in self._digests

    def add(self, key) -> None:
        from ..core.batch import config_key_digest

        self._digests.add(config_key_digest(key))


def _run_deadlock_lot(payload):
    """Worker entry point for one sharded deadlock-DFS lot.

    Each prefix is replayed unmetered (the parent event stream owns
    those spends) and its subtree searched with a fresh local meter
    capped at the strategy budget — a unit that alone exceeds it would
    make the serial search cross mid-unit too, so truncation is reported
    and the parent falls back to serial.  Per prefix:
    ``(found, find_spent, spent, best_complete, checked, added,
    truncated)``.  Any exception becomes an ``("error", message)``
    marker; the parent then re-runs the serial authority.
    """
    (graph, protocol, model_name, bit_budget, faults, max_steps,
     prefixes) = payload
    try:
        model = MODELS_BY_NAME[model_name]
        spec = resolve_faults(faults)
        units = []
        for prefix in prefixes:
            adv = DeadlockAdversary(max_steps=max_steps)
            adv._meter = BudgetMeter(SearchStats(), max_steps, None)
            adv._table = None
            adv._best_complete = None
            checked: set = set()
            added: set = set()
            adv._seen = _RecordingSeen(checked, added)
            state = ExecutionState.initial(graph, protocol, model,
                                           bit_budget, faults=spec)
            for choice in prefix:
                state.advance(choice)
            found = None
            truncated = False
            try:
                found = adv._dfs(state)
            except OutOfBudget:
                truncated = True
            find_spent = adv._meter.spent if found is not None else None
            units.append((found, find_spent, adv._meter.spent,
                          adv._best_complete, frozenset(checked),
                          frozenset(added), truncated))
        return ("ok", units)
    except Exception as exc:  # noqa: BLE001 - marker, parent re-runs serial
        return ("error", f"{type(exc).__name__}: {exc}")


class DeadlockAdversary(AdversarySearch):
    """Depth-first hunt for a schedule that starves the protocol.

    A configuration is corrupted when unwritten nodes remain but none is
    active — only possible in the free models (simultaneous models keep
    every unwritten node active, so the search returns immediately with
    a completed run there).  The DFS steers one
    :class:`~repro.core.execution.ExecutionState` with snapshot/restore
    and stops at the *first* deadlock found:

    * children are probed one step ahead and explored in order of fewest
      resulting candidates first — choices that starve future
      activations are tried early, which is what finds deadlocks fast;
    * a probe that lands directly in a corrupted configuration returns
      its witness without recursing;
    * for stateless protocols, revisited configurations are pruned via
      the canonical :meth:`~repro.core.execution.ExecutionState.
      config_key` digest — deadlock reachability is a function of the
      configuration alone.  (The digest goes through the payload codec,
      so dict/list payloads memoise exactly like any other; the old
      ad-hoc key silently disabled the memo on unhashable payloads.)

    With a shared-table :class:`~repro.adversaries.kernel.SearchContext`
    the search additionally *exchanges deadlock-reachability facts*:
    subtrees whose **exact** completion frontier is recorded as
    deadlock-free (e.g. by a branch-and-bound sweep in the same cell)
    are pruned without descent, their worst completion folded into the
    fallback witness instead; and every subtree this DFS exhausts
    without a deadlock is recorded as a deadlock-free fact for later
    consumers.  Sharing never changes the *deadlock verdict* or a found
    deadlock's schedule (only deadlock-free subtrees are skipped, and
    the rest is explored in the identical order); for deadlock-free
    instances the fallback completion witness keeps the identical
    (bits, total) rank, though possibly via a different schedule.

    Within ``max_steps`` the search is complete: it finds a deadlock iff
    one is reachable.  If the budget runs out first, the worst completed
    run seen so far is returned (``deadlock=False`` then means "none
    found", not "none exists").
    """

    name = "deadlock-dfs"

    def __init__(self, max_steps: Optional[int] = 100_000) -> None:
        if max_steps is not None and max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {max_steps}")
        self.max_steps = max_steps

    def search(
        self,
        graph: LabeledGraph,
        protocol: Protocol,
        model: ModelSpec,
        bit_budget: Optional[int] = None,
        *,
        context: Optional[SearchContext] = None,
        faults: Union[None, str, FaultSpec] = None,
        jobs: Optional[int] = None,
    ) -> Witness:
        spec = resolve_faults(faults)
        ctx = SearchContext.ensure(context)
        table = ctx.table
        if table is not None:
            table.bind(graph, protocol, model, bit_budget, faults=spec)
        ctx.stats.searches += 1
        self._meter = ctx.meter(self.max_steps)
        self._table = table
        state = ExecutionState.initial(graph, protocol, model, bit_budget,
                                       faults=spec)
        self._best_complete: Optional[Witness] = None
        self._seen: set = set()
        if model.simultaneous:
            # Every unwritten, uncrashed node is active — under faults
            # too (crashed nodes are terminated, not starved): no
            # deadlock exists.  One completion supplies the witness.
            return self._complete(state)
        if (jobs is not None and jobs > 1 and table is None
                and ctx.max_steps is None):
            # Table-backed searches exchange frontiers mid-flight and a
            # context-wide cap couples this search to earlier ones, so
            # only the table-free, context-uncapped DFS shards; the
            # *strategy* budget is allowed — the merge replays the
            # serial spend sequence and falls back to serial the moment
            # a crossing cannot be proven identical.
            found = self._search_sharded(graph, protocol, model, bit_budget,
                                         ctx, spec, jobs)
            if found is not None:
                return found
        try:
            found = self._dfs(state)
        except OutOfBudget:
            found = None
        if found is not None:
            return found
        if self._best_complete is None:
            # Budget too small to finish any probe: force one completion.
            return self._complete(state)
        return replace(self._best_complete, explored=self._meter.spent)

    def _complete(self, state: ExecutionState) -> Witness:
        complete_ascending(state, self._meter)
        return self._witness(state, self._meter.spent)

    def _key(self, state: ExecutionState):
        """Memo key: the canonical configuration digest (stateless
        protocols only — a stateful protocol's future depends on hidden
        state the digest cannot see)."""
        return state.config_key() if state.stateless else None

    def _fold_pruned(self, state: ExecutionState, choice: int,
                     edge_bits: int, edge_total: int,
                     entry: TableEntry) -> None:
        """A pruned deadlock-free subtree with a known exact frontier
        still contributes its worst completion to the fallback witness,
        so pruning never *loses* badness the plain DFS would have seen."""
        for witness in iter_composed(self.name, state, entry.completions,
                                     self._meter.spent, choice=choice,
                                     edge_bits=edge_bits,
                                     edge_total=edge_total):
            self._best_complete = (
                witness if self._best_complete is None
                else worst_witness(self._best_complete, witness)
            )

    def _expand_events(self, graph, protocol, model, bit_budget, spec,
                       min_units: int, max_depth: int = 3):
        """Bounded parent DFS into an ordered *event* stream.

        Mirrors :meth:`_dfs` step for step — probe loop, deadlock-at-
        probe, fewest-candidates-first descent, memo gating — down to a
        uniform frontier depth, emitting ``("spend",)`` for each meter
        spend, ``("found", witness)`` / ``("complete", witness)`` for
        parent-side verdicts (witness ``explored`` is patched in at
        replay time), and ``("unit", schedule)`` for each *descended*
        frontier subtree.  Root-key dedup between frontier subtrees is
        resolved here (skipped children emit nothing), so replay only
        interleaves worker results.  Expansion is unmetered; the replay
        enforces the budget against the reconstructed spend sequence.
        """
        for depth in range(1, max_depth + 1):
            events: list = []
            seen: set = set()
            state = ExecutionState.initial(graph, protocol, model, bit_budget,
                                           faults=spec)

            def walk(remaining: int) -> bool:
                """Emit the subtree's events; True = a find aborts all."""
                if state.terminal:
                    # Only non-deadlocked terminals are descended into
                    # (the probe loop returns deadlocks first).
                    events.append(("complete", self._witness(state, 0)))
                    return False
                if remaining == 0:
                    events.append(("unit", state.schedule))
                    return False
                children = []
                for choice in state.candidates:
                    checkpoint = state.snapshot()
                    events.append(("spend", None))
                    state.advance(choice)
                    if state.deadlocked:
                        events.append(("found", self._witness(state, 0)))
                        state.restore(checkpoint)
                        return True
                    key = self._key(state)
                    children.append((len(state.candidates), choice, key))
                    state.restore(checkpoint)
                for _, choice, key in sorted(children, key=lambda c: c[:2]):
                    if key is not None:
                        if key in seen:
                            continue
                        seen.add(key)
                    checkpoint = state.snapshot()
                    events.append(("spend", None))
                    state.advance(choice)
                    stop = walk(remaining - 1)
                    state.restore(checkpoint)
                    if stop:
                        return True
                return False

            found = walk(depth)
            units = sum(1 for kind, _ in events if kind == "unit")
            if found or units == 0 or units >= min_units or depth == max_depth:
                return events
        return events  # pragma: no cover - loop always returns

    def _search_sharded(self, graph, protocol, model, bit_budget,
                        ctx: SearchContext, spec, jobs: int,
                        ) -> Optional[Witness]:
        """Fan frontier subtrees across process workers, then *replay*
        the serial event stream to merge.

        The replay walks parent events in serial DFS order on a
        throwaway meter, consuming each unit's worker result where the
        serial search would have explored it.  A unit is *accepted*
        only when the worker provably explored what serial would have:
        it was not truncated, it fits the remaining budget, and none of
        the keys it *checked* was *added* by an earlier unit (parent
        keys live at shallower depths and cannot collide — every
        schedule event terminates one node, so memo keys stratify by
        depth).  An unprovable unit is instead re-run *live* in this
        process — prefix replay plus the ordinary :meth:`_dfs` over a
        digest-space ``_seen`` pooled from every accepted worker — which
        is serial behaviour exactly, so acceptance can resume at the
        next clean unit.  ``None`` (full serial re-run) is reserved for
        worker/pool errors and the one unreproducible corner: a budget
        crossing before any completion exists.  On success the
        committed total and the returned witness (verdict, schedule,
        bits, ``explored``) are the serial search's, field for field.
        """
        from ..core import batch as _batch

        if _batch.np is None:
            return None
        try:
            events = self._expand_events(graph, protocol, model, bit_budget,
                                         spec, min_units=2 * jobs)
        except Exception:  # noqa: BLE001 - serial authority re-raises
            return None
        prefixes = [payload for kind, payload in events if kind == "unit"]
        if len(prefixes) < 2:
            return None
        weights = _batch._prefix_weights(prefixes, graph.n, spec)
        canonical = spec.canonical()
        payloads = [
            (graph, protocol, model.name, bit_budget, canonical,
             self.max_steps, tuple(prefixes[i] for i in idx.tolist()))
            for idx in _batch.partition_weighted(weights, jobs * 2)
        ]
        try:
            from ..runtime.backends import ProcessPoolBackend

            backend = ProcessPoolBackend(jobs=jobs, chunk_size=1)
            outputs = list(backend.map(_run_deadlock_lot, payloads))
        except Exception:  # noqa: BLE001 - pool failure: serial authority
            return None
        per_prefix: dict = {}
        for payload, (status, value) in zip(payloads, outputs):
            if status != "ok":
                return None
            for prefix, unit in zip(payload[6], value):
                per_prefix[prefix] = unit
        limit = self.max_steps
        real_meter = self._meter
        throwaway = BudgetMeter(SearchStats(), limit, None)
        self._meter = throwaway
        added_global: set = set()
        self._seen = _DigestSeen(added_global)
        self._best_complete = None

        def fallback() -> None:
            """Undo the attempt: the serial re-run starts fresh."""
            self._meter = real_meter
            self._best_complete = None
            self._seen = set()
            return None

        def commit(witness: Witness, patch: bool) -> Witness:
            self._meter = real_meter
            real_meter.charge(throwaway.spent)
            if patch:
                return replace(witness, explored=real_meter.spent)
            return witness  # live finds already carry the exact count

        for kind, payload in events:
            if kind == "spend":
                try:
                    throwaway.spend()
                except OutOfBudget:
                    # Serial truncates on this very spend.  Its fallback
                    # witness is the fold so far — unless none exists,
                    # in which case serial completes from a mid-parent
                    # state this replay does not hold: full re-run
                    # (cheap: the budget is smaller than the parent
                    # expansion that exhausted it).
                    if self._best_complete is None:
                        return fallback()
                    return commit(self._best_complete, patch=True)
            elif kind == "found":
                return commit(payload, patch=True)
            elif kind == "complete":
                self._best_complete = (
                    payload if self._best_complete is None
                    else worst_witness(self._best_complete, payload))
            else:  # unit
                (found, find_spent, unit_spent, unit_best, checked, added,
                 truncated) = per_prefix[payload]
                clean = not truncated and not (checked & added_global)
                if clean and found is not None:
                    if limit is None or throwaway.spent + find_spent <= limit:
                        throwaway.charge(find_spent)
                        return commit(found, patch=True)
                    clean = False  # serial crosses before the find
                elif clean and (limit is not None
                                and throwaway.spent + unit_spent > limit):
                    clean = False  # serial crosses mid-unit
                if clean:
                    throwaway.charge(unit_spent)
                    added_global |= added
                    if unit_best is not None:
                        self._best_complete = (
                            unit_best if self._best_complete is None
                            else worst_witness(self._best_complete,
                                               unit_best))
                    continue
                # Live continuation: run this unit serially, right here,
                # against the pooled memo — behaviourally identical to
                # the serial search reaching this subtree.
                state = ExecutionState.initial(graph, protocol, model,
                                               bit_budget, faults=spec)
                for choice in payload:
                    state.advance(choice)
                try:
                    live_found = self._dfs(state)
                except OutOfBudget:
                    if self._best_complete is None:
                        # Serial's forced completion from the mid-tree
                        # state — which the live run holds, identically.
                        return commit(self._complete(state), patch=False)
                    return commit(self._best_complete, patch=True)
                except Exception:
                    # e.g. MessageTooLarge: serial raises it at this
                    # same state.  Commit the accounting and let it out.
                    self._meter = real_meter
                    real_meter.charge(throwaway.spent)
                    raise
                if live_found is not None:
                    return commit(live_found, patch=False)
        if self._best_complete is None:
            return fallback()
        return commit(self._best_complete, patch=True)

    def _dfs(self, state: ExecutionState) -> Optional[Witness]:
        if state.terminal:
            witness = self._witness(state, self._meter.spent)
            if state.deadlocked:
                return witness
            self._best_complete = (
                witness if self._best_complete is None
                else worst_witness(self._best_complete, witness)
            )
            return None
        table = self._table
        children = []
        for choice in state.candidates:
            checkpoint = state.snapshot()
            self._meter.spend()
            state.advance(choice)
            if state.deadlocked:
                witness = self._witness(state, self._meter.spent)
                state.restore(checkpoint)
                return witness
            key = self._key(state)
            # last_event accounting: a crash or loss probe leaves the
            # board untouched (possibly empty), so the board tail is not
            # the probed edge.
            edge_bits = state.last_event_bits
            edge_total = state.last_event_total
            children.append((len(state.candidates), choice, key, edge_bits,
                             edge_total))
            state.restore(checkpoint)
        for _, choice, key, edge_bits, edge_total in sorted(
                children, key=lambda c: c[:2]):
            if key is not None:
                if key in self._seen:
                    continue
                if table is not None:
                    entry = table.lookup(key)
                    # Prune only subtrees whose exact frontier is known:
                    # folding it keeps the fallback witness at the same
                    # badness rank the full DFS would have reached.  A
                    # bare deadlock-free fact (no completions) is not
                    # enough — skipping on it could lose the worst
                    # completion.
                    if (entry is not None and entry.deadlock_free
                            and entry.exact):
                        self._fold_pruned(state, choice, edge_bits,
                                          edge_total, entry)
                        continue
                self._seen.add(key)
            checkpoint = state.snapshot()
            self._meter.spend()
            state.advance(choice)
            found = self._dfs(state)
            state.restore(checkpoint)
            if found is not None:
                return found
            if table is not None:
                # The whole subtree under ``choice`` is deadlock-free.
                table.record_deadlock_free(key)
        return None
