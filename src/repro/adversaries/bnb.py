"""Branch-and-bound over the full schedule tree."""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Optional

from ..core.execution import ExecutionState
from ..core.models import ModelSpec
from ..core.protocol import Protocol
from ..graphs.labeled_graph import LabeledGraph
from .base import AdversarySearch, Witness, worst_witness

__all__ = ["BranchAndBoundAdversary"]


class _OutOfBudget(Exception):
    """Internal: the step budget ran out mid-search."""


class BranchAndBoundAdversary(AdversarySearch):
    """Exact search for the worst schedule, with structural pruning.

    A depth-first sweep of the whole choice tree over one
    :class:`~repro.core.execution.ExecutionState` — the same shape as
    exhaustive enumeration — but subtrees whose outcome is already
    determined are *bounded* instead of enumerated:

    * **SIMASYNC collapse.**  Simultaneous-asynchronous executions
      freeze every message before the first write, so the board multiset
      — hence the largest message and the total — is schedule-invariant,
      and simultaneous models cannot deadlock.  One completion is the
      exact answer: the tree never branches at all.
    * **Frozen-tail collapse.**  In any asynchronous model, once every
      node has activated the remaining messages are frozen and no
      further activation decision exists: every completion of the prefix
      writes the same multiset, and no deadlock can appear.  The subtree
      (up to ``k!`` schedules) is replaced by a single ascending
      completion.

    Within ``max_steps`` the sweep is complete, so the witness is the
    exact worst case (ties broken towards the DFS-first schedule).  When
    the budget runs out the incumbent is returned and, if ``restarts``
    is positive, additional budgeted passes with seeded-random child
    order diversify the truncated exploration — the branch-and-bound
    analogue of random restarts.
    """

    name = "branch-and-bound"

    def __init__(
        self,
        max_steps: Optional[int] = None,
        restarts: int = 2,
        seed: int = 0,
    ) -> None:
        if max_steps is not None and max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {max_steps}")
        if restarts < 0:
            raise ValueError(f"restarts must be >= 0, got {restarts}")
        self.max_steps = max_steps
        self.restarts = restarts
        self.seed = seed

    def search(
        self,
        graph: LabeledGraph,
        protocol: Protocol,
        model: ModelSpec,
        bit_budget: Optional[int] = None,
    ) -> Witness:
        self._explored = 0
        self._best: Optional[Witness] = None
        state = ExecutionState.initial(graph, protocol, model, bit_budget)
        if model.simultaneous and model.asynchronous:
            self._complete_ascending(state)
            return self._best
        truncated = self._sweep(state, rng=None)
        if truncated:
            for attempt in range(self.restarts):
                rng = random.Random(f"{self.seed}:{attempt}")
                fresh = ExecutionState.initial(graph, protocol, model,
                                               bit_budget)
                self._sweep(fresh, rng=rng)
        if self._best is None:
            # Budget exhausted before any completion: force one descent.
            fresh = ExecutionState.initial(graph, protocol, model, bit_budget)
            self._complete_ascending(fresh)
        return replace(self._best, explored=self._explored)

    def _sweep(self, state: ExecutionState,
               rng: Optional[random.Random]) -> bool:
        """One budgeted DFS pass; returns whether it was truncated."""
        budget_before = self._explored
        limit = (None if self.max_steps is None
                 else budget_before + self.max_steps)
        try:
            self._dfs(state, rng, limit)
        except _OutOfBudget:
            return True
        return False

    def _record(self, state: ExecutionState) -> None:
        witness = self._witness(state, self._explored)
        self._best = (witness if self._best is None
                      else worst_witness(self._best, witness))

    def _advance(self, state: ExecutionState, choice: int,
                 limit: Optional[int]) -> None:
        if limit is not None and self._explored >= limit:
            raise _OutOfBudget
        state.advance(choice)
        self._explored += 1

    def _complete_ascending(self, state: ExecutionState,
                            limit: Optional[int] = None) -> None:
        while not state.terminal:
            self._advance(state, state.candidates[0], limit)
        self._record(state)

    def _dfs(self, state: ExecutionState, rng: Optional[random.Random],
             limit: Optional[int]) -> None:
        if state.terminal:
            self._record(state)
            return
        if (state.model.asynchronous
                and len(state.active) + len(state.written) == state.n):
            # Frozen tail: every completion writes the same multiset and
            # none deadlocks — one ascending completion is exact.
            checkpoint = state.snapshot()
            self._complete_ascending(state, limit)
            state.restore(checkpoint)
            return
        candidates = list(state.candidates)
        if rng is not None:
            rng.shuffle(candidates)
        for choice in candidates:
            checkpoint = state.snapshot()
            self._advance(state, choice, limit)
            self._dfs(state, rng, limit)
            state.restore(checkpoint)
