"""Branch-and-bound over the full schedule tree."""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Optional, Union

from ..core.execution import ExecutionState
from ..core.models import MODELS_BY_NAME, ModelSpec
from ..core.protocol import Protocol
from ..faults.spec import FaultSpec, resolve_faults
from ..graphs.labeled_graph import LabeledGraph
from .base import AdversarySearch, Witness, witness_rank, worst_witness
from .kernel import (BudgetMeter, OutOfBudget, SearchContext, SearchStats,
                     complete_ascending)
from .transposition import (Completion, dominance_frontier, iter_composed,
                            join_bounds, merge_bounds)

__all__ = ["BranchAndBoundAdversary"]


def _run_bnb_lot(payload):
    """Worker entry point for one sharded branch-and-bound lot.

    Replays each schedule prefix *unmetered* (the parent expansion
    already spent those edges once, exactly like the serial sweep) and
    runs the plain table-free sweep below it on a fresh local meter.
    Returns ``("ok", (per-prefix incumbents, write events spent))`` or
    an ``("error", message)`` marker — the parent then discards the
    whole sharded attempt and re-runs the serial authority.
    """
    graph, protocol, model_name, bit_budget, faults, prefixes = payload
    try:
        model = MODELS_BY_NAME[model_name]
        adv = BranchAndBoundAdversary(restarts=0)
        adv._table = None
        adv._faults = resolve_faults(faults)
        adv._meter = BudgetMeter(SearchStats(), None, None)
        bests: list[Witness] = []
        for prefix in prefixes:
            state = ExecutionState.initial(graph, protocol, model,
                                           bit_budget, faults=adv._faults)
            for choice in prefix:
                state.advance(choice)
            adv._best = None
            adv._dfs_plain(state, None, None)
            bests.append(adv._best)
        return ("ok", (bests, adv._meter.spent))
    except Exception as exc:  # noqa: BLE001 - marker, parent re-runs serial
        return ("error", f"{type(exc).__name__}: {exc}")


class BranchAndBoundAdversary(AdversarySearch):
    """Exact search for the worst schedule, with structural pruning.

    A depth-first sweep of the whole choice tree over one
    :class:`~repro.core.execution.ExecutionState` — the same shape as
    exhaustive enumeration — but subtrees whose outcome is already
    determined are *bounded* instead of enumerated:

    * **SIMASYNC collapse.**  Simultaneous-asynchronous executions
      freeze every message before the first write, so the board multiset
      — hence the largest message and the total — is schedule-invariant,
      and simultaneous models cannot deadlock.  One completion is the
      exact answer: the tree never branches at all.
    * **Frozen-tail collapse.**  In any asynchronous model, once every
      node has activated the remaining messages are frozen and no
      further activation decision exists: every completion of the prefix
      writes the same multiset, and no deadlock can appear.  The subtree
      (up to ``k!`` schedules) is replaced by a single ascending
      completion.
    * **Transposition collapse** (shared-table contexts only).  The
      sweep maintains the exact **completion frontier** of every subtree
      it finishes — the dominance-filtered set of suffix outcomes, in
      discovery order — and stores it in the context's
      :class:`~repro.adversaries.transposition.TranspositionTable`.  A
      configuration whose frontier is already known (from an earlier
      subtree, an earlier restart pass, or another strategy in the same
      stress cell) is *composed* instead of re-expanded.  Because ties
      keep the first-discovered completion — the same rule the incumbent
      update uses — a table-backed sweep returns the field-identical
      witness of the plain sweep, just cheaper.
    * **Admissible-bound pruning** (shared-table contexts, ``bounds``
      on).  Before expanding a subtree the sweep composes the state's
      intrinsic :meth:`~repro.core.execution.ExecutionState.
      suffix_bound` with any bound the table stored for the
      configuration; a subtree whose composed bound cannot beat the
      incumbent — ``(deadlock, max bits, total bits)`` rank at most the
      incumbent's — is skipped entirely.  Admissibility (the bound is
      never below the true subtree maximum) plus the first-on-tie
      incumbent rule make pruning invisible to the returned witness:
      every skipped completion would have lost (or tie-lost) the
      incumbent update.  Truncated and pruned subtrees *store* their
      bound in the table, so later passes — and, through the persistent
      frontier store, later runs — prune them without a single step.
      Pruning coexists with the frontier bookkeeping: a pruned child
      whose composed bound an earlier sibling's completion dominates is
      *absorbed* (dominance filtering would have dropped everything it
      held, so the parent's frontier stays exact), and an unabsorbed
      prune degrades the parent to a **partial frontier** — the swept
      completions plus a bound over the pruned remainder — which later
      passes consume like an exact hit once their incumbent beats the
      remainder bound.
      One caveat: a pruned subtree is never stepped, so a
      ``MessageTooLarge`` a boundless sweep would have raised inside it
      is not raised — a search-order artifact (exhaustive enumeration
      still surfaces the violating schedule; pruning only engages above
      the exhaustive threshold).  The table-free sweep never prunes:
      it is the sharding-compatible authority whose explored counts
      define the ``jobs=N`` field identity.

    Within ``max_steps`` the sweep is complete, so the witness is the
    exact worst case (ties broken towards the DFS-first schedule).  When
    the budget runs out the incumbent is returned and, if ``restarts``
    is positive, additional budgeted passes with seeded-random child
    order diversify the truncated exploration — the branch-and-bound
    analogue of random restarts.
    """

    name = "branch-and-bound"

    def __init__(
        self,
        max_steps: Optional[int] = None,
        restarts: int = 2,
        seed: int = 0,
        bounds: bool = True,
    ) -> None:
        if max_steps is not None and max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {max_steps}")
        if restarts < 0:
            raise ValueError(f"restarts must be >= 0, got {restarts}")
        self.max_steps = max_steps
        self.restarts = restarts
        self.seed = seed
        self.bounds = bounds

    def search(
        self,
        graph: LabeledGraph,
        protocol: Protocol,
        model: ModelSpec,
        bit_budget: Optional[int] = None,
        *,
        context: Optional[SearchContext] = None,
        faults: Union[None, str, FaultSpec] = None,
        jobs: Optional[int] = None,
    ) -> Witness:
        spec = resolve_faults(faults)
        ctx = SearchContext.ensure(context)
        table = ctx.table
        if table is not None:
            table.bind(graph, protocol, model, bit_budget, faults=spec)
        ctx.stats.searches += 1
        self._meter = ctx.meter(None)
        self._table = table
        self._best: Optional[Witness] = None
        self._faults = spec
        state = ExecutionState.initial(graph, protocol, model, bit_budget,
                                       faults=spec)
        if model.simultaneous and model.asynchronous and not spec.enabled:
            # The collapse is only sound for reliable executions: a
            # crash or loss changes the board multiset, so a faulted
            # SIMASYNC tree genuinely branches.
            try:
                self._complete_ascending(state)
            except OutOfBudget:
                pass  # context budget exhausted mid-collapse
            self._force_completion(graph, protocol, model, bit_budget)
            return self._best
        if (jobs is not None and jobs > 1 and table is None
                and self.max_steps is None and ctx.max_steps is None):
            # Unbudgeted, table-free sweeps shard exactly: workers hold
            # no shared pruning state and no budget can truncate them,
            # so the cross-lot incumbent fold below is provably the
            # serial incumbent.  Budgeted or table-backed sweeps stay
            # serial (their pruning order is globally stateful).
            found = self._search_sharded(graph, protocol, model, bit_budget,
                                         ctx, spec, jobs)
            if found is not None:
                return found
        truncated = self._sweep(state, rng=None)
        if truncated:
            for attempt in range(self.restarts):
                ctx.stats.restarts += 1
                rng = ctx.rng(self.seed, attempt)
                fresh = ExecutionState.initial(graph, protocol, model,
                                               bit_budget, faults=spec)
                self._sweep(fresh, rng=rng)
        self._force_completion(graph, protocol, model, bit_budget)
        return replace(self._best, explored=self._meter.spent)

    def _force_completion(self, graph, protocol, model, bit_budget) -> None:
        """Budget exhausted before any completion: force one descent
        (charged but never aborted, so a witness always exists)."""
        if self._best is not None:
            return
        fresh = ExecutionState.initial(graph, protocol, model, bit_budget,
                                       faults=self._faults)
        complete_ascending(fresh, self._meter)
        self._record(fresh)

    def _expand_units(self, graph, protocol, model, bit_budget, spec,
                      min_prefixes: int, max_depth: int = 3):
        """Bounded parent sweep into DFS-ordered units.

        Mirrors :meth:`_dfs_plain` step for step down to a uniform
        frontier depth: ``("best", witness)`` for terminals and
        frozen-tail collapses above the frontier (each completion edge
        spent on the local meter, exactly as the serial sweep spends
        it), ``("prefix", schedule)`` for frontier subtree roots (their
        interior edges are spent by the worker that owns them).  Returns
        ``(units, write events spent)``.
        """
        for depth in range(1, max_depth + 1):
            units: list = []
            meter = BudgetMeter(SearchStats(), None, None)
            state = ExecutionState.initial(graph, protocol, model, bit_budget,
                                           faults=spec)

            def walk(remaining: int) -> None:
                if remaining == 0 and not state.terminal:
                    units.append(("prefix", state.schedule))
                    return
                if state.terminal:
                    units.append(("best", self._witness(state, meter.spent)))
                    return
                if self._frozen_tail(state):
                    checkpoint = state.snapshot()
                    while not state.terminal:
                        state.advance(state.candidates[0])
                        meter.spend()
                    units.append(("best", self._witness(state, meter.spent)))
                    state.restore(checkpoint)
                    return
                for choice in state.candidates:
                    checkpoint = state.snapshot()
                    state.advance(choice)
                    meter.spend()
                    walk(remaining - 1)
                    state.restore(checkpoint)

            walk(depth)
            prefixes = sum(1 for kind, _ in units if kind == "prefix")
            if prefixes == 0 or prefixes >= min_prefixes or depth == max_depth:
                return units, meter.spent
        return units, meter.spent  # pragma: no cover - loop always returns

    def _search_sharded(self, graph, protocol, model, bit_budget,
                        ctx: SearchContext, spec, jobs: int,
                        ) -> Optional[Witness]:
        """Fan the sweep across process workers over balanced subtree
        lots; the associative incumbent fold below reproduces the serial
        incumbent field for field.

        Soundness: ``worst_witness`` keeps the first of rank-equal
        witnesses, so folding per-unit incumbents *in DFS unit order*
        selects exactly the witness the serial DFS-first tie-break
        selects; and every tree edge is spent exactly once (parent
        expansion above the frontier, owning worker below it), so the
        committed total — hence ``explored`` and the context stats — is
        the serial count.  Returns ``None`` (caller re-runs the serial
        sweep) whenever identity cannot be proven: expansion raised, the
        frontier is too small to split, the pool failed, or any worker
        returned an error marker.
        """
        from ..core import batch as _batch

        if _batch.np is None:
            return None
        try:
            units, expansion_spent = self._expand_units(
                graph, protocol, model, bit_budget, spec,
                min_prefixes=2 * jobs)
        except Exception:  # noqa: BLE001 - serial authority re-raises
            return None
        prefixes = [payload for kind, payload in units if kind == "prefix"]
        if len(prefixes) < 2:
            return None
        weights = _batch._prefix_weights(prefixes, graph.n, spec)
        canonical = spec.canonical()
        payloads = [
            (graph, protocol, model.name, bit_budget, canonical,
             tuple(prefixes[i] for i in idx.tolist()))
            for idx in _batch.partition_weighted(weights, jobs * 2)
        ]
        try:
            from ..runtime.backends import ProcessPoolBackend

            backend = ProcessPoolBackend(jobs=jobs, chunk_size=1)
            outputs = list(backend.map(_run_bnb_lot, payloads))
        except Exception:  # noqa: BLE001 - pool failure: serial authority
            return None
        per_prefix: dict[tuple[int, ...], Witness] = {}
        total = expansion_spent
        for payload, (status, value) in zip(payloads, outputs):
            if status != "ok":
                return None
            bests, spent = value
            total += spent
            for prefix, best in zip(payload[5], bests):
                if best is None:
                    return None
                per_prefix[prefix] = best
        best: Optional[Witness] = None
        for kind, payload in units:
            witness = payload if kind == "best" else per_prefix[payload]
            best = witness if best is None else worst_witness(best, witness)
        self._meter.charge(total)
        return replace(best, explored=self._meter.spent)

    def _sweep(self, state: ExecutionState,
               rng: Optional[random.Random]) -> bool:
        """One budgeted DFS pass; returns whether it was truncated."""
        limit = (None if self.max_steps is None
                 else self._meter.spent + self.max_steps)
        try:
            self._dfs(state, rng, limit)
        except OutOfBudget:
            return True
        return False

    def _record(self, state: ExecutionState) -> None:
        witness = self._witness(state, self._meter.spent)
        self._best = (witness if self._best is None
                      else worst_witness(self._best, witness))

    def _advance(self, state: ExecutionState, choice: int,
                 limit: Optional[int]) -> None:
        if limit is not None and self._meter.spent >= limit:
            raise OutOfBudget
        state.advance(choice)
        self._meter.spend()

    def _complete_ascending(self, state: ExecutionState,
                            limit: Optional[int] = None) -> None:
        while not state.terminal:
            self._advance(state, state.candidates[0], limit)
        self._record(state)

    def _compose_hit(self, state: ExecutionState,
                     completions: tuple[Completion, ...]) -> None:
        """Fold a known frontier into the incumbent, in discovery order
        (exactly the updates the expanded subtree would have made)."""
        for witness in iter_composed(self.name, state, completions,
                                     self._meter.spent):
            self._best = (witness if self._best is None
                          else worst_witness(self._best, witness))

    #: Subtrees with fewer remaining write events than this are cheaper
    #: to re-expand than to digest, store and compose: a table hit on a
    #: 1-step subtree saves one ``advance``.  Keeping them out of the
    #: table cuts the bookkeeping in hit-poor cells roughly in half
    #: without touching the hits that matter (near the root).
    MIN_TABLE_SUBTREE = 2

    def _prunable(self, state: ExecutionState,
                  bound: tuple[bool, int, int]) -> bool:
        """Whether the subtree's composed bound rank cannot beat the
        incumbent.  Rank-equal completions lose too: the incumbent was
        discovered earlier in DFS order, and ties keep the first."""
        best = self._best
        if best is None:
            return False
        deadlock, top, total = bound
        board = state.board
        rank = (deadlock, max(board.max_bits(), top),
                board.total_bits() + total)
        return rank <= witness_rank(best)

    def _dfs(self, state: ExecutionState, rng: Optional[random.Random],
             limit: Optional[int],
             ) -> tuple[tuple[Completion, ...], bool, Optional[tuple]]:
        """Sweep the subtree under ``state``; with a table attached,
        returns ``(frontier, exact, remainder bound)`` — the completion
        frontier relative to ``state`` (exact when ``exact``, else the
        partial frontier of the swept part), and, when inexact, an
        admissible bound over the *pruned remainder* so parents can
        compose both halves.  A pruned child is **absorbed** when an
        earlier-kept completion dominates its composed bound (every
        completion it could hold would have been dominance-dropped
        anyway, so exactness survives); otherwise the parent stores a
        partial frontier plus the joined remainder bound.  Without a
        table the frontier is dead weight, so none is built — the
        table-off sweep stays exactly the pre-kernel loop."""
        table = self._table
        if table is None:
            return self._dfs_plain(state, rng, limit)
        remaining = state.n - len(state.written) - len(state.crashed)
        key = (
            table.key_for(state)
            if remaining >= self.MIN_TABLE_SUBTREE
            else None
        )
        entry = None
        if key is not None:
            entry = table.lookup(key)
            if entry is not None and entry.exact:
                self._compose_hit(state, entry.completions)
                return entry.completions, True, None
            if self.bounds and entry is not None:
                stored = entry.effective_bound()
                if stored is not None and self._prunable(state, stored):
                    # Partial (or bound-only) hit: the unexplored
                    # remainder cannot beat the incumbent, so the stored
                    # completions are every update an expansion would
                    # have made.
                    self._compose_hit(state, entry.completions)
                    self._meter.stats.bound_prunes += 1
                    return entry.completions, False, stored
        if state.terminal:
            self._record(state)
            frontier = (Completion(state.deadlocked, 0, 0, ()),)
            table.record_exact(key, frontier)
            return frontier, True, None
        if self.bounds:
            bound = state.suffix_bound()
            if entry is not None and not entry.completions:
                # A bound without completions covers the whole subtree,
                # so it tightens the intrinsic one.  A partial entry's
                # bound covers only its remainder — merging it here
                # would prune completions the entry does hold.
                bound = merge_bounds(bound, entry.effective_bound())
            if bound is not None and self._prunable(state, bound):
                self._meter.stats.bound_prunes += 1
                table.record_bound(key, bound)
                return (), False, bound
        if self._frozen_tail(state):
            # Frozen tail: every completion writes the same multiset and
            # none deadlocks — one ascending completion is exact.
            depth = state.depth
            base_total = state.board.total_bits()
            checkpoint = state.snapshot()
            self._complete_ascending(state, limit)
            suffix = state.schedule[depth:]
            suffix_entries = state.board.entries[depth:]
            frontier = (Completion(
                deadlock=False,
                max_bits=max((e.bits for e in suffix_entries), default=0),
                total_bits=state.board.total_bits() - base_total,
                suffix=suffix,
            ),)
            state.restore(checkpoint)
            table.record_exact(key, frontier)
            return frontier, True, None
        candidates = list(state.candidates)
        if rng is not None:
            rng.shuffle(candidates)
        completions: list[Completion] = []
        exact = True
        rem_bound: Optional[tuple] = (False, 0, 0)  # join identity
        for choice in candidates:
            prior = len(completions)
            checkpoint = state.snapshot()
            try:
                self._advance(state, choice, limit)
                # last_event accounting, not the board tail: a crash or
                # loss edge costs 0 bits and a duplicated write doubles
                # the total while counting once for the maximum.
                edge_bits = state.last_event_bits
                edge_total = state.last_event_total
                child_front, child_exact, child_bound = self._dfs(
                    state, rng, limit)
            except OutOfBudget:
                # Truncated mid-subtree: the bound is still admissible,
                # so store it — the next pass (or the next warm run)
                # prunes this subtree instead of re-truncating inside it.
                state.restore(checkpoint)
                if self.bounds:
                    table.record_bound(key, state.suffix_bound())
                raise
            state.restore(checkpoint)
            for c in child_front:
                completions.append(Completion(
                    deadlock=c.deadlock,
                    max_bits=max(edge_bits, c.max_bits),
                    total_bits=edge_total + c.total_bits,
                    suffix=(choice,) + c.suffix,
                ))
            if child_exact:
                continue
            composed = None if child_bound is None else Completion(
                deadlock=child_bound[0],
                max_bits=max(edge_bits, child_bound[1]),
                total_bits=edge_total + child_bound[2],
                suffix=(),
            )
            if composed is not None and any(
                earlier.dominates(composed)
                for earlier in completions[:prior]
            ):
                # Absorbed: an earlier sibling's completion dominates
                # the whole pruned remainder, so dominance filtering
                # would have dropped every completion it could hold —
                # the frontier is exact without it.  Only *earlier
                # siblings* qualify: this child's own completions may be
                # DFS-later than its pruned parts, and a later dominator
                # flips first-on-tie.
                continue
            exact = False
            rem_bound = None if composed is None else join_bounds(
                rem_bound,
                (composed.deadlock, composed.max_bits, composed.total_bits),
            )
        frontier = dominance_frontier(completions)
        if not exact:
            # An unabsorbed pruned child leaves the frontier partial:
            # store what was swept plus the joined remainder bound, so
            # later passes compose the known half and prune the rest.
            table.record_partial(key, frontier, rem_bound)
            return frontier, False, rem_bound
        table.record_exact(key, frontier)
        return frontier, True, None

    @staticmethod
    def _frozen_tail(state: ExecutionState) -> bool:
        # Unspent fault budget invalidates the collapse: a crash can
        # still discard a frozen message, a loss or duplication can
        # still change the board multiset.
        return (state.model.asynchronous
                and not state.faults_remaining
                and (len(state.active) + len(state.written)
                     + len(state.crashed)) == state.n)

    def _dfs_plain(self, state: ExecutionState,
                   rng: Optional[random.Random],
                   limit: Optional[int]) -> None:
        """The table-free sweep: identical expansion order and incumbent
        updates, no frontier bookkeeping."""
        if state.terminal:
            self._record(state)
            return None
        if self._frozen_tail(state):
            checkpoint = state.snapshot()
            self._complete_ascending(state, limit)
            state.restore(checkpoint)
            return None
        candidates = list(state.candidates)
        if rng is not None:
            rng.shuffle(candidates)
        for choice in candidates:
            checkpoint = state.snapshot()
            self._advance(state, choice, limit)
            self._dfs_plain(state, rng, limit)
            state.restore(checkpoint)
        return None
