"""Searchable adversary strategies: the interface and its currency.

The paper's guarantees are universally quantified over adversarial write
schedules.  Exhaustive enumeration checks that quantifier exactly but
dies at ``n ≈ 7`` (``n!`` schedules); the fixed schedulers in
:mod:`repro.core.schedulers` scale but probe only a handful of points.
An :class:`AdversarySearch` sits between the two: it *searches* the
schedule tree — driving one :class:`~repro.core.execution.ExecutionState`
with ``advance``/``snapshot``/``restore`` — for a concrete **witness**
schedule that is as bad as it can find: a deadlock if one is reachable,
otherwise a schedule maximising the largest message written.

Every strategy returns a :class:`Witness` carrying the schedule itself,
so a claimed worst case is always replayable
(:func:`~repro.core.execution.replay_schedule`) and narratable
(:func:`~repro.analysis.trace.narrate_witness`) — never just a number.

Badness is ordered lexicographically by :func:`witness_rank`: a deadlock
(the protocol produces no output at all) beats any finite message size;
among non-deadlocks, more bits in the largest message is worse, with the
total board size as the tiebreak.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Optional, Union

from ..core.errors import MessageTooLarge, ProtocolViolation, SchedulerError
from ..core.execution import ExecutionState
from ..faults.spec import FaultSpec
from ..core.models import ModelSpec
from ..core.protocol import Protocol
from ..graphs.labeled_graph import LabeledGraph

__all__ = [
    "Witness",
    "AdversarySearch",
    "witness_rank",
    "worst_witness",
    "schedule_forces",
    "minimize_schedule",
    "minimize_witness",
]


@dataclass(frozen=True)
class Witness:
    """A concrete worst-case schedule found by an adversary search.

    Attributes
    ----------
    strategy:
        Name of the strategy that found it.
    schedule:
        The full adversary choice sequence, replayable from the initial
        configuration to a terminal one.
    bits / total_bits:
        Largest single message and whole-board size along the run.
    deadlock:
        The schedule ends in a corrupted (deadlocked) configuration.
    explored:
        Write events the search applied (``advance`` calls) — the cost
        of finding the witness, comparable across strategies.
    """

    strategy: str
    schedule: tuple[int, ...]
    bits: int
    total_bits: int
    deadlock: bool
    explored: int
    #: Shrunk form of ``schedule`` that still forces the recorded
    #: bits/deadlock (see :func:`minimize_witness`); ``None`` until a
    #: minimisation pass has run.  For deadlock witnesses this is a
    #: complete (terminal) schedule; for bits witnesses it is the
    #: minimal forcing *prefix* — the claim is established the moment
    #: the largest message lands, so trailing events carry no evidence.
    minimal_schedule: Optional[tuple[int, ...]] = None


def witness_rank(witness: Witness) -> tuple[bool, int, int]:
    """Sort key for adversarial badness (higher = worse for the protocol)."""
    return (witness.deadlock, witness.bits, witness.total_bits)


def worst_witness(*witnesses: Optional[Witness]) -> Witness:
    """The worst of the given witnesses (``None`` entries are skipped)."""
    found = [w for w in witnesses if w is not None]
    if not found:
        raise ValueError("no witnesses to compare")
    return max(found, key=witness_rank)


def schedule_forces(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
    schedule: tuple[int, ...],
    *,
    bits: int = 0,
    deadlock: bool = False,
    bit_budget: Optional[int] = None,
    faults: Union[None, str, FaultSpec] = None,
) -> bool:
    """Whether ``schedule`` (replayed from the initial configuration)
    still establishes the witnessed badness.

    * deadlock targets: the schedule must be valid and end in a
      terminal, deadlocked configuration;
    * bits targets: the schedule must be valid and write at least one
      message of ``>= bits`` bits.  It need not be terminal — "the
      adversary forces a B-bit message" is proven the moment that
      message lands, which is what lets bits witnesses shrink to
      prefixes.

    An inapplicable choice, a budget violation, or a protocol violation
    along the way makes the schedule not-forcing (``False``), never an
    exception: minimisation probes many invalid mutants by design.

    Faulted schedules carry their fault events inline; replay them under
    the same ``faults`` budget or the fault events are invalid choices.
    """
    state = ExecutionState.initial(graph, protocol, model, bit_budget,
                                   faults=faults)
    try:
        for choice in schedule:
            state.advance(choice)
    except (SchedulerError, MessageTooLarge, ProtocolViolation):
        return False
    if deadlock:
        return state.deadlocked
    return state.board.max_bits() >= bits


def _forcing_prefix(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
    schedule: tuple[int, ...],
    bits: int,
    bit_budget: Optional[int],
    faults: Union[None, str, FaultSpec] = None,
) -> tuple[int, ...]:
    """Truncate a (known-forcing) bits schedule at the first event that
    reaches the target."""
    if bits <= 0:
        return ()  # vacuous target: the empty prefix already forces it
    state = ExecutionState.initial(graph, protocol, model, bit_budget,
                                   faults=faults)
    for depth, choice in enumerate(schedule, start=1):
        state.advance(choice)
        # last_event_bits, not board.entries[-1]: after a crash or loss
        # event the board may be empty or stale.
        if state.last_event_bits >= bits:
            return schedule[:depth]
    raise AssertionError("schedule was checked to force the bits target")


def minimize_schedule(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
    schedule: tuple[int, ...],
    *,
    bits: int = 0,
    deadlock: bool = False,
    bit_budget: Optional[int] = None,
    faults: Union[None, str, FaultSpec] = None,
) -> tuple[int, ...]:
    """Greedy prefix/segment shrink of a witness schedule.

    Returns a subsequence of ``schedule`` that still forces the target
    (checked by full replay at every step, so the result is replayable
    evidence exactly like the original).  The shrink is ddmin-style:
    bits targets are first cut to the shortest forcing prefix, then
    segments of halving length are deleted greedily while the property
    survives.  The result is 1-minimal — no single remaining event can
    be dropped — which is the useful guarantee for narration; it is not
    necessarily a globally shortest subsequence.

    Raises :class:`ValueError` when ``schedule`` does not force the
    target in the first place (a witness that does not reproduce is a
    bug upstream, not a minimisation concern).
    """
    current = tuple(schedule)
    if not schedule_forces(graph, protocol, model, current,
                           bits=bits, deadlock=deadlock,
                           bit_budget=bit_budget, faults=faults):
        raise ValueError(
            f"schedule {current} does not force the target "
            f"({'deadlock' if deadlock else f'{bits} bits'})"
        )
    if not deadlock:
        current = _forcing_prefix(graph, protocol, model, current, bits,
                                  bit_budget, faults=faults)
    size = max(1, len(current) // 2)
    while size >= 1:
        index = 0
        while index + size <= len(current):
            candidate = current[:index] + current[index + size:]
            if schedule_forces(graph, protocol, model, candidate,
                               bits=bits, deadlock=deadlock,
                               bit_budget=bit_budget, faults=faults):
                current = candidate
                if not deadlock:
                    current = _forcing_prefix(
                        graph, protocol, model, current, bits, bit_budget,
                        faults=faults,
                    )
            else:
                index += size
        size //= 2
    return current


def minimize_witness(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
    witness: Witness,
    bit_budget: Optional[int] = None,
    faults: Union[None, str, FaultSpec] = None,
) -> Witness:
    """Attach a minimal forcing schedule to ``witness``.

    The raw schedule is kept untouched (it is the replayable terminal
    run); ``minimal_schedule`` becomes the shrunk form — targeting the
    deadlock when the witness deadlocked, the recorded ``bits``
    otherwise.
    """
    minimal = minimize_schedule(
        graph, protocol, model, witness.schedule,
        bits=witness.bits, deadlock=witness.deadlock,
        bit_budget=bit_budget, faults=faults,
    )
    return replace(witness, minimal_schedule=minimal)


class AdversarySearch(ABC):
    """Strategy interface: search the schedule tree for a worst witness.

    Implementations must be deterministic for fixed construction
    parameters (seeds are explicit) and picklable, so stress plans can
    fan searches across worker processes.  Since the search-kernel
    refactor every strategy is a thin *policy* over the shared kernel
    (:mod:`repro.adversaries.kernel`): budgets, seeded RNG streams,
    stats and the optional shared transposition table all come from the
    :class:`~repro.adversaries.kernel.SearchContext` threaded through
    ``search`` — one context per stress cell is what lets strategies
    reuse each other's pruning knowledge.
    """

    name: str = "adversary-search"

    @abstractmethod
    def search(
        self,
        graph: LabeledGraph,
        protocol: Protocol,
        model: ModelSpec,
        bit_budget: Optional[int] = None,
        *,
        context=None,
        faults: Union[None, str, FaultSpec] = None,
    ) -> Witness:
        """Return the worst witness schedule this strategy can find.

        ``bit_budget`` is enforced during the search exactly as in
        normal execution: a message over budget raises
        :class:`~repro.core.errors.MessageTooLarge` (which *is* a worst
        case — the caller sees the violating schedule in the exception).

        ``context`` is an optional
        :class:`~repro.adversaries.kernel.SearchContext`; strategies
        sharing one reuse its transposition table and accumulate into
        its stats.  ``None`` gives the search a fresh private context —
        behaviour is then identical to the pre-kernel strategies.
        """

    def _initial(
        self,
        graph: LabeledGraph,
        protocol: Protocol,
        model: ModelSpec,
        bit_budget: Optional[int],
        faults: Union[None, str, FaultSpec] = None,
    ) -> ExecutionState:
        return ExecutionState.initial(graph, protocol, model, bit_budget,
                                      faults=faults)

    def _witness(self, state: ExecutionState, explored: int) -> Witness:
        """Freeze a terminal state into a witness (no output computation —
        scoring only needs the board accounting)."""
        board = state.board
        return Witness(
            strategy=self.name,
            schedule=state.schedule,
            bits=board.max_bits(),
            total_bits=board.total_bits(),
            deadlock=state.deadlocked,
            explored=explored,
        )
