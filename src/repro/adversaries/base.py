"""Searchable adversary strategies: the interface and its currency.

The paper's guarantees are universally quantified over adversarial write
schedules.  Exhaustive enumeration checks that quantifier exactly but
dies at ``n ≈ 7`` (``n!`` schedules); the fixed schedulers in
:mod:`repro.core.schedulers` scale but probe only a handful of points.
An :class:`AdversarySearch` sits between the two: it *searches* the
schedule tree — driving one :class:`~repro.core.execution.ExecutionState`
with ``advance``/``snapshot``/``restore`` — for a concrete **witness**
schedule that is as bad as it can find: a deadlock if one is reachable,
otherwise a schedule maximising the largest message written.

Every strategy returns a :class:`Witness` carrying the schedule itself,
so a claimed worst case is always replayable
(:func:`~repro.core.execution.replay_schedule`) and narratable
(:func:`~repro.analysis.trace.narrate_witness`) — never just a number.

Badness is ordered lexicographically by :func:`witness_rank`: a deadlock
(the protocol produces no output at all) beats any finite message size;
among non-deadlocks, more bits in the largest message is worse, with the
total board size as the tiebreak.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from ..core.execution import ExecutionState
from ..core.models import ModelSpec
from ..core.protocol import Protocol
from ..graphs.labeled_graph import LabeledGraph

__all__ = ["Witness", "AdversarySearch", "witness_rank", "worst_witness"]


@dataclass(frozen=True)
class Witness:
    """A concrete worst-case schedule found by an adversary search.

    Attributes
    ----------
    strategy:
        Name of the strategy that found it.
    schedule:
        The full adversary choice sequence, replayable from the initial
        configuration to a terminal one.
    bits / total_bits:
        Largest single message and whole-board size along the run.
    deadlock:
        The schedule ends in a corrupted (deadlocked) configuration.
    explored:
        Write events the search applied (``advance`` calls) — the cost
        of finding the witness, comparable across strategies.
    """

    strategy: str
    schedule: tuple[int, ...]
    bits: int
    total_bits: int
    deadlock: bool
    explored: int


def witness_rank(witness: Witness) -> tuple[bool, int, int]:
    """Sort key for adversarial badness (higher = worse for the protocol)."""
    return (witness.deadlock, witness.bits, witness.total_bits)


def worst_witness(*witnesses: Optional[Witness]) -> Witness:
    """The worst of the given witnesses (``None`` entries are skipped)."""
    found = [w for w in witnesses if w is not None]
    if not found:
        raise ValueError("no witnesses to compare")
    return max(found, key=witness_rank)


class AdversarySearch(ABC):
    """Strategy interface: search the schedule tree for a worst witness.

    Implementations must be deterministic for fixed construction
    parameters (seeds are explicit) and picklable, so stress plans can
    fan searches across worker processes.
    """

    name: str = "adversary-search"

    @abstractmethod
    def search(
        self,
        graph: LabeledGraph,
        protocol: Protocol,
        model: ModelSpec,
        bit_budget: Optional[int] = None,
    ) -> Witness:
        """Return the worst witness schedule this strategy can find.

        ``bit_budget`` is enforced during the search exactly as in
        normal execution: a message over budget raises
        :class:`~repro.core.errors.MessageTooLarge` (which *is* a worst
        case — the caller sees the violating schedule in the exception).
        """

    def _initial(
        self,
        graph: LabeledGraph,
        protocol: Protocol,
        model: ModelSpec,
        bit_budget: Optional[int],
    ) -> ExecutionState:
        return ExecutionState.initial(graph, protocol, model, bit_budget)

    def _witness(self, state: ExecutionState, explored: int) -> Witness:
        """Freeze a terminal state into a witness (no output computation —
        scoring only needs the board accounting)."""
        board = state.board
        return Witness(
            strategy=self.name,
            schedule=state.schedule,
            bits=board.max_bits(),
            total_bits=board.total_bits(),
            deadlock=state.deadlocked,
            explored=explored,
        )
