"""Greedy bit-maximising adversary with randomised restarts."""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Optional, Union

from ..core.execution import ExecutionState
from ..core.models import ModelSpec
from ..core.protocol import Protocol
from ..graphs.labeled_graph import LabeledGraph
from ..faults.spec import FaultSpec, resolve_faults
from .base import AdversarySearch, Witness, worst_witness
from .kernel import BudgetMeter, OutOfBudget, SearchContext, complete_ascending
from .scoring import ScoreHook, resolve_score
from .transposition import best_composed

__all__ = ["GreedyBitsAdversary"]


class GreedyBitsAdversary(AdversarySearch):
    """One-step-lookahead descents in both polarities.

    At every configuration each candidate is probed with
    ``snapshot``/``advance``/``restore`` and scored by (does the child
    deadlock?, the :class:`~repro.adversaries.scoring.ScoreHook` step
    score of the write) — a candidate that corrupts the configuration
    outright is the adversary's jackpot and is taken immediately.  Two
    deterministic descents run per search, because message sizes can
    reward either extreme:

    * **eager** — schedule the highest-scoring message *now* (wins when
      early writes inflate later recomputed messages);
    * **defer** — schedule the *lowest*-scoring message now, saving the
      biggest writers for the fullest board (wins when message size
      grows with board length, the typical synchronous pattern).

    Each *restart* re-runs both polarities with seeded-random probing
    order, so ties resolve differently and a descent can land in a
    different local optimum.  The worst witness across all descents is
    returned.  Cost: ``O(restarts · Σ|candidates|)`` write events —
    linear in ``n`` per descent, no backtracking beyond one-step probes.

    When the search context carries a shared transposition table, a
    descent that reaches a configuration whose exact completion
    frontier is already known (e.g. recorded by a branch-and-bound
    sweep in the same stress cell) finishes instantly with the known
    best completion instead of walking the rest of the schedule.
    """

    name = "greedy-bits"

    def __init__(self, restarts: int = 4, seed: int = 0,
                 score: Union[None, str, ScoreHook] = None) -> None:
        if restarts < 0:
            raise ValueError(f"restarts must be >= 0, got {restarts}")
        self.restarts = restarts
        self.seed = seed
        self.score = resolve_score(score)
        #: Primitive mirror of the hook for campaign fingerprints.
        self.score_name = self.score.name

    def search(
        self,
        graph: LabeledGraph,
        protocol: Protocol,
        model: ModelSpec,
        bit_budget: Optional[int] = None,
        *,
        context: Optional[SearchContext] = None,
        faults: Union[None, str, FaultSpec] = None,
    ) -> Witness:
        spec = resolve_faults(faults)
        ctx = SearchContext.ensure(context)
        if ctx.table is not None:
            ctx.table.bind(graph, protocol, model, bit_budget, faults=spec)
        ctx.stats.searches += 1
        meter = ctx.meter(None)
        best: Optional[Witness] = None
        try:
            for descent in range(1 + self.restarts):
                rng = ctx.rng(self.seed, descent) if descent else None
                if descent:
                    ctx.stats.restarts += 1
                for defer in (False, True):
                    witness = self._descend(graph, protocol, model,
                                            bit_budget, rng, defer, ctx,
                                            meter, spec)
                    best = (witness if best is None
                            else worst_witness(best, witness))
        except OutOfBudget:
            pass  # context budget exhausted: return the incumbent
        if best is None:
            state = ExecutionState.initial(graph, protocol, model, bit_budget,
                                           faults=spec)
            complete_ascending(state, meter)
            best = self._witness(state, meter.spent)
        return replace(best, explored=meter.spent)

    def _descend(
        self,
        graph: LabeledGraph,
        protocol: Protocol,
        model: ModelSpec,
        bit_budget: Optional[int],
        rng: Optional[random.Random],
        defer: bool,
        ctx: SearchContext,
        meter: BudgetMeter,
        faults: FaultSpec,
    ) -> Witness:
        state = ExecutionState.initial(graph, protocol, model, bit_budget,
                                       faults=faults)
        sign = -1 if defer else 1
        hook = self.score
        table = ctx.table
        while not state.terminal:
            if table is not None:
                entry = table.lookup(table.key_for(state))
                if entry is not None and entry.exact and not entry.warm:
                    # The rest of this descent is already solved exactly.
                    # Warm (frontier-store) entries are skipped: greedy
                    # runs before any exact sweep, so consuming them
                    # would make a warm run's witness diverge from the
                    # cold run's byte-identical report.
                    return best_composed(self.name, state, entry,
                                         meter.spent)
            candidates = list(state.candidates)
            if rng is not None:
                rng.shuffle(candidates)
            if len(candidates) == 1:
                meter.spend()
                state.advance(candidates[0])
                continue
            best_choice = None
            best_score = None
            for choice in candidates:
                checkpoint = state.snapshot()
                meter.spend()
                state.advance(choice)
                score = (state.deadlocked, sign * hook.step_score(state))
                state.restore(checkpoint)
                if best_score is None or score > best_score:
                    best_choice, best_score = choice, score
            meter.spend()
            state.advance(best_choice)
        return self._witness(state, meter.spent)
