"""Greedy bit-maximising adversary with randomised restarts."""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Optional

from ..core.execution import ExecutionState
from ..core.models import ModelSpec
from ..core.protocol import Protocol
from ..graphs.labeled_graph import LabeledGraph
from .base import AdversarySearch, Witness, worst_witness

__all__ = ["GreedyBitsAdversary"]


class GreedyBitsAdversary(AdversarySearch):
    """One-step-lookahead descents in both polarities.

    At every configuration each candidate is probed with
    ``snapshot``/``advance``/``restore`` and scored by (does the child
    deadlock?, bits just written) — a candidate that corrupts the
    configuration outright is the adversary's jackpot and is taken
    immediately.  Two deterministic descents run per search, because
    message sizes can reward either extreme:

    * **eager** — schedule the largest message *now* (wins when early
      writes inflate later recomputed messages);
    * **defer** — schedule the *smallest* message now, saving the
      biggest writers for the fullest board (wins when message size
      grows with board length, the typical synchronous pattern).

    Each *restart* re-runs both polarities with seeded-random probing
    order, so ties resolve differently and a descent can land in a
    different local optimum.  The worst witness across all descents is
    returned.  Cost: ``O(restarts · Σ|candidates|)`` write events —
    linear in ``n`` per descent, no backtracking beyond one-step probes.
    """

    name = "greedy-bits"

    def __init__(self, restarts: int = 4, seed: int = 0) -> None:
        if restarts < 0:
            raise ValueError(f"restarts must be >= 0, got {restarts}")
        self.restarts = restarts
        self.seed = seed

    def search(
        self,
        graph: LabeledGraph,
        protocol: Protocol,
        model: ModelSpec,
        bit_budget: Optional[int] = None,
    ) -> Witness:
        best: Optional[Witness] = None
        explored = 0
        for descent in range(1 + self.restarts):
            rng = random.Random(f"{self.seed}:{descent}") if descent else None
            for defer in (False, True):
                witness, cost = self._descend(graph, protocol, model,
                                              bit_budget, rng, defer)
                explored += cost
                best = (witness if best is None
                        else worst_witness(best, witness))
        return replace(best, explored=explored)

    def _descend(
        self,
        graph: LabeledGraph,
        protocol: Protocol,
        model: ModelSpec,
        bit_budget: Optional[int],
        rng: Optional[random.Random],
        defer: bool,
    ) -> tuple[Witness, int]:
        state = ExecutionState.initial(graph, protocol, model, bit_budget)
        explored = 0
        sign = -1 if defer else 1
        while not state.terminal:
            candidates = list(state.candidates)
            if rng is not None:
                rng.shuffle(candidates)
            if len(candidates) == 1:
                state.advance(candidates[0])
                explored += 1
                continue
            best_choice = None
            best_score = None
            for choice in candidates:
                checkpoint = state.snapshot()
                state.advance(choice)
                explored += 1
                score = (state.deadlocked,
                         sign * state.board.entries[-1].bits)
                state.restore(checkpoint)
                if best_score is None or score > best_score:
                    best_choice, best_score = choice, score
            state.advance(best_choice)
            explored += 1
        return self._witness(state, explored), explored
