"""The paper's Vandermonde-like matrix ``A(k, n)`` (Definition 2).

``A(k, n)_{p,i} = i^p`` for ``p = 1..k`` and ``i = 1..n``.  Node ``x``'s
message body is ``b(x) = A(k, n) · x`` with ``x`` the incidence vector of
its neighbourhood — which equals the power-sum vector computed directly
in :mod:`repro.encoding.power_sums`.  This module exists to mirror the
paper's linear-algebra presentation and to cross-check both views of the
encoding; entries grow like ``n^k`` so the matrix uses exact Python
integers (``object`` dtype) whenever int64 could overflow.
"""

from __future__ import annotations

import numpy as np

__all__ = ["vandermonde_matrix", "encode_incidence", "max_entry_bits"]


def vandermonde_matrix(k: int, n: int) -> np.ndarray:
    """The ``k x n`` matrix ``A(k, n)`` with ``A[p-1, i-1] = i ** p``.

    Uses int64 when every entry fits, otherwise exact Python integers.
    """
    if k < 0 or n < 0:
        raise ValueError("k and n must be non-negative")
    exact = n > 1 and k * n.bit_length() >= 62
    dtype = object if exact else np.int64
    a = np.empty((k, n), dtype=dtype)
    for i in range(1, n + 1):
        v = 1 if not exact else int(1)
        for p in range(1, k + 1):
            v = v * i
            a[p - 1, i - 1] = v
    return a


def encode_incidence(incidence: np.ndarray, k: int) -> tuple[int, ...]:
    """``b = A(k, n) · x`` for a 0/1 incidence vector ``x`` of length ``n``.

    Equivalent to ``power_sums(S, k)`` where ``S = {i : x[i-1] = 1}``;
    the equality is asserted by property tests.
    """
    x = np.asarray(incidence)
    if x.ndim != 1:
        raise ValueError(f"incidence vector must be 1-D, got shape {x.shape}")
    if not np.all((x == 0) | (x == 1)):
        raise ValueError("incidence vector must be 0/1")
    n = x.shape[0]
    a = vandermonde_matrix(k, n)
    if a.dtype == object:
        xs = [int(v) for v in x]
        return tuple(sum(int(a[p, i]) * xs[i] for i in range(n)) for p in range(k))
    return tuple(int(v) for v in (a @ x.astype(np.int64)))


def max_entry_bits(k: int, n: int) -> int:
    """Upper bound on the bit length of any entry of ``b(x)``.

    Lemma 1: coefficients are at most ``n^k`` and a sum of at most ``n``
    of them is at most ``n^(k+1)``, i.e. ``(k+1) log2 n`` bits.
    """
    if n <= 1:
        return 1
    return (k + 1) * max(1, n).bit_length()
