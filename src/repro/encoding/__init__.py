"""Message encodings: exact bit accounting and power-sum neighbourhood codes."""

from .l0_sampling import FIELD_PRIME, L0Sampler, OneSparseRecovery, level_of
from .bits import (
    BitReader,
    BitWriter,
    Payload,
    decode_payload,
    encode_payload,
    gamma_bits,
    int_bits,
    payload_bits,
    payload_key,
)
from .power_sums import (
    DecodeError,
    SubsetLookupTable,
    decode_power_sums,
    elementary_symmetric_from_power_sums,
    power_sums,
)
from .vandermonde import encode_incidence, max_entry_bits, vandermonde_matrix

__all__ = [
    "FIELD_PRIME",
    "L0Sampler",
    "OneSparseRecovery",
    "level_of",
    "BitReader",
    "BitWriter",
    "Payload",
    "decode_payload",
    "encode_payload",
    "gamma_bits",
    "int_bits",
    "payload_bits",
    "payload_key",
    "DecodeError",
    "SubsetLookupTable",
    "decode_power_sums",
    "elementary_symmetric_from_power_sums",
    "power_sums",
    "encode_incidence",
    "max_entry_bits",
    "vandermonde_matrix",
]
