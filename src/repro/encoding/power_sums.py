"""Power-sum neighbourhood encoding and exact decoding (Section 3).

Theorem 2's protocol has each node ``x`` publish
``b(x) = A(k, n) · x`` where ``x`` is the 0/1 incidence vector of
``N(x)`` and ``A(k, n)_{p,i} = i^p`` — i.e. the first ``k`` power sums
of the neighbour identifiers.  By Wright's theorem on equal sums of like
powers (Theorem 1 of the paper), a set of at most ``k`` positive
integers is uniquely determined by its first ``k`` power sums, so the
output function can invert the encoding.

Decoding here is *exact integer arithmetic*:

1. Newton's identities convert power sums ``p_1..p_d`` into elementary
   symmetric polynomials ``e_1..e_d`` (all divisions must be exact —
   a failed division certifies the vector is not a valid encoding);
2. the neighbour set is the root set of
   ``z^d - e_1 z^{d-1} + e_2 z^{d-2} - ...``, found by synthetic
   division over the candidate identifiers ``1..n``.

:class:`SubsetLookupTable` implements the paper's alternative
``O(n^k)``-space table (Lemma 2) and is cross-checked against the
algebraic decoder in the test suite.
"""

from __future__ import annotations

from collections.abc import Iterable
from itertools import combinations

__all__ = [
    "power_sums",
    "elementary_symmetric_from_power_sums",
    "decode_power_sums",
    "DecodeError",
    "SubsetLookupTable",
]


class DecodeError(ValueError):
    """The given power-sum vector does not encode any ``d``-subset of
    ``{1..n}`` — raised e.g. when Theorem 2's pruning is applied to a
    graph outside the bounded-degeneracy class."""


def power_sums(values: Iterable[int], k: int) -> tuple[int, ...]:
    """The first ``k`` power sums ``(sum v, sum v^2, ..., sum v^k)``.

    This is the message body of Theorem 2: ``values`` are neighbour
    identifiers.  Uses exact Python integers (the sums reach ``n^(k+1)``
    which overflows fixed-width arithmetic quickly).
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    vals = list(values)
    out = []
    powers = [1] * len(vals)
    for _ in range(k):
        powers = [p * v for p, v in zip(powers, vals)]
        out.append(sum(powers))
    return tuple(out)


def elementary_symmetric_from_power_sums(p: Iterable[int], d: int) -> tuple[int, ...]:
    """Newton's identities: power sums ``p_1..p_d`` -> elementary
    symmetric polynomials ``e_1..e_d`` over the integers.

    Raises
    ------
    DecodeError
        If some identity division ``i * e_i`` is not exact, which proves
        the input is not the power-sum vector of any integer multiset.
    """
    ps = list(p)
    if d > len(ps):
        raise ValueError(f"need at least {d} power sums, got {len(ps)}")
    e = [1]  # e_0
    for i in range(1, d + 1):
        # i * e_i = sum_{j=1..i} (-1)^(j-1) * e_{i-j} * p_j
        acc = 0
        sign = 1
        for j in range(1, i + 1):
            acc += sign * e[i - j] * ps[j - 1]
            sign = -sign
        if acc % i != 0:
            raise DecodeError(f"Newton identity for e_{i} is not integral")
        e.append(acc // i)
    return tuple(e[1:])


def decode_power_sums(b: Iterable[int], d: int, n: int) -> frozenset[int]:
    """Recover the unique ``d``-subset ``S`` of ``{1..n}`` with power sums
    ``b[0..d-1]`` (Corollary 1 of the paper).

    Parameters
    ----------
    b:
        Power-sum vector; only the first ``d`` entries are used (the
        paper's messages carry ``k >= d`` entries, ``d = deg(x)``).
    d:
        Cardinality of the encoded set (the node's degree).
    n:
        Identifier-domain size.

    Raises
    ------
    DecodeError
        If no such subset exists.  Uniqueness when one exists is
        Wright's theorem; the implementation also verifies all ``d``
        power sums as a defence against adversarial inputs.
    """
    if d < 0:
        raise DecodeError(f"degree must be >= 0, got {d}")
    if d == 0:
        return frozenset()
    bs = list(b)
    if len(bs) < d:
        raise DecodeError(f"need {d} power sums, got {len(bs)}")
    if d > n:
        raise DecodeError(f"cannot pick {d} distinct identifiers from 1..{n}")

    e = elementary_symmetric_from_power_sums(bs, d)
    # Monic polynomial with roots S: z^d - e1 z^(d-1) + e2 z^(d-2) - ...
    coeffs = [1]
    sign = -1
    for ei in e:
        coeffs.append(sign * ei)
        sign = -sign

    roots: list[int] = []
    current = coeffs
    # All roots must be distinct integers in 1..n; peel them by synthetic
    # division.  O(n * d) — well inside the paper's O(n^2) output budget.
    candidate = 1
    while len(roots) < d and candidate <= n:
        # Evaluate current polynomial at `candidate` via Horner.
        acc = 0
        for c in current:
            acc = acc * candidate + c
        if acc == 0:
            # Synthetic division by (z - candidate).
            quotient = []
            carry = 0
            for c in current[:-1]:
                carry = carry * candidate + c
                quotient.append(carry)
            roots.append(candidate)
            current = quotient
            # A valid encoding has *distinct* roots (incidence vectors are
            # 0/1), so move on rather than re-testing the same candidate.
        candidate += 1
    if len(roots) != d:
        raise DecodeError("polynomial does not split over 1..n")
    result = frozenset(roots)
    if power_sums(result, d) != tuple(bs[:d]):
        raise DecodeError("recovered set fails power-sum verification")
    return result


class SubsetLookupTable:
    """Lemma 2's preprocessing: a table from power-sum vectors to subsets.

    Enumerates every subset of ``{1..n}`` of size at most ``k`` and maps
    its padded ``k``-entry power-sum vector to the subset.  Size is
    ``O(n^k)`` entries, lookup is a dict hit (the paper sorts and binary
    searches; a hash table has the same role).

    Only practical for small ``n``/``k``; exists to cross-validate the
    algebraic decoder and for the decode-backend ablation benchmark.
    """

    def __init__(self, n: int, k: int) -> None:
        if n < 0 or k < 0:
            raise ValueError("n and k must be non-negative")
        self.n = n
        self.k = k
        self._table: dict[tuple[int, ...], frozenset[int]] = {}
        universe = range(1, n + 1)
        for size in range(k + 1):
            for subset in combinations(universe, size):
                self._table[power_sums(subset, k)] = frozenset(subset)

    def __len__(self) -> int:
        return len(self._table)

    def decode(self, b: Iterable[int], d: int) -> frozenset[int]:
        """Look up the subset with power sums ``b`` and size ``d``."""
        key = tuple(b)[: self.k]
        if len(key) < self.k:
            raise DecodeError(f"need {self.k} power sums, got {len(key)}")
        subset = self._table.get(key)
        if subset is None or len(subset) != d:
            raise DecodeError("vector not present in lookup table")
        return subset
