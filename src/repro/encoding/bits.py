"""Exact bit-level serialization of whiteboard messages.

The paper's results are statements about *message size in bits*
(``O(log n)``, ``O(k^2 log n)``, ``o(n)`` ...).  To measure rather than
assume those sizes, every message written on the simulated whiteboard is
a *payload* — a nested structure of ints, short symbols and tuples — and
this module defines one canonical, self-delimiting binary encoding for
payloads.  ``payload_bits`` is the exact length of that encoding, and
``encode_payload``/``decode_payload`` round-trip through real bits so the
accounting cannot drift from reality.

Encoding scheme (self-delimiting, decodable without out-of-band length):

* every value starts with a 2-bit type tag (int / symbol / tuple);
* non-negative integers use Elias gamma on ``value + 1``; signed values
  are zigzag-mapped first;
* symbols (short ASCII strings such as ``"ROOT"`` or ``"no"``) use a
  gamma length followed by 7 bits per character;
* tuples use a gamma length followed by the encoded elements.
"""

from __future__ import annotations

from typing import Union

__all__ = [
    "Payload",
    "BitWriter",
    "BitReader",
    "encode_payload",
    "decode_payload",
    "payload_bits",
    "gamma_bits",
    "int_bits",
]

Payload = Union[int, str, tuple]

_TAG_INT = 0
_TAG_SYM = 1
_TAG_TUPLE = 2


class BitWriter:
    """Append-only bit buffer."""

    __slots__ = ("_bits",)

    def __init__(self) -> None:
        self._bits: list[int] = []

    def write_bit(self, b: int) -> None:
        self._bits.append(1 if b else 0)

    def write_uint(self, value: int, width: int) -> None:
        """Write ``value`` in exactly ``width`` bits, MSB first."""
        if value < 0 or (width < value.bit_length()):
            raise ValueError(f"{value} does not fit in {width} bits")
        for i in range(width - 1, -1, -1):
            self._bits.append(value >> i & 1)

    def write_gamma(self, value: int) -> None:
        """Elias gamma code of ``value >= 1``: ``len-1`` zeros, then the
        binary expansion (which starts with 1)."""
        if value < 1:
            raise ValueError(f"gamma codes naturals >= 1, got {value}")
        width = value.bit_length()
        for _ in range(width - 1):
            self._bits.append(0)
        self.write_uint(value, width)

    def __len__(self) -> int:
        return len(self._bits)

    def to_bytes(self) -> bytes:
        """Pack to bytes (zero-padded to a byte boundary)."""
        out = bytearray()
        acc = 0
        for i, b in enumerate(self._bits):
            acc = acc << 1 | b
            if i % 8 == 7:
                out.append(acc)
                acc = 0
        rem = len(self._bits) % 8
        if rem:
            out.append(acc << (8 - rem))
        return bytes(out)

    def bits(self) -> tuple[int, ...]:
        return tuple(self._bits)


class BitReader:
    """Sequential reader over a bit sequence."""

    __slots__ = ("_bits", "_pos")

    def __init__(self, bits: tuple[int, ...] | list[int]) -> None:
        self._bits = bits
        self._pos = 0

    @classmethod
    def from_bytes(cls, data: bytes, nbits: int) -> "BitReader":
        bits = [data[i // 8] >> (7 - i % 8) & 1 for i in range(nbits)]
        return cls(bits)

    def read_bit(self) -> int:
        if self._pos >= len(self._bits):
            raise ValueError("bit stream exhausted")
        b = self._bits[self._pos]
        self._pos += 1
        return b

    def read_uint(self, width: int) -> int:
        v = 0
        for _ in range(width):
            v = v << 1 | self.read_bit()
        return v

    def read_gamma(self) -> int:
        zeros = 0
        while self.read_bit() == 0:
            zeros += 1
        value = 1
        for _ in range(zeros):
            value = value << 1 | self.read_bit()
        return value

    @property
    def position(self) -> int:
        return self._pos

    def exhausted(self) -> bool:
        return self._pos >= len(self._bits)


def gamma_bits(value: int) -> int:
    """Length in bits of the Elias gamma code of ``value >= 1``."""
    if value < 1:
        raise ValueError(f"gamma codes naturals >= 1, got {value}")
    return 2 * value.bit_length() - 1


def _zigzag(v: int) -> int:
    return 2 * v if v >= 0 else -2 * v - 1


def _unzigzag(u: int) -> int:
    return u // 2 if u % 2 == 0 else -(u + 1) // 2


def int_bits(value: int) -> int:
    """Exact encoded size of a bare int payload (tag + gamma)."""
    return 2 + gamma_bits(_zigzag(value) + 1)


def _write(writer: BitWriter, payload: Payload) -> None:
    if isinstance(payload, bool):
        raise TypeError("bool payloads are ambiguous; use 0/1 or a symbol")
    if isinstance(payload, int):
        writer.write_uint(_TAG_INT, 2)
        writer.write_gamma(_zigzag(payload) + 1)
    elif isinstance(payload, str):
        if any(ord(c) > 127 for c in payload):
            raise ValueError(f"symbols must be ASCII, got {payload!r}")
        writer.write_uint(_TAG_SYM, 2)
        writer.write_gamma(len(payload) + 1)
        for c in payload:
            writer.write_uint(ord(c), 7)
    elif isinstance(payload, tuple):
        writer.write_uint(_TAG_TUPLE, 2)
        writer.write_gamma(len(payload) + 1)
        for item in payload:
            _write(writer, item)
    else:
        raise TypeError(f"unsupported payload element of type {type(payload).__name__}")


def _read(reader: BitReader) -> Payload:
    tag = reader.read_uint(2)
    if tag == _TAG_INT:
        return _unzigzag(reader.read_gamma() - 1)
    if tag == _TAG_SYM:
        length = reader.read_gamma() - 1
        return "".join(chr(reader.read_uint(7)) for _ in range(length))
    if tag == _TAG_TUPLE:
        length = reader.read_gamma() - 1
        return tuple(_read(reader) for _ in range(length))
    raise ValueError(f"invalid payload tag {tag}")


def encode_payload(payload: Payload) -> tuple[int, ...]:
    """Serialize a payload to its canonical bit sequence."""
    w = BitWriter()
    _write(w, payload)
    return w.bits()


def decode_payload(bits: tuple[int, ...] | list[int]) -> Payload:
    """Inverse of :func:`encode_payload`; rejects trailing garbage."""
    r = BitReader(bits)
    payload = _read(r)
    if not r.exhausted():
        raise ValueError("trailing bits after payload")
    return payload


def payload_bits(payload: Payload) -> int:
    """Exact size in bits of the canonical encoding of ``payload``.

    Computed without materializing the bit sequence, and covered by a
    property test asserting equality with ``len(encode_payload(p))``.
    """
    if isinstance(payload, bool):
        raise TypeError("bool payloads are ambiguous; use 0/1 or a symbol")
    if isinstance(payload, int):
        return 2 + gamma_bits(_zigzag(payload) + 1)
    if isinstance(payload, str):
        return 2 + gamma_bits(len(payload) + 1) + 7 * len(payload)
    if isinstance(payload, tuple):
        return 2 + gamma_bits(len(payload) + 1) + sum(payload_bits(p) for p in payload)
    raise TypeError(f"unsupported payload element of type {type(payload).__name__}")
