"""Exact bit-level serialization of whiteboard messages.

The paper's results are statements about *message size in bits*
(``O(log n)``, ``O(k^2 log n)``, ``o(n)`` ...).  To measure rather than
assume those sizes, every message written on the simulated whiteboard is
a *payload* — a nested structure of ints, short symbols and tuples — and
this module defines one canonical, self-delimiting binary encoding for
payloads.  ``payload_bits`` is the exact length of that encoding, and
``encode_payload``/``decode_payload`` round-trip through real bits so the
accounting cannot drift from reality.

Encoding scheme (self-delimiting, decodable without out-of-band length):

* every value starts with a 2-bit type tag (int / symbol / tuple, with
  tag ``3`` escaping to one extra bit selecting list or dict);
* non-negative integers use Elias gamma on ``value + 1``; signed values
  are zigzag-mapped first;
* symbols (short ASCII strings such as ``"ROOT"`` or ``"no"``) use a
  gamma length followed by 7 bits per character;
* tuples use a gamma length followed by the encoded elements;
* lists encode like tuples under the escape tag (they decode back to
  lists — the container kind is part of the payload);
* dicts encode their pairs under the escape tag with the pairs sorted
  by the canonical encoding of the key, so two dicts that are equal as
  mappings encode identically regardless of insertion order.

The pre-escape encodings are bit-identical to the original three-tag
scheme (tag ``3`` was unused), so historic sizes and the sketch golden
fixtures are unaffected.

:func:`payload_key` packs the canonical encoding into a small hashable
``(nbits, value)`` pair — the currency of
:meth:`repro.core.execution.ExecutionState.config_key`, which is how
unhashable payloads (dicts, lists) still get exact, hashable
configuration digests.

Performance notes: :class:`BitWriter` accumulates into one Python int
(appending ``w`` bits is a shift-or, not ``w`` list appends), and
:func:`payload_bits` walks the payload with an explicit stack — board
accounting runs on every write event of every simulated execution, so
both are hot paths.  The bit sequences and sizes produced are identical
to the original list-based implementation.
"""

from __future__ import annotations

from typing import Union

__all__ = [
    "Payload",
    "BitWriter",
    "BitReader",
    "encode_payload",
    "decode_payload",
    "payload_bits",
    "payload_key",
    "gamma_bits",
    "int_bits",
]

Payload = Union[int, str, tuple, list, dict]

_TAG_INT = 0
_TAG_SYM = 1
_TAG_TUPLE = 2
#: Escape tag: one more bit selects the container kind (0 list, 1 dict).
_TAG_EXT = 3
_EXT_LIST = 0
_EXT_DICT = 1


class BitWriter:
    """Append-only bit buffer (one big int, MSB-first)."""

    __slots__ = ("_acc", "_len")

    def __init__(self) -> None:
        self._acc = 0
        self._len = 0

    def write_bit(self, b: int) -> None:
        self._acc = self._acc << 1 | (1 if b else 0)
        self._len += 1

    def write_uint(self, value: int, width: int) -> None:
        """Write ``value`` in exactly ``width`` bits, MSB first."""
        if value < 0 or (width < value.bit_length()):
            raise ValueError(f"{value} does not fit in {width} bits")
        self._acc = self._acc << width | value
        self._len += width

    def write_gamma(self, value: int) -> None:
        """Elias gamma code of ``value >= 1``: ``len-1`` zeros, then the
        binary expansion (which starts with 1)."""
        if value < 1:
            raise ValueError(f"gamma codes naturals >= 1, got {value}")
        width = value.bit_length()
        # width-1 leading zeros then the width-bit expansion: one shift.
        self._acc = self._acc << (2 * width - 1) | value
        self._len += 2 * width - 1

    def __len__(self) -> int:
        return self._len

    def to_bytes(self) -> bytes:
        """Pack to bytes (zero-padded to a byte boundary)."""
        pad = -self._len % 8
        return (self._acc << pad).to_bytes((self._len + pad) // 8, "big")

    def bits(self) -> tuple[int, ...]:
        acc, n = self._acc, self._len
        return tuple(acc >> i & 1 for i in range(n - 1, -1, -1))

    def as_key(self) -> tuple[int, int]:
        """The buffer as a compact hashable ``(nbits, value)`` pair.

        Because the encoding is canonical and self-delimiting, two
        payloads share a key iff they share an encoding; ``nbits`` is
        exactly :func:`payload_bits` of the encoded payload.
        """
        return (self._len, self._acc)


class BitReader:
    """Sequential reader over a bit sequence."""

    __slots__ = ("_bits", "_pos")

    def __init__(self, bits: tuple[int, ...] | list[int]) -> None:
        self._bits = bits
        self._pos = 0

    @classmethod
    def from_bytes(cls, data: bytes, nbits: int) -> "BitReader":
        bits = [data[i // 8] >> (7 - i % 8) & 1 for i in range(nbits)]
        return cls(bits)

    def read_bit(self) -> int:
        if self._pos >= len(self._bits):
            raise ValueError("bit stream exhausted")
        b = self._bits[self._pos]
        self._pos += 1
        return b

    def read_uint(self, width: int) -> int:
        v = 0
        for _ in range(width):
            v = v << 1 | self.read_bit()
        return v

    def read_gamma(self) -> int:
        zeros = 0
        while self.read_bit() == 0:
            zeros += 1
        value = 1
        for _ in range(zeros):
            value = value << 1 | self.read_bit()
        return value

    @property
    def position(self) -> int:
        return self._pos

    def exhausted(self) -> bool:
        return self._pos >= len(self._bits)


def gamma_bits(value: int) -> int:
    """Length in bits of the Elias gamma code of ``value >= 1``."""
    if value < 1:
        raise ValueError(f"gamma codes naturals >= 1, got {value}")
    return 2 * value.bit_length() - 1


def _zigzag(v: int) -> int:
    return 2 * v if v >= 0 else -2 * v - 1


def _unzigzag(u: int) -> int:
    return u // 2 if u % 2 == 0 else -(u + 1) // 2


def int_bits(value: int) -> int:
    """Exact encoded size of a bare int payload (tag + gamma)."""
    return 2 + gamma_bits(_zigzag(value) + 1)


def _write(writer: BitWriter, payload: Payload) -> None:
    if isinstance(payload, bool):
        raise TypeError("bool payloads are ambiguous; use 0/1 or a symbol")
    if isinstance(payload, int):
        writer.write_uint(_TAG_INT, 2)
        writer.write_gamma(_zigzag(payload) + 1)
    elif isinstance(payload, str):
        if any(ord(c) > 127 for c in payload):
            raise ValueError(f"symbols must be ASCII, got {payload!r}")
        writer.write_uint(_TAG_SYM, 2)
        writer.write_gamma(len(payload) + 1)
        for c in payload:
            writer.write_uint(ord(c), 7)
    elif isinstance(payload, tuple):
        writer.write_uint(_TAG_TUPLE, 2)
        writer.write_gamma(len(payload) + 1)
        for item in payload:
            _write(writer, item)
    elif isinstance(payload, list):
        writer.write_uint(_TAG_EXT, 2)
        writer.write_bit(_EXT_LIST)
        writer.write_gamma(len(payload) + 1)
        for item in payload:
            _write(writer, item)
    elif isinstance(payload, dict):
        writer.write_uint(_TAG_EXT, 2)
        writer.write_bit(_EXT_DICT)
        writer.write_gamma(len(payload) + 1)
        for _, key, value in sorted(
            (_encode_key(k), k, v) for k, v in payload.items()
        ):
            _write(writer, key)
            _write(writer, value)
    else:
        raise TypeError(f"unsupported payload element of type {type(payload).__name__}")


def _encode_key(key: Payload) -> tuple[int, int]:
    """Canonical sort token for a dict key (its own encoding)."""
    w = BitWriter()
    _write(w, key)
    return w.as_key()


def _read(reader: BitReader) -> Payload:
    tag = reader.read_uint(2)
    if tag == _TAG_INT:
        return _unzigzag(reader.read_gamma() - 1)
    if tag == _TAG_SYM:
        length = reader.read_gamma() - 1
        return "".join(chr(reader.read_uint(7)) for _ in range(length))
    if tag == _TAG_TUPLE:
        length = reader.read_gamma() - 1
        return tuple(_read(reader) for _ in range(length))
    kind = reader.read_bit()
    length = reader.read_gamma() - 1
    if kind == _EXT_LIST:
        return [_read(reader) for _ in range(length)]
    out: dict = {}
    for _ in range(length):
        key = _read(reader)
        out[key] = _read(reader)
    return out


def encode_payload(payload: Payload) -> tuple[int, ...]:
    """Serialize a payload to its canonical bit sequence."""
    w = BitWriter()
    _write(w, payload)
    return w.bits()


def decode_payload(bits: tuple[int, ...] | list[int]) -> Payload:
    """Inverse of :func:`encode_payload`; rejects trailing garbage."""
    r = BitReader(bits)
    payload = _read(r)
    if not r.exhausted():
        raise ValueError("trailing bits after payload")
    return payload


def payload_bits(payload: Payload) -> int:
    """Exact size in bits of the canonical encoding of ``payload``.

    Computed without materializing the bit sequence (iteratively — the
    simulator charges every write event through here), and covered by a
    property test asserting equality with ``len(encode_payload(p))``.
    """
    # The stack holds only (sub)tuples; atoms are charged inline while
    # scanning a tuple's items, so each element costs one loop step
    # rather than a push and a pop.  ``type(x) is int`` is the fast path
    # and correctly excludes bool (a distinct type), which the fallback
    # rejects; subclasses of the payload types take the fallback too.
    total = 0
    stack = [(payload,)]
    pop = stack.pop
    append = stack.append
    while stack:
        for p in pop():
            t = type(p)
            if t is int:
                u = p + p if p >= 0 else -p - p - 1
                total += 1 + 2 * (u + 1).bit_length()  # 2 (tag) + gamma
            elif t is tuple:
                total += 1 + 2 * (len(p) + 1).bit_length()
                append(p)
            elif t is str:
                total += 1 + 2 * (len(p) + 1).bit_length() + 7 * len(p)
            elif t is list:
                # 2 (tag) + 1 (kind) + gamma; size is order-independent,
                # so the elements just join the stack as a tuple.
                total += 2 + 2 * (len(p) + 1).bit_length()
                append(tuple(p))
            elif t is dict:
                total += 2 + 2 * (len(p) + 1).bit_length()
                append(tuple(x for kv in p.items() for x in kv))
            else:
                total += _atom_bits_slow(p)
    return total


def _atom_bits_slow(p: Payload) -> int:
    """Fallback accounting for payload-type subclasses; rejects the rest."""
    if isinstance(p, bool):
        raise TypeError("bool payloads are ambiguous; use 0/1 or a symbol")
    if isinstance(p, int):
        u = p + p if p >= 0 else -p - p - 1
        return 1 + 2 * (u + 1).bit_length()
    if isinstance(p, str):
        return 1 + 2 * (len(p) + 1).bit_length() + 7 * len(p)
    if isinstance(p, tuple):
        return 1 + 2 * (len(p) + 1).bit_length() + sum(
            payload_bits(item) for item in p
        )
    if isinstance(p, list):
        return 2 + 2 * (len(p) + 1).bit_length() + sum(
            payload_bits(item) for item in p
        )
    if isinstance(p, dict):
        return 2 + 2 * (len(p) + 1).bit_length() + sum(
            payload_bits(k) + payload_bits(v) for k, v in p.items()
        )
    raise TypeError(f"unsupported payload element of type {type(p).__name__}")


def payload_key(payload: Payload) -> tuple[int, int]:
    """Hashable canonical digest of ``payload``: its exact encoding.

    Returns ``(nbits, value)`` — the canonical bit sequence packed into
    one int, plus its length.  Defined for *every* payload the codec can
    encode, including unhashable containers (lists, dicts): this is what
    lets :meth:`repro.core.execution.ExecutionState.config_key` digest
    any board the engine can produce, where a raw ``hash(payload)``
    would raise.  ``payload_key(a) == payload_key(b)`` iff the codec
    encodes ``a`` and ``b`` identically (dicts equal as mappings share a
    key regardless of insertion order).
    """
    w = BitWriter()
    _write(w, payload)
    return w.as_key()
