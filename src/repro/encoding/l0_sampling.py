"""Linear ℓ₀-sampling sketches (Ahn–Guibas–McGregor style).

Substrate for the randomized-extension protocols (the paper's Section 7
directions): a *linear* sketch of an integer-weighted vector from which
one nonzero coordinate can be recovered with constant probability, built
from

* :class:`OneSparseRecovery` — exact recovery of a vector with exactly
  one nonzero entry from three aggregates: the weight sum, the
  id-weighted sum, and a random-evaluation fingerprint over a prime
  field (false positives with probability ``<= D / p`` for id-domain
  size ``D``);
* :class:`L0Sampler` — geometric subsampling by a shared-seed hash into
  levels; a vector with ``k`` nonzeros is 1-sparse at level ``~log2 k``
  with constant probability.

Everything is **linear**: sketches of two vectors add component-wise to
the sketch of the sum.  That is the property graph sketching needs —
adding the sketches of a node set yields the sketch of its *boundary*
(interior edges cancel by the ±1 incidence convention) — and it is
asserted by property tests.

Randomness is *public-coin*: all hash functions derive deterministically
from a shared integer seed, matching the model used for the randomized
2-CLIQUES protocol.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["FIELD_PRIME", "OneSparseRecovery", "L0Sampler", "level_of"]

#: Field for fingerprints: the Mersenne prime 2^61 - 1.
FIELD_PRIME = (1 << 61) - 1


def _hash64(seed: int, *key: int) -> int:
    """Deterministic 64-bit hash of (seed, key) — the public coin."""
    data = seed.to_bytes(8, "little", signed=False)
    for k in key:
        data += int(k).to_bytes(8, "little", signed=True)
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "little")


def level_of(seed: int, item: int, max_level: int) -> int:
    """Geometric level of ``item``: number of trailing ones of its hash,
    capped at ``max_level``.  ``P(level >= l) = 2^-l``."""
    h = _hash64(seed, item)
    level = 0
    while level < max_level and h & 1:
        h >>= 1
        level += 1
    return level


@dataclass
class OneSparseRecovery:
    """Exact recovery for (at most) 1-sparse integer vectors.

    Maintains ``c0 = Σ w_i``, ``c1 = Σ w_i · i`` over ℤ and the
    fingerprint ``f = Σ w_i · z^i mod p`` for a seed-derived evaluation
    point ``z``.  A vector with a single nonzero ``(i, w)`` satisfies
    ``c1 = w·i`` and ``f = w·z^i``; any other vector passes the check
    with probability at most ``D/p`` over ``z``.
    """

    seed: int
    c0: int = 0
    c1: int = 0
    fingerprint: int = 0

    def _z(self) -> int:
        return _hash64(self.seed, 0x5EED) % (FIELD_PRIME - 2) + 2

    def update(self, item: int, delta: int) -> None:
        """Add ``delta`` to coordinate ``item`` (items are >= 1)."""
        if item < 1:
            raise ValueError("items must be positive integers")
        self.c0 += delta
        self.c1 += delta * item
        self.fingerprint = (
            self.fingerprint + delta * pow(self._z(), item, FIELD_PRIME)
        ) % FIELD_PRIME

    def combine(self, other: "OneSparseRecovery") -> "OneSparseRecovery":
        """Linear combination: sketch of the coordinate-wise sum."""
        if other.seed != self.seed:
            raise ValueError("cannot combine sketches with different seeds")
        return OneSparseRecovery(
            self.seed,
            self.c0 + other.c0,
            self.c1 + other.c1,
            (self.fingerprint + other.fingerprint) % FIELD_PRIME,
        )

    @property
    def is_zero(self) -> bool:
        return self.c0 == 0 and self.c1 == 0 and self.fingerprint == 0

    def recover(self) -> Optional[tuple[int, int]]:
        """Return ``(item, weight)`` if the vector is verified 1-sparse,
        else ``None`` (always ``None`` for the zero vector)."""
        if self.c0 == 0:
            return None
        if self.c1 % self.c0 != 0:
            return None
        item = self.c1 // self.c0
        if item < 1:
            return None
        expected = self.c0 * pow(self._z(), item, FIELD_PRIME) % FIELD_PRIME
        if expected != self.fingerprint:
            return None
        return item, self.c0

    def state(self) -> tuple[int, int, int]:
        """Serializable aggregates (whiteboard payload form)."""
        return (self.c0, self.c1, self.fingerprint)

    @classmethod
    def from_state(cls, seed: int, state: tuple[int, int, int]) -> "OneSparseRecovery":
        return cls(seed, state[0], state[1], state[2])


@dataclass
class L0Sampler:
    """Sample one nonzero coordinate of an integer vector from a linear
    sketch.

    ``levels + 1`` one-sparse structures; coordinate ``i`` contributes to
    levels ``0 .. level_of(i)``.  For a vector with ``k`` nonzeros, level
    ``≈ log2 k`` retains a single survivor with constant probability, so
    scanning levels sparse-to-dense finds it.
    """

    seed: int
    levels: int
    cells: list[OneSparseRecovery] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.cells:
            self.cells = [
                OneSparseRecovery(_hash64(self.seed, 0xCE11, l))
                for l in range(self.levels + 1)
            ]

    def update(self, item: int, delta: int) -> None:
        top = level_of(self.seed, item, self.levels)
        for l in range(top + 1):
            self.cells[l].update(item, delta)

    def combine(self, other: "L0Sampler") -> "L0Sampler":
        if (other.seed, other.levels) != (self.seed, self.levels):
            raise ValueError("incompatible samplers")
        return L0Sampler(
            self.seed,
            self.levels,
            [a.combine(b) for a, b in zip(self.cells, other.cells)],
        )

    @property
    def is_zero(self) -> bool:
        return all(c.is_zero for c in self.cells)

    def sample(self) -> Optional[tuple[int, int]]:
        """A verified nonzero ``(item, weight)``, or ``None``."""
        for cell in reversed(self.cells):  # sparsest level first
            got = cell.recover()
            if got is not None:
                return got
        return None

    def state(self) -> tuple[tuple[int, int, int], ...]:
        return tuple(c.state() for c in self.cells)

    @classmethod
    def from_state(
        cls, seed: int, levels: int, state: tuple[tuple[int, int, int], ...]
    ) -> "L0Sampler":
        cells = [
            OneSparseRecovery.from_state(_hash64(seed, 0xCE11, l), s)
            for l, s in enumerate(state)
        ]
        return cls(seed, levels, cells)
