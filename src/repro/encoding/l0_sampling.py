"""Linear ℓ₀-sampling sketches (Ahn–Guibas–McGregor style).

Substrate for the randomized-extension protocols (the paper's Section 7
directions): a *linear* sketch of an integer-weighted vector from which
one nonzero coordinate can be recovered with constant probability, built
from

* :class:`OneSparseRecovery` — exact recovery of a vector with exactly
  one nonzero entry from three aggregates: the weight sum, the
  id-weighted sum, and a random-evaluation fingerprint over a prime
  field (false positives with probability ``<= D / p`` for id-domain
  size ``D``);
* :class:`L0Sampler` — geometric subsampling by a shared-seed hash into
  levels; a vector with ``k`` nonzeros is 1-sparse at level ``~log2 k``
  with constant probability.

Everything is **linear**: sketches of two vectors add component-wise to
the sketch of the sum.  That is the property graph sketching needs —
adding the sketches of a node set yields the sketch of its *boundary*
(interior edges cancel by the ±1 incidence convention) — and it is
asserted by property tests.

Randomness is *public-coin*: all hash functions derive deterministically
from a shared integer seed, matching the model used for the randomized
2-CLIQUES protocol.

Performance architecture.  The public coins are *deterministic in the
seed*, so every derived quantity is cached at module level and shared
across sketch instances, protocol rounds, nodes, and repeated runs:

* ``_z_of(seed)`` — the fingerprint evaluation point (previously
  re-hashed on every single update);
* ``_pow_z(z, item)`` — the modular power table ``z^item mod p`` used by
  both the update and recovery paths;
* ``_geom(seed, item)`` — the geometric level hash behind
  :func:`level_of`;
* ``_cell_seeds(seed, levels)`` — per-level cell seeds of a sampler.

:class:`L0Sampler` stores its cells as three flat parallel arrays
(``c0``/``c1``/``fingerprint`` per level) instead of a list of
per-cell objects, and offers :meth:`L0Sampler.batch_update` which
sketches a whole ``(items, deltas)`` stream in one pass.  The numbers
produced are bit-for-bit identical to the original per-cell
implementation — the caches only eliminate recomputation.

The *stored* aggregates hold Python ints on purpose: fingerprint
arithmetic multiplies 61-bit residues by signed weights, which would
overflow fixed-width lanes, and the scalar update loop is the semantic
authority.  Long update streams, however, take a numpy fast path when
it is exactly representable: :func:`mulmod61` and :func:`powmod61` do
the ``mod 2^61 - 1`` arithmetic on paired-uint64 half-products (every
partial fits 64 bits), and :meth:`L0Sampler.batch_update` falls back to
the scalar loop whenever the stream's weights exceed the guarded int64
headroom — so the fast path is an accelerator, never a semantics
change, exactly like the batched execution core in
:mod:`repro.core.batch`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Optional, Sequence

try:  # optional accelerator: the scalar path below is the authority
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

__all__ = [
    "FIELD_PRIME",
    "OneSparseRecovery",
    "L0Sampler",
    "level_of",
    "mulmod61",
    "powmod61",
]

#: Field for fingerprints: the Mersenne prime 2^61 - 1.
FIELD_PRIME = (1 << 61) - 1


def _hash64(seed: int, *key: int) -> int:
    """Deterministic 64-bit hash of (seed, key) — the public coin."""
    data = seed.to_bytes(8, "little", signed=False)
    for k in key:
        data += int(k).to_bytes(8, "little", signed=True)
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "little")


@lru_cache(maxsize=1 << 16)
def _z_of(seed: int) -> int:
    """Fingerprint evaluation point for ``seed`` (cached per seed)."""
    return _hash64(seed, 0x5EED) % (FIELD_PRIME - 2) + 2


@lru_cache(maxsize=1 << 20)
def _pow_z(z: int, item: int) -> int:
    """Memoized ``z^item mod p`` — shared across updates and recoveries."""
    return pow(z, item, FIELD_PRIME)


@lru_cache(maxsize=1 << 20)
def _geom(seed: int, item: int) -> int:
    """Uncapped geometric level of ``item``: trailing ones of its hash."""
    h = _hash64(seed, item)
    level = 0
    while h & 1:
        h >>= 1
        level += 1
    return level


@lru_cache(maxsize=1 << 16)
def _cell_seeds(seed: int, levels: int) -> tuple[int, ...]:
    """Per-level cell seeds of an ``L0Sampler(seed, levels)``."""
    return tuple(_hash64(seed, 0xCE11, l) for l in range(levels + 1))


@lru_cache(maxsize=1 << 16)
def _cell_zs(seed: int, levels: int) -> tuple[int, ...]:
    """Per-level fingerprint evaluation points of a sampler."""
    return tuple(_z_of(s) for s in _cell_seeds(seed, levels))


@lru_cache(maxsize=1 << 19)
def _column(seed: int, levels: int, item: int) -> tuple[int, ...]:
    """The fingerprint powers a unit update of ``item`` adds to cells
    ``0..level_of(item)`` of a ``L0Sampler(seed, levels)``.  One cache
    hit replaces a level hash plus per-cell power lookups on every later
    update of the same coordinate — by any node, round, or run."""
    top = min(_geom(seed, item), levels)
    zs = _cell_zs(seed, levels)
    return tuple(_pow_z(zs[l], item) for l in range(top + 1))


#: Streams shorter than this stay on the scalar loop: binding the numpy
#: lanes costs more than it saves below a few dozen updates.
_FAST_MIN_ITEMS = 32
_MASK31 = (1 << 31) - 1
_MASK30 = (1 << 30) - 1


def mulmod61(a, b):
    """``(a * b) % FIELD_PRIME`` on uint64 lanes (vectorized, exact).

    Operands must be reduced residues (``< 2^61``).  Each is split into
    a 31-bit low and 30-bit high half so every partial product fits a
    uint64, then the pieces fold with ``2^61 ≡ 1 (mod p)`` (so
    ``2^62 ≡ 2``).  The property tests pin this lane-for-lane against
    Python's arbitrary-precision ``(a * b) % FIELD_PRIME``.
    """
    a = _np.asarray(a, dtype=_np.uint64)
    b = _np.asarray(b, dtype=_np.uint64)
    a0 = a & _np.uint64(_MASK31)
    a1 = a >> _np.uint64(31)
    b0 = b & _np.uint64(_MASK31)
    b1 = b >> _np.uint64(31)
    mid = a1 * b0 + a0 * b1
    # a*b = a1·b1·2^62 + mid·2^31 + a0·b0; reduce the mid term through a
    # 30/34 split so its shifted halves stay below 2^61 as well.
    t = (
        ((a1 * b1) << _np.uint64(1))
        + (mid >> _np.uint64(30))
        + ((mid & _np.uint64(_MASK30)) << _np.uint64(31))
        + a0 * b0
    )
    p = _np.uint64(FIELD_PRIME)
    t = (t >> _np.uint64(61)) + (t & p)
    t = (t >> _np.uint64(61)) + (t & p)
    return t - _np.where(t >= p, p, _np.uint64(0))


def powmod61(base, exp):
    """``(base ** exp) % FIELD_PRIME`` on uint64 lanes.

    Vectorized square-and-multiply over the exponent bits; ``base``
    must hold reduced residues.  Broadcasts like numpy ufuncs do.
    """
    base, exp = _np.broadcast_arrays(
        _np.asarray(base, dtype=_np.uint64), _np.asarray(exp, dtype=_np.uint64)
    )
    base = base.copy()
    exp = exp.copy()
    out = _np.ones(base.shape, dtype=_np.uint64)
    while True:
        odd = (exp & _np.uint64(1)).astype(bool)
        if odd.any():
            out[odd] = mulmod61(out[odd], base[odd])
        exp = exp >> _np.uint64(1)
        if not exp.any():
            return out
        base = mulmod61(base, base)


def _sum_mod61(v):
    """Exact mod-p sum of a uint64 residue array (entries ``< p``).

    Folds in chunks of eight — ``8 * (p - 1) < 2^64``, so the chunk
    sums cannot wrap — reducing 8x per pass.
    """
    p = _np.uint64(FIELD_PRIME)
    while v.size > 1:
        pad = (-v.size) % 8
        if pad:
            v = _np.concatenate([v, _np.zeros(pad, dtype=_np.uint64)])
        v = v.reshape(-1, 8).sum(axis=1, dtype=_np.uint64)
        v = (v >> _np.uint64(61)) + (v & p)
        v = (v >> _np.uint64(61)) + (v & p)
        v = v - _np.where(v >= p, p, _np.uint64(0))
    return int(v[0]) if v.size else 0


def level_of(seed: int, item: int, max_level: int) -> int:
    """Geometric level of ``item``: number of trailing ones of its hash,
    capped at ``max_level``.  ``P(level >= l) = 2^-l``."""
    return min(_geom(seed, item), max_level)


@dataclass
class OneSparseRecovery:
    """Exact recovery for (at most) 1-sparse integer vectors.

    Maintains ``c0 = Σ w_i``, ``c1 = Σ w_i · i`` over ℤ and the
    fingerprint ``f = Σ w_i · z^i mod p`` for a seed-derived evaluation
    point ``z``.  A vector with a single nonzero ``(i, w)`` satisfies
    ``c1 = w·i`` and ``f = w·z^i``; any other vector passes the check
    with probability at most ``D/p`` over ``z``.
    """

    seed: int
    c0: int = 0
    c1: int = 0
    fingerprint: int = 0

    def _z(self) -> int:
        return _z_of(self.seed)

    def update(self, item: int, delta: int) -> None:
        """Add ``delta`` to coordinate ``item`` (items are >= 1)."""
        if item < 1:
            raise ValueError("items must be positive integers")
        self.c0 += delta
        self.c1 += delta * item
        self.fingerprint = (
            self.fingerprint + delta * _pow_z(_z_of(self.seed), item)
        ) % FIELD_PRIME

    def combine(self, other: "OneSparseRecovery") -> "OneSparseRecovery":
        """Linear combination: sketch of the coordinate-wise sum."""
        if other.seed != self.seed:
            raise ValueError("cannot combine sketches with different seeds")
        return OneSparseRecovery(
            self.seed,
            self.c0 + other.c0,
            self.c1 + other.c1,
            (self.fingerprint + other.fingerprint) % FIELD_PRIME,
        )

    @property
    def is_zero(self) -> bool:
        return self.c0 == 0 and self.c1 == 0 and self.fingerprint == 0

    def recover(self) -> Optional[tuple[int, int]]:
        """Return ``(item, weight)`` if the vector is verified 1-sparse,
        else ``None`` (always ``None`` for the zero vector)."""
        return _recover(self.seed, self.c0, self.c1, self.fingerprint)

    def state(self) -> tuple[int, int, int]:
        """Serializable aggregates (whiteboard payload form)."""
        return (self.c0, self.c1, self.fingerprint)

    @classmethod
    def from_state(cls, seed: int, state: tuple[int, int, int]) -> "OneSparseRecovery":
        return cls(seed, state[0], state[1], state[2])


def _recover(seed: int, c0: int, c1: int, fingerprint: int) -> Optional[tuple[int, int]]:
    """Shared 1-sparse verification for object cells and flat arrays."""
    if c0 == 0:
        return None
    if c1 % c0 != 0:
        return None
    item = c1 // c0
    if item < 1:
        return None
    if c0 * _pow_z(_z_of(seed), item) % FIELD_PRIME != fingerprint:
        return None
    return item, c0


class L0Sampler:
    """Sample one nonzero coordinate of an integer vector from a linear
    sketch.

    ``levels + 1`` one-sparse structures; coordinate ``i`` contributes to
    levels ``0 .. level_of(i)``.  For a vector with ``k`` nonzeros, level
    ``≈ log2 k`` retains a single survivor with constant probability, so
    scanning levels sparse-to-dense finds it.

    The per-level aggregates live in three flat parallel arrays; the
    :attr:`cells` view materializes :class:`OneSparseRecovery` objects on
    demand for callers that want the object form.
    """

    __slots__ = ("seed", "levels", "_c0", "_c1", "_fp")

    def __init__(
        self,
        seed: int,
        levels: int,
        cells: Optional[Sequence[OneSparseRecovery]] = None,
    ) -> None:
        self.seed = seed
        self.levels = levels
        k = levels + 1
        if cells:
            if len(cells) != k:
                raise ValueError(f"expected {k} cells, got {len(cells)}")
            expected_seeds = _cell_seeds(seed, levels)
            for cell, expected in zip(cells, expected_seeds):
                if cell.seed != expected:
                    raise ValueError(
                        "cell seeds do not match the sampler's derived seeds"
                    )
            self._c0 = [c.c0 for c in cells]
            self._c1 = [c.c1 for c in cells]
            self._fp = [c.fingerprint for c in cells]
        else:
            self._c0 = [0] * k
            self._c1 = [0] * k
            self._fp = [0] * k

    @property
    def cells(self) -> list[OneSparseRecovery]:
        """Object view of the flat per-level aggregates."""
        return [
            OneSparseRecovery(s, c0, c1, fp)
            for s, c0, c1, fp in zip(
                _cell_seeds(self.seed, self.levels), self._c0, self._c1, self._fp
            )
        ]

    def update(self, item: int, delta: int) -> None:
        if item < 1:
            raise ValueError("items must be positive integers")
        top = min(_geom(self.seed, item), self.levels)
        zs = _cell_zs(self.seed, self.levels)
        c0, c1, fp = self._c0, self._c1, self._fp
        weighted = delta * item
        for l in range(top + 1):
            c0[l] += delta
            c1[l] += weighted
            fp[l] = (fp[l] + delta * _pow_z(zs[l], item)) % FIELD_PRIME

    def batch_update(self, items: Iterable[int], deltas: Iterable[int]) -> None:
        """Apply a whole update stream in one pass.

        Equivalent to ``for i, d in zip(items, deltas): self.update(i, d)``
        (linearity makes the order irrelevant), with the seed-derived
        tables bound once for the entire stream.

        Long streams run the fingerprint arithmetic on paired-uint64
        numpy lanes (:func:`mulmod61` / :func:`powmod61`) when every
        intermediate provably fits; otherwise — short streams, missing
        numpy, or weights past the int64 headroom — the exact scalar
        loop below runs.  Both paths produce identical aggregates.
        """
        seed, levels = self.seed, self.levels
        if not isinstance(items, (list, tuple)):
            items = list(items)
        if not isinstance(deltas, (list, tuple)):
            deltas = list(deltas)
        if (
            _np is not None
            and len(items) == len(deltas)
            and len(items) >= _FAST_MIN_ITEMS
            and self._batch_update_fast(items, deltas)
        ):
            return
        c0, c1, fp = self._c0, self._c1, self._fp
        column = _column
        for item, delta in zip(items, deltas):
            if item < 1:
                raise ValueError("items must be positive integers")
            weighted = delta * item
            for l, power in enumerate(column(seed, levels, item)):
                c0[l] += delta
                c1[l] += weighted
                fp[l] = (fp[l] + delta * power) % FIELD_PRIME

    def _batch_update_fast(self, items: Sequence[int], deltas: Sequence[int]) -> bool:
        """Vectorized twin of the scalar ``batch_update`` loop.

        Returns ``False`` without touching any state when the stream
        needs arbitrary precision (an item or weight past the guarded
        int64 headroom) or contains an invalid item — the scalar loop
        then reproduces the exact semantics, including which updates
        land before a ``ValueError``.  On ``True`` every aggregate has
        been advanced to exactly what the scalar loop would produce.
        """
        seed, levels = self.seed, self.levels
        try:
            it = _np.array(items, dtype=_np.int64)
            de = _np.array(deltas, dtype=_np.int64)
        except (OverflowError, TypeError, ValueError):
            return False
        if (it < 1).any():
            return False  # scalar loop raises at the offending update
        max_item = int(it.max())
        max_delta = int(_np.abs(de).max()) if de.size else 0
        # cumsum(de * it) must stay inside int64: guard the worst case
        # with exact Python-int arithmetic before trusting the lanes.
        if (
            max_item > _MASK31
            or max_delta > _MASK31
            or it.size * max_delta * max_item >= (1 << 62)
        ):
            return False
        top = _np.array(
            [min(_geom(seed, int(i)), levels) for i in items], dtype=_np.int64
        )
        order = _np.argsort(-top, kind="stable")
        it_s = it[order]
        de_s = de[order]
        top_s = top[order]
        cum_d = _np.cumsum(de_s)
        cum_di = _np.cumsum(de_s * it_s)
        items_u = it_s.astype(_np.uint64)
        deltas_u = (de_s % _np.int64(FIELD_PRIME)).astype(_np.uint64)
        zs = _cell_zs(seed, levels)
        c0, c1, fp = self._c0, self._c1, self._fp
        for l in range(levels + 1):
            # Levels contribute to prefixes of the top-descending order:
            # item i updates cells 0..top_i, so level l sees every item
            # with top >= l.
            k = int(_np.searchsorted(-top_s, -l, side="right"))
            if k == 0:
                break
            c0[l] += int(cum_d[k - 1])
            c1[l] += int(cum_di[k - 1])
            powers = powmod61(_np.uint64(zs[l]), items_u[:k])
            terms = mulmod61(deltas_u[:k], powers)
            fp[l] = (fp[l] + _sum_mod61(terms)) % FIELD_PRIME
        return True

    def combine(self, other: "L0Sampler") -> "L0Sampler":
        if (other.seed, other.levels) != (self.seed, self.levels):
            raise ValueError("incompatible samplers")
        out = L0Sampler(self.seed, self.levels)
        out._c0 = [a + b for a, b in zip(self._c0, other._c0)]
        out._c1 = [a + b for a, b in zip(self._c1, other._c1)]
        out._fp = [(a + b) % FIELD_PRIME for a, b in zip(self._fp, other._fp)]
        return out

    @property
    def is_zero(self) -> bool:
        return (
            not any(self._c0) and not any(self._c1) and not any(self._fp)
        )

    def sample(self) -> Optional[tuple[int, int]]:
        """A verified nonzero ``(item, weight)``, or ``None``."""
        seeds = _cell_seeds(self.seed, self.levels)
        for l in range(self.levels, -1, -1):  # sparsest level first
            got = _recover(seeds[l], self._c0[l], self._c1[l], self._fp[l])
            if got is not None:
                return got
        return None

    def state(self) -> tuple[tuple[int, int, int], ...]:
        return tuple(zip(self._c0, self._c1, self._fp))

    @classmethod
    def from_state(
        cls, seed: int, levels: int, state: tuple[tuple[int, int, int], ...]
    ) -> "L0Sampler":
        out = cls(seed, levels)
        if len(state) != levels + 1:
            raise ValueError(f"expected {levels + 1} cell states, got {len(state)}")
        out._c0 = [s[0] for s in state]
        out._c1 = [s[1] for s in state]
        out._fp = [s[2] for s in state]
        return out
