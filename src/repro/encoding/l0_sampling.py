"""Linear ℓ₀-sampling sketches (Ahn–Guibas–McGregor style).

Substrate for the randomized-extension protocols (the paper's Section 7
directions): a *linear* sketch of an integer-weighted vector from which
one nonzero coordinate can be recovered with constant probability, built
from

* :class:`OneSparseRecovery` — exact recovery of a vector with exactly
  one nonzero entry from three aggregates: the weight sum, the
  id-weighted sum, and a random-evaluation fingerprint over a prime
  field (false positives with probability ``<= D / p`` for id-domain
  size ``D``);
* :class:`L0Sampler` — geometric subsampling by a shared-seed hash into
  levels; a vector with ``k`` nonzeros is 1-sparse at level ``~log2 k``
  with constant probability.

Everything is **linear**: sketches of two vectors add component-wise to
the sketch of the sum.  That is the property graph sketching needs —
adding the sketches of a node set yields the sketch of its *boundary*
(interior edges cancel by the ±1 incidence convention) — and it is
asserted by property tests.

Randomness is *public-coin*: all hash functions derive deterministically
from a shared integer seed, matching the model used for the randomized
2-CLIQUES protocol.

Performance architecture.  The public coins are *deterministic in the
seed*, so every derived quantity is cached at module level and shared
across sketch instances, protocol rounds, nodes, and repeated runs:

* ``_z_of(seed)`` — the fingerprint evaluation point (previously
  re-hashed on every single update);
* ``_pow_z(z, item)`` — the modular power table ``z^item mod p`` used by
  both the update and recovery paths;
* ``_geom(seed, item)`` — the geometric level hash behind
  :func:`level_of`;
* ``_cell_seeds(seed, levels)`` — per-level cell seeds of a sampler.

:class:`L0Sampler` stores its cells as three flat parallel arrays
(``c0``/``c1``/``fingerprint`` per level) instead of a list of
per-cell objects, and offers :meth:`L0Sampler.batch_update` which
sketches a whole ``(items, deltas)`` stream in one pass.  The numbers
produced are bit-for-bit identical to the original per-cell
implementation — the caches only eliminate recomputation.  (The arrays
hold Python ints on purpose: fingerprint arithmetic multiplies 61-bit
residues by signed weights, which would overflow fixed-width numpy
lanes.)
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Optional, Sequence

__all__ = ["FIELD_PRIME", "OneSparseRecovery", "L0Sampler", "level_of"]

#: Field for fingerprints: the Mersenne prime 2^61 - 1.
FIELD_PRIME = (1 << 61) - 1


def _hash64(seed: int, *key: int) -> int:
    """Deterministic 64-bit hash of (seed, key) — the public coin."""
    data = seed.to_bytes(8, "little", signed=False)
    for k in key:
        data += int(k).to_bytes(8, "little", signed=True)
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "little")


@lru_cache(maxsize=1 << 16)
def _z_of(seed: int) -> int:
    """Fingerprint evaluation point for ``seed`` (cached per seed)."""
    return _hash64(seed, 0x5EED) % (FIELD_PRIME - 2) + 2


@lru_cache(maxsize=1 << 20)
def _pow_z(z: int, item: int) -> int:
    """Memoized ``z^item mod p`` — shared across updates and recoveries."""
    return pow(z, item, FIELD_PRIME)


@lru_cache(maxsize=1 << 20)
def _geom(seed: int, item: int) -> int:
    """Uncapped geometric level of ``item``: trailing ones of its hash."""
    h = _hash64(seed, item)
    level = 0
    while h & 1:
        h >>= 1
        level += 1
    return level


@lru_cache(maxsize=1 << 16)
def _cell_seeds(seed: int, levels: int) -> tuple[int, ...]:
    """Per-level cell seeds of an ``L0Sampler(seed, levels)``."""
    return tuple(_hash64(seed, 0xCE11, l) for l in range(levels + 1))


@lru_cache(maxsize=1 << 16)
def _cell_zs(seed: int, levels: int) -> tuple[int, ...]:
    """Per-level fingerprint evaluation points of a sampler."""
    return tuple(_z_of(s) for s in _cell_seeds(seed, levels))


@lru_cache(maxsize=1 << 19)
def _column(seed: int, levels: int, item: int) -> tuple[int, ...]:
    """The fingerprint powers a unit update of ``item`` adds to cells
    ``0..level_of(item)`` of a ``L0Sampler(seed, levels)``.  One cache
    hit replaces a level hash plus per-cell power lookups on every later
    update of the same coordinate — by any node, round, or run."""
    top = min(_geom(seed, item), levels)
    zs = _cell_zs(seed, levels)
    return tuple(_pow_z(zs[l], item) for l in range(top + 1))


def level_of(seed: int, item: int, max_level: int) -> int:
    """Geometric level of ``item``: number of trailing ones of its hash,
    capped at ``max_level``.  ``P(level >= l) = 2^-l``."""
    return min(_geom(seed, item), max_level)


@dataclass
class OneSparseRecovery:
    """Exact recovery for (at most) 1-sparse integer vectors.

    Maintains ``c0 = Σ w_i``, ``c1 = Σ w_i · i`` over ℤ and the
    fingerprint ``f = Σ w_i · z^i mod p`` for a seed-derived evaluation
    point ``z``.  A vector with a single nonzero ``(i, w)`` satisfies
    ``c1 = w·i`` and ``f = w·z^i``; any other vector passes the check
    with probability at most ``D/p`` over ``z``.
    """

    seed: int
    c0: int = 0
    c1: int = 0
    fingerprint: int = 0

    def _z(self) -> int:
        return _z_of(self.seed)

    def update(self, item: int, delta: int) -> None:
        """Add ``delta`` to coordinate ``item`` (items are >= 1)."""
        if item < 1:
            raise ValueError("items must be positive integers")
        self.c0 += delta
        self.c1 += delta * item
        self.fingerprint = (
            self.fingerprint + delta * _pow_z(_z_of(self.seed), item)
        ) % FIELD_PRIME

    def combine(self, other: "OneSparseRecovery") -> "OneSparseRecovery":
        """Linear combination: sketch of the coordinate-wise sum."""
        if other.seed != self.seed:
            raise ValueError("cannot combine sketches with different seeds")
        return OneSparseRecovery(
            self.seed,
            self.c0 + other.c0,
            self.c1 + other.c1,
            (self.fingerprint + other.fingerprint) % FIELD_PRIME,
        )

    @property
    def is_zero(self) -> bool:
        return self.c0 == 0 and self.c1 == 0 and self.fingerprint == 0

    def recover(self) -> Optional[tuple[int, int]]:
        """Return ``(item, weight)`` if the vector is verified 1-sparse,
        else ``None`` (always ``None`` for the zero vector)."""
        return _recover(self.seed, self.c0, self.c1, self.fingerprint)

    def state(self) -> tuple[int, int, int]:
        """Serializable aggregates (whiteboard payload form)."""
        return (self.c0, self.c1, self.fingerprint)

    @classmethod
    def from_state(cls, seed: int, state: tuple[int, int, int]) -> "OneSparseRecovery":
        return cls(seed, state[0], state[1], state[2])


def _recover(seed: int, c0: int, c1: int, fingerprint: int) -> Optional[tuple[int, int]]:
    """Shared 1-sparse verification for object cells and flat arrays."""
    if c0 == 0:
        return None
    if c1 % c0 != 0:
        return None
    item = c1 // c0
    if item < 1:
        return None
    if c0 * _pow_z(_z_of(seed), item) % FIELD_PRIME != fingerprint:
        return None
    return item, c0


class L0Sampler:
    """Sample one nonzero coordinate of an integer vector from a linear
    sketch.

    ``levels + 1`` one-sparse structures; coordinate ``i`` contributes to
    levels ``0 .. level_of(i)``.  For a vector with ``k`` nonzeros, level
    ``≈ log2 k`` retains a single survivor with constant probability, so
    scanning levels sparse-to-dense finds it.

    The per-level aggregates live in three flat parallel arrays; the
    :attr:`cells` view materializes :class:`OneSparseRecovery` objects on
    demand for callers that want the object form.
    """

    __slots__ = ("seed", "levels", "_c0", "_c1", "_fp")

    def __init__(
        self,
        seed: int,
        levels: int,
        cells: Optional[Sequence[OneSparseRecovery]] = None,
    ) -> None:
        self.seed = seed
        self.levels = levels
        k = levels + 1
        if cells:
            if len(cells) != k:
                raise ValueError(f"expected {k} cells, got {len(cells)}")
            expected_seeds = _cell_seeds(seed, levels)
            for cell, expected in zip(cells, expected_seeds):
                if cell.seed != expected:
                    raise ValueError(
                        "cell seeds do not match the sampler's derived seeds"
                    )
            self._c0 = [c.c0 for c in cells]
            self._c1 = [c.c1 for c in cells]
            self._fp = [c.fingerprint for c in cells]
        else:
            self._c0 = [0] * k
            self._c1 = [0] * k
            self._fp = [0] * k

    @property
    def cells(self) -> list[OneSparseRecovery]:
        """Object view of the flat per-level aggregates."""
        return [
            OneSparseRecovery(s, c0, c1, fp)
            for s, c0, c1, fp in zip(
                _cell_seeds(self.seed, self.levels), self._c0, self._c1, self._fp
            )
        ]

    def update(self, item: int, delta: int) -> None:
        if item < 1:
            raise ValueError("items must be positive integers")
        top = min(_geom(self.seed, item), self.levels)
        zs = _cell_zs(self.seed, self.levels)
        c0, c1, fp = self._c0, self._c1, self._fp
        weighted = delta * item
        for l in range(top + 1):
            c0[l] += delta
            c1[l] += weighted
            fp[l] = (fp[l] + delta * _pow_z(zs[l], item)) % FIELD_PRIME

    def batch_update(self, items: Iterable[int], deltas: Iterable[int]) -> None:
        """Apply a whole update stream in one pass.

        Equivalent to ``for i, d in zip(items, deltas): self.update(i, d)``
        (linearity makes the order irrelevant), with the seed-derived
        tables bound once for the entire stream.
        """
        seed, levels = self.seed, self.levels
        c0, c1, fp = self._c0, self._c1, self._fp
        column = _column
        for item, delta in zip(items, deltas):
            if item < 1:
                raise ValueError("items must be positive integers")
            weighted = delta * item
            for l, power in enumerate(column(seed, levels, item)):
                c0[l] += delta
                c1[l] += weighted
                fp[l] = (fp[l] + delta * power) % FIELD_PRIME

    def combine(self, other: "L0Sampler") -> "L0Sampler":
        if (other.seed, other.levels) != (self.seed, self.levels):
            raise ValueError("incompatible samplers")
        out = L0Sampler(self.seed, self.levels)
        out._c0 = [a + b for a, b in zip(self._c0, other._c0)]
        out._c1 = [a + b for a, b in zip(self._c1, other._c1)]
        out._fp = [(a + b) % FIELD_PRIME for a, b in zip(self._fp, other._fp)]
        return out

    @property
    def is_zero(self) -> bool:
        return (
            not any(self._c0) and not any(self._c1) and not any(self._fp)
        )

    def sample(self) -> Optional[tuple[int, int]]:
        """A verified nonzero ``(item, weight)``, or ``None``."""
        seeds = _cell_seeds(self.seed, self.levels)
        for l in range(self.levels, -1, -1):  # sparsest level first
            got = _recover(seeds[l], self._c0[l], self._c1[l], self._fp[l])
            if got is not None:
                return got
        return None

    def state(self) -> tuple[tuple[int, int, int], ...]:
        return tuple(zip(self._c0, self._c1, self._fp))

    @classmethod
    def from_state(
        cls, seed: int, levels: int, state: tuple[tuple[int, int, int], ...]
    ) -> "L0Sampler":
        out = cls(seed, levels)
        if len(state) != levels + 1:
            raise ValueError(f"expected {levels + 1} cell states, got {len(state)}")
        out._c0 = [s[0] for s in state]
        out._c1 = [s[1] for s in state]
        out._fp = [s[2] for s in state]
        return out
