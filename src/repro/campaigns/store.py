"""SQLite-backed persistent result store keyed by task fingerprints.

A campaign's unit of durable state is *one executed plan cell*: the
fingerprint of an :class:`~repro.runtime.plan.ExecutionTask` maps to the
exact :class:`~repro.runtime.results.VerificationReport` that executing
the cell produced, with the cell's witness records serialized as a JSONL
blob alongside.  Fingerprints are deterministic across processes and
machines (sha256 over a canonical JSON spec, never Python ``hash``), so
any two runs of unchanged code on the same cell agree on the key — that
is the whole cache/resume story:

* a **hit** is served by deserializing the stored report, which is
  *field-identical* to recomputing (the codec below round-trips every
  report field exactly, including failure outputs and witness
  schedules);
* a **miss** is executed and written back the moment its outcome streams
  out of the backend, so a killed campaign restarts where it died.

The fingerprint covers the plan cell (instance graph via graph6,
protocol/model/scheduler/adversary/checker construction parameters,
budgets, mode flags) plus a **code-version salt** hashed from the source
of every package that determines execution semantics — editing a
protocol or the simulator invalidates old entries wholesale instead of
silently serving stale results.  Construction parameters participate
only when they are primitives; compound attributes contribute their
class name and rely on the salt (documented invariant, see ROADMAP.md
"Campaign subsystem").

Concurrency rule: **the store is the only cross-process, cross-run
authority, and only the driving process touches it.**  Backends stay
stateless; worker processes never see the SQLite handle.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import os
import sqlite3
import time
from functools import lru_cache
from pathlib import Path
from typing import Any, Iterable, Optional

from ..graphs.codec import from_graph6, to_graph6
from ..graphs.labeled_graph import LabeledGraph
from ..telemetry import tracer as _trace
from ..telemetry.stats import KernelStats
from ..runtime.results import (
    Failure,
    TaskOutcome,
    VerificationReport,
    WitnessRecord,
)

__all__ = [
    "ResultStore",
    "task_fingerprint",
    "code_version_salt",
    "payload_to_jsonable",
    "payload_from_jsonable",
    "report_to_jsonable",
    "report_from_jsonable",
]

#: Bump when the stored representation changes incompatibly; part of
#: every fingerprint, so old rows simply stop matching.
STORE_FORMAT_VERSION = 1

#: Environment override for the code-version salt (tests pin it; an
#: operator can use it to share a store across known-equivalent trees).
SALT_ENV_VAR = "REPRO_CAMPAIGN_SALT"

#: Subtrees of ``src/repro`` whose source feeds the code-version salt —
#: everything that can change what executing a task produces.
_SALT_SOURCES = (
    "core",
    "encoding",
    "faults",
    "graphs",
    "protocols",
    "adversaries",
    "runtime",
    "analysis/checkers.py",
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    fingerprint   TEXT PRIMARY KEY,
    campaign      TEXT,
    protocol      TEXT NOT NULL,
    model         TEXT NOT NULL,
    n             INTEGER NOT NULL,
    report_json   TEXT NOT NULL,
    witnesses_jsonl TEXT NOT NULL DEFAULT '',
    created_at    REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS trajectories (
    campaign      TEXT NOT NULL,
    generation    INTEGER NOT NULL,
    protocol      TEXT NOT NULL,
    model         TEXT NOT NULL,
    family        TEXT NOT NULL,
    n             INTEGER NOT NULL,
    bits          INTEGER NOT NULL,
    deadlock      INTEGER NOT NULL,
    strategy      TEXT NOT NULL,
    schedule      TEXT NOT NULL,
    minimal_schedule TEXT,
    graph6        TEXT NOT NULL,
    PRIMARY KEY (campaign, generation, protocol, model, family, n)
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS frontiers (
    cell_key      TEXT NOT NULL,
    digest        TEXT NOT NULL,
    salt          TEXT NOT NULL,
    key_json      TEXT NOT NULL,
    entry_json    TEXT NOT NULL,
    created_at    REAL NOT NULL,
    PRIMARY KEY (cell_key, digest)
);
"""


# ----------------------------------------------------------------------
# code-version salt
# ----------------------------------------------------------------------

@lru_cache(maxsize=1)
def _source_salt() -> str:
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for entry in _SALT_SOURCES:
        target = package_root / entry
        files = [target] if target.is_file() else sorted(target.rglob("*.py"))
        for path in files:
            rel = path.relative_to(package_root).as_posix()
            digest.update(rel.encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
    return digest.hexdigest()[:16]


def code_version_salt() -> str:
    """Salt mixed into every fingerprint: a hash of the source of every
    execution-relevant subpackage, or the :data:`SALT_ENV_VAR` override.

    Any edit to the simulator, a protocol, an adversary, the encodings,
    the graphs layer or the runtime changes the salt and therefore every
    fingerprint — stored results can only ever be served for the code
    that produced them.
    """
    override = os.environ.get(SALT_ENV_VAR)
    if override:
        return override
    return _source_salt()


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------

_PRIMITIVES = (bool, int, float, str, type(None))


def _primitive_params(obj: Any) -> dict[str, Any]:
    """Public primitive attributes of ``obj``, deterministically.

    Compound attributes (engines, RNG state, caches) are represented by
    their class name only — their behaviour is covered by the code
    salt, their construction parameters are almost always mirrored in a
    primitive attribute as well (seeds, widths, budgets).
    """
    try:
        attrs = vars(obj)
    except TypeError:
        attrs = {}
    params: dict[str, Any] = {}
    for key in sorted(attrs):
        if key.startswith("_"):
            continue
        value = attrs[key]
        if isinstance(value, _PRIMITIVES):
            params[key] = value
        elif isinstance(value, (tuple, list, frozenset, set)) and all(
            isinstance(item, _PRIMITIVES) for item in value
        ):
            items = list(value)
            if isinstance(value, (frozenset, set)):
                items = sorted(items, key=repr)
            params[key] = items
        else:
            params[key] = {"class": type(value).__qualname__}
    return params


def _component_key(obj: Any) -> Optional[dict[str, Any]]:
    if obj is None:
        return None
    cls = type(obj)
    key: dict[str, Any] = {"class": f"{cls.__module__}.{cls.__qualname__}"}
    name = getattr(obj, "name", None)
    if isinstance(name, str):
        key["name"] = name
    params = _primitive_params(obj)
    if params:
        key["params"] = params
    return key


def task_fingerprint(task: Any, salt: Optional[str] = None) -> str:
    """Deterministic fingerprint of one :class:`ExecutionTask` cell.

    Everything that determines the cell's report participates: the
    instance (graph6 is lossless), the protocol/model, the lowered task
    mode, schedulers/adversaries/checker with their primitive
    construction parameters, budgets and flags — plus the code-version
    ``salt``.  The task ``index`` deliberately does *not*: the same cell
    at a different position in a different plan is the same work.
    """
    if salt is None:
        salt = code_version_salt()
    spec = {
        "format": STORE_FORMAT_VERSION,
        "salt": salt,
        "graph": {"n": task.graph.n, "graph6": to_graph6(task.graph)},
        "protocol": _component_key(task.protocol),
        "model": task.model_name,
        "mode": task.mode,
        "schedulers": [_component_key(s) for s in task.schedulers],
        "adversaries": [_component_key(a) for a in task.adversaries],
        "checker": _component_key(task.checker),
        "bit_budget": task.bit_budget,
        "exhaustive_limit": task.exhaustive_limit,
        "allow_deadlock": task.allow_deadlock,
        "keep_runs": task.keep_runs,
        "capture_witnesses": task.capture_witnesses,
        "minimize_witnesses": getattr(task, "minimize_witnesses", True),
        # Search-kernel knobs (None/False on non-search cells, so the
        # fingerprints of exhaustive cells do not churn with them).
        "score": getattr(task, "score", None),
        "share_table": getattr(task, "share_table", False),
        # Canonical fault-budget string (None on reliable cells, so
        # pre-fault fingerprints are unchanged modulo the salt).
        "faults": getattr(task, "faults", None),
    }
    canonical = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# ----------------------------------------------------------------------
# exact JSON codec for reports
# ----------------------------------------------------------------------

def payload_to_jsonable(value: Any) -> Any:
    """Encode an arbitrary protocol output/payload losslessly.

    Scalars pass through; every container becomes a tagged JSON array,
    so decoding is unambiguous.  Unknown types raise — silently lossy
    storage would break the store-hit ≡ recompute guarantee.
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, LabeledGraph):
        return ["graph", value.n, to_graph6(value)]
    if isinstance(value, tuple):
        return ["tuple"] + [payload_to_jsonable(v) for v in value]
    if isinstance(value, list):
        return ["list"] + [payload_to_jsonable(v) for v in value]
    if isinstance(value, (frozenset, set)):
        tag = "frozenset" if isinstance(value, frozenset) else "set"
        encoded = [payload_to_jsonable(v) for v in value]
        encoded.sort(key=lambda item: json.dumps(item, sort_keys=True))
        return [tag] + encoded
    if isinstance(value, dict):
        return ["dict"] + [
            [payload_to_jsonable(k), payload_to_jsonable(v)]
            for k, v in value.items()
        ]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # Structured protocol outputs (BFS forests, MIS certificates…)
        # become routine Failure payloads under fault budgets; encode
        # them field-by-field so the round trip stays exact.
        cls = type(value)
        fields = dataclasses.fields(value)
        if any(not f.init for f in fields):
            raise TypeError(
                f"cannot store dataclass {cls.__qualname__!r}: it has "
                "non-init fields"
            )
        return ["dataclass", f"{cls.__module__}.{cls.__qualname__}", [
            [f.name, payload_to_jsonable(getattr(value, f.name))]
            for f in fields
        ]]
    raise TypeError(
        f"cannot store payload of type {type(value).__qualname__!r}: {value!r}"
    )


def payload_from_jsonable(value: Any) -> Any:
    """Inverse of :func:`payload_to_jsonable`."""
    if not isinstance(value, list):
        return value
    if not value or not isinstance(value[0], str):
        raise ValueError(f"malformed stored payload: {value!r}")
    tag, rest = value[0], value[1:]
    if tag == "graph":
        n, graph6 = rest
        graph = from_graph6(graph6)
        if graph.n != n:
            raise ValueError("inconsistent stored graph")
        return graph
    if tag == "tuple":
        return tuple(payload_from_jsonable(v) for v in rest)
    if tag == "list":
        return [payload_from_jsonable(v) for v in rest]
    if tag == "frozenset":
        return frozenset(payload_from_jsonable(v) for v in rest)
    if tag == "set":
        return {payload_from_jsonable(v) for v in rest}
    if tag == "dict":
        return {
            payload_from_jsonable(k): payload_from_jsonable(v)
            for k, v in rest
        }
    if tag == "dataclass":
        path, fields = rest
        module_name, _, qualname = path.rpartition(".")
        target = importlib.import_module(module_name)
        for part in qualname.split("."):
            target = getattr(target, part)
        return target(**{
            name: payload_from_jsonable(v) for name, v in fields
        })
    raise ValueError(f"unknown stored payload tag {tag!r}")


def _failure_to_jsonable(failure: Failure) -> dict[str, Any]:
    return {
        "graph": to_graph6(failure.graph),
        "schedule": list(failure.schedule),
        "output": payload_to_jsonable(failure.output),
        "kind": failure.kind,
    }


def _failure_from_jsonable(data: dict[str, Any]) -> Failure:
    return Failure(
        graph=from_graph6(data["graph"]),
        schedule=tuple(data["schedule"]),
        output=payload_from_jsonable(data["output"]),
        kind=data["kind"],
    )


def witness_to_jsonable(witness: WitnessRecord) -> dict[str, Any]:
    """One witness as one JSONL-ready object (raw *and* minimal form)."""
    return {
        "strategy": witness.strategy,
        "graph": to_graph6(witness.graph),
        "model": witness.model_name,
        "schedule": list(witness.schedule),
        "bits": witness.bits,
        "deadlock": witness.deadlock,
        "minimal_schedule": (
            None if witness.minimal_schedule is None
            else list(witness.minimal_schedule)
        ),
        "faults": witness.faults,
    }


def witness_from_jsonable(data: dict[str, Any]) -> WitnessRecord:
    """Inverse of :func:`witness_to_jsonable`."""
    minimal = data.get("minimal_schedule")
    return WitnessRecord(
        strategy=data["strategy"],
        graph=from_graph6(data["graph"]),
        model_name=data["model"],
        schedule=tuple(data["schedule"]),
        bits=data["bits"],
        deadlock=data["deadlock"],
        minimal_schedule=None if minimal is None else tuple(minimal),
        faults=data.get("faults"),
    )


def report_to_jsonable(report: VerificationReport) -> dict[str, Any]:
    """Flatten a report (witnesses excluded — they travel as JSONL)."""
    return {
        "protocol_name": report.protocol_name,
        "model_name": report.model_name,
        "instances": report.instances,
        "executions": report.executions,
        "exhaustive_instances": report.exhaustive_instances,
        "failures": [_failure_to_jsonable(f) for f in report.failures],
        "max_message_bits": report.max_message_bits,
        # JSON keys are strings; insertion order survives the round trip,
        # which `merge` relies on for field-identical folds.
        "max_bits_by_n": {str(n): b for n, b in report.max_bits_by_n.items()},
    }


def report_from_jsonable(
    data: dict[str, Any], witnesses: Iterable[WitnessRecord] = ()
) -> VerificationReport:
    """Inverse of :func:`report_to_jsonable`."""
    report = VerificationReport(data["protocol_name"], data["model_name"])
    report.instances = data["instances"]
    report.executions = data["executions"]
    report.exhaustive_instances = data["exhaustive_instances"]
    report.failures = [_failure_from_jsonable(f) for f in data["failures"]]
    report.max_message_bits = data["max_message_bits"]
    report.max_bits_by_n = {int(n): b for n, b in data["max_bits_by_n"].items()}
    report.witnesses = list(witnesses)
    return report


def _report_n(report: VerificationReport) -> int:
    """Instance size of a per-task report, for the informational ``n``
    column.  Deadlock-only cells under ``allow_deadlock`` never touch
    ``max_bits_by_n``, so fall back to the graphs their witnesses and
    failures carry."""
    if report.max_bits_by_n:
        return next(iter(report.max_bits_by_n))
    if report.witnesses:
        return report.witnesses[0].graph.n
    if report.failures:
        return report.failures[0].graph.n
    return 0


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------

class ResultStore:
    """Persistent, fingerprint-keyed store of per-task reports.

    ``path`` may be ``":memory:"`` for tests.  ``salt`` defaults to
    :func:`code_version_salt`; every fingerprint this store computes
    uses it.  The session counters ``hits``/``misses``/``writes`` track
    cache behaviour since construction (they are not persisted).
    """

    def __init__(self, path: "str | Path", salt: Optional[str] = None) -> None:
        self.path = str(path)
        self.salt = salt if salt is not None else code_version_salt()
        self._conn = sqlite3.connect(self.path)
        self._conn.executescript(_SCHEMA)
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            ("format_version", str(STORE_FORMAT_VERSION)),
        )
        self._conn.commit()
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- fingerprints --------------------------------------------------

    def fingerprint(self, task: Any) -> str:
        """This store's fingerprint for ``task`` (salt included)."""
        return task_fingerprint(task, self.salt)

    # -- reads ---------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[VerificationReport]:
        """The stored report for ``fingerprint``, or ``None``.

        Counts a session hit/miss either way.
        """
        tracer = _trace.active()
        start = time.perf_counter() if tracer is not None else 0.0
        row = self._conn.execute(
            "SELECT report_json, witnesses_jsonl FROM results "
            "WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        if row is None:
            self.misses += 1
            if tracer is not None:
                tracer.observe("store.get_seconds",
                               time.perf_counter() - start)
                tracer.count("store.misses")
            return None
        self.hits += 1
        report_json, witnesses_jsonl = row
        witnesses = [
            witness_from_jsonable(json.loads(line))
            for line in witnesses_jsonl.splitlines()
            if line.strip()
        ]
        report = report_from_jsonable(json.loads(report_json), witnesses)
        if tracer is not None:
            tracer.observe("store.get_seconds", time.perf_counter() - start)
            tracer.count("store.hits")
        return report

    def __contains__(self, fingerprint: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM results WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        return row is not None

    def fingerprints(self) -> set[str]:
        """All stored result fingerprints."""
        rows = self._conn.execute("SELECT fingerprint FROM results")
        return {fp for (fp,) in rows}

    def result_count(self) -> int:
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM results"
        ).fetchone()
        return count

    # -- writes --------------------------------------------------------

    def put(self, fingerprint: str, report: VerificationReport,
            *, n: int = 0, campaign: Optional[str] = None) -> None:
        """Store (or replace) the report for one executed cell.

        Commits immediately: durability per task is the resume
        guarantee.
        """
        tracer = _trace.active()
        start = time.perf_counter() if tracer is not None else 0.0
        witnesses_jsonl = "\n".join(
            json.dumps(witness_to_jsonable(w), sort_keys=True)
            for w in report.witnesses
        )
        self._conn.execute(
            "INSERT OR REPLACE INTO results "
            "(fingerprint, campaign, protocol, model, n, report_json, "
            " witnesses_jsonl, created_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                fingerprint,
                campaign,
                report.protocol_name,
                report.model_name,
                n,
                json.dumps(report_to_jsonable(report), sort_keys=True),
                witnesses_jsonl,
                time.time(),
            ),
        )
        self._conn.commit()
        self.writes += 1
        if tracer is not None:
            tracer.observe("store.put_seconds", time.perf_counter() - start)
            tracer.count("store.commits")

    def put_outcome(self, fingerprint: str, outcome: TaskOutcome,
                    campaign: Optional[str] = None) -> None:
        """Sink entry point (:class:`~repro.runtime.results.StoreBackedSink`).

        Only checker-carrying outcomes are storable: raw ``RunResult``
        transcripts deliberately never enter the store (aggregates and
        witnesses are the durable currency).
        """
        if outcome.report is None:
            raise ValueError(
                f"task {outcome.index} produced no report; only plans built "
                "with a checker can be stored"
            )
        self.put(fingerprint, outcome.report, n=_report_n(outcome.report),
                 campaign=campaign)

    def gc(self, live: Iterable[str],
           campaign: Optional[str] = None) -> int:
        """Delete stored results whose fingerprint is not in ``live``;
        returns the number removed.

        With ``campaign`` given, only rows labelled with that campaign
        are candidates — other campaigns (and unlabelled
        ``verify_protocol`` results) sharing the store are never
        touched by one campaign's gc.  ``campaign=None`` is the global
        sweep over every row.  Trajectory rows are *not* touched in
        either mode — they are the cross-run record campaigns exist to
        accumulate; gc is about the result cache only.
        """
        keep = set(live)
        if campaign is None:
            candidates = self.fingerprints()
        else:
            candidates = {
                fp for (fp,) in self._conn.execute(
                    "SELECT fingerprint FROM results WHERE campaign = ?",
                    (campaign,),
                )
            }
        doomed = [fp for fp in candidates if fp not in keep]
        self._conn.executemany(
            "DELETE FROM results WHERE fingerprint = ?",
            [(fp,) for fp in doomed],
        )
        self._conn.commit()
        return len(doomed)

    # -- persistent transposition frontiers ----------------------------

    def put_frontiers(self, cell_key: str, rows: Iterable[tuple]) -> int:
        """Persist ``(config_key, TableEntry)`` pairs for one search
        cell (the dirty-row export of the cell's table); returns the
        number of rows written.

        Rows are stamped with this store's salt: a later load under a
        different salt (any source edit) serves none of them.  An
        ``INSERT OR REPLACE`` per digest means re-running a cell
        replaces its rows with at-least-as-tight knowledge (exact
        entries are terminal; bounds only ever tighten within a run).
        """
        from .frontiers import encode_rows

        encoded = encode_rows(rows)
        if not encoded:
            return 0
        now = time.time()
        self._conn.executemany(
            "INSERT OR REPLACE INTO frontiers "
            "(cell_key, digest, salt, key_json, entry_json, created_at) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            [(cell_key, digest, self.salt, key_json, entry_json, now)
             for digest, key_json, entry_json in encoded],
        )
        self._conn.commit()
        self.writes += 1
        return len(encoded)

    def load_frontiers(self, cell_key: str) -> list:
        """The stored ``(config_key, TableEntry)`` pairs for one cell,
        in digest order — **current-salt rows only**, so frontiers
        recorded by different code are never served."""
        from .frontiers import decode_rows

        rows = self._conn.execute(
            "SELECT key_json, entry_json FROM frontiers "
            "WHERE cell_key = ? AND salt = ? ORDER BY digest",
            (cell_key, self.salt),
        ).fetchall()
        return decode_rows(rows)

    def frontier_count(self, cell_key: Optional[str] = None) -> int:
        """Stored frontier rows (one cell, or the whole table),
        regardless of salt."""
        if cell_key is None:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM frontiers"
            ).fetchone()
        else:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM frontiers WHERE cell_key = ?",
                (cell_key,),
            ).fetchone()
        return count

    def gc_frontiers(self, live_cell_keys: Iterable[str]) -> int:
        """Delete frontier rows whose cell key is not live, plus every
        stale-salt row (unservable by construction); returns the number
        removed.  Complements :meth:`gc`, which never touches
        frontiers — result rows and frontier rows have independent
        lifetimes (dropping a cached report deliberately keeps the
        frontier knowledge that re-running the cell would reuse)."""
        keep = set(live_cell_keys)
        candidates = self._conn.execute(
            "SELECT cell_key, digest, salt FROM frontiers"
        ).fetchall()
        doomed = [
            (ck, digest) for ck, digest, salt in candidates
            if ck not in keep or salt != self.salt
        ]
        self._conn.executemany(
            "DELETE FROM frontiers WHERE cell_key = ? AND digest = ?",
            doomed,
        )
        self._conn.commit()
        return len(doomed)

    # -- meta ----------------------------------------------------------

    def set_meta(self, key: str, value: str) -> None:
        """Set one key in the meta table (small operational metadata;
        never part of any fingerprint)."""
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            (key, value),
        )
        self._conn.commit()

    def get_meta(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row is not None else None

    def record_kernel_summary(self, campaign: str,
                              kernel: Optional[KernelStats]) -> None:
        """Persist the folded kernel snapshot of a campaign's latest
        completed run, for ``campaign status``.  Observation-only
        metadata: replaced wholesale each run, invisible to
        fingerprints, and ``None`` (nothing observed) is a no-op."""
        if kernel is None:
            return
        self.set_meta(
            f"kernel:{campaign}",
            json.dumps(kernel.to_jsonable(), sort_keys=True),
        )

    def kernel_summary(self, campaign: str) -> Optional[KernelStats]:
        """The stored kernel snapshot for ``campaign``, or ``None``."""
        raw = self.get_meta(f"kernel:{campaign}")
        if raw is None:
            return None
        return KernelStats.from_jsonable(json.loads(raw))

    # -- trajectory storage (used by repro.campaigns.trajectories) -----

    def campaigns(self) -> list[str]:
        """Campaign names with recorded trajectory generations."""
        rows = self._conn.execute(
            "SELECT DISTINCT campaign FROM trajectories ORDER BY campaign"
        )
        return [name for (name,) in rows]

    def latest_generation(self, campaign: str) -> int:
        """Highest recorded generation for ``campaign`` (0 if none)."""
        (latest,) = self._conn.execute(
            "SELECT COALESCE(MAX(generation), 0) FROM trajectories "
            "WHERE campaign = ?",
            (campaign,),
        ).fetchone()
        return latest

    def add_trajectory_rows(self, rows: Iterable[tuple]) -> None:
        """Insert fully-formed trajectory rows (see the schema)."""
        self._conn.executemany(
            "INSERT OR REPLACE INTO trajectories "
            "(campaign, generation, protocol, model, family, n, bits, "
            " deadlock, strategy, schedule, minimal_schedule, graph6) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            list(rows),
        )
        self._conn.commit()

    def trajectory_rows(
        self, campaign: str, generation: Optional[int] = None
    ) -> list[tuple]:
        """Trajectory rows for ``campaign`` (one generation or all),
        ordered deterministically."""
        query = (
            "SELECT campaign, generation, protocol, model, family, n, bits, "
            "deadlock, strategy, schedule, minimal_schedule, graph6 "
            "FROM trajectories WHERE campaign = ?"
        )
        params: list[Any] = [campaign]
        if generation is not None:
            query += " AND generation = ?"
            params.append(generation)
        query += " ORDER BY generation, protocol, model, family, n"
        return list(self._conn.execute(query, params))

    # -- reporting -----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Store-level summary for ``campaign status``."""
        per_campaign = dict(self._conn.execute(
            "SELECT COALESCE(campaign, '(none)'), COUNT(*) FROM results "
            "GROUP BY campaign ORDER BY campaign"
        ))
        generations = dict(self._conn.execute(
            "SELECT campaign, MAX(generation) FROM trajectories "
            "GROUP BY campaign ORDER BY campaign"
        ))
        return {
            "path": self.path,
            "salt": self.salt,
            "results": self.result_count(),
            "results_by_campaign": per_campaign,
            "frontiers": self.frontier_count(),
            "generations": generations,
            "session": {
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
            },
        }
