"""Persistent, resumable, sharded stress campaigns.

The paper's worst-case claims only become interesting at scale — across
many (protocol × model × instance-family) cells, across PRs.  This
package is the durable layer under every sweep consumer:

* :mod:`~repro.campaigns.store` — :class:`ResultStore`, a SQLite store
  keyed by deterministic task fingerprints (plan cell + code-version
  salt) with exact report round-trips and JSONL witness blobs.
* :mod:`~repro.campaigns.runner` — :class:`Campaign`: a named spec of
  cells, sharded over any backend, resumable (fingerprint hits are
  served from the store; an unchanged re-run is a pure cache read), and
  :func:`run_plan_with_store` for opportunistic reuse from
  ``verify_protocol(..., store=...)``.
* :mod:`~repro.campaigns.trajectories` — per-family extremal witness
  series across campaign generations, diffable and renderable
  (``repro campaign report``, ``tools/bench_report.py --campaign``).

Architecture rule: the store is the **only** cross-process, cross-run
shared state, and only the driving process touches it — backends stay
stateless, which is what keeps every future sharding/distribution
backend compatible.
"""

from .frontiers import task_cell_key
from .runner import (
    Campaign,
    CampaignCell,
    CampaignResult,
    CampaignSpec,
    CellResult,
    quick_campaign,
    run_plan_with_store,
    warm_smoke_campaign,
)
from .store import ResultStore, code_version_salt, task_fingerprint
from .trajectories import (
    TrajectoryPoint,
    diff_generations,
    render_trajectories,
    trajectory_points,
)

__all__ = [
    "Campaign",
    "CampaignCell",
    "CampaignResult",
    "CampaignSpec",
    "CellResult",
    "quick_campaign",
    "warm_smoke_campaign",
    "run_plan_with_store",
    "task_cell_key",
    "ResultStore",
    "code_version_salt",
    "task_fingerprint",
    "TrajectoryPoint",
    "diff_generations",
    "render_trajectories",
    "trajectory_points",
]
