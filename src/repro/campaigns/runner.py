"""Campaigns: named, persistent, resumable, sharded stress sweeps.

A :class:`CampaignSpec` names a set of **cells** — instance family ×
census protocol (its model and checker come from the registries) — and a
plan mode (``stress`` by default: exhaustive below the threshold, guided
adversary search above).  :class:`Campaign` lowers every cell to a
:class:`~repro.runtime.plan.ExecutionPlan`, fingerprints each task, and
executes **only the store misses** on any
:class:`~repro.runtime.backends.Backend` — the backend shards stateless
tasks exactly as before; the :class:`~repro.campaigns.store.ResultStore`
is the only shared state, touched only by the driving process through a
:class:`~repro.runtime.results.StoreBackedSink`.

The three guarantees campaigns are built around (pinned by
``tests/campaigns/``):

* **resume** — every executed outcome is committed the moment the
  backend yields it, so a killed ``campaign run`` restarts where it
  died and finishes with the same merged report;
* **purity** — an unchanged re-run executes zero tasks (every
  fingerprint hits) and produces a field-identical report;
* **trajectory** — each completed run appends one deterministic
  generation of extremal witnesses per (protocol, model, family, n)
  (see :mod:`repro.campaigns.trajectories`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Sequence

from ..analysis.checkers import default_checker
from ..core.models import MODELS_BY_NAME
from ..faults.spec import resolve_faults
from ..graphs.families import FAMILIES, family
from ..protocols.census import CENSUS_BY_KEY
from ..runtime.backends import Backend, SerialBackend
from ..runtime.plan import ExecutionPlan, ExecutionTask
from ..runtime.results import (
    KernelStatsSink,
    ResultSink,
    StoreBackedSink,
    VerificationReport,
)
from ..telemetry import KernelAccumulator, KernelStats, RunTelemetry
from .frontiers import task_cell_key
from .store import ResultStore
from .trajectories import record_generation

__all__ = [
    "CampaignCell",
    "CampaignSpec",
    "CellResult",
    "CampaignResult",
    "Campaign",
    "quick_campaign",
    "warm_smoke_campaign",
    "run_plan_with_store",
]


@dataclass(frozen=True)
class CampaignCell:
    """One (census protocol × instance family) block of a campaign."""

    protocol_key: str
    family: str
    sizes: tuple[int, ...]
    seeds: tuple[int, ...]
    #: Deadlocks count as executions, not failures — the Corollary 4
    #: setting, where deadlock witnesses *are* the measurement.
    allow_deadlock: bool = False
    #: Canonical fault-budget string (``"crash:1,loss:1"``); ``None``
    #: falls back to the spec-level default.  Requires stress mode.
    faults: Optional[str] = None

    def __post_init__(self) -> None:
        if self.protocol_key not in CENSUS_BY_KEY:
            known = ", ".join(sorted(CENSUS_BY_KEY))
            raise ValueError(
                f"unknown census protocol {self.protocol_key!r}; known: {known}"
            )
        if self.family not in FAMILIES:
            known = ", ".join(sorted(FAMILIES))
            raise ValueError(
                f"unknown instance family {self.family!r}; known: {known}"
            )
        if self.faults is not None:
            # Normalise eagerly so equal budgets always fingerprint
            # identically, and typos fail at spec construction.
            object.__setattr__(
                self, "faults", resolve_faults(self.faults).canonical()
            )

    def instances(self):
        """One instance per (size × seed), duplicates dropped.

        Seed-invariant families (e.g. odd cycles) collapse to one
        instance per size, exactly like the CLI sweep builder.  A size
        the family cannot sample (odd cycles at even ``n``, two-cliques
        at odd ``n``) raises a :class:`ValueError` naming the cell, so
        the caller sees which spec line to fix instead of a bare
        generator traceback.
        """
        cls = family(self.family)
        built = []
        for n in self.sizes:
            for seed in self.seeds:
                try:
                    built.append(cls.sample_in_class(n, seed))
                except ValueError as exc:
                    raise ValueError(
                        f"cell {self.protocol_key} x {self.family}: "
                        f"size {n} is invalid for this family ({exc})"
                    ) from exc
        return [g for i, g in enumerate(built) if g not in built[:i]]

    def build_plan(self, mode: str, exhaustive_threshold: int,
                   score: Optional[str] = None,
                   share_table: bool = False,
                   faults: Optional[str] = None) -> ExecutionPlan:
        entry = CENSUS_BY_KEY[self.protocol_key]
        return ExecutionPlan.build(
            entry.instantiate(),
            MODELS_BY_NAME[entry.model],
            self.instances(),
            mode=mode,
            checker=default_checker(self.protocol_key),
            exhaustive_threshold=exhaustive_threshold,
            allow_deadlock=self.allow_deadlock,
            keep_runs=False,
            score=score if mode == "stress" else None,
            share_table=share_table if mode == "stress" else False,
            faults=faults,
        )


@dataclass(frozen=True)
class CampaignSpec:
    """The durable identity of a campaign: name + cells + policy.

    ``score`` and ``share_table`` are the search-kernel knobs
    (primitive, so they participate in every search cell's fingerprint):
    a campaign run with a different badness hook, or with transposition
    sharing toggled, is different durable work.
    """

    name: str
    cells: tuple[CampaignCell, ...]
    mode: str = "stress"
    exhaustive_threshold: int = 5
    score: Optional[str] = None
    share_table: bool = False
    #: Spec-level default fault budget; cells override with their own
    #: ``faults`` (``None`` on a cell means "inherit this").
    faults: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in ("verify", "stress"):
            raise ValueError(
                f"campaign mode must be 'verify' or 'stress', got {self.mode!r}"
            )
        if not self.cells:
            raise ValueError("a campaign needs at least one cell")
        if (self.score is not None or self.share_table) and self.mode != "stress":
            raise ValueError(
                "score/share_table are search-kernel knobs; they only "
                "apply to stress campaigns"
            )
        if self.faults is not None:
            object.__setattr__(
                self, "faults", resolve_faults(self.faults).canonical()
            )
        if self.mode != "stress" and (
            self.faults is not None
            or any(cell.faults is not None for cell in self.cells)
        ):
            raise ValueError(
                "fault budgets only apply to stress campaigns"
            )

    def cell_faults(self, cell: CampaignCell) -> Optional[str]:
        """The effective fault budget for ``cell`` (cell overrides spec)."""
        return cell.faults if cell.faults is not None else self.faults

    def plans(self) -> Iterator[tuple[CampaignCell, ExecutionPlan]]:
        """Each cell lowered to its execution plan, in spec order."""
        for cell in self.cells:
            yield cell, cell.build_plan(
                self.mode, self.exhaustive_threshold,
                score=self.score, share_table=self.share_table,
                faults=self.cell_faults(cell),
            )


@dataclass
class CellResult:
    """One cell's merged report plus its cache accounting."""

    cell: CampaignCell
    report: VerificationReport
    tasks: int
    hits: int

    @property
    def executed(self) -> int:
        return self.tasks - self.hits


@dataclass
class CampaignResult:
    """Everything one :meth:`Campaign.run` produced."""

    name: str
    generation: int
    report: VerificationReport
    cells: list[CellResult] = field(default_factory=list)
    #: Folded deterministic kernel snapshot of the tasks *executed* this
    #: run (``None`` when everything was served from the store).
    #: Observation-only — defaulted so older constructions still work.
    kernel: Optional[KernelStats] = None

    @property
    def tasks(self) -> int:
        return sum(c.tasks for c in self.cells)

    @property
    def hits(self) -> int:
        return sum(c.hits for c in self.cells)

    @property
    def executed(self) -> int:
        return sum(c.executed for c in self.cells)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.tasks if self.tasks else 1.0

    @property
    def ok(self) -> bool:
        return self.report.ok

    def summary(self) -> str:
        return (
            f"campaign {self.name!r} generation {self.generation}: "
            f"{self.tasks} tasks, {self.hits} store hits, "
            f"{self.executed} executed "
            f"({self.hit_rate:.0%} cached) — {self.report.summary()}"
        )


def _run_tasks_with_store(
    tasks: Sequence[ExecutionTask],
    store: ResultStore,
    backend: Optional[Backend] = None,
    campaign: Optional[str] = None,
    telemetry: Optional[RunTelemetry] = None,
    kernel: Optional[KernelAccumulator] = None,
    warm_frontiers: bool = False,
) -> tuple[list[VerificationReport], int]:
    """Execute ``tasks`` through ``store``: misses run on ``backend`` and
    are committed as they stream; hits are deserialized.  Returns the
    per-task reports *in task order* plus the hit count.

    ``telemetry``/``kernel`` are pure observers layered over the sink
    chain (store commit first, then stats fold, then trace line) — the
    reports are field-identical with or without them.

    ``warm_frontiers`` seeds every executed search cell's transposition
    table from the store's persistent frontiers (current-salt rows for
    the cell's exact scope) and commits the cell's dirty rows back,
    parent-side, the moment its outcome streams out.  Report-invariant
    by construction — warm entries never change a witness, only the
    kernel steps spent finding it — so the fingerprints (and therefore
    the hit/miss split) are identical with the knob on or off.
    """
    backend = backend if backend is not None else SerialBackend()
    fingerprints = {task.index: store.fingerprint(task) for task in tasks}
    cached: dict[int, VerificationReport] = {}
    misses: list[ExecutionTask] = []
    for task in tasks:
        report = store.get(fingerprints[task.index])
        if report is None:
            misses.append(task)
        else:
            cached[task.index] = report
            if telemetry is not None:
                telemetry.record_hit(task.index, fingerprints[task.index])
    frontier_keys: Optional[dict[int, str]] = None
    if warm_frontiers:
        frontier_keys = {}
        warmed: list[ExecutionTask] = []
        for task in misses:
            if task.mode != "search":
                warmed.append(task)
                continue
            cell_key = task_cell_key(task)
            frontier_keys[task.index] = cell_key
            warmed.append(replace(
                task, frontiers=tuple(store.load_frontiers(cell_key))
            ))
        misses = warmed
    sink: ResultSink = StoreBackedSink(store, fingerprints, campaign=campaign,
                                       frontier_keys=frontier_keys)
    inner = sink
    if kernel is not None:
        sink = KernelStatsSink(sink, kernel)
    if telemetry is not None:
        sink = telemetry.sink(sink)
    # Drive the backend one outcome at a time: each add() commits before
    # the next outcome is awaited, which is the kill-resume guarantee.
    for outcome in backend.run(misses):
        sink.add(outcome)
    executed = {o.index: o.report for o in inner.result()}
    reports = []
    for task in tasks:
        report = cached.get(task.index)
        if report is None:
            report = executed[task.index]
        reports.append(report)
    return reports, len(cached)


def run_plan_with_store(
    plan: ExecutionPlan,
    store: ResultStore,
    backend: Optional[Backend] = None,
    campaign: Optional[str] = None,
    telemetry: Optional[RunTelemetry] = None,
    kernel: Optional[KernelAccumulator] = None,
    warm_frontiers: bool = False,
) -> VerificationReport:
    """Opportunistic store reuse for any checker-carrying plan.

    This is what ``verify_protocol(..., store=...)`` calls: the merged
    report is field-identical to ``plan.verification_report`` — hits are
    exact round-trips, misses execute normally — and every executed
    task becomes a future hit.
    """
    reports, _ = _run_tasks_with_store(
        plan.tasks, store, backend=backend, campaign=campaign,
        telemetry=telemetry, kernel=kernel, warm_frontiers=warm_frontiers,
    )
    merged = VerificationReport(
        "+".join(plan.protocol_names), "+".join(plan.model_names)
    )
    for report in reports:
        merged.merge(report)
    return merged


class Campaign:
    """A runnable campaign: spec + the run/resume/report machinery."""

    def __init__(self, spec: CampaignSpec) -> None:
        self.spec = spec

    def live_fingerprints(self, store: ResultStore) -> set[str]:
        """Fingerprints of every task the spec currently enumerates —
        the liveness set ``campaign gc`` keeps."""
        return {
            store.fingerprint(task)
            for _, plan in self.spec.plans()
            for task in plan.tasks
        }

    def live_frontier_cell_keys(self) -> set[str]:
        """Frontier cell keys of every search cell the spec currently
        enumerates — the liveness set ``gc_frontiers`` keeps.  Salt-free
        on purpose: stale-salt rows are swept by ``gc_frontiers``
        itself, since no future run can serve them."""
        return {
            task_cell_key(task)
            for _, plan in self.spec.plans()
            for task in plan.tasks
            if task.mode == "search"
        }

    def run(
        self,
        store: ResultStore,
        backend: Optional[Backend] = None,
        telemetry: Optional[RunTelemetry] = None,
        warm_frontiers: bool = False,
    ) -> CampaignResult:
        """Run (or resume, or replay from cache) the whole campaign.

        Cells execute in spec order, tasks in plan order; the merged
        report folds per-task reports in exactly that order, so any
        backend — and any hit/miss split — produces the identical
        result.  Completing the run appends one trajectory generation
        and (when any task executed) records the run's folded kernel
        snapshot in the store's meta table for ``campaign status``.
        """
        spec = self.spec
        overall = VerificationReport(spec.name, spec.mode)
        cell_results: list[CellResult] = []
        kernel = KernelAccumulator()
        for cell, plan in spec.plans():
            if telemetry is not None:
                telemetry.add_plan(plan)
            reports, hits = _run_tasks_with_store(
                plan.tasks, store, backend=backend, campaign=spec.name,
                telemetry=telemetry, kernel=kernel,
                warm_frontiers=warm_frontiers,
            )
            merged = VerificationReport(
                "+".join(plan.protocol_names), "+".join(plan.model_names)
            )
            for report in reports:
                merged.merge(report)
                overall.merge(report)
            cell_results.append(
                CellResult(cell, merged, tasks=len(plan.tasks), hits=hits)
            )
        generation = record_generation(
            store, spec, [(c.cell, c.report) for c in cell_results]
        )
        store.record_kernel_summary(spec.name, kernel.kernel)
        return CampaignResult(
            name=spec.name,
            generation=generation,
            report=overall,
            cells=cell_results,
            kernel=kernel.kernel,
        )


def quick_campaign(name: str = "quick") -> CampaignSpec:
    """The built-in smoke campaign (CLI ``campaign run --quick``, CI,
    experiment E20): one exhaustive BUILD cell (two seeded instances)
    plus the Corollary 4 odd-cycle cell whose interesting output is a
    deadlock witness."""
    return CampaignSpec(
        name=name,
        cells=(
            CampaignCell(
                protocol_key="build-degenerate",
                family="degenerate2",
                sizes=(4,),
                seeds=(0, 1),
            ),
            CampaignCell(
                protocol_key="bfs-bipartite-async",
                family="odd-cycle-probe",
                sizes=(5,),
                seeds=(0,),
                allow_deadlock=True,
            ),
        ),
        mode="stress",
        exhaustive_threshold=5,
    )


def warm_smoke_campaign(name: str = "warm-smoke") -> CampaignSpec:
    """The warm-frontier smoke campaign (CI, tests): one genuinely
    *searched* cell — an n=6 asynchronous EOB-BFS instance above the
    exhaustive threshold — so a ``--warm-frontiers`` run exercises the
    full store → preload → prune → export loop.  Small enough that
    every portfolio search completes within its step budget, which is
    the precondition for the warm run's merged report being
    byte-identical to the cold run's (see ROADMAP "Search kernel")."""
    return CampaignSpec(
        name=name,
        cells=(
            CampaignCell(
                protocol_key="bfs-bipartite-async",
                family="even-odd-bipartite",
                sizes=(6,),
                seeds=(0,),
            ),
        ),
        mode="stress",
        exhaustive_threshold=5,
    )
