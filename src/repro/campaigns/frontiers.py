"""Persistent cross-run transposition frontiers: the codec layer.

A warm-frontier campaign run persists what its branch-and-bound and
deadlock sweeps learned — exact completion frontiers, deadlock-free
facts, admissible truncation bounds — keyed by *configuration*, so the
next run over the same cell starts from solved subtrees instead of
re-expanding them.  This module owns the boundary representation:

* **cell keys** (:func:`cell_key` / :func:`task_cell_key`): the scope a
  frontier row is valid in — exactly the ``(graph, protocol, model,
  bit budget, fault budget)`` tuple ``TranspositionTable.bind`` pins.
  Rows never cross cells; the code-version salt rides in its own store
  column so a source edit silently serves zero rows (never wrong ones).
* **config-key codec** (:func:`encode_key` / :func:`decode_key`):
  lossless tagged-JSON round trip of
  :meth:`~repro.core.execution.ExecutionState.config_key` tuples, whose
  components are ints, ``None``, nested tuples and frozensets of ints.
  The stored row key is the process-stable
  :func:`~repro.core.batch.config_key_digest` (hex), but the full key
  payload travels alongside so loading reconstructs real table keys —
  digests alone could not repopulate a table.
* **entry codec** (:func:`encode_entry` / :func:`decode_entry`):
  :class:`~repro.adversaries.transposition.TableEntry` round trip,
  including bound-only entries (truncated subtrees with no frontier).
  The ``warm`` flag deliberately does not persist: it marks provenance
  within one run and is re-applied by ``TranspositionTable.preload``.

Determinism: :func:`encode_rows` sorts by digest, so the stored order —
and therefore every load order — is independent of dict/set iteration
order (``PYTHONHASHSEED``-stable, pinned by tests).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterable, Optional

from ..adversaries.transposition import (
    Completion,
    TableEntry,
    TranspositionTable,
)
from ..core.batch import config_key_digest
from ..graphs.codec import to_graph6
from ..graphs.labeled_graph import LabeledGraph

__all__ = [
    "cell_key",
    "task_cell_key",
    "encode_key",
    "decode_key",
    "encode_entry",
    "decode_entry",
    "encode_rows",
    "decode_rows",
]


# ----------------------------------------------------------------------
# cell keys
# ----------------------------------------------------------------------

def _jsonable(value: Any) -> Any:
    """Tuples/frozensets → lists, recursively (for canonical JSON)."""
    if isinstance(value, frozenset):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    return value


def cell_key(graph: LabeledGraph, protocol: Any, model_name: str,
             bit_budget: Optional[int], faults: Optional[str]) -> str:
    """Deterministic scope key of one search cell.

    Mirrors ``TranspositionTable.bind``: the graph (graph6 is lossless),
    the protocol's class-plus-primitive-params identity token, the model
    name, the bit budget and the canonical fault-budget string.  The
    code-version salt is *not* mixed in — it lives in its own store
    column, so ``campaign gc`` can still see which cell a stale row
    belonged to.
    """
    spec = {
        "graph": to_graph6(graph),
        "protocol": _jsonable(TranspositionTable._component_token(protocol)),
        "model": model_name,
        "bit_budget": bit_budget,
        "faults": faults,
    }
    canonical = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def task_cell_key(task: Any) -> str:
    """The frontier cell key of one search :class:`ExecutionTask`."""
    return cell_key(task.graph, task.protocol, task.model_name,
                    task.bit_budget, task.faults)


# ----------------------------------------------------------------------
# config-key codec
# ----------------------------------------------------------------------

def _encode_component(value: Any) -> Any:
    if value is None or isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, tuple):
        return ["t"] + [_encode_component(v) for v in value]
    if isinstance(value, frozenset):
        # Config-key frozensets hold ints only; sorting makes the
        # payload hash-seed independent.
        return ["f"] + sorted(value)
    raise TypeError(
        f"cannot store config-key component of type "
        f"{type(value).__qualname__!r}: {value!r}"
    )


def _decode_component(value: Any) -> Any:
    if not isinstance(value, list):
        return value
    if not value or value[0] not in ("t", "f"):
        raise ValueError(f"malformed stored config key: {value!r}")
    tag, rest = value[0], value[1:]
    if tag == "t":
        return tuple(_decode_component(v) for v in rest)
    return frozenset(rest)


def encode_key(key: tuple) -> str:
    """One config key as compact tagged JSON (lossless)."""
    return json.dumps(_encode_component(key), separators=(",", ":"))


def decode_key(payload: str) -> tuple:
    """Inverse of :func:`encode_key`."""
    return _decode_component(json.loads(payload))


# ----------------------------------------------------------------------
# entry codec
# ----------------------------------------------------------------------

def encode_entry(entry: TableEntry) -> str:
    """One table entry as compact JSON; bound-only entries included."""
    return json.dumps({
        "completions": [
            [c.deadlock, c.max_bits, c.total_bits, list(c.suffix)]
            for c in entry.completions
        ],
        "exact": entry.exact,
        "deadlock_free": entry.deadlock_free,
        "bound": None if entry.bound is None else list(entry.bound),
    }, separators=(",", ":"))


def decode_entry(payload: str) -> TableEntry:
    """Inverse of :func:`encode_entry` (``warm`` is left ``False``;
    ``TranspositionTable.preload`` marks served entries)."""
    data = json.loads(payload)
    bound = data["bound"]
    return TableEntry(
        completions=tuple(
            Completion(deadlock=d, max_bits=b, total_bits=t,
                       suffix=tuple(suffix))
            for d, b, t, suffix in data["completions"]
        ),
        exact=data["exact"],
        deadlock_free=data["deadlock_free"],
        bound=None if bound is None else (bound[0], bound[1], bound[2]),
    )


# ----------------------------------------------------------------------
# row batches (the store's wire format)
# ----------------------------------------------------------------------

def encode_rows(
    rows: "Iterable[tuple[tuple, TableEntry]]",
) -> "list[tuple[str, str, str]]":
    """``(key, entry)`` pairs → ``(digest_hex, key_json, entry_json)``
    rows, sorted by digest so storage order never depends on set
    iteration order."""
    encoded = [
        (config_key_digest(key).hex(), encode_key(key), encode_entry(entry))
        for key, entry in rows
    ]
    encoded.sort(key=lambda row: row[0])
    return encoded


def decode_rows(
    rows: "Iterable[tuple[str, str]]",
) -> "list[tuple[tuple, TableEntry]]":
    """``(key_json, entry_json)`` rows → ``(key, entry)`` pairs ready
    for ``TranspositionTable.preload``."""
    return [
        (decode_key(key_json), decode_entry(entry_json))
        for key_json, entry_json in rows
    ]
