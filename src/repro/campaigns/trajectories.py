"""Cross-run witness trajectories: the campaign subsystem's output.

A single stress sweep answers "how bad can the adversary be *today*";
what the ROADMAP asks for is the *series* — per instance family, how the
worst known bits/deadlock witnesses evolve across campaign generations
(and therefore across PRs, since the store persists).  Every completed
:meth:`~repro.campaigns.runner.Campaign.run` appends one **generation**:
for each (protocol, model, family, n) key, the extremal witness of that
run — a deadlock if any cell found one (deadlock outranks any finite
message, matching :func:`repro.adversaries.witness_rank`), otherwise the
bits maximum, both with their raw and minimised schedules.

Rows contain no timestamps or other nondeterminism: a killed-and-resumed
campaign records *exactly* the rows the uninterrupted run would have —
the property the acceptance tests pin.

:func:`render_trajectories` is the human view (``repro campaign
report`` and ``tools/bench_report.py --campaign``);
:func:`diff_generations` is the machine view of what moved between two
generations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from ..graphs.codec import to_graph6
from ..runtime.results import VerificationReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runner import CampaignCell, CampaignSpec
    from .store import ResultStore

__all__ = [
    "TrajectoryPoint",
    "extremal_points",
    "record_generation",
    "trajectory_points",
    "diff_generations",
    "render_trajectories",
]


@dataclass(frozen=True)
class TrajectoryPoint:
    """One extremal record: the worst known witness for one key."""

    campaign: str
    generation: int
    protocol: str
    model: str
    family: str
    n: int
    bits: int
    deadlock: bool
    strategy: str
    schedule: tuple[int, ...]
    minimal_schedule: Optional[tuple[int, ...]]
    graph6: str

    @property
    def key(self) -> tuple[str, str, str, int]:
        return (self.protocol, self.model, self.family, self.n)

    @property
    def outcome(self) -> str:
        return "DEADLOCK" if self.deadlock else f"{self.bits} bits"


def extremal_points(
    campaign: str,
    generation: int,
    cells: Iterable[tuple["CampaignCell", VerificationReport]],
) -> list[TrajectoryPoint]:
    """Reduce per-cell reports to one extremal point per key.

    Witness-carrying (stress) cells contribute their worst witness per
    instance size; witness-free (verify) cells fall back to the bits
    maxima in ``max_bits_by_n`` with an empty schedule, so campaigns in
    either mode leave a trajectory.
    """
    points: dict[tuple, TrajectoryPoint] = {}

    def offer(point: TrajectoryPoint) -> None:
        current = points.get(point.key)
        if current is None or (point.deadlock, point.bits) > (
            current.deadlock, current.bits
        ):
            points[point.key] = point

    for cell, report in cells:
        for witness in report.witnesses:
            offer(TrajectoryPoint(
                campaign=campaign,
                generation=generation,
                protocol=report.protocol_name,
                model=witness.model_name,
                family=cell.family,
                n=witness.graph.n,
                bits=witness.bits,
                deadlock=witness.deadlock,
                strategy=witness.strategy,
                schedule=witness.schedule,
                minimal_schedule=witness.minimal_schedule,
                graph6=to_graph6(witness.graph),
            ))
        if not report.witnesses:
            for n, bits in report.max_bits_by_n.items():
                offer(TrajectoryPoint(
                    campaign=campaign,
                    generation=generation,
                    protocol=report.protocol_name,
                    model=report.model_name,
                    family=cell.family,
                    n=n,
                    bits=bits,
                    deadlock=False,
                    strategy="report",
                    schedule=(),
                    minimal_schedule=None,
                    graph6="",
                ))
    return sorted(points.values(), key=lambda p: p.key)


def _point_to_row(point: TrajectoryPoint) -> tuple:
    return (
        point.campaign,
        point.generation,
        point.protocol,
        point.model,
        point.family,
        point.n,
        point.bits,
        int(point.deadlock),
        point.strategy,
        json.dumps(list(point.schedule)),
        (None if point.minimal_schedule is None
         else json.dumps(list(point.minimal_schedule))),
        point.graph6,
    )


def _point_from_row(row: tuple) -> TrajectoryPoint:
    (campaign, generation, protocol, model, family, n, bits, deadlock,
     strategy, schedule, minimal, graph6) = row
    return TrajectoryPoint(
        campaign=campaign,
        generation=generation,
        protocol=protocol,
        model=model,
        family=family,
        n=n,
        bits=bits,
        deadlock=bool(deadlock),
        strategy=strategy,
        schedule=tuple(json.loads(schedule)),
        minimal_schedule=None if minimal is None else tuple(json.loads(minimal)),
        graph6=graph6,
    )


def record_generation(
    store: "ResultStore",
    spec: "CampaignSpec",
    cells: Iterable[tuple["CampaignCell", VerificationReport]],
) -> int:
    """Append one generation of extremal points; returns its number."""
    generation = store.latest_generation(spec.name) + 1
    points = extremal_points(spec.name, generation, cells)
    store.add_trajectory_rows(_point_to_row(p) for p in points)
    return generation


def trajectory_points(
    store: "ResultStore",
    campaign: str,
    generation: Optional[int] = None,
) -> list[TrajectoryPoint]:
    """Stored points for a campaign (one generation, or the full series)."""
    return [
        _point_from_row(row)
        for row in store.trajectory_rows(campaign, generation)
    ]


def diff_generations(
    store: "ResultStore", campaign: str, old: int, new: int
) -> list[str]:
    """Human-readable deltas between two generations (empty = identical
    extremal records, the unchanged-re-run expectation)."""
    before = {p.key: p for p in trajectory_points(store, campaign, old)}
    after = {p.key: p for p in trajectory_points(store, campaign, new)}
    lines: list[str] = []
    for key in sorted(set(before) | set(after)):
        a, b = before.get(key), after.get(key)
        label = "{}/{} {} n={}".format(*key)
        if a is None:
            lines.append(f"+ {label}: {b.outcome} (new key)")
        elif b is None:
            lines.append(f"- {label}: {a.outcome} (key dropped)")
        elif (a.bits, a.deadlock, a.schedule, a.minimal_schedule) != (
            b.bits, b.deadlock, b.schedule, b.minimal_schedule
        ):
            lines.append(f"~ {label}: {a.outcome} -> {b.outcome}")
    return lines


def render_trajectories(
    store: "ResultStore", campaign: Optional[str] = None
) -> str:
    """ASCII view of every recorded series (one campaign or all)."""
    names = [campaign] if campaign is not None else store.campaigns()
    lines: list[str] = []
    for name in names:
        points = trajectory_points(store, name)
        lines.append(f"campaign {name!r}: "
                     f"{store.latest_generation(name)} generation(s)")
        if not points:
            lines.append("  (no trajectory recorded)")
            continue
        header = (f"  {'gen':>4} {'protocol':<24} {'model':<9} "
                  f"{'family':<20} {'n':>4} {'worst':>10} "
                  f"{'strategy':<20} schedule (minimal)")
        lines.append(header)
        lines.append("  " + "-" * (len(header) + 8))
        for point in sorted(points, key=lambda p: (p.generation, p.key)):
            schedule = ",".join(map(str, point.schedule)) or "-"
            if point.minimal_schedule is not None and (
                point.minimal_schedule != point.schedule
            ):
                schedule += " (" + ",".join(map(str, point.minimal_schedule)) + ")"
            if len(schedule) > 44:
                schedule = schedule[:41] + "..."
            lines.append(
                f"  {point.generation:>4} {point.protocol:<24} "
                f"{point.model:<9} {point.family:<20} {point.n:>4} "
                f"{point.outcome:>10} {point.strategy:<20} {schedule}"
            )
    return "\n".join(lines) if lines else "(no campaigns recorded)"
