"""The paper's computing-power lattice (Section 5, Theorem 4) and the
Table 2 classification data.

Two orthogonal resources:

* **synchronisation power** — the chain
  ``P_SIMASYNC[f] ⊊ P_SIMSYNC[f] ⊊ P_ASYNC[f] ⊆ P_SYNC[f]``
  (strictness of the last inclusion is Open Problem 3);
* **message size** — ``P_SIMASYNC[f] ⊄ P_SYNC[g]`` whenever
  ``g = o(f)`` (Theorem 9): more bits in the weakest model can beat
  fewer bits in the strongest.

This module records the paper's claims (each cell of Table 2, each
separation with its witness problem) in data structures the analysis
layer renders and the test-suite cross-checks against simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.models import ALL_MODELS, ModelSpec

__all__ = [
    "CellClaim",
    "ProblemRow",
    "TABLE2_ROWS",
    "Separation",
    "SEPARATIONS",
]


@dataclass(frozen=True)
class CellClaim:
    """One (problem, model) cell of Table 2.

    ``status``: ``"yes"`` (solvable with O(log n)-bit messages),
    ``"no"`` (unsolvable with o(n)-bit messages), ``"open"`` (the
    paper's '?'), or ``"yes*"`` (claimed in the paper without an explicit
    protocol — the TRIANGLE upper-bound cells; see DESIGN.md §2).

    ``basis``: where the claim comes from / how this repo verifies it.
    """

    status: str
    basis: str


@dataclass(frozen=True)
class ProblemRow:
    """One row of Table 2."""

    key: str
    description: str
    cells: dict[str, CellClaim]

    def cell(self, model: ModelSpec | str) -> CellClaim:
        name = model if isinstance(model, str) else model.name
        return self.cells[name]


TABLE2_ROWS: tuple[ProblemRow, ...] = (
    ProblemRow(
        key="BUILD k-degenerate",
        description="reconstruct the adjacency matrix of a degeneracy-<=k graph",
        cells={
            "SIMASYNC": CellClaim("yes", "Theorem 2: power-sum protocol, verified by simulation"),
            "SIMSYNC": CellClaim("yes", "Lemma 4 lift of Theorem 2, verified by simulation"),
            "ASYNC": CellClaim("yes", "Lemma 4 lift of Theorem 2, verified by simulation"),
            "SYNC": CellClaim("yes", "Lemma 4 lift of Theorem 2, verified by simulation"),
        },
    ),
    ProblemRow(
        key="rooted MIS",
        description="output a maximal independent set containing the designated node x",
        cells={
            "SIMASYNC": CellClaim("no", "Theorem 6 reduction to BUILD + Lemma 3; transformer executable"),
            "SIMSYNC": CellClaim("yes", "Theorem 5 greedy protocol, verified by simulation"),
            "ASYNC": CellClaim("yes", "Lemma 4 sequential lift of Theorem 5, verified"),
            "SYNC": CellClaim("yes", "Lemma 4 sequential lift of Theorem 5, verified"),
        },
    ),
    ProblemRow(
        key="TRIANGLE",
        description="decide whether the graph contains a triangle",
        cells={
            "SIMASYNC": CellClaim("no", "Theorem 3 reduction (Figure 1 gadget) + Lemma 3; transformer executable"),
            "SIMSYNC": CellClaim("yes*", "claimed after Corollary 2 with no protocol given; verified here on bounded-degeneracy inputs via Theorem 2"),
            "ASYNC": CellClaim("yes*", "follows from the SIMSYNC cell via Lemma 4; same caveat"),
            "SYNC": CellClaim("yes*", "follows from the SIMSYNC cell via Lemma 4; same caveat"),
        },
    ),
    ProblemRow(
        key="EOB-BFS",
        description="BFS forest of an even-odd-bipartite graph (negative answer otherwise)",
        cells={
            "SIMASYNC": CellClaim("no", "implied by the SIMSYNC 'no' (Lemma 4)"),
            "SIMSYNC": CellClaim("no", "Theorem 8 reduction (Figure 2 gadget) + Lemma 3; scheme executable"),
            "ASYNC": CellClaim("yes", "Theorem 7 layer-certificate protocol, verified by simulation"),
            "SYNC": CellClaim("yes", "Lemma 4 freeze lift of Theorem 7, verified"),
        },
    ),
    ProblemRow(
        key="BFS",
        description="BFS forest of an arbitrary graph",
        cells={
            "SIMASYNC": CellClaim("open", "paper marks '?'"),
            "SIMSYNC": CellClaim("open", "paper marks '?'"),
            "ASYNC": CellClaim("open", "Open Problem 3: conjectured impossible for o(n)"),
            "SYNC": CellClaim("yes", "Theorem 10 d0-corrected certificates, verified by simulation"),
        },
    ),
)


@dataclass(frozen=True)
class Separation:
    """A strict separation between two points of the lattice."""

    weaker: str
    stronger: str
    witness: str
    source: str


SEPARATIONS: tuple[Separation, ...] = (
    Separation("SIMASYNC[f]", "SIMSYNC[f]", "rooted MIS", "Theorems 5+6 (Corollary 2)"),
    Separation("SIMSYNC[f]", "ASYNC[f]", "EOB-BFS", "Theorems 7+8 (Corollary 3)"),
    Separation("SYNC[g]", "SIMASYNC[f], g=o(f)", "SUBGRAPH_f", "Theorem 9 (orthogonality of message size)"),
)
