"""Model hierarchy: Lemma 4 adapters and the Table 2 / Theorem 4 lattice."""

from .adapters import FreezeAtActivation, SequentialLift, lift
from .lattice import SEPARATIONS, TABLE2_ROWS, CellClaim, ProblemRow, Separation

__all__ = [
    "FreezeAtActivation",
    "SequentialLift",
    "lift",
    "SEPARATIONS",
    "TABLE2_ROWS",
    "CellClaim",
    "ProblemRow",
    "Separation",
]
