"""Lemma 4's inclusions as protocol adapters.

``P_SIMASYNC[f] ⊆ P_SIMSYNC[f] ⊆ P_ASYNC[f] ⊆ P_SYNC[f]`` is proven by
transforming protocols; this module is those transformations:

* SIMASYNC protocols run *unchanged* in every model: their messages
  ignore the whiteboard, so freezing vs recomputing is irrelevant, and
  eager activation is a legal free-model behaviour.
* SIMSYNC → ASYNC (:class:`SequentialLift`): fix the order
  ``v_1, ..., v_n`` — node ``i`` activates only once ``1..i-1`` have
  written, so its frozen message equals the SIMSYNC message under that
  particular adversary, and a correct SIMSYNC protocol is correct under
  *every* adversary, including this one.  Costs ``log n`` extra bits (an
  explicit sender tag).
* ASYNC → SYNC (:class:`FreezeAtActivation`): a synchronous node *may*
  recompute its message but is never obliged to; the adapter caches the
  message computed at activation, making the asynchronous behaviour a
  special case of the synchronous one.

:func:`lift` dispatches on the (designed-for, target) pair.
"""

from __future__ import annotations

from typing import Any

from ..encoding.bits import Payload
from ..core.models import ALL_MODELS, ModelSpec, MODELS_BY_NAME, at_most_as_strong
from ..core.protocol import NodeView, Protocol
from ..core.whiteboard import BoardView

__all__ = ["SequentialLift", "FreezeAtActivation", "lift"]

_SEQ = "SEQ"


class SequentialLift(Protocol):
    """Run a SIMSYNC protocol in a free model by imposing the identifier
    order (the Lemma 4 ``SIMSYNC ⊆ ASYNC`` construction).

    Messages are wrapped as ``("SEQ", id, inner_message)`` so that nodes
    can tell *who* has written purely from payloads, as the model
    requires.
    """

    def __init__(self, inner: Protocol) -> None:
        self.inner = inner.fresh()
        self.name = f"seq-lift({inner.name})"
        self.designed_for = "ASYNC"

    def fresh(self) -> "SequentialLift":
        return SequentialLift(self.inner)

    @staticmethod
    def _writers(board: BoardView) -> set[int]:
        return {payload[1] for payload in board}

    @staticmethod
    def _inner_board(board: BoardView) -> BoardView:
        return BoardView(tuple(payload[2] for payload in board))

    def wants_to_activate(self, view: NodeView) -> bool:
        writers = self._writers(view.board)
        return all(j in writers for j in range(1, view.node))

    def message(self, view: NodeView) -> Payload:
        inner_view = NodeView(
            view.node, view.neighbors, view.n, self._inner_board(view.board)
        )
        return (_SEQ, view.node, self.inner.message(inner_view))

    def output(self, board: BoardView, n: int) -> Any:
        return self.inner.output(self._inner_board(board), n)


class FreezeAtActivation(Protocol):
    """Run an ASYNC-designed protocol under SYNC semantics by caching the
    message computed when the node activates (Lemma 4's
    ``ASYNC ⊆ SYNC``: synchronous nodes simply decline to change their
    minds).

    Stateful per execution — :meth:`fresh` returns a clean instance.
    """

    def __init__(self, inner: Protocol) -> None:
        self.inner = inner.fresh()
        self.name = f"freeze({inner.name})"
        self.designed_for = "SYNC"
        self._cache: dict[int, Payload] = {}

    def fresh(self) -> "FreezeAtActivation":
        return FreezeAtActivation(self.inner)

    def wants_to_activate(self, view: NodeView) -> bool:
        if self.inner.wants_to_activate(view):
            # Freeze now: this is the board the node activated on.
            if view.node not in self._cache:
                self._cache[view.node] = self.inner.message(view)
            return True
        return False

    def message(self, view: NodeView) -> Payload:
        if view.node in self._cache:
            return self._cache[view.node]
        # Simultaneous target models activate everyone without consulting
        # wants_to_activate; freeze on first call instead.
        payload = self.inner.message(view)
        self._cache[view.node] = payload
        return payload

    def output(self, board: BoardView, n: int) -> Any:
        return self.inner.output(board, n)


def lift(protocol: Protocol, target: ModelSpec | str) -> Protocol:
    """Adapt ``protocol`` (tagged with ``designed_for``) to run under
    ``target`` model semantics, following the Lemma 4 chain.

    Raises
    ------
    ValueError
        If the target model is *weaker* than the protocol's design model
        (Lemma 4 only goes upward; the paper's separations show the
        downward direction is impossible in general).
    """
    target_spec = MODELS_BY_NAME[target] if isinstance(target, str) else target
    source_spec = MODELS_BY_NAME[protocol.designed_for]
    if not at_most_as_strong(source_spec, target_spec):
        raise ValueError(
            f"cannot lift a {source_spec.name} protocol down to {target_spec.name}"
        )
    if source_spec.name == "SIMASYNC":
        return protocol  # runs unchanged everywhere
    if source_spec == target_spec:
        return protocol
    if source_spec.name == "SIMSYNC":
        # SIMSYNC -> SIMSYNC handled above; ASYNC and SYNC both get the
        # sequential lift (under SYNC its recomputed messages coincide
        # with the frozen ones because activation is single-file).
        return SequentialLift(protocol)
    if source_spec.name == "ASYNC":
        return FreezeAtActivation(protocol)
    raise AssertionError("unreachable")
