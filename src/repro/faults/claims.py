"""Machine-checking of census fault claims.

A census entry may claim robustness under a fault budget
(:attr:`~repro.protocols.census.ProtocolEntry.fault_claims`): the claim
``"crash:1"`` asserts *liveness* — on the protocol's claim fixture (a
registered instance family at small, exhaustively enumerable sizes), no
adversary interleaving of at most that many faults with the schedule can
drive an execution into deadlock.  This module turns those strings into
a stress campaign and exact verdicts:

* every ``(protocol, claim)`` pair becomes one
  :class:`~repro.campaigns.runner.CampaignCell` with ``faults=claim``
  and ``allow_deadlock=True``, sized *below* the exhaustive threshold —
  the cell enumerates the entire joint fault × schedule space, so a
  verdict is a theorem about the fixture, not a search result;
* a claim **holds** when no enumerated execution deadlocks, and is
  **violated** when one does — the violation is returned as the cell's
  recorded deadlock witness, replayable bit-for-bit and ddmin-minimised
  like every other witness in the repo.

Wrong *outputs* under faults (a lossy write starving a decoder) are
deliberately not claim violations: claims are about liveness only, and
output corruption is already surfaced by the ordinary checker path.

This module imports the campaign layer, so it must be imported as
``repro.faults.claims`` — never re-exported from :mod:`repro.faults`
(the core engine imports that package).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..campaigns.runner import Campaign, CampaignCell, CampaignSpec
from ..campaigns.store import ResultStore
from ..protocols.census import CENSUS
from ..runtime.results import WitnessRecord

__all__ = [
    "CLAIM_FIXTURES",
    "ClaimVerdict",
    "claim_cells",
    "claim_spec",
    "verify_claims",
]

#: Per-protocol claim fixture: ``(family, sizes, seeds)``.  Sizes must
#: stay at or below the claim campaign's exhaustive threshold so every
#: verdict is exact; the hygiene test pins that every census entry with
#: ``fault_claims`` has a fixture here.
CLAIM_FIXTURES: dict[str, tuple[str, tuple[int, ...], tuple[int, ...]]] = {
    "build-degenerate": ("degenerate2", (4,), (0, 1)),
    "eob-bfs": ("even-odd-bipartite", (4, 5), (0,)),
}

#: Every claim cell is exhaustively enumerated: the threshold dominates
#: all fixture sizes (asserted in claim_spec), so verdicts are exact.
CLAIM_THRESHOLD = 5


@dataclass
class ClaimVerdict:
    """One census fault claim, checked exhaustively on its fixture."""

    protocol_key: str
    claim: str
    family: str
    sizes: tuple[int, ...]
    holds: bool
    #: The recorded deadlock witnesses refuting the claim (empty when it
    #: holds); each replays bit-for-bit and carries a ddmin-minimised
    #: forcing schedule.
    witnesses: list[WitnessRecord] = field(default_factory=list)

    @property
    def violated(self) -> bool:
        return not self.holds

    def summary(self) -> str:
        verdict = "HOLDS" if self.holds else "VIOLATED"
        sizes = ",".join(str(n) for n in self.sizes)
        line = (
            f"{self.protocol_key:<20} {self.claim:<16} "
            f"{self.family} n={{{sizes}}}  {verdict}"
        )
        if self.violated:
            w = self.witnesses[0]
            schedule = w.minimal_schedule or w.schedule
            line += f"  (deadlock schedule {schedule} on n={w.graph.n})"
        return line


def claim_cells(keys: Optional[list[str]] = None) -> tuple[CampaignCell, ...]:
    """One cell per (census protocol × fault claim), in census order.

    ``keys`` restricts to specific protocols; a census entry claiming
    faults without a registered fixture raises so the table and this
    module cannot drift apart.
    """
    cells = []
    for entry in CENSUS:
        if not entry.fault_claims:
            continue
        if keys is not None and entry.key not in keys:
            continue
        if entry.key not in CLAIM_FIXTURES:
            raise ValueError(
                f"census entry {entry.key!r} declares fault claims but "
                "has no CLAIM_FIXTURES entry"
            )
        family, sizes, seeds = CLAIM_FIXTURES[entry.key]
        for claim in entry.fault_claims:
            cells.append(CampaignCell(
                protocol_key=entry.key,
                family=family,
                sizes=sizes,
                seeds=seeds,
                # Deadlocks are the measurement, not failures — the
                # verdict reads them off the witness records.
                allow_deadlock=True,
                faults=claim,
            ))
    return tuple(cells)


def claim_spec(name: str = "fault-claims",
               keys: Optional[list[str]] = None) -> CampaignSpec:
    """The claim-checking campaign: exhaustive-only stress cells."""
    cells = claim_cells(keys)
    if not cells:
        raise ValueError("no census entry declares fault claims"
                         if keys is None else
                         f"no fault claims among protocols {keys!r}")
    for cell in cells:
        if max(cell.sizes) > CLAIM_THRESHOLD:
            raise ValueError(
                f"claim fixture for {cell.protocol_key!r} exceeds the "
                f"exhaustive threshold ({cell.sizes} > {CLAIM_THRESHOLD}); "
                "claim verdicts must be exact"
            )
    return CampaignSpec(
        name=name,
        cells=cells,
        mode="stress",
        exhaustive_threshold=CLAIM_THRESHOLD,
    )


def verify_claims(
    store: Optional[ResultStore] = None,
    backend=None,
    keys: Optional[list[str]] = None,
    name: str = "fault-claims",
) -> list[ClaimVerdict]:
    """Check every census fault claim; one exact verdict per claim.

    With a ``store``, verdict cells cache and resume like any campaign
    (an unchanged re-run executes zero tasks); without one the check
    runs against a throwaway in-memory store.
    """
    spec = claim_spec(name=name, keys=keys)
    owned = store is None
    if owned:
        store = ResultStore(":memory:")
    try:
        result = Campaign(spec).run(store, backend=backend)
    finally:
        if owned:
            store.close()
    verdicts = []
    for cell_result in result.cells:
        cell = cell_result.cell
        deadlocks = [
            w for w in cell_result.report.witnesses if w.deadlock
        ]
        verdicts.append(ClaimVerdict(
            protocol_key=cell.protocol_key,
            claim=cell.faults,
            family=cell.family,
            sizes=cell.sizes,
            holds=not deadlocks,
            witnesses=deadlocks,
        ))
    return verdicts
