"""Fault models layered on the reliable whiteboard semantics.

Only :mod:`.spec` is re-exported eagerly: it is stdlib-only, so the core
execution engine can depend on this package without cycles.
:mod:`repro.faults.claims` (census fault-claim verification) imports the
campaign layer and must be imported as a module, never from here.
"""

from .spec import (
    NO_FAULTS,
    FaultSpec,
    crash_event,
    decode_choice,
    describe_choice,
    dup_event,
    loss_event,
    resolve_faults,
)

__all__ = [
    "FaultSpec",
    "NO_FAULTS",
    "resolve_faults",
    "crash_event",
    "loss_event",
    "dup_event",
    "decode_choice",
    "describe_choice",
]
