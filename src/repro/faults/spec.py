"""Fault budgets and the integer fault-event codec.

The paper's whiteboard models assume perfectly reliable nodes and
writes.  A :class:`FaultSpec` relaxes that with three adversary-chosen
fault budgets, layered *orthogonally* on any
:class:`~repro.core.models.ModelSpec`:

* **crash-stop** (``max_crashes``) — a node halts permanently at an
  adversary-chosen step; it never writes or activates again, and in
  asynchronous models its pending frozen message is discarded;
* **lossy writes** (``max_losses``) — a scheduled write is dropped
  before reaching the board: the writer terminates (it believes it
  wrote) but no entry appears;
* **duplicated writes** (``max_duplications``) — a scheduled write is
  applied twice: two identical board entries, doubling the total-bits
  accounting while leaving the max-message accounting untouched.

Fault *events* ride inside ordinary adversary schedules as negative
integers, parameterised by the instance size ``n`` (node writes stay
the positive identifiers ``1..n``):

========  ==================  =======================
event     encoding            decoded as
========  ==================  =======================
write v   ``v``               ``("write", v)``
crash v   ``-v``              ``("crash", v)``
loss v    ``-(n + v)``        ``("loss", v)``
dup v     ``-(2n + v)``       ``("dup", v)``
========  ==================  =======================

Keeping schedules plain ``tuple[int, ...]`` means every existing
consumer — witness records, ddmin minimisation, the campaign store and
trajectory tables, replay — carries fault events without a format
change, and replaying a faulted schedule is bit-identical by the same
journaled mechanics as replaying writes.

This module is deliberately dependency-free (stdlib only): the core
execution engine imports it, so it must sit below every other layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

__all__ = [
    "FaultSpec",
    "NO_FAULTS",
    "resolve_faults",
    "crash_event",
    "loss_event",
    "dup_event",
    "decode_choice",
    "describe_choice",
]

#: Spec-string keys in canonical order.
_KINDS = ("crash", "loss", "dup")


@dataclass(frozen=True)
class FaultSpec:
    """Adversary fault budgets for one execution (all default to 0).

    A budget is *events available to the adversary*, not events that
    must occur — the fault-free completion of a faulted configuration
    is always in the search space, so enabling faults can only widen
    the set of reachable outcomes.
    """

    max_crashes: int = 0
    max_losses: int = 0
    max_duplications: int = 0

    def __post_init__(self) -> None:
        for field_name in ("max_crashes", "max_losses", "max_duplications"):
            value = getattr(self, field_name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise ValueError(
                    f"{field_name} must be a non-negative int, got {value!r}"
                )

    @property
    def enabled(self) -> bool:
        """Whether any fault budget is non-zero (``False`` means the
        execution is exactly the reliable one)."""
        return bool(self.max_crashes or self.max_losses
                    or self.max_duplications)

    @classmethod
    def parse(cls, text: Union[None, str, "FaultSpec"]) -> "FaultSpec":
        """Parse a ``"crash:2,loss:1,dup:1"`` spec string.

        ``None``, ``""`` and ``"none"`` all mean no faults; a
        :class:`FaultSpec` passes through unchanged.  Unknown kinds and
        malformed counts raise :class:`ValueError` naming the known
        kinds, so CLI typos surface as usage errors.
        """
        if isinstance(text, FaultSpec):
            return text
        if text is None:
            return NO_FAULTS
        stripped = text.strip()
        if not stripped or stripped == "none":
            return NO_FAULTS
        budgets = {kind: 0 for kind in _KINDS}
        for part in stripped.split(","):
            kind, sep, count = part.strip().partition(":")
            if not sep or kind not in budgets:
                known = ", ".join(f"{k}:N" for k in _KINDS)
                raise ValueError(
                    f"bad fault spec part {part.strip()!r}; expected "
                    f"comma-separated {known} (or 'none')"
                )
            try:
                value = int(count)
            except ValueError:
                raise ValueError(
                    f"bad fault count in {part.strip()!r}: {count!r} is not "
                    "an integer"
                ) from None
            if value < 0:
                raise ValueError(f"fault count must be >= 0 in {part.strip()!r}")
            budgets[kind] += value
        return cls(max_crashes=budgets["crash"], max_losses=budgets["loss"],
                   max_duplications=budgets["dup"])

    def canonical(self) -> Optional[str]:
        """Canonical spec string (``None`` when no budget is set), the
        primitive form tasks fingerprint: ``parse(canonical()) == self``
        and equal specs render identically."""
        parts = []
        for kind, value in zip(_KINDS, (self.max_crashes, self.max_losses,
                                        self.max_duplications)):
            if value:
                parts.append(f"{kind}:{value}")
        return ",".join(parts) if parts else None


#: The reliable execution: every budget zero.
NO_FAULTS = FaultSpec()


def resolve_faults(faults: Union[None, str, FaultSpec]) -> FaultSpec:
    """A :class:`FaultSpec` from a spec string, an instance, or ``None``."""
    return FaultSpec.parse(faults)


# ----------------------------------------------------------------------
# the integer event codec
# ----------------------------------------------------------------------

def crash_event(node: int, n: int) -> int:
    """Schedule encoding of "node ``node`` crashes now"."""
    _check_node(node, n)
    return -node


def loss_event(node: int, n: int) -> int:
    """Schedule encoding of "node ``node`` writes, but the write is
    dropped"."""
    _check_node(node, n)
    return -(n + node)


def dup_event(node: int, n: int) -> int:
    """Schedule encoding of "node ``node`` writes, applied twice"."""
    _check_node(node, n)
    return -(2 * n + node)


def _check_node(node: int, n: int) -> None:
    if not 1 <= node <= n:
        raise ValueError(f"node {node} out of range for n={n}")


def decode_choice(choice: int, n: int) -> tuple[str, int]:
    """``(kind, node)`` for any schedule entry; kind is ``"write"``,
    ``"crash"``, ``"loss"`` or ``"dup"``."""
    if choice > 0:
        _check_node(choice, n)
        return ("write", choice)
    value = -choice
    if 1 <= value <= n:
        return ("crash", value)
    if n < value <= 2 * n:
        return ("loss", value - n)
    if 2 * n < value <= 3 * n:
        return ("dup", value - 2 * n)
    raise ValueError(f"undecodable schedule entry {choice} for n={n}")


def describe_choice(choice: int, n: int) -> str:
    """Human-readable form of one schedule entry (for narration and
    error messages)."""
    kind, node = decode_choice(choice, n)
    if kind == "write":
        return f"write({node})"
    return f"{kind}({node})"
