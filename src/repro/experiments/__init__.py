"""Executable experiment index (E1-E18) mirroring DESIGN.md."""

from .registry import (
    CATALOG,
    Experiment,
    ExperimentResult,
    get_experiment,
    run_all,
    run_experiment,
)

__all__ = [
    "CATALOG",
    "Experiment",
    "ExperimentResult",
    "get_experiment",
    "run_all",
    "run_experiment",
]
