"""The experiment catalogue: every regenerable artefact, addressable.

DESIGN.md's per-experiment index (E1–E20) maps each of the paper's
tables, figures and quantitative claims to modules and benchmarks.  This
package makes the index *executable*: each experiment is a first-class
object with an identifier, a description of the paper artefact it
regenerates, and a ``run(quick=...)`` method returning an
:class:`ExperimentResult` (pass/fail verdict plus the rendered artefact
text).  The CLI exposes them as ``python -m repro experiment E5`` and
``python -m repro reproduce-all``.

The heavyweight timing measurements stay in ``benchmarks/``; the
registry favours fast, deterministic regeneration suitable for CI and
interactive use.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "ExperimentResult",
    "Experiment",
    "CATALOG",
    "get_experiment",
    "run_experiment",
    "run_all",
]


@dataclass
class ExperimentResult:
    """Outcome of one experiment regeneration."""

    experiment_id: str
    ok: bool
    artifact: str
    details: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Experiment:
    """One entry of the DESIGN.md experiment index."""

    experiment_id: str
    title: str
    paper_artifact: str
    runner: Callable[[bool], ExperimentResult]

    def run(self, quick: bool = True) -> ExperimentResult:
        return self.runner(quick)


# ----------------------------------------------------------------------
# runners
# ----------------------------------------------------------------------

def _e1_table1(quick: bool) -> ExperimentResult:
    from ..core import ALL_MODELS, MaxIdScheduler, NodeView, Protocol, run
    from ..graphs.generators import path_graph

    class Probe(Protocol):
        name = "probe"

        def wants_to_activate(self, view: NodeView) -> bool:
            return len(view.board) >= view.node - 1

        def message(self, view: NodeView):
            return (view.node, len(view.board))

        def output(self, board, n):
            return tuple(board)

    g = path_graph(5)
    lines = ["E1 — Table 1 semantics probe", ""]
    ok = True
    for model in ALL_MODELS:
        r = run(g, Probe(), model, MaxIdScheduler())
        seen = [p[1] for p in r.board.view()]
        all0 = all(v == 0 for v in r.activation_round.values())
        lines.append(f"{model.name:<9} active@0={all0!s:<6} board-sizes-seen={seen}")
        if model.name == "SIMASYNC":
            ok &= all0 and seen == [0] * 5
        if model.name == "SIMSYNC":
            ok &= all0 and seen == [0, 1, 2, 3, 4]
        if model.name in ("ASYNC", "SYNC"):
            ok &= not all0
    return ExperimentResult("E1", ok, "\n".join(lines))


def _e2_table2(quick: bool) -> ExperimentResult:
    from ..analysis.table2 import generate_table2, render_table2

    result = generate_table2(quick=quick, seed=0)
    ok = result.all_ok and result.matches_paper()
    return ExperimentResult(
        "E2", ok, render_table2(result), {"matches_paper": result.matches_paper()}
    )


def _e3_figure1(quick: bool) -> ExperimentResult:
    from ..analysis.figures import render_figure1
    from ..graphs.generators import random_bipartite
    from ..reductions.gadgets import figure1_example, triangle_gadget_property

    g, _ = figure1_example()
    ok = all(
        triangle_gadget_property(g, s, t)
        for s in g.nodes() for t in range(s + 1, g.n + 1)
    )
    if not quick:
        for seed in range(5):
            b = random_bipartite(4, 4, 0.5, seed=seed)
            ok &= all(
                triangle_gadget_property(b, s, t)
                for s in b.nodes() for t in range(s + 1, b.n + 1)
            )
    return ExperimentResult("E3", ok, render_figure1())


def _e4_figure2(quick: bool) -> ExperimentResult:
    from ..analysis.figures import render_figure2
    from ..reductions.gadgets import eob_gadget_property, figure2_example

    base, _ = figure2_example()
    ok = all(eob_gadget_property(base, i) for i in (3, 5, 7))
    return ExperimentResult("E4", ok, render_figure2())


def _e5_lemma1(quick: bool) -> ExperimentResult:
    from ..analysis.scaling import fit_log
    from ..core import SIMASYNC, MinIdScheduler, run
    from ..graphs.generators import random_k_degenerate
    from ..protocols.build import DegenerateBuildProtocol

    sizes = (16, 32, 64) if quick else (16, 32, 64, 128, 256)
    ks = (1, 2, 3) if quick else (1, 2, 3, 4, 5)
    lines = ["E5 — Lemma 1 message sizes", ""]
    ok = True
    for k in ks:
        bits = []
        for n in sizes:
            g = random_k_degenerate(n, k, seed=n + k)
            r = run(g, DegenerateBuildProtocol(k), SIMASYNC, MinIdScheduler())
            ok &= r.output == g
            bits.append(r.max_message_bits)
        fit = fit_log(sizes, bits)
        ok &= fit.r_squared > 0.8
        lines.append(f"k={k}: bits={bits}  {fit}")
    return ExperimentResult("E5", ok, "\n".join(lines))


def _e6_build(quick: bool) -> ExperimentResult:
    from ..analysis.verify import verify_protocol
    from ..core import SIMASYNC
    from ..graphs.generators import random_k_degenerate
    from ..protocols.build import DegenerateBuildProtocol

    sizes = (4, 9, 14) if quick else (4, 9, 14, 24, 40)
    instances = [random_k_degenerate(n, 2, seed=n) for n in sizes]
    report = verify_protocol(
        DegenerateBuildProtocol(2), SIMASYNC, instances, lambda g, out, r: out == g
    )
    return ExperimentResult("E6", report.ok, report.summary())


def _e7_lemma3(quick: bool) -> ExperimentResult:
    from ..reductions.counting import (
        build_feasible,
        log2_all_graphs,
        log2_even_odd_bipartite,
        log2_labeled_trees,
        min_message_bits_for_build,
    )

    sizes = (16, 64, 256) if quick else (16, 64, 256, 1024, 4096)
    lines = ["E7 — Lemma 3 minimum bits/message for BUILD", ""]
    ok = True
    for n in sizes:
        logn = max(1, n.bit_length() - 1)
        row = (
            f"n={n:<6} all={min_message_bits_for_build(log2_all_graphs(n), n):>8.1f}"
            f"  eob={min_message_bits_for_build(log2_even_odd_bipartite(n), n):>8.1f}"
            f"  trees={min_message_bits_for_build(log2_labeled_trees(n), n):>6.1f}"
        )
        lines.append(row)
        if n >= 64:
            ok &= not build_feasible(log2_all_graphs(n), n, logn)
            ok &= build_feasible(log2_labeled_trees(n), n, 4 * logn)
    return ExperimentResult("E7", ok, "\n".join(lines))


def _e8_reductions(quick: bool) -> ExperimentResult:
    from ..core import SIMASYNC, RandomScheduler, run
    from ..graphs.generators import random_bipartite, random_graph
    from ..graphs.labeled_graph import LabeledGraph
    from ..protocols.naive import (
        NaiveEobBfsProtocol,
        NaiveMisProtocol,
        NaiveTriangleProtocol,
    )
    from ..reductions.transformers import (
        EobBfsToBuildScheme,
        MisToBuildProtocol,
        TriangleToBuildProtocol,
    )
    import random as _random

    lines = ["E8 — theorem compilers, round-tripped", ""]
    ok = True
    b = random_bipartite(3, 4, 0.5, seed=1)
    tri = TriangleToBuildProtocol(lambda n: NaiveTriangleProtocol())
    got = run(b, tri, SIMASYNC, RandomScheduler(0)).output == b
    ok &= got
    lines.append(f"Theorem 3 (TRIANGLE=>BUILD): {'ok' if got else 'FAILED'}")
    g = random_graph(7, 0.5, seed=2)
    mis = MisToBuildProtocol(lambda n, root: NaiveMisProtocol(root))
    got = run(g, mis, SIMASYNC, RandomScheduler(0)).output == g
    ok &= got
    lines.append(f"Theorem 6 (MIS=>BUILD): {'ok' if got else 'FAILED'}")
    rng = _random.Random(3)
    base = LabeledGraph(9, [
        (u, v) for u in range(2, 10) for v in range(u + 1, 10)
        if (u - v) % 2 == 1 and rng.random() < 0.5
    ])
    scheme = EobBfsToBuildScheme(lambda: NaiveEobBfsProtocol())
    got = scheme.decode(scheme.encode(base), 9) == base
    ok &= got
    lines.append(f"Theorem 8 (EOB-BFS=>code): {'ok' if got else 'FAILED'}")
    return ExperimentResult("E8", ok, "\n".join(lines))


def _e9_protocols(quick: bool) -> ExperimentResult:
    from ..analysis.verify import verify_protocol
    from ..core import ASYNC, SIMSYNC, SYNC
    from ..graphs import generators as gen
    from ..graphs.properties import (
        canonical_bfs_forest,
        is_even_odd_bipartite,
        is_rooted_mis,
        is_two_cliques,
    )
    from ..protocols.bfs import EobBfsProtocol, SyncBfsProtocol
    from ..protocols.mis import RootedMisProtocol
    from ..protocols.naive import NOT_EOB
    from ..protocols.two_cliques import (
        NOT_TWO_CLIQUES,
        TWO_CLIQUES,
        TwoCliquesProtocol,
    )

    lines = ["E9 — positive protocols", ""]
    ok = True
    checks = [
        (
            RootedMisProtocol(1), SIMSYNC,
            [gen.random_graph(5, 0.5, seed=s) for s in range(2)],
            lambda g, out, r: is_rooted_mis(g, out, 1),
        ),
        (
            TwoCliquesProtocol(), SIMSYNC,
            [gen.two_cliques(3), gen.connected_two_cliques_like(4, seed=0)],
            lambda g, out, r: out
            == (TWO_CLIQUES if is_two_cliques(g) else NOT_TWO_CLIQUES),
        ),
        (
            EobBfsProtocol(), ASYNC,
            [gen.random_even_odd_bipartite(9, 0.4, seed=s) for s in range(2)],
            lambda g, out, r: (
                out == canonical_bfs_forest(g)
                if is_even_odd_bipartite(g) else out == NOT_EOB
            ),
        ),
        (
            SyncBfsProtocol(), SYNC,
            [gen.random_graph(9, 0.3, seed=s) for s in range(2)],
            lambda g, out, r: out == canonical_bfs_forest(g),
        ),
    ]
    for proto, model, instances, checker in checks:
        report = verify_protocol(proto, model, instances, checker)
        ok &= report.ok
        lines.append(report.summary())
    return ExperimentResult("E9", ok, "\n".join(lines))


def _e10_hierarchy(quick: bool) -> ExperimentResult:
    from ..core import ALL_MODELS, RandomScheduler, run
    from ..core.models import MODELS_BY_NAME, at_most_as_strong
    from ..graphs import generators as gen
    from ..graphs.properties import canonical_bfs_forest, is_rooted_mis
    from ..hierarchy.adapters import lift
    from ..protocols.bfs import EobBfsProtocol
    from ..protocols.build import DegenerateBuildProtocol
    from ..protocols.mis import RootedMisProtocol

    cases = [
        (DegenerateBuildProtocol(2), gen.random_k_degenerate(9, 2, seed=1),
         lambda g, out: out == g),
        (RootedMisProtocol(2), gen.random_connected_graph(9, 0.3, seed=2),
         lambda g, out: is_rooted_mis(g, out, 2)),
        (EobBfsProtocol(), gen.random_even_odd_bipartite(9, 0.4, seed=3),
         lambda g, out: out == canonical_bfs_forest(g)),
    ]
    lines = ["E10 — Lemma 4 lattice lifts", ""]
    ok = True
    for proto, graph, check in cases:
        source = MODELS_BY_NAME[proto.designed_for]
        cells = []
        for model in ALL_MODELS:
            if not at_most_as_strong(source, model):
                cells.append("-")
                continue
            r = run(graph, lift(proto, model), model, RandomScheduler(5))
            good = r.success and check(graph, r.output)
            ok &= good
            cells.append("ok" if good else "FAIL")
        lines.append(f"{proto.name:<28} " + " ".join(f"{c:<5}" for c in cells))
    return ExperimentResult("E10", ok, "\n".join(lines))


def _e11_open_problems(quick: bool) -> ExperimentResult:
    from ..core import ASYNC, SIMASYNC, RandomScheduler, run
    from ..graphs import generators as gen
    from ..graphs.properties import canonical_bfs_forest, is_bipartite
    from ..protocols.bfs import BipartiteBfsAsyncProtocol
    from ..protocols.randomized import RandomizedTwoCliquesProtocol
    from ..protocols.two_cliques import NOT_TWO_CLIQUES, TWO_CLIQUES

    trials = 8 if quick else 30
    deadlocks = wrong = 0
    for seed in range(trials):
        g = gen.random_connected_graph(9, 0.3, seed=seed)
        r = run(g, BipartiteBfsAsyncProtocol(), ASYNC, RandomScheduler(seed))
        if r.corrupted:
            deadlocks += 1
        elif r.output != canonical_bfs_forest(g):
            wrong += 1
    rnd_ok = True
    yes, no = gen.two_cliques(6), gen.connected_two_cliques_like(6, seed=1)
    for seed in range(5):
        p = RandomizedTwoCliquesProtocol(shared_seed=seed)
        rnd_ok &= run(yes, p, SIMASYNC, RandomScheduler(seed)).output == TWO_CLIQUES
        rnd_ok &= run(no, p, SIMASYNC, RandomScheduler(seed)).output == NOT_TWO_CLIQUES
    ok = wrong == 0 and rnd_ok
    lines = [
        "E11 — open problems, measured",
        "",
        f"Corollary 4 off-promise: {deadlocks}/{trials} deadlocks, {wrong} wrong outputs",
        f"randomized 2-CLIQUES: {'0 errors over 10 decisions' if rnd_ok else 'ERRORS'}",
    ]
    return ExperimentResult("E11", ok, "\n".join(lines))


def _e12_protocol_search(quick: bool) -> ExperimentResult:
    from ..graphs.generators import all_labeled_graphs
    from ..graphs.properties import has_triangle
    from ..reductions.protocol_search import search_simasync_decision

    lines = ["E12 — exhaustive protocol-space search", ""]
    graphs3 = list(all_labeled_graphs(3))
    r1 = search_simasync_decision(graphs3, has_triangle, 1)
    r2 = search_simasync_decision(graphs3, has_triangle, 2)
    ok = r1.status == "unsolvable" and r2.status == "solvable"
    lines.append(f"TRIANGLE n=3: alphabet 1 -> {r1.status}, alphabet 2 -> {r2.status}")
    if not quick:
        graphs4 = list(all_labeled_graphs(4))
        r3 = search_simasync_decision(graphs4, has_triangle, 2, node_budget=5_000_000)
        r4 = search_simasync_decision(graphs4, has_triangle, 3, node_budget=20_000_000)
        ok &= r3.status == "unsolvable" and r4.status == "solvable"
        lines.append(
            f"TRIANGLE n=4: alphabet 2 -> {r3.status}, alphabet 3 -> {r4.status}"
        )
    return ExperimentResult("E12", ok, "\n".join(lines))


def _e13_connectivity(quick: bool) -> ExperimentResult:
    from ..core import SYNC, RandomScheduler, run
    from ..graphs import generators as gen
    from ..graphs.properties import is_connected
    from ..protocols.connectivity import ConnectivityProtocol

    trials = 6 if quick else 20
    ok = True
    for seed in range(trials):
        g = gen.random_graph(10, 0.22, seed=seed)
        r = run(g, ConnectivityProtocol(), SYNC, RandomScheduler(seed))
        ok &= r.success and r.output == (1 if is_connected(g) else 0)
    return ExperimentResult(
        "E13", ok, f"E13 — CONNECTIVITY in SYNC: {trials}/{trials} correct"
        if ok else "E13 — FAILURES"
    )


def _e14_sensitivity(quick: bool) -> ExperimentResult:
    from ..analysis.sensitivity import analyze
    from ..core import SIMASYNC, SIMSYNC
    from ..graphs import generators as gen
    from ..protocols.build import DegenerateBuildProtocol
    from ..protocols.mis import RootedMisProtocol

    build = analyze(gen.random_k_degenerate(5, 2, seed=1),
                    DegenerateBuildProtocol(2), SIMASYNC)
    mis = analyze(gen.path_graph(5), RootedMisProtocol(1), SIMSYNC)
    ok = build.output_invariant and mis.distinct_outputs > 1
    return ExperimentResult(
        "E14", ok, "\n".join(["E14 — adversary sensitivity", "",
                              build.summary(), mis.summary()])
    )


def _e15_sketching(quick: bool) -> ExperimentResult:
    from ..core import SIMASYNC, RandomScheduler, run
    from ..graphs import generators as gen
    from ..graphs.labeled_graph import LabeledGraph
    from ..graphs.properties import connected_components
    from ..protocols.sketching import SketchSpanningForestProtocol

    trials = 6 if quick else 25
    good = 0
    bits = 0
    for seed in range(trials):
        g = gen.random_graph(11, 0.25, seed=seed)
        r = run(g, SketchSpanningForestProtocol(shared_seed=seed * 13 + 1),
                SIMASYNC, RandomScheduler(seed))
        forest = LabeledGraph(g.n, r.output)
        good += connected_components(forest) == connected_components(g)
        bits = max(bits, r.max_message_bits)
    ok = good == trials
    return ExperimentResult(
        "E15", ok,
        f"E15 — AGM sketching: spanning forest exact on {good}/{trials} "
        f"graphs; max message {bits} bits (polylog)",
    )


def _e16_scale(quick: bool) -> ExperimentResult:
    import time

    from ..core import SIMASYNC, MinIdScheduler, run
    from ..graphs.generators import random_k_degenerate
    from ..protocols.build import DegenerateBuildProtocol

    n = 256 if quick else 512
    g = random_k_degenerate(n, 3, seed=1)
    t0 = time.perf_counter()
    r = run(g, DegenerateBuildProtocol(3), SIMASYNC, MinIdScheduler())
    dt = time.perf_counter() - t0
    ok = r.output == g and dt < 30.0
    return ExperimentResult(
        "E16", ok,
        f"E16 — scale: BUILD k=3 at n={n} in {dt:.2f}s, "
        f"max message {r.max_message_bits} bits",
    )


def _e17_cost_attribution(quick: bool) -> ExperimentResult:
    from ..analysis.message_stats import cost_by_degree
    from ..core import SIMASYNC, MinIdScheduler, run
    from ..graphs.generators import random_k_degenerate
    from ..protocols.build import DegenerateBuildProtocol

    g = random_k_degenerate(64 if quick else 128, 3, seed=7)
    r = run(g, DegenerateBuildProtocol(3), SIMASYNC, MinIdScheduler())
    by_deg = cost_by_degree(r, g)
    degs = sorted(by_deg)
    ok = by_deg[degs[-1]].mean_bits >= by_deg[degs[0]].mean_bits
    lines = ["E17 — cost attribution (Theorem 2, bits by degree)", ""]
    for d in degs:
        s = by_deg[d]
        lines.append(f"degree {d}: {s.count} nodes, mean {s.mean_bits:.1f} bits")
    return ExperimentResult("E17", ok, "\n".join(lines))


def _e18_parallel(quick: bool) -> ExperimentResult:
    from ..analysis.checkers import BuildEqualsInput
    from ..core import SIMASYNC
    from ..graphs.generators import random_k_degenerate
    from ..protocols.build import DegenerateBuildProtocol
    from ..runtime import ExecutionPlan, ProcessPoolBackend, SerialBackend

    instances = [random_k_degenerate(n, 2, seed=n) for n in (8, 12)]
    plan = ExecutionPlan.build(
        DegenerateBuildProtocol(2), SIMASYNC, instances,
        mode="verify", checker=BuildEqualsInput(),
    )
    serial = plan.verification_report(backend=SerialBackend())
    parallel = plan.verification_report(backend=ProcessPoolBackend(jobs=2))
    ok = (
        serial.ok and parallel.ok
        and serial.executions == parallel.executions
        and serial.max_bits_by_n == parallel.max_bits_by_n
    )
    return ExperimentResult(
        "E18", ok,
        "E18 — parallel sweep equivalence: serial and process-pool backends "
        f"agree on {serial.executions} executions of a {len(plan)}-task plan",
    )


def _e19_adversary_engine(quick: bool) -> ExperimentResult:
    from ..adversaries import (
        BeamSearchAdversary,
        BranchAndBoundAdversary,
        DeadlockAdversary,
        GreedyBitsAdversary,
    )
    from ..core import ASYNC, all_executions
    from ..graphs import generators as gen
    from ..graphs.labeled_graph import LabeledGraph
    from ..protocols.bfs import BipartiteBfsAsyncProtocol, EobBfsProtocol

    n = 5 if quick else 6
    g = gen.random_even_odd_bipartite(n, 0.5, seed=1)
    truth_bits = 0
    truth_deadlock = False
    for r in all_executions(g, EobBfsProtocol(), ASYNC):
        truth_bits = max(truth_bits, r.max_message_bits)
        truth_deadlock |= r.corrupted
    lines = ["E19 — adversary engine: search vs exhaustive ground truth", ""]
    ok = not truth_deadlock
    strategies = [
        GreedyBitsAdversary(restarts=2),
        BeamSearchAdversary(width=8),
        BranchAndBoundAdversary(),
    ]
    for strategy in strategies:
        witness = strategy.search(g, EobBfsProtocol(), ASYNC)
        agree = (not witness.deadlock) and witness.bits == truth_bits
        ok &= agree
        lines.append(
            f"{strategy.name:<18} n={n}: {witness.bits} bits "
            f"(exhaustive {truth_bits}) via {witness.schedule} "
            f"[{witness.explored} steps] {'OK' if agree else 'MISMATCH'}"
        )
    broken = LabeledGraph(5, [(1, 2), (1, 3), (2, 3), (4, 5)])
    seeker = DeadlockAdversary()
    found = seeker.search(broken, BipartiteBfsAsyncProtocol(), ASYNC)
    clean = seeker.search(g, EobBfsProtocol(), ASYNC)
    ok &= found.deadlock and not clean.deadlock
    lines.append(
        f"{seeker.name:<18} finds the disconnected-instance deadlock "
        f"({found.schedule}) and none on the connected one: "
        f"{'OK' if found.deadlock and not clean.deadlock else 'MISMATCH'}"
    )
    return ExperimentResult("E19", ok, "\n".join(lines))


def _e20_campaign(quick: bool) -> ExperimentResult:
    import tempfile
    from pathlib import Path

    from ..campaigns import Campaign, ResultStore, quick_campaign

    spec = quick_campaign("E20")
    lines = ["E20 — campaign subsystem: resumable store, pure cache re-run", ""]
    with tempfile.TemporaryDirectory() as tmp:
        with ResultStore(Path(tmp) / "e20.db") as store:
            first = Campaign(spec).run(store)
            second = Campaign(spec).run(store)
            def rows_without_generation(generation: int) -> list[tuple]:
                return [
                    row[:1] + row[2:]
                    for row in store.trajectory_rows(spec.name, generation)
                ]

            gen1 = rows_without_generation(1)
            gen2 = rows_without_generation(2)
        deadlock_seen = any(w.deadlock for w in first.report.witnesses)
        ok = (
            first.report.ok
            and first.executed == first.tasks
            and second.executed == 0
            and second.hits == second.tasks
            and second.report == first.report
            and gen1 == gen2
            and len(gen1) > 0
            and deadlock_seen
        )
        lines.append(first.summary())
        lines.append(second.summary())
        lines.append(
            f"re-run is a pure cache read: {second.executed == 0}; "
            f"reports field-identical: {second.report == first.report}; "
            f"trajectory generations identical: {gen1 == gen2} "
            f"({len(gen1)} extremal records); "
            f"Corollary 4 deadlock witness recorded: {deadlock_seen}"
        )
    return ExperimentResult("E20", ok, "\n".join(lines))


CATALOG: tuple[Experiment, ...] = (
    Experiment("E1", "Table 1 — model semantics", "Table 1", _e1_table1),
    Experiment("E2", "Table 2 — classification", "Table 2", _e2_table2),
    Experiment("E3", "Figure 1 — triangle gadget", "Figure 1", _e3_figure1),
    Experiment("E4", "Figure 2 — EOB-BFS gadget", "Figure 2", _e4_figure2),
    Experiment("E5", "Lemma 1 — message sizes", "Lemma 1", _e5_lemma1),
    Experiment("E6", "Theorem 2 — BUILD", "Theorem 2 / Algorithm 1", _e6_build),
    Experiment("E7", "Lemma 3 — counting bound", "Lemma 3", _e7_lemma3),
    Experiment("E8", "Theorems 3/6/8 — reductions", "Theorems 3, 6, 8", _e8_reductions),
    Experiment("E9", "positive protocols", "Theorems 5, 7, 10; §5.1", _e9_protocols),
    Experiment("E10", "Lemma 4 — hierarchy lifts", "Lemma 4 / Theorem 4", _e10_hierarchy),
    Experiment("E11", "open problems, measured", "Open Problems 1-4", _e11_open_problems),
    Experiment("E12", "protocol-space search", "extension (Thm 3 companion)", _e12_protocol_search),
    Experiment("E13", "connectivity corollaries", "Section 6 / Open Problem 2", _e13_connectivity),
    Experiment("E14", "adversary sensitivity", "Section 2 adversary", _e14_sensitivity),
    Experiment("E15", "graph sketching", "extension (Open Problems 1/2/4)", _e15_sketching),
    Experiment("E16", "laptop-scale stress", "engineering", _e16_scale),
    Experiment("E17", "cost attribution", "ablation", _e17_cost_attribution),
    Experiment("E18", "parallel sweeps", "engineering", _e18_parallel),
    Experiment("E19", "adversary engine", "Section 2 adversary / engineering",
               _e19_adversary_engine),
    Experiment("E20", "campaign subsystem", "engineering / Corollary 4",
               _e20_campaign),
)

_BY_ID = {e.experiment_id: e for e in CATALOG}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by identifier (e.g. ``"E5"``)."""
    key = experiment_id.upper()
    if key not in _BY_ID:
        known = ", ".join(sorted(_BY_ID))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    return _BY_ID[key]


def run_experiment(experiment_id: str, quick: bool = True) -> ExperimentResult:
    """Regenerate one experiment."""
    return get_experiment(experiment_id).run(quick)


def _run_spec(spec: tuple[str, bool]) -> ExperimentResult:
    """Worker: regenerate one experiment (top-level for pickling)."""
    experiment_id, quick = spec
    return get_experiment(experiment_id).run(quick)


def run_all(
    quick: bool = True,
    jobs: Optional[int] = None,
    experiment_ids: Optional[Sequence[str]] = None,
) -> list[ExperimentResult]:
    """Regenerate the index (all of it, or ``experiment_ids``), in order.

    ``jobs`` fans experiments across worker processes through the
    execution runtime's backends; results always come back in catalogue
    order regardless of which worker finishes first.  Experiments are
    coarse, uneven tasks, so the process backend shards one per future.
    """
    from ..runtime.backends import resolve_backend

    ids = (
        [e.experiment_id for e in CATALOG]
        if experiment_ids is None
        else [get_experiment(i).experiment_id for i in experiment_ids]
    )
    backend = resolve_backend(jobs, chunk_size=1)
    return list(backend.map(_run_spec, [(i, quick) for i in ids]))
