"""Batched structure-of-arrays execution core.

The scalar :class:`~repro.core.execution.ExecutionState` steps one
configuration at a time; beam frontiers and exhaustive sweeps want
*thousands* of near-identical configurations stepped in lockstep.  A
:class:`BatchedExecutionState` holds N configurations as parallel numpy
arrays — written/active/crashed node sets packed into uint64 bitmask
lanes, activation rounds and frozen-message handles as (N, n) matrices,
bit totals and schedule cursors as int64 vectors — and advances *all* of
them with a handful of vectorised array operations per generation.

Design rules (the reason this module is allowed to exist):

* **The scalar engine is the only semantic authority.**  Every batched
  result is pinned field-identical to the scalar one — config keys,
  witnesses, counts, ``RunResult`` fields, fault budgets included — by
  the equivalence tests in ``tests/core/test_batch.py`` and
  ``tests/adversaries/test_batched_beam.py``.  Nothing here may change
  an observable value; it may only produce the same values faster.
* **Shared immutable context lives in one ``_BatchCell``** per
  (graph, protocol, model, budget, faults) cell: interned message
  records with lazily computed bit sizes and codec digests, a view trie
  (board prefixes), a schedule trie, and ``(node, view)``-keyed message
  and activation caches.  Lanes carry integer handles into these
  structures, so forking a lane is an array gather, not an object copy.
* **Violations are captured per lane**, never raised mid-kernel: a lane
  whose step raises (:class:`~repro.core.errors.MessageTooLarge`, a
  protocol violation, a decoder crash during activation) is marked dead
  and carries its exception.  Drivers re-raise in scalar generation
  order — or abandon the batch and re-run the scalar engine, which is
  always correct — so exception timing matches the reference exactly.
* **Only stateless protocols** (``fresh()`` returns ``self``) qualify:
  hidden per-run protocol state cannot be gathered.  ``batch_supported``
  gates every entry point; unsupported cells silently use the scalar
  path.

``partition_lots`` balances enumeration fan-out: when a frontier
outgrows the lane budget it is split into roughly equal-weight subtree
lots (weight = remaining-depth factorial x remaining fault budget, the
LPT greedy), each walked independently — the warp-balancing idea from
the spmm block-partition kernels applied to schedule subtrees.
"""

from __future__ import annotations

import hashlib
import heapq
import math
from dataclasses import dataclass
from typing import Any, Iterator, Optional, Union

try:  # numpy is a hard dependency of the graphs layer, but stay graceful
    import numpy as np
except Exception:  # pragma: no cover - exercised only on stripped installs
    np = None

from ..encoding.bits import payload_bits, payload_key
from ..faults.spec import FaultSpec, resolve_faults
from ..telemetry import tracer as _trace
from .errors import MessageTooLarge, ProtocolViolation
from .execution import ExecutionState, RunResult
from .models import MODELS_BY_NAME, ModelSpec
from .protocol import NodeView, Protocol
from .whiteboard import BoardView, Entry, Whiteboard
from ..graphs.labeled_graph import LabeledGraph

__all__ = [
    "BatchAborted",
    "BatchedExecutionState",
    "ScheduleLot",
    "batch_supported",
    "batched_all_executions",
    "batched_count_executions",
    "config_key_digest",
    "expand_enumeration_units",
    "partition_lots",
    "partition_weighted",
    "run_schedule_lot",
    "sharded_all_executions",
    "sharded_count_executions",
]


class BatchAborted(RuntimeError):
    """A batched enumeration hit a per-lane violation and must be
    re-run on the scalar engine (which raises at exactly the right
    point in the reference DFS order)."""


def batch_supported(graph: LabeledGraph, protocol: Protocol,
                    model: ModelSpec) -> bool:
    """Whether this cell can run on the batched core.

    Requires numpy with ``bitwise_count`` (>= 2.0), at most 64 nodes
    (one uint64 bitmask lane per set), and a *stateless* protocol —
    hidden per-run protocol state cannot be forked by an array gather.
    """
    if np is None or not hasattr(np, "bitwise_count"):
        return False
    if graph.n > 64:
        return False
    try:
        return protocol.fresh() is protocol
    except Exception:
        return False


def _iter_bits(mask: int) -> Iterator[int]:
    """Node numbers (1-based, ascending) present in a bitmask."""
    v = 1
    while mask:
        if mask & 1:
            yield v
        mask >>= 1
        v += 1


class _BatchCell:
    """Shared immutable context + memo tables for one execution cell.

    One cell is shared by every batch of the same
    (graph, protocol, model, bit_budget, faults) tuple — beam restarts,
    enumeration lots, forks.  All caches are append-only, so sharing is
    safe, and all message/bit/key computation happens here exactly once
    per distinct (node, view) pair.
    """

    def __init__(self, graph: LabeledGraph, protocol: Protocol,
                 model: ModelSpec, bit_budget: Optional[int],
                 faults: Union[None, str, FaultSpec]) -> None:
        self.graph = graph
        self.protocol = protocol
        self.proto = protocol  # stateless: fresh() is protocol
        self.model = model
        self.bit_budget = bit_budget
        self.faults = resolve_faults(faults)
        n = graph.n
        self.n = n
        self.full_mask = (1 << n) - 1
        #: Simultaneous asynchronous models freeze every message against
        #: the empty round-0 board, so messages are static per node and
        #: lanes never need view tracking.
        self.track_views = not (model.simultaneous and model.asynchronous)
        self._neighbors = {v: graph.neighbors(v) for v in graph.nodes()}

        # -- schedule trie (append-only; id 0 = the empty schedule)
        self._sched_parent: list[int] = [0]
        self._sched_choice: list[int] = [0]
        self._sched_tuples: dict[int, tuple[int, ...]] = {0: ()}

        # -- view trie (board prefixes; id 0 = the empty board)
        self._view_parent: list[int] = [0]
        self._view_rec: list[int] = [-1]
        self._view_children: list[dict[int, int]] = [{}]
        self._view_tuples: dict[int, tuple] = {0: ()}

        # -- interned message records (lazy bits / codec digests)
        self._rec_payload: list[Any] = []
        self._rec_node: list[int] = []
        self._rec_bits: list[Optional[int]] = []
        self._rec_key: list[Any] = []
        self._rec_key_id: list[Optional[int]] = []
        self._rec_bits_exc: dict[int, Exception] = {}
        self._rec_key_exc: dict[int, Exception] = {}
        self._key_intern: dict[Any, int] = {}
        self._bits_np = np.full(0, -1, dtype=np.int64)

        # -- (node, view)-keyed caches
        self._msg_cache: dict[tuple[int, int], Any] = {}
        self._wants_cache: dict[tuple[int, int], Any] = {}

        # -- board-part chains for scalar-equivalent dedupe keys
        #: (chain id, entry key id) -> chain id; equal chains <=> equal
        #: entry-key tuples, so chain ids substitute for the board part
        #: of ``config_key()`` in O(1) per write.
        self._bp_children: dict[tuple[int, int], int] = {}
        self._bp_count = 1  # id 0 = empty board

        # -- frozen-part / activation-part interning
        self._frozen_intern: dict[tuple, int] = {}
        self._frozen_by_active: dict[int, int] = {}
        self._act_intern: dict[tuple, int] = {}

        #: Decode probe cache (DecodeFailure-style scoring), keyed by
        #: view id — boards with the same view id are identical.
        self._decode_cache: dict[int, bool] = {}

        #: Static per-node records for simultaneous asynchronous models
        #: (frozen at round 0 against the empty board, like the scalar
        #: ``initial()`` — exceptions propagate raw from here too).
        self._static_rec: Optional[list[int]] = None
        self._static_rec_arr = None
        if not self.track_views:
            self._static_rec = [self._rec_for(v, 0) for v in graph.nodes()]
            self._static_rec_arr = np.array(self._static_rec, dtype=np.int64)

    # -- message records ----------------------------------------------

    def _node_view(self, v: int, vid: int) -> NodeView:
        return NodeView(node=v, neighbors=self._neighbors[v], n=self.n,
                        board=BoardView(self._view_payloads(vid)))

    def _intern_rec(self, v: int, payload: Any) -> int:
        rec = len(self._rec_payload)
        self._rec_payload.append(payload)
        self._rec_node.append(v)
        self._rec_bits.append(None)
        self._rec_key.append(None)
        self._rec_key_id.append(None)
        return rec

    def _rec_for(self, v: int, vid: int) -> int:
        """The interned record for ``protocol.message`` of ``v`` against
        view ``vid`` (cached; exceptions are cached and re-raised)."""
        key = (v, vid)
        rec = self._msg_cache.get(key)
        if rec is None:
            try:
                payload = ExecutionState._own_payload(
                    self.proto.message(self._node_view(v, vid)))
            except Exception as exc:
                self._msg_cache[key] = exc
                raise
            rec = self._intern_rec(v, payload)
            self._msg_cache[key] = rec
        elif isinstance(rec, Exception):
            raise rec
        return rec

    def _bits_of(self, rec: int) -> int:
        """Message bits for a record (lazy — scalar computes them at
        first *write*, not at freeze, and so do we)."""
        bits = self._rec_bits[rec]
        if bits is None:
            exc = self._rec_bits_exc.get(rec)
            if exc is not None:
                raise exc
            try:
                bits = payload_bits(self._rec_payload[rec])
            except TypeError as cause:
                exc = ProtocolViolation(
                    f"{self.proto.name}: node {self._rec_node[rec]} produced "
                    f"a non-payload message: {cause}"
                )
                exc.__cause__ = cause
                self._rec_bits_exc[rec] = exc
                raise exc
            self._rec_bits[rec] = bits
        return bits

    def _bits_np_for(self, max_rec: int):
        """Numpy mirror of the per-record bit sizes (-1 = not yet
        computed), grown to cover record ids up to ``max_rec``."""
        arr = self._bits_np
        if arr.shape[0] <= max_rec:
            arr = np.array(
                [b if b is not None else -1 for b in self._rec_bits],
                dtype=np.int64,
            )
            self._bits_np = arr
        return arr

    def _refresh_bits_np(self) -> None:
        self._bits_np = np.array(
            [b if b is not None else -1 for b in self._rec_bits],
            dtype=np.int64,
        )

    def _key_id_of(self, rec: int) -> int:
        """Interned codec-digest id of a *written* record's payload
        (the payload already passed ``payload_bits``, so the digest
        cannot fail)."""
        kid = self._rec_key_id[rec]
        if kid is None:
            key = payload_key(self._rec_payload[rec])
            kid = self._key_intern.setdefault(key, len(self._key_intern))
            self._rec_key[rec] = key
            self._rec_key_id[rec] = kid
        return kid

    def _frozen_key_id_of(self, rec: int) -> int:
        """Like :meth:`_key_id_of` for *frozen* (unwritten) messages,
        wrapping codec failures exactly like the scalar config_key."""
        exc = self._rec_key_exc.get(rec)
        if exc is not None:
            raise exc
        try:
            return self._key_id_of(rec)
        except TypeError as cause:
            exc = ProtocolViolation(
                f"{self.proto.name}: node {self._rec_node[rec]} froze a "
                f"non-payload message: {cause}"
            )
            exc.__cause__ = cause
            self._rec_key_exc[rec] = exc
            raise exc

    # -- view trie -----------------------------------------------------

    def _view_child_of(self, vid: int, rec: int) -> int:
        children = self._view_children[vid]
        child = children.get(rec)
        if child is None:
            child = len(self._view_parent)
            self._view_parent.append(vid)
            self._view_rec.append(rec)
            self._view_children.append({})
            children[rec] = child
        return child

    def _view_payloads(self, vid: int) -> tuple:
        payloads = self._view_tuples.get(vid)
        if payloads is None:
            payloads = (self._view_payloads(self._view_parent[vid])
                        + (self._rec_payload[self._view_rec[vid]],))
            self._view_tuples[vid] = payloads
        return payloads

    def _view_recs(self, vid: int) -> list[int]:
        recs: list[int] = []
        while vid:
            recs.append(self._view_rec[vid])
            vid = self._view_parent[vid]
        recs.reverse()
        return recs

    def _wants(self, v: int, vid: int) -> bool:
        key = (v, vid)
        wants = self._wants_cache.get(key)
        if wants is None:
            try:
                wants = bool(self.proto.wants_to_activate(
                    self._node_view(v, vid)))
            except Exception as exc:
                self._wants_cache[key] = exc
                raise
            self._wants_cache[key] = wants
        elif isinstance(wants, Exception):
            raise wants
        return wants

    def _decodes(self, vid: int) -> bool:
        """Whether ``protocol.output`` decodes the board of ``vid``
        (cached per view — the DecodeFailure scoring probe)."""
        ok = self._decode_cache.get(vid)
        if ok is None:
            try:
                self.proto.output(BoardView(self._view_payloads(vid)), self.n)
            except Exception:
                ok = False
            else:
                ok = True
            self._decode_cache[vid] = ok
        return ok

    # -- schedule trie -------------------------------------------------

    def _sched_append(self, parents, choices):
        base = len(self._sched_parent)
        self._sched_parent.extend(parents.tolist())
        self._sched_choice.extend(choices.tolist())
        return np.arange(base, base + int(parents.shape[0]), dtype=np.int64)

    def _sched_tuple_of(self, sid: int) -> tuple[int, ...]:
        sched = self._sched_tuples.get(sid)
        if sched is None:
            sched = (self._sched_tuple_of(self._sched_parent[sid])
                     + (self._sched_choice[sid],))
            self._sched_tuples[sid] = sched
        return sched

    def _bp_child_of(self, bp: int, key_id: int) -> int:
        child = self._bp_children.get((bp, key_id))
        if child is None:
            child = self._bp_count
            self._bp_count += 1
            self._bp_children[(bp, key_id)] = child
        return child


class BatchedExecutionState:
    """N configurations of one cell, stepped in lockstep.

    Lanes are columns of parallel arrays; every mutating operation
    (:meth:`advance_all`, :meth:`fork`, :meth:`compact`) is an array
    expression plus small per-lane loops only where the model is
    genuinely view-dependent (free activation, synchronous messages).
    A lane whose step raised is *dead*: it keeps its arrays but carries
    the exception in :attr:`violations`, and drivers decide whether to
    re-raise (beam, in generation order) or abandon the whole batch
    (enumeration, falling back to the scalar reference).
    """

    __slots__ = (
        "cell", "size", "written", "active", "crashed", "depth", "sched",
        "view", "bp", "maxb", "totb", "lastb", "lastt", "cl", "ll", "dl",
        "frozen", "act", "dead", "violations", "track_sched", "track_bp",
        "track_views",
    )

    def __init__(self) -> None:
        raise TypeError("use BatchedExecutionState.root(cell, ...)")

    # -- construction --------------------------------------------------

    @classmethod
    def root(cls, cell: _BatchCell, track_sched: bool = True,
             track_bp: bool = False,
             track_views: Optional[bool] = None) -> "BatchedExecutionState":
        """A one-lane batch holding the initial configuration (after
        the round-0 activation pass, like the scalar ``initial``)."""
        self = object.__new__(cls)
        self.cell = cell
        self.size = 1
        n = cell.n
        self.track_sched = track_sched
        self.track_bp = track_bp
        self.track_views = (cell.track_views if track_views is None
                            else (track_views or cell.track_views))
        zeros = lambda dtype=np.int64: np.zeros(1, dtype=dtype)  # noqa: E731
        self.written = zeros(np.uint64)
        self.active = zeros(np.uint64)
        self.crashed = zeros(np.uint64)
        self.depth = zeros()
        self.sched = zeros() if track_sched else None
        self.view = zeros() if self.track_views else None
        self.bp = zeros() if track_bp else None
        self.maxb = zeros()
        self.totb = zeros()
        self.lastb = zeros()
        self.lastt = zeros()
        self.cl = np.full(1, cell.faults.max_crashes, dtype=np.int64)
        self.ll = np.full(1, cell.faults.max_losses, dtype=np.int64)
        self.dl = np.full(1, cell.faults.max_duplications, dtype=np.int64)
        self.act = np.full((1, n), -1, dtype=np.int32)
        needs_frozen = cell.model.asynchronous and cell._static_rec is None
        self.frozen = (np.full((1, n), -1, dtype=np.int64)
                       if needs_frozen else None)
        self.dead = np.zeros(1, dtype=bool)
        self.violations: dict[int, Exception] = {}

        # round-0 activation pass; exceptions propagate raw, exactly
        # like the scalar ``ExecutionState.initial``.
        model = cell.model
        if model.simultaneous:
            self.active[0] = np.uint64(cell.full_mask)
            self.act[0, :] = 0
            # simultaneous asynchronous freezing happened in the cell
            # (static records); simultaneous synchronous never freezes.
        else:
            mask = 0
            for v in cell.graph.nodes():
                if cell._wants(v, 0):
                    mask |= 1 << (v - 1)
                    self.act[0, v - 1] = 0
                    if model.asynchronous:
                        self.frozen[0, v - 1] = cell._rec_for(v, 0)
            self.active[0] = np.uint64(mask)
        return self

    def compact(self, keep) -> "BatchedExecutionState":
        """A new batch holding only the lanes in ``keep`` (an index
        array), in that order — the gather that drops dead or pruned
        lanes and implements :meth:`fork`'s parent expansion."""
        keep = np.asarray(keep, dtype=np.int64)
        clone = object.__new__(type(self))
        clone.cell = self.cell
        clone.size = int(keep.shape[0])
        clone.track_sched = self.track_sched
        clone.track_bp = self.track_bp
        clone.track_views = self.track_views
        for name in ("written", "active", "crashed", "depth", "maxb",
                     "totb", "lastb", "lastt", "cl", "ll", "dl", "act",
                     "dead"):
            setattr(clone, name, getattr(self, name)[keep])
        clone.sched = self.sched[keep] if self.sched is not None else None
        clone.view = self.view[keep] if self.view is not None else None
        clone.bp = self.bp[keep] if self.bp is not None else None
        clone.frozen = self.frozen[keep] if self.frozen is not None else None
        if self.violations:
            old = {int(lane): pos for pos, lane in enumerate(keep.tolist())}
            clone.violations = {
                old[lane]: exc for lane, exc in self.violations.items()
                if lane in old
            }
        else:
            clone.violations = {}
        _trace.observe("batch.compact_width", clone.size)
        return clone

    def fork(self, parents, choices) -> "BatchedExecutionState":
        """Children of ``parents`` (lane indices) under ``choices`` —
        an array gather followed by one vectorised advance."""
        child = self.compact(parents)
        child.advance_all(choices)
        _trace.observe("batch.fork_width", child.size)
        return child

    # -- inspection ----------------------------------------------------

    def __len__(self) -> int:
        return self.size

    def write_mask(self):
        """Per-lane bitmask of write candidates (active and unwritten)."""
        return self.active & ~self.written

    def done_mask(self):
        terminated = np.bitwise_count(self.written | self.crashed)
        return terminated.astype(np.int64) == self.cell.n

    def terminal_mask(self):
        return self.done_mask() | (self.write_mask() == np.uint64(0))

    def deadlocked_at(self, lane: int) -> bool:
        return (not bool(self.done_mask()[lane])
                and int(self.write_mask()[lane]) == 0)

    def first_violation(self) -> Optional[int]:
        return min(self.violations) if self.violations else None

    def schedule_of(self, lane: int) -> tuple[int, ...]:
        if self.sched is None:
            raise ValueError("schedules were not tracked for this batch")
        return self.cell._sched_tuple_of(int(self.sched[lane]))

    # -- candidate expansion -------------------------------------------

    def candidates_mask(self):
        """(N, C) boolean candidate matrix plus the choice value of
        each column, columns in scalar candidate order: writes
        ascending, then crash, loss, and duplication events."""
        cell = self.cell
        n = cell.n
        wm = self.write_mask()
        live = ~self.dead
        shifts = np.arange(n, dtype=np.uint64)
        writes = (((wm[:, None] >> shifts) & np.uint64(1)) != 0)
        writes &= live[:, None]
        blocks = [writes]
        values = [np.arange(1, n + 1, dtype=np.int64)]
        if cell.faults.enabled:
            has_writes = (wm != np.uint64(0)) & live
            any_budget = (self.cl > 0) | (self.ll > 0) | (self.dl > 0)
            gate = has_writes & any_budget
            unterminated = (~(self.written | self.crashed)
                            & np.uint64(cell.full_mask))
            crash = (((unterminated[:, None] >> shifts) & np.uint64(1)) != 0)
            blocks.append(crash & (gate & (self.cl > 0))[:, None])
            values.append(-np.arange(1, n + 1, dtype=np.int64))
            blocks.append(writes & (gate & (self.ll > 0))[:, None])
            values.append(-np.arange(n + 1, 2 * n + 1, dtype=np.int64))
            blocks.append(writes & (gate & (self.dl > 0))[:, None])
            values.append(-np.arange(2 * n + 1, 3 * n + 1, dtype=np.int64))
        return np.concatenate(blocks, axis=1), np.concatenate(values)

    def expansion(self):
        """``(parent lanes, choices)`` for every candidate of every
        lane, in scalar generation order (frontier order x candidate
        order) — feed straight into :meth:`fork`."""
        matrix, values = self.candidates_mask()
        lanes, cols = np.nonzero(matrix)
        return lanes.astype(np.int64), values[cols]

    # -- the step relation ---------------------------------------------

    def _kill(self, lane: int, exc: Exception) -> None:
        self.dead[lane] = True
        self.violations[lane] = exc

    def advance_all(self, choices) -> "BatchedExecutionState":
        """Apply one adversary choice per lane, vectorised.

        Order of effects per lane matches the scalar ``advance``:
        message resolution, bit accounting, budget check, board append,
        activation pass.  A failing lane is killed (its exception
        captured) without disturbing the others.
        """
        cell = self.cell
        n = cell.n
        choices = np.asarray(choices, dtype=np.int64)
        if choices.shape[0] != self.size:
            raise ValueError(
                f"{choices.shape[0]} choices for {self.size} lanes")
        if (not cell.faults.enabled and not self.dead.any()
                and cell.model.asynchronous
                and cell._static_rec_arr is not None):
            return self._advance_reliable_simasync(choices)
        is_write = choices > 0
        negv = -choices
        is_crash = (~is_write) & (negv >= 1) & (negv <= n)
        is_loss = (~is_write) & (negv > n) & (negv <= 2 * n)
        is_dup = (~is_write) & (negv > 2 * n) & (negv <= 3 * n)
        node = np.where(is_write, choices,
                        np.where(is_crash, negv,
                                 np.where(is_loss, negv - n, negv - 2 * n)))
        bitv = np.uint64(1) << (node - 1).astype(np.uint64)
        live = ~self.dead

        # -- resolve the produced message (write / loss / dup lanes)
        produces = (is_write | is_loss | is_dup) & live
        rec = np.full(self.size, -1, dtype=np.int64)
        idx = np.nonzero(produces)[0]
        if cell.model.asynchronous:
            if cell._static_rec_arr is not None:
                rec[idx] = cell._static_rec_arr[node[idx] - 1]
            else:
                rec[idx] = self.frozen[idx, node[idx] - 1]
        else:
            for i in idx:
                try:
                    rec[i] = cell._rec_for(int(node[i]), int(self.view[i]))
                except Exception as exc:
                    self._kill(int(i), exc)
            live = ~self.dead
            produces &= live
            idx = np.nonzero(produces)[0]

        # -- bit sizes (lazy per record) and the budget check
        bits = np.zeros(self.size, dtype=np.int64)
        if idx.size:
            barr = cell._bits_np_for(int(rec[idx].max()))
            lane_bits = barr[rec[idx]]
            unknown = idx[lane_bits < 0]
            if unknown.size:
                for i in unknown:
                    try:
                        cell._bits_of(int(rec[i]))
                    except Exception as exc:
                        self._kill(int(i), exc)
                cell._refresh_bits_np()
                live = ~self.dead
                produces &= live
                idx = np.nonzero(produces)[0]
                barr = cell._bits_np
            bits[idx] = barr[rec[idx]]
            if cell.bit_budget is not None:
                budget = cell.bit_budget
                for i in idx[bits[idx] > budget]:
                    self._kill(int(i), MessageTooLarge(
                        int(node[i]), int(bits[i]), budget))
                live = ~self.dead

        # -- set updates (masked vector expressions)
        zero64 = np.uint64(0)
        board_write = (is_write | is_dup) & live
        lossy = is_loss & live
        crashy = is_crash & live
        terminate = board_write | lossy
        self.written = self.written | np.where(terminate, bitv, zero64)
        self.active = self.active & ~np.where(terminate | crashy, bitv,
                                              zero64)
        self.crashed = self.crashed | np.where(crashy, bitv, zero64)
        self.cl = self.cl - crashy.astype(np.int64)
        self.ll = self.ll - lossy.astype(np.int64)
        self.dl = self.dl - (is_dup & live).astype(np.int64)
        if self.frozen is not None:
            cidx = np.nonzero(crashy)[0]
            if cidx.size:
                self.frozen[cidx, node[cidx] - 1] = -1

        # -- board accounting
        wbits = np.where(board_write, bits, 0)
        dup_extra = np.where(is_dup & live, bits, 0)
        self.maxb = np.maximum(self.maxb, wbits)
        self.totb = self.totb + wbits + dup_extra
        self.lastb = wbits
        self.lastt = wbits + dup_extra

        widx = np.nonzero(board_write)[0]
        if self.view is not None and widx.size:
            for i in widx:
                vid = cell._view_child_of(int(self.view[i]), int(rec[i]))
                if is_dup[i]:
                    vid = cell._view_child_of(vid, int(rec[i]))
                self.view[i] = vid
        if self.bp is not None and widx.size:
            for i in widx:
                kid = cell._key_id_of(int(rec[i]))
                bp = cell._bp_child_of(int(self.bp[i]), kid)
                if is_dup[i]:
                    bp = cell._bp_child_of(bp, kid)
                self.bp[i] = bp

        # -- activation pass (board changed: write/dup lanes only)
        event = self.depth + 1
        if not cell.model.simultaneous and widx.size:
            for i in widx:
                if self.dead[i]:
                    continue
                self._activation_lane(int(i), int(event[i]))

        self.depth = event
        if self.sched is not None:
            self.sched = cell._sched_append(self.sched, choices)
        return self

    def _advance_reliable_simasync(self, choices) -> "BatchedExecutionState":
        """The all-write fast path for fault-free simultaneous
        asynchronous lanes: static per-node records, no activation
        pass, no view dependence — a handful of array expressions.
        Effect-for-effect identical to the general :meth:`advance_all`
        body (every lane is a write of a static record)."""
        cell = self.cell
        bitv = np.uint64(1) << (choices - 1).astype(np.uint64)
        rec = cell._static_rec_arr[choices - 1]
        barr = cell._bits_np_for(int(cell._static_rec_arr.max()))
        bits = barr[rec]
        unknown = np.nonzero(bits < 0)[0]
        if unknown.size:
            for i in unknown:
                try:
                    cell._bits_of(int(rec[i]))
                except Exception as exc:
                    self._kill(int(i), exc)
            cell._refresh_bits_np()
            bits = cell._bits_np[rec]
        if cell.bit_budget is not None:
            budget = cell.bit_budget
            for i in np.nonzero(bits > budget)[0]:
                if not self.dead[i]:
                    self._kill(int(i), MessageTooLarge(
                        int(choices[i]), int(bits[i]), budget))
        if self.violations:
            live = ~self.dead
            bitv = np.where(live, bitv, np.uint64(0))
            bits = np.where(live, bits, 0)
        self.written = self.written | bitv
        self.active = self.active & ~bitv
        self.maxb = np.maximum(self.maxb, bits)
        self.totb = self.totb + bits
        self.lastb = bits
        self.lastt = bits
        if self.view is not None:
            view_child = cell._view_child_of
            view = self.view.tolist()
            for i, (vid, r) in enumerate(zip(view, rec.tolist())):
                if not self.dead[i]:
                    view[i] = view_child(vid, r)
            self.view = np.array(view, dtype=np.int64)
        if self.bp is not None:
            key_id = cell._key_id_of
            bp_child = cell._bp_child_of
            bp = self.bp.tolist()
            for i, (b, r) in enumerate(zip(bp, rec.tolist())):
                if not self.dead[i]:
                    bp[i] = bp_child(b, key_id(r))
            self.bp = np.array(bp, dtype=np.int64)
        self.depth = self.depth + 1
        if self.sched is not None:
            self.sched = cell._sched_append(self.sched, choices)
        return self

    def _activation_lane(self, lane: int, event: int) -> None:
        """The scalar activation pass for one lane of a free-activation
        model (nodes ascending, against the post-write board)."""
        cell = self.cell
        settled = int(self.active[lane] | self.written[lane]
                      | self.crashed[lane])
        vid = int(self.view[lane])
        mask = int(self.active[lane])
        for v in cell.graph.nodes():
            if settled & (1 << (v - 1)):
                continue
            try:
                if not cell._wants(v, vid):
                    continue
                mask |= 1 << (v - 1)
                self.act[lane, v - 1] = event
                if cell.model.asynchronous:
                    self.frozen[lane, v - 1] = cell._rec_for(v, vid)
            except Exception as exc:
                self._kill(lane, exc)
                break
        self.active[lane] = np.uint64(mask)

    # -- scalar-equivalent digests -------------------------------------

    def _frozen_part_id(self, lane: int, active_mask: int) -> int:
        cell = self.cell
        if cell._static_rec is not None:
            fid = cell._frozen_by_active.get(active_mask)
            if fid is None:
                part = tuple(
                    (v, cell._frozen_key_id_of(cell._static_rec[v - 1]))
                    for v in _iter_bits(active_mask)
                )
                fid = cell._frozen_intern.setdefault(
                    part, len(cell._frozen_intern))
                cell._frozen_by_active[active_mask] = fid
            return fid
        part = tuple(
            (v, cell._frozen_key_id_of(int(self.frozen[lane, v - 1])))
            for v in _iter_bits(active_mask)
        )
        return cell._frozen_intern.setdefault(part, len(cell._frozen_intern))

    def _act_part_id(self, lane: int) -> int:
        cell = self.cell
        if cell.model.simultaneous:
            return -1
        row = self.act[lane]
        part = tuple((v, int(row[v - 1])) for v in cell.graph.nodes()
                     if row[v - 1] >= 0)
        return cell._act_intern.setdefault(part, len(cell._act_intern))

    def dedupe_key_of(self, lane: int) -> tuple:
        """A compact integer tuple equal between two lanes iff their
        scalar ``config_key()`` digests are equal — the beam dedupe
        currency (raises the same ``ProtocolViolation`` the scalar
        digest would on a non-payload frozen message)."""
        if self.bp is None:
            raise ValueError("board chains were not tracked for this batch")
        cell = self.cell
        active = int(self.active[lane])
        frozen_id = (self._frozen_part_id(lane, active)
                     if cell.model.asynchronous else -1)
        base = (int(self.bp[lane]), int(self.written[lane]), active,
                frozen_id, self._act_part_id(lane))
        if cell.faults.enabled:
            return base + (int(self.crashed[lane]), int(self.cl[lane]),
                           int(self.ll[lane]), int(self.dl[lane]))
        return base

    def _dedupe_key_builder(self):
        """A per-lane closure producing :meth:`dedupe_key_of` tuples
        from pre-gathered columns — the beam calls it once per sorted
        child, so the per-call numpy scalar indexing adds up."""
        if self.bp is None:
            raise ValueError("board chains were not tracked for this batch")
        cell = self.cell
        if (cell.faults.enabled or not cell.model.simultaneous
                or (cell.model.asynchronous and cell._static_rec is None)):
            return self.dedupe_key_of
        bp_l = self.bp.tolist()
        written_l = self.written.tolist()
        active_l = self.active.tolist()
        if not cell.model.asynchronous:
            def build(lane: int) -> tuple:
                return (bp_l[lane], written_l[lane], active_l[lane], -1, -1)
            return build
        frozen_id = self._frozen_part_id

        def build(lane: int) -> tuple:
            active = active_l[lane]
            return (bp_l[lane], written_l[lane], active,
                    frozen_id(lane, active), -1)
        return build

    def _board_recs(self, lane: int) -> list[int]:
        """Board entry records in write order (duplicates twice)."""
        cell = self.cell
        if self.view is not None:
            return cell._view_recs(int(self.view[lane]))
        recs: list[int] = []
        n = cell.n
        for choice in self.schedule_of(lane):
            if choice > 0:
                recs.append(cell._static_rec[choice - 1])
            elif -choice > 2 * n:  # duplication
                rec = cell._static_rec[-choice - 2 * n - 1]
                recs.extend((rec, rec))
        return recs

    def config_key_of(self, lane: int) -> tuple:
        """The lane's configuration digest, bit-identical to the scalar
        ``ExecutionState.config_key()``."""
        cell = self.cell
        keys = []
        for rec in self._board_recs(lane):
            cell._key_id_of(rec)
            keys.append(cell._rec_key[rec])
        frozen_part = None
        if cell.model.asynchronous:
            part = []
            for v in _iter_bits(int(self.active[lane])):
                rec = (cell._static_rec[v - 1] if cell._static_rec is not None
                       else int(self.frozen[lane, v - 1]))
                cell._frozen_key_id_of(rec)
                part.append((v, cell._rec_key[rec]))
            part.sort()
            frozen_part = tuple(part)
        row = self.act[lane]
        base = (
            tuple(keys),
            frozenset(_iter_bits(int(self.written[lane]))),
            frozenset(_iter_bits(int(self.active[lane]))),
            frozen_part,
            tuple((v, int(row[v - 1])) for v in cell.graph.nodes()
                  if row[v - 1] >= 0),
        )
        if cell.faults.enabled:
            return base + (
                frozenset(_iter_bits(int(self.crashed[lane]))),
                (int(self.cl[lane]), int(self.ll[lane]),
                 int(self.dl[lane])),
            )
        return base

    def suffix_bound_of(self, lane: int) -> Optional[tuple]:
        """The lane's admissible completion bound, field-identical to
        the scalar ``ExecutionState.suffix_bound()``."""
        cell = self.cell
        unterminated = (cell.n - int(self.written[lane]).bit_count()
                        - int(self.crashed[lane]).bit_count())
        if unterminated == 0:
            return (False, 0, 0)
        active_mask = int(self.active[lane])
        active_count = active_mask.bit_count()
        deadlock_possible = active_count != unterminated
        budget = cell.bit_budget
        top = 0
        total = 0
        if cell.model.asynchronous:
            for v in _iter_bits(active_mask):
                rec = (cell._static_rec[v - 1]
                       if cell._static_rec is not None
                       else int(self.frozen[lane, v - 1]))
                try:
                    bits = cell._bits_of(rec)
                except ProtocolViolation:
                    return None  # the write itself will raise it
                if bits > top:
                    top = bits
                total += bits
            inactive = unterminated - active_count
        else:
            inactive = unterminated
        if inactive:
            if budget is None:
                return None
            if budget > top:
                top = budget
            total += inactive * budget
        dups_left = int(self.dl[lane])
        if dups_left:
            total += dups_left * top
        return (deadlock_possible, top, total)

    # -- results -------------------------------------------------------

    def result_of(self, lane: int) -> RunResult:
        """Freeze a terminal lane into a :class:`RunResult`,
        field-identical to the scalar ``result()``.  Decoding many
        lanes of one batch?  Use :meth:`_result_builder` — this
        convenience re-gathers the batch columns on every call."""
        return self._result_builder()(lane)

    def _result_builder(self):
        """A terminal-lane → :class:`RunResult` closure over columns
        gathered once per batch (``result_of`` per lane costs O(batch)
        in whole-array numpy reads, which dominates enumeration)."""
        cell = self.cell
        n = cell.n
        done_l = self.done_mask().tolist()
        maxb_l = self.maxb.tolist()
        totb_l = self.totb.tolist()
        crashed_l = self.crashed.tolist()
        act_l = self.act.tolist()
        view_l = self.view.tolist() if self.view is not None else None
        sched_tuple = cell._sched_tuple_of
        sched_l = self.sched.tolist() if self.sched is not None else None
        nodes = list(cell.graph.nodes())
        static = cell._static_rec

        def build(lane: int) -> RunResult:
            if sched_l is None:
                raise ValueError("schedules were not tracked for this batch")
            schedule = sched_tuple(sched_l[lane])
            if view_l is not None:
                recs = cell._view_recs(view_l[lane])
            else:
                recs = []
                for choice in schedule:
                    if choice > 0:
                        recs.append(static[choice - 1])
                    elif -choice > 2 * n:  # duplication
                        rec = static[-choice - 2 * n - 1]
                        recs.extend((rec, rec))
            entries: list[Entry] = []
            pos = 0
            for event0, choice in enumerate(schedule):
                event = event0 + 1
                if choice > 0 or -choice > 2 * n:
                    author = choice if choice > 0 else -choice - 2 * n
                    copies = 1 if choice > 0 else 2
                    for _ in range(copies):
                        rec = recs[pos]
                        entries.append(Entry(
                            index=len(entries), author=author,
                            payload=cell._rec_payload[rec],
                            bits=cell._bits_of(rec), round_written=event))
                        pos += 1
            board = Whiteboard(entries=entries)
            success = done_l[lane]
            output = None
            output_error = None
            if success:
                view = BoardView(tuple(e.payload for e in entries))
                if cell.faults.enabled:
                    try:
                        output = cell.proto.output(view, n)
                    except Exception as exc:  # noqa: BLE001 - verdict
                        output_error = f"{type(exc).__name__}: {exc}"
                else:
                    output = cell.proto.output(view, n)
            row = act_l[lane]
            activation = {v: row[v - 1] for v in sorted(
                (v for v in nodes if row[v - 1] >= 0),
                key=lambda v: (row[v - 1], v))}
            return RunResult(
                success=success,
                output=output,
                board=board,
                write_order=tuple(e.author for e in entries),
                activation_round=activation,
                max_message_bits=maxb_l[lane],
                total_bits=totb_l[lane],
                model=cell.model,
                protocol_name=cell.proto.name,
                n=n,
                schedule=schedule,
                crashed=frozenset(_iter_bits(crashed_l[lane])),
                output_error=output_error,
            )

        return build

    # -- work partitioning ---------------------------------------------

    def subtree_weights(self):
        """Estimated remaining-subtree size per lane: factorial of the
        unterminated node count, scaled by the unspent fault budget —
        the LPT weight :func:`partition_lots` balances."""
        remaining = self.cell.n - np.bitwise_count(
            self.written | self.crashed).astype(np.int64)
        fact = np.array([math.factorial(min(int(r), 20))
                         for r in remaining], dtype=np.float64)
        return fact * (1.0 + (self.cl + self.ll + self.dl))


def partition_weighted(weights, lots: int) -> list:
    """Split ``range(len(weights))`` into ``lots`` roughly equal-weight
    groups.

    Longest-processing-time greedy: items descending by weight (stable,
    so equal weights keep their index order — the deterministic
    tie-break), each assigned to the currently lightest lot.  Returns a
    list of ascending int64 index arrays that partition the items; empty
    groups are dropped, so an empty input yields an empty list.
    """
    weights = np.asarray(weights, dtype=np.float64)
    count = int(weights.shape[0])
    if count == 0:
        return []
    lots = max(1, min(int(lots), count))
    order = np.argsort(-weights, kind="stable")
    heap = [(0.0, i) for i in range(lots)]
    heapq.heapify(heap)
    members: list[list[int]] = [[] for _ in range(lots)]
    for item in order.tolist():
        load, slot = heapq.heappop(heap)
        members[slot].append(item)
        heapq.heappush(heap, (load + float(weights[item]), slot))
    return [np.array(sorted(group), dtype=np.int64)
            for group in members if group]


def partition_lots(batch: BatchedExecutionState, lots: int) -> list:
    """Split lanes into ``lots`` roughly equal-weight groups — the LPT
    greedy of :func:`partition_weighted` over :meth:`subtree_weights`,
    the balanced fan-out used before enumeration recursion and by the
    process-sharded lot drivers."""
    return partition_weighted(batch.subtree_weights(), lots)


#: Above this frontier width the enumeration drivers split into lots of
#: about half the cap before fanning out, bounding peak lane memory.
_MAX_LANES = 1 << 14


def _choice_rank(choice: int, n: int) -> int:
    """Rank of a choice inside the scalar candidate order: writes
    ascending, then crash / loss / duplication events ascending."""
    if choice > 0:
        return choice
    v = -choice
    if v <= n:
        return n + v
    if v <= 2 * n:
        return 2 * n + (v - n)
    return 3 * n + (v - 2 * n)


def _walk_terminals(root: BatchedExecutionState, collect, count_only: bool,
                    max_lanes: int = _MAX_LANES) -> int:
    """Drive the batched frontier to every terminal configuration.

    ``collect`` (when not ``count_only``) receives ``(batch, lane)``
    pairs for each terminal lane; returns the terminal count.  Raises
    :class:`BatchAborted` on any captured per-lane violation — the
    scalar engine is the authority on *where* in DFS order to raise.
    """
    total = 0
    stack = [root]
    while stack:
        frontier = stack.pop()
        while frontier.size:
            if frontier.violations:
                raise BatchAborted(
                    f"lane violation: {frontier.violations[frontier.first_violation()]!r}")
            terminal = frontier.terminal_mask()
            tidx = np.nonzero(terminal)[0]
            if tidx.size:
                total += int(tidx.size)
                if not count_only:
                    terms = frontier.compact(tidx)
                    for lane in range(terms.size):
                        collect(terms, lane)
            live = np.nonzero(~terminal)[0]
            if live.size == 0:
                break
            frontier = frontier.compact(live)
            if frontier.size > max_lanes:
                for lot in partition_lots(
                        frontier, -(-frontier.size // (max_lanes // 2))):
                    stack.append(frontier.compact(lot))
                break
            lanes, choices = frontier.expansion()
            frontier = frontier.fork(lanes, choices)
    return total


def batched_count_executions(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
    faults: Union[None, str, FaultSpec] = None,
) -> int:
    """Size of the adversary's choice tree, counted breadth-wise on the
    batched core — no per-leaf decode, no ``RunResult`` objects, which
    is the whole enumeration win.  Equals the scalar
    ``count_executions`` exactly (pinned by tests); raises
    :class:`BatchAborted` when a lane violates, in which case callers
    re-run the scalar reference."""
    cell = _BatchCell(graph, protocol, model, None, faults)
    root = BatchedExecutionState.root(cell, track_sched=False)
    return _walk_terminals(root, None, count_only=True)


def batched_all_executions(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
    bit_budget: Optional[int] = None,
    faults: Union[None, str, FaultSpec] = None,
):
    """Every terminal :class:`RunResult` of the cell, in the scalar
    DFS order.

    The tree walk is eager (breadth-wise, so results must be re-sorted
    into depth-first order by schedule rank) and raises
    :class:`BatchAborted` *before* anything is yielded if any lane
    violated; per-leaf decoding is deferred to iteration time, so
    partially consumed iterators never pay for unread results.
    """
    cell = _BatchCell(graph, protocol, model, bit_budget, faults)
    root = BatchedExecutionState.root(cell)
    leaves: list[tuple[BatchedExecutionState, int]] = []
    _walk_terminals(root, lambda batch, lane: leaves.append((batch, lane)),
                    count_only=False)
    n = cell.n
    leaves.sort(key=lambda item: tuple(
        _choice_rank(c, n) for c in item[0].schedule_of(item[1])))

    def _results() -> Iterator[RunResult]:
        builders: dict[int, Any] = {}  # id() is stable: leaves pins batches
        for batch, lane in leaves:
            builder = builders.get(id(batch))
            if builder is None:
                builder = builders[id(batch)] = batch._result_builder()
            yield builder(lane)

    return _results()


# ----------------------------------------------------------------------
# lot-sharded enumeration: picklable sub-tasks over schedule prefixes
# ----------------------------------------------------------------------

def _normalize_key(obj):
    """Config-key component with frozensets replaced by sorted tuples
    (frozenset iteration order is not stable across processes; every
    other component is ints/None/tuples whose repr is)."""
    if isinstance(obj, frozenset):
        return ("fs",) + tuple(sorted(obj))
    if isinstance(obj, tuple):
        return tuple(_normalize_key(x) for x in obj)
    return obj


def config_key_digest(key) -> bytes:
    """Process-stable digest of an ``ExecutionState.config_key()``.

    Two keys digest equal iff they are equal: the only order-unstable
    components of a config key are frozensets of ints, normalized to
    sorted tuples before hashing.  Sharded searches exchange these
    digests instead of raw keys (16 bytes each, picklable, and identical
    no matter which process computed them)."""
    return hashlib.blake2b(repr(_normalize_key(key)).encode(),
                           digest_size=16).digest()


@dataclass(frozen=True)
class ScheduleLot:
    """One picklable, replayable enumeration sub-task.

    A lot is a set of schedule-prefix backpointers into one cell's
    choice tree: each prefix names a subtree root (all prefixes share
    one depth, so a worker reconstructs its
    :class:`BatchedExecutionState` slice by replicating the root lane
    and advancing the prefix choices column-wise).  Workers walk every
    subtree to its terminals — batched when the cell supports it, by
    the scalar reference otherwise — and return per-prefix results in
    scalar DFS order, so the parent can reassemble the global DFS order
    from submission-ordered lot outputs.
    """

    graph: LabeledGraph
    protocol: Protocol
    model_name: str
    bit_budget: Optional[int]
    faults: Optional[str]  # canonical spec string (process-stable)
    prefixes: tuple[tuple[int, ...], ...]
    batch: bool
    collect: bool  # False = count terminals only

    @property
    def model(self) -> ModelSpec:
        return MODELS_BY_NAME[self.model_name]


def _lot_root_slice(lot: ScheduleLot, cell: _BatchCell,
                    track_sched: bool) -> BatchedExecutionState:
    """Reconstruct the lot's frontier slice: replicate the root lane
    once per prefix, then advance the prefix choices column-wise (all
    prefixes share one depth by construction)."""
    root = BatchedExecutionState.root(cell, track_sched=track_sched)
    k = len(lot.prefixes)
    batch = root.compact(np.zeros(k, dtype=np.int64))
    for level in range(len(lot.prefixes[0])):
        batch.advance_all(np.array([p[level] for p in lot.prefixes],
                                   dtype=np.int64))
    return batch


def _run_lot_batched(lot: ScheduleLot, model: ModelSpec):
    cell = _BatchCell(lot.graph, lot.protocol, model, lot.bit_budget,
                      lot.faults)
    if not lot.collect:
        slice_ = _lot_root_slice(lot, cell, track_sched=False)
        return _walk_terminals(slice_, None, count_only=True)
    slice_ = _lot_root_slice(lot, cell, track_sched=True)
    leaves: list[tuple[BatchedExecutionState, int]] = []
    _walk_terminals(slice_, lambda batch, lane: leaves.append((batch, lane)),
                    count_only=False)
    n = cell.n
    leaves.sort(key=lambda item: tuple(
        _choice_rank(c, n) for c in item[0].schedule_of(item[1])))
    depth = len(lot.prefixes[0])
    position = {prefix: i for i, prefix in enumerate(lot.prefixes)}
    groups: list[list[RunResult]] = [[] for _ in lot.prefixes]
    builders: dict[int, Any] = {}
    for batch, lane in leaves:
        builder = builders.get(id(batch))
        if builder is None:
            builder = builders[id(batch)] = batch._result_builder()
        groups[position[batch.schedule_of(lane)[:depth]]].append(builder(lane))
    return groups


def _run_lot_scalar(lot: ScheduleLot, model: ModelSpec):
    total = 0
    groups: list[list[RunResult]] = []
    for prefix in lot.prefixes:
        state = ExecutionState.initial(lot.graph, lot.protocol, model,
                                       lot.bit_budget, faults=lot.faults)
        for choice in prefix:
            state.advance(choice)
        group: Optional[list[RunResult]] = [] if lot.collect else None

        def dfs() -> int:
            if state.terminal:
                if group is not None:
                    group.append(state.result())
                return 1
            count = 0
            for choice in state.candidates:
                checkpoint = state.snapshot()
                state.advance(choice)
                count += dfs()
                state.restore(checkpoint)
            return count

        total += dfs()
        if group is not None:
            groups.append(group)
    return groups if lot.collect else total


def run_schedule_lot(lot: ScheduleLot):
    """Worker entry point (module-level so process pools can pickle it).

    Returns ``("ok", value)`` — per-prefix result lists in scalar DFS
    order when collecting, the terminal count otherwise — or
    ``("error", message)``.  Errors are *markers*, never re-raised
    results: the parent discards the whole sharded attempt and re-runs
    the serial authority, which raises the original exception at
    exactly the right point in DFS order.
    """
    try:
        model = lot.model
        if lot.batch and batch_supported(lot.graph, lot.protocol, model):
            try:
                return ("ok", _run_lot_batched(lot, model))
            except BatchAborted:
                pass  # scalar walk below raises/collects authoritatively
        return ("ok", _run_lot_scalar(lot, model))
    except Exception as exc:  # noqa: BLE001 - marker, parent re-runs serial
        return ("error", f"{type(exc).__name__}: {exc}")


def expand_enumeration_units(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
    bit_budget: Optional[int],
    faults: Union[None, str, FaultSpec],
    min_prefixes: int,
    max_depth: int = 3,
) -> list:
    """Bounded scalar DFS expansion into an ordered *unit* list.

    Units appear in exact scalar DFS order: ``("result", RunResult)``
    for configurations that terminate above the frontier, and
    ``("prefix", schedule)`` for depth-``d`` subtree roots.  All
    prefixes share the one depth ``d`` — the smallest depth (iterative
    deepening up to ``max_depth``) whose frontier has at least
    ``min_prefixes`` subtrees, so lots reconstruct their batched slice
    with column-wise prefix replay.  Exceptions propagate raw; callers
    fall back to the serial authority, which raises identically.
    """
    for depth in range(1, max_depth + 1):
        units: list = []
        state = ExecutionState.initial(graph, protocol, model, bit_budget,
                                       faults=faults)

        def walk(remaining: int) -> None:
            if state.terminal:
                units.append(("result", state.result()))
                return
            if remaining == 0:
                units.append(("prefix", state.schedule))
                return
            for choice in state.candidates:
                checkpoint = state.snapshot()
                state.advance(choice)
                walk(remaining - 1)
                state.restore(checkpoint)

        walk(depth)
        prefixes = sum(1 for kind, _ in units if kind == "prefix")
        if prefixes == 0 or prefixes >= min_prefixes or depth == max_depth:
            return units
    return units  # pragma: no cover - loop always returns


def _prefix_weights(prefixes, n: int, faults: Union[None, str, FaultSpec]):
    """LPT weights for same-depth subtree roots: the
    :meth:`BatchedExecutionState.subtree_weights` estimate, computable
    without reconstructing lanes (every prefix event terminates one
    node, so remaining depth is uniform)."""
    spec = resolve_faults(faults)
    slack = 1.0 + (spec.max_crashes + spec.max_losses
                   + spec.max_duplications)
    return [math.factorial(min(n - len(p), 20)) * slack for p in prefixes]


def _build_lots(graph, protocol, model, bit_budget, faults, prefixes,
                batch: bool, collect: bool, jobs: int) -> list[ScheduleLot]:
    canonical = resolve_faults(faults).canonical()
    weights = _prefix_weights(prefixes, graph.n, faults)
    return [
        ScheduleLot(graph, protocol, model.name, bit_budget, canonical,
                    tuple(prefixes[i] for i in idx.tolist()), batch, collect)
        for idx in partition_weighted(weights, jobs * 2)
    ]


def _map_lots(lots, jobs: int):
    """Fan lots through the process backend's submission-ordered map
    seam (one future per lot — lots are already LPT-balanced)."""
    from ..runtime.backends import ProcessPoolBackend

    backend = ProcessPoolBackend(jobs=jobs, chunk_size=1)
    return list(backend.map(run_schedule_lot, lots))


def sharded_all_executions(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
    bit_budget: Optional[int] = None,
    faults: Union[None, str, FaultSpec] = None,
    batch: bool = False,
    jobs: int = 2,
) -> Optional[list]:
    """Every terminal :class:`RunResult`, enumerated by ``jobs`` worker
    processes over balanced subtree lots, in exact scalar DFS order.

    Returns ``None`` whenever the sharded path cannot *prove* field
    identity — expansion raised, a worker errored or aborted, or the
    frontier is too small to split — and the caller falls back to the
    serial authority (which also re-raises any exception at the right
    point).  Like the batch knob, sharding never changes an observable
    value; it only produces the same values on more cores.
    """
    if np is None:
        return None
    try:
        units = expand_enumeration_units(graph, protocol, model, bit_budget,
                                         faults, min_prefixes=2 * jobs)
    except Exception:  # noqa: BLE001 - serial authority re-raises
        return None
    prefixes = [payload for kind, payload in units if kind == "prefix"]
    if not prefixes:
        return [payload for _, payload in units]
    if len(prefixes) < 2:
        return None
    lots = _build_lots(graph, protocol, model, bit_budget, faults, prefixes,
                       batch, collect=True, jobs=jobs)
    try:
        outputs = _map_lots(lots, jobs)
    except Exception:  # noqa: BLE001 - pool failure: serial authority
        return None
    per_prefix: dict[tuple[int, ...], list[RunResult]] = {}
    for lot, (status, value) in zip(lots, outputs):
        if status != "ok":
            return None
        for prefix, group in zip(lot.prefixes, value):
            per_prefix[prefix] = group
    results: list[RunResult] = []
    for kind, payload in units:
        if kind == "result":
            results.append(payload)
        else:
            results.extend(per_prefix[payload])
    return results


def sharded_count_executions(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
    faults: Union[None, str, FaultSpec] = None,
    batch: bool = False,
    jobs: int = 2,
) -> Optional[int]:
    """Terminal count via worker-sharded subtree lots (``None`` = fall
    back to the serial path, same contract as
    :func:`sharded_all_executions`)."""
    if np is None:
        return None
    try:
        units = expand_enumeration_units(graph, protocol, model, None,
                                         faults, min_prefixes=2 * jobs)
    except Exception:  # noqa: BLE001 - serial authority re-raises
        return None
    prefixes = [payload for kind, payload in units if kind == "prefix"]
    terminal_above = sum(1 for kind, _ in units if kind == "result")
    if not prefixes:
        return terminal_above
    if len(prefixes) < 2:
        return None
    lots = _build_lots(graph, protocol, model, None, faults, prefixes,
                       batch, collect=False, jobs=jobs)
    try:
        outputs = _map_lots(lots, jobs)
    except Exception:  # noqa: BLE001 - pool failure: serial authority
        return None
    total = terminal_above
    for status, value in outputs:
        if status != "ok":
            return None
        total += value
    return total
