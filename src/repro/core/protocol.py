"""Protocol interface.

A *protocol* (Section 2 of the paper) is, per node, a pair of functions:

* ``act`` — should an awake node raise its hand?  (Simultaneous models
  override this: everyone activates after the first round.)
* ``msg`` — the single message the node will write.  In synchronous
  models this is re-evaluated while the node waits (it may "change its
  mind"); in asynchronous models the simulator freezes the value
  computed at activation time.

plus one global ``out`` function evaluated on the final whiteboard.

Every function sees only the paper-legal inputs, bundled in a
:class:`NodeView`: the node's identifier, its neighbours' identifiers,
``n``, and the whiteboard payloads.  Protocols must not carry hidden
per-run mutable state unless they override :meth:`Protocol.fresh` to
return a clean instance per execution (the hierarchy adapters do).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from ..encoding.bits import Payload
from .whiteboard import BoardView

__all__ = ["NodeView", "Protocol"]


@dataclass(frozen=True)
class NodeView:
    """Everything a node is allowed to know when deciding/acting.

    Attributes
    ----------
    node:
        The node's own identifier ``ID(v)``.
    neighbors:
        The identifiers of its neighbours ``N(v)``.
    n:
        Total number of nodes (known to all nodes in the paper's model).
    board:
        Ordered whiteboard payloads visible so far.
    """

    node: int
    neighbors: frozenset[int]
    n: int
    board: BoardView

    @property
    def degree(self) -> int:
        return len(self.neighbors)


class Protocol(ABC):
    """Base class for whiteboard protocols.

    Subclasses implement :meth:`message` and :meth:`output`, and override
    :meth:`wants_to_activate` when designed for a free model
    (``ASYNC``/``SYNC``).  The default activation rule — activate
    immediately — is what simultaneous protocols need and is also a valid
    (if eager) free-model behaviour.
    """

    #: Human-readable protocol name used in reports.
    name: str = "protocol"

    #: The weakest model family the protocol is designed for; purely
    #: informational (simulations may run it under any stronger model).
    designed_for: str = "SIMASYNC"

    def fresh(self) -> "Protocol":
        """Return an instance safe to use for one execution.

        Stateless protocols (the default) return ``self``; stateful ones
        (e.g. freeze adapters) must return a new object.
        """
        return self

    def wants_to_activate(self, view: NodeView) -> bool:
        """Free-model activation decision for an awake node.

        Called once per write event with the current board; returning
        ``True`` is irrevocable (the node raises its hand).  Ignored in
        simultaneous models, where every node activates after round 1.
        """
        return True

    @abstractmethod
    def message(self, view: NodeView) -> Payload:
        """The node's single whiteboard message.

        Asynchronous models call this exactly once, at activation;
        synchronous models call it when the adversary picks the node, so
        ``view.board`` reflects everything written before the write.
        """

    @abstractmethod
    def output(self, board: BoardView, n: int) -> Any:
        """The protocol output computed from the final whiteboard."""
