"""Exception hierarchy for the whiteboard simulator."""

from __future__ import annotations

__all__ = [
    "WhiteboardError",
    "MessageTooLarge",
    "ProtocolViolation",
    "SchedulerError",
]


class WhiteboardError(Exception):
    """Base class for simulator errors."""


class MessageTooLarge(WhiteboardError):
    """A node tried to write more bits than the model's budget ``f(n)``.

    Raised only when the simulation is given an explicit bit budget;
    unbudgeted runs record sizes without enforcing them.
    """

    def __init__(self, node: int, bits: int, budget: int) -> None:
        super().__init__(
            f"node {node} wrote {bits} bits, exceeding the budget of {budget}"
        )
        self.node = node
        self.bits = bits
        self.budget = budget

    def __reduce__(self):
        # Exception.args holds only the formatted message; rebuild from the
        # real fields so worker processes can ship this across a pool.  The
        # state dict keeps extras like PEP 678 notes attached in transit.
        return (MessageTooLarge, (self.node, self.bits, self.budget),
                dict(self.__dict__))


class ProtocolViolation(WhiteboardError):
    """A protocol broke a model rule (e.g. produced a non-payload message,
    or tried to write twice)."""


class SchedulerError(WhiteboardError):
    """The adversary returned a node that is not eligible to write."""
