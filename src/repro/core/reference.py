"""Reference configuration semantics (Section 2.1) and differential
validation.

Section 2.1 defines executions as sequences of *configurations*
``(s, m, W)`` — global node states, local memories, whiteboard — with a
valid-successor relation.  The event-loop engine in
:mod:`repro.core.simulator` is optimised for running many executions;
this module is its independent, deliberately straight-line counterpart:

* :func:`replay` re-executes a given write order directly from the
  configuration rules, producing the full configuration sequence;
* :func:`validate_run` replays a :class:`~repro.core.simulator.RunResult`
  and checks every Section 2 constraint, returning a list of violations
  (empty = the run is a valid execution).

Because the two implementations share no code beyond the protocol
object, agreement between them is strong evidence that the engine
implements the paper's semantics (the differential test suite runs every
protocol in the package through both).

One convention is worth stating explicitly: the paper's transition
relation computes new memories from the *previous* state, which read
literally would make a node writable only one round after it activates —
and would deadlock the paper's own layer-by-layer protocols whenever a
fresh layer is the only source of active nodes.  Both implementations
therefore use the narrative semantics ("a node becoming active ...
computes a message which is stored in its local memory", i.e. activation
and message creation are simultaneous, based on the board at the end of
the previous round).  This is the reading under which Theorem 7/10's
correctness arguments go through, and it is flagged in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Optional, Sequence

from ..encoding.bits import Payload
from ..graphs.labeled_graph import LabeledGraph
from .models import ModelSpec
from .protocol import NodeView, Protocol
from .simulator import RunResult
from .whiteboard import BoardView

__all__ = ["NodeState", "Configuration", "replay", "validate_run"]


class NodeState(Enum):
    """The paper's three node states."""

    AWAKE = "awake"
    ACTIVE = "active"
    TERMINATED = "terminated"


#: The empty message ε: a node that is not active "creates" this.
_EPSILON = None


@dataclass(frozen=True)
class Configuration:
    """One configuration ``(s, m, W)``; index 0 of the tuples is node 1."""

    states: tuple[NodeState, ...]
    memories: tuple[Optional[Payload], ...]
    board: tuple[Payload, ...]

    def state_of(self, node: int) -> NodeState:
        return self.states[node - 1]

    def memory_of(self, node: int) -> Optional[Payload]:
        return self.memories[node - 1]

    @property
    def is_final(self) -> bool:
        return NodeState.ACTIVE not in self.states

    @property
    def is_successful(self) -> bool:
        return all(s is NodeState.TERMINATED for s in self.states)

    @property
    def is_corrupted(self) -> bool:
        return self.is_final and not self.is_successful


class ReplayError(ValueError):
    """The given write order is not realisable under the semantics."""


def replay(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
    write_order: Sequence[int],
) -> list[Configuration]:
    """Execute ``write_order`` under the configuration rules.

    Returns the configuration sequence ``C_0, C_1, ...`` where ``C_0`` is
    the initial configuration, ``C_1`` the activation round, and each
    later configuration adds exactly one whiteboard message.

    Raises
    ------
    ReplayError
        If the order names an inactive/written node, or repeats a node.
    """
    proto = protocol.fresh()
    n = graph.n
    states = [NodeState.AWAKE] * (n + 1)  # index 0 unused
    memories: list[Optional[Payload]] = [_EPSILON] * (n + 1)
    board: list[Payload] = []
    written: set[int] = set()
    configs: list[Configuration] = []

    def snapshot() -> Configuration:
        return Configuration(
            tuple(states[1:]), tuple(memories[1:]), tuple(board)
        )

    def view_of(v: int) -> NodeView:
        return NodeView(v, graph.neighbors(v), n, BoardView(tuple(board)))

    def activation_round() -> None:
        # Simultaneous decisions on the same board snapshot.
        decisions = []
        for v in graph.nodes():
            if states[v] is not NodeState.AWAKE:
                continue
            if model.simultaneous:
                should = not board  # act(v, N, ∅, awake) = active
            else:
                should = bool(proto.wants_to_activate(view_of(v)))
            decisions.append((v, should))
        for v, should in decisions:
            if should:
                states[v] = NodeState.ACTIVE
                # Narrative semantics: memory created at activation.
                memories[v] = proto.message(view_of(v))

    configs.append(snapshot())  # C_0
    activation_round()
    configs.append(snapshot())  # C_1 — "after the first round"

    for writer in write_order:
        if not (1 <= writer <= n):
            raise ReplayError(f"no node {writer}")
        if writer in written:
            raise ReplayError(f"node {writer} already wrote")
        if states[writer] is not NodeState.ACTIVE:
            raise ReplayError(f"node {writer} is not active")
        if model.asynchronous:
            payload = memories[writer]
        else:
            # Synchronous right to change one's mind: recompute now.
            payload = proto.message(view_of(writer))
            memories[writer] = payload
        board.append(payload)
        written.add(writer)
        states[writer] = NodeState.TERMINATED
        activation_round()
        configs.append(snapshot())

    return configs


def validate_run(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
    result: RunResult,
) -> list[str]:
    """Differentially validate an engine run against the reference
    semantics.  Returns human-readable violations (empty = valid)."""
    violations: list[str] = []
    try:
        configs = replay(graph, protocol, model, result.write_order)
    except ReplayError as exc:
        return [f"write order not realisable: {exc}"]

    final = configs[-1]

    # 1. Boards must agree payload-for-payload.
    engine_board = tuple(e.payload for e in result.board.entries)
    if engine_board != final.board:
        violations.append(
            f"board mismatch: engine {engine_board!r} vs reference {final.board!r}"
        )

    # 2. Success/corruption classification must agree.
    if result.success != final.is_successful:
        violations.append(
            f"termination mismatch: engine success={result.success}, "
            f"reference successful={final.is_successful}"
        )
    if result.corrupted and not final.is_corrupted:
        # The engine stops at the first activeless configuration; the
        # reference replay of the same prefix must also be final.
        violations.append("engine reported deadlock but reference has active nodes")

    # 3. Exactly one new message per post-activation configuration.
    for i in range(2, len(configs)):
        if len(configs[i].board) != len(configs[i - 1].board) + 1:
            violations.append(f"configuration {i} did not add exactly one message")

    # 4. Simultaneous models: nobody is awake after the first round.
    if model.simultaneous and len(configs) > 1:
        if any(s is NodeState.AWAKE for s in configs[1].states):
            violations.append("simultaneous model left a node awake after round 1")

    # 5. Asynchronous models: memories never change once non-ε.
    if model.asynchronous:
        for v in graph.nodes():
            seen: Optional[Payload] = _EPSILON
            for cfg in configs:
                mem = cfg.memory_of(v)
                if seen is _EPSILON:
                    seen = mem
                elif mem is not _EPSILON and mem != seen:
                    violations.append(
                        f"async node {v} changed its memory from {seen!r} to {mem!r}"
                    )
                    break

    # 6. Writers terminate, in order.
    for idx, writer in enumerate(result.write_order):
        cfg = configs[idx + 2] if idx + 2 < len(configs) else final
        if cfg.state_of(writer) is not NodeState.TERMINATED:
            violations.append(f"writer {writer} did not terminate after writing")

    return violations
