"""Round-based execution drivers for the four whiteboard models.

Semantics (Section 2 of the paper, observable form):

1. **Activation round.**  In simultaneous models every awake node becomes
   active immediately; in free models each awake node decides from the
   (empty) whiteboard.  In asynchronous models the node's single message
   is computed *now* and frozen.
2. **Write events.**  While unwritten nodes remain: the adversary picks
   one active, unwritten node; its message (frozen value in asynchronous
   models, recomputed from the current board in synchronous ones) is
   appended to the whiteboard and the node terminates.  After each write,
   awake nodes re-examine the board and may activate (free models).
3. **Deadlock.**  If unwritten nodes remain but none is active, the
   configuration is *corrupted* (the paper's failed final configuration)
   and no output is produced.

Those semantics live in one place — the
:class:`~repro.core.execution.ExecutionState` step machine — and this
module is its classic drivers:

* :func:`run` walks one schedule chosen live by a
  :class:`~repro.core.schedulers.Scheduler`;
* :func:`all_executions` enumerates *every* schedule by depth-first
  search over adversary choices, turning the paper's "for all
  adversaries" quantifier into a finite check on small graphs.  Each
  branch point takes a :meth:`~repro.core.execution.ExecutionState.
  snapshot`, applies one choice, recurses, and restores — for stateless
  protocols (the default) that is O(1) checkpoint/undo, so every edge of
  the schedule tree is executed exactly once; stateful protocol adapters
  are restored by replay, which is always correct;
* :func:`count_executions` sizes the schedule tree.

Guided searches that *don't* want to visit the whole tree (greedy,
beam, branch-and-bound adversaries) drive the same machine from
:mod:`repro.adversaries`.  ``_all_executions_replay`` remains as the
deliberately naive replay-from-scratch reference: equivalence tests and
the perf-regression gate compare the engine against it.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Optional, Union

from ..faults.spec import FaultSpec
from ..graphs.labeled_graph import LabeledGraph
from .execution import ExecutionState, RunResult
from .models import ModelSpec
from .protocol import Protocol
from .schedulers import Scheduler

__all__ = ["RunResult", "run", "all_executions", "count_executions"]


def run(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
    scheduler: Scheduler,
    bit_budget: Optional[int] = None,
    faults: Union[None, str, FaultSpec] = None,
) -> RunResult:
    """Execute ``protocol`` on ``graph`` under ``model`` with the given
    adversary.

    Parameters
    ----------
    bit_budget:
        Optional hard cap (in bits) on every message; exceeding it raises
        :class:`~repro.core.errors.MessageTooLarge`.  ``None`` records
        sizes without enforcing.
    faults:
        Optional fault budget (spec string or
        :class:`~repro.faults.spec.FaultSpec`); fault events then appear
        among the scheduler's candidates as negative integers.
    """
    state = ExecutionState.initial(graph, protocol, model, bit_budget,
                                   faults=faults)
    sched = scheduler.fresh()
    while not state.terminal:
        writer = sched.choose(state.candidates, state.board,
                              state.activation_round)
        state.advance(writer)
    return state.result()


def all_executions(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
    bit_budget: Optional[int] = None,
    limit: Optional[int] = None,
    faults: Union[None, str, FaultSpec] = None,
    batch: bool = False,
    jobs: Optional[int] = None,
) -> Iterator[RunResult]:
    """Enumerate every execution (one per distinct adversary schedule).

    Depth-first over the tree of adversary choices, ascending choice
    order at every branch.  For simultaneous models on an ``n``-node
    graph this yields exactly ``n!`` runs, so cap usage at ``n <= 7`` or
    pass ``limit``.

    One live :class:`~repro.core.execution.ExecutionState` is steered
    through the whole tree with snapshot/restore branching: stateless
    protocols (``fresh()`` returns ``self``) undo in O(1) per backtrack,
    stateful ones restore by replay.  Both produce the same results in
    the same order (pinned against ``_all_executions_replay`` by tests).

    With a ``faults`` budget the same DFS enumerates the *joint* fault ×
    schedule space — every way the adversary can interleave crashes,
    losses, and duplications with writes — which is the exact ground
    truth the guided fault adversaries are tested against.

    ``batch=True`` routes supported cells (stateless protocol, n <= 64,
    numpy available, no ``limit``) through the batched
    structure-of-arrays core (:mod:`repro.core.batch`), which steps the
    whole frontier in lockstep and yields the *same results in the same
    order* — pinned by the batch equivalence tests.  Unsupported cells,
    and any batched run that hits a per-lane violation, silently fall
    back to this scalar reference, so ``batch=True`` never changes an
    observable outcome.

    ``jobs=N`` (N > 1) additionally shards the schedule tree across
    process workers: a bounded parent expansion produces uniform-depth
    schedule prefixes, ``partition_lots``-style LPT weighting groups
    them into picklable :class:`~repro.core.batch.ScheduleLot` sub-tasks
    fanned through ``ProcessPoolBackend.map``, and submission-order
    reassembly restores the exact serial DFS order.  Like ``batch``,
    ``jobs`` never changes an observable outcome — any worker error or
    unsupported cell falls back to this serial path, which raises at
    exactly the right point.
    """
    if jobs is not None and jobs > 1 and limit is None:
        from .batch import sharded_all_executions

        results = sharded_all_executions(graph, protocol, model, bit_budget,
                                         faults=faults, batch=batch, jobs=jobs)
        if results is not None:
            yield from results
            return
    if batch and limit is None:
        from .batch import BatchAborted, batch_supported, batched_all_executions

        if batch_supported(graph, protocol, model):
            try:
                results = batched_all_executions(
                    graph, protocol, model, bit_budget, faults=faults)
            except BatchAborted:
                results = None  # scalar rerun raises at the right point
            if results is not None:
                yield from results
                return
    state = ExecutionState.initial(graph, protocol, model, bit_budget,
                                   faults=faults)

    def dfs() -> Iterator[RunResult]:
        if state.terminal:
            yield state.result()
            return
        for choice in state.candidates:
            checkpoint = state.snapshot()
            state.advance(choice)
            yield from dfs()
            state.restore(checkpoint)

    produced = 0
    for result in dfs():
        yield result
        produced += 1
        if limit is not None and produced >= limit:
            return


def _all_executions_replay(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
    bit_budget: Optional[int],
    faults: Union[None, str, FaultSpec] = None,
) -> Iterator[RunResult]:
    """Replay-from-scratch DFS — the naive correctness reference.

    Every probed prefix rebuilds a fresh state and replays each choice,
    so each schedule-tree edge executes once per node below it.  Kept
    (not used by :func:`all_executions`) as the equivalence baseline for
    tests and the same-machine perf-regression gate.
    """
    stack: list[tuple[int, ...]] = [()]
    while stack:
        prefix = stack.pop()
        state = ExecutionState.initial(graph, protocol, model, bit_budget,
                                       faults=faults)
        for choice in prefix:
            state.advance(choice)
        if state.terminal:
            yield state.result()
        else:
            # Reversed so the natural (ascending) order is explored first.
            for c in reversed(state.candidates):
                stack.append(prefix + (c,))


def count_executions(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
    faults: Union[None, str, FaultSpec] = None,
    batch: bool = False,
    jobs: Optional[int] = None,
) -> int:
    """Number of distinct schedules (size of the adversary's choice tree).

    ``batch=True`` counts terminal configurations breadth-wise on the
    batched core without materialising a single :class:`RunResult` —
    the pure-enumeration fast path — falling back to the scalar walk
    for unsupported cells or on a captured violation.  ``jobs=N``
    (N > 1) shards the count across process workers (see
    :func:`all_executions`); the summed total is pinned identical.
    """
    if jobs is not None and jobs > 1:
        from .batch import sharded_count_executions

        total = sharded_count_executions(graph, protocol, model,
                                         faults=faults, batch=batch,
                                         jobs=jobs)
        if total is not None:
            return total
    if batch:
        from .batch import BatchAborted, batch_supported, batched_count_executions

        if batch_supported(graph, protocol, model):
            try:
                return batched_count_executions(graph, protocol, model,
                                                faults=faults)
            except BatchAborted:
                pass  # scalar rerun raises at the right point
    return sum(1 for _ in all_executions(graph, protocol, model,
                                         faults=faults))
