"""Round-based execution engine for the four whiteboard models.

Semantics (Section 2 of the paper, observable form):

1. **Activation round.**  In simultaneous models every awake node becomes
   active immediately; in free models each awake node decides from the
   (empty) whiteboard.  In asynchronous models the node's single message
   is computed *now* and frozen.
2. **Write events.**  While unwritten nodes remain: the adversary picks
   one active, unwritten node; its message (frozen value in asynchronous
   models, recomputed from the current board in synchronous ones) is
   appended to the whiteboard and the node terminates.  After each write,
   awake nodes re-examine the board and may activate (free models).
3. **Deadlock.**  If unwritten nodes remain but none is active, the
   configuration is *corrupted* (the paper's failed final configuration)
   and no output is produced.

The engine enforces the model's message-size budget exactly (bits of the
canonical encoding, see :mod:`repro.encoding.bits`) and records complete
transcripts for analysis.

``all_executions`` enumerates *every* schedule for a given input by
depth-first search over adversary choices, turning the paper's "for all
adversaries" quantifier into a finite check on small graphs.  For
*stateless* protocols (the default: ``fresh()`` returns ``self``) the
search is incremental — each branch point checkpoints the simulator
state, applies one write, recurses, and undoes the write on backtrack,
so every edge of the schedule tree is executed exactly once instead of
once per leaf below it.  Stateful protocol adapters (which mutate
per-execution caches the engine cannot snapshot) fall back to replaying
each branch from scratch, which is always correct and remains cheap at
the sizes where exhaustion is feasible.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass
from typing import Any, Optional

from ..encoding.bits import payload_bits
from ..graphs.labeled_graph import LabeledGraph
from .errors import MessageTooLarge, ProtocolViolation, SchedulerError
from .models import ModelSpec
from .protocol import NodeView, Protocol
from .schedulers import Scheduler
from .whiteboard import Whiteboard

__all__ = ["RunResult", "run", "all_executions", "count_executions"]

#: A chooser receives (candidates, board, activation_round, event_index).
_Chooser = Callable[[Sequence[int], Whiteboard, dict[int, int], int], int]


@dataclass(frozen=True)
class RunResult:
    """Outcome of one execution.

    Attributes
    ----------
    success:
        All nodes wrote — the paper's *successful* final configuration.
    output:
        ``protocol.output`` on the final whiteboard, or ``None`` when the
        execution deadlocked.
    board:
        Full whiteboard with metadata.
    write_order:
        Node identifiers in the order their messages appeared.
    activation_round:
        Write-event index at which each node became active (0 = before
        any write).
    max_message_bits / total_bits:
        Exact sizes of the largest message and of the whole board.
    """

    success: bool
    output: Any
    board: Whiteboard
    write_order: tuple[int, ...]
    activation_round: dict[int, int]
    max_message_bits: int
    total_bits: int
    model: ModelSpec
    protocol_name: str
    n: int

    @property
    def corrupted(self) -> bool:
        return not self.success

    @property
    def deadlocked_nodes(self) -> frozenset[int]:
        """Nodes that never wrote (empty iff the run succeeded)."""
        written = set(self.write_order)
        return frozenset(v for v in range(1, self.n + 1) if v not in written)


class _Frontier(Exception):
    """Internal: raised by the probing chooser to report the branch set."""

    def __init__(self, candidates: tuple[int, ...]) -> None:
        self.candidates = candidates


def _execute(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
    chooser: _Chooser,
    bit_budget: Optional[int],
) -> RunResult:
    """Core event loop shared by ``run`` and the exhaustive driver."""
    proto = protocol.fresh()
    n = graph.n
    board = Whiteboard()
    written: set[int] = set()
    active: set[int] = set()
    frozen: dict[int, Any] = {}
    activation_round: dict[int, int] = {}

    def view_of(v: int) -> NodeView:
        return NodeView(node=v, neighbors=graph.neighbors(v), n=n, board=board.view())

    def activation_pass(event: int) -> None:
        # All awake nodes examine the same board snapshot: activations
        # within one round are simultaneous and cannot see each other.
        for v in graph.nodes():
            if v in active or v in written:
                continue
            if model.simultaneous:
                should = event == 0  # everyone activates after round 1
            else:
                should = bool(proto.wants_to_activate(view_of(v)))
            if should:
                active.add(v)
                activation_round[v] = event
                if model.asynchronous:
                    # "Once a node raises its hand it cannot change its
                    # mind": compute and freeze the message now.
                    frozen[v] = proto.message(view_of(v))

    activation_pass(0)
    event = 0
    while len(written) < n:
        candidates = tuple(sorted(active - written))
        if not candidates:
            # Corrupted final configuration: awake nodes remain but no
            # valid successor exists.
            return RunResult(
                success=False,
                output=None,
                board=board,
                write_order=tuple(e.author for e in board.entries),
                activation_round=dict(activation_round),
                max_message_bits=board.max_bits(),
                total_bits=board.total_bits(),
                model=model,
                protocol_name=proto.name,
                n=n,
            )
        event += 1
        writer = chooser(candidates, board, activation_round, event)
        if writer not in candidates:
            raise SchedulerError(
                f"scheduler chose {writer}, not among active nodes {candidates}"
            )
        if model.asynchronous:
            payload = frozen[writer]
        else:
            payload = proto.message(view_of(writer))
        try:
            bits = payload_bits(payload)
        except TypeError as exc:
            raise ProtocolViolation(
                f"{proto.name}: node {writer} produced a non-payload message: {exc}"
            ) from exc
        if bit_budget is not None and bits > bit_budget:
            raise MessageTooLarge(writer, bits, bit_budget)
        board.write(writer, payload, event, bits=bits)
        written.add(writer)
        active.discard(writer)
        activation_pass(event)

    output = proto.output(board.view(), n)
    return RunResult(
        success=True,
        output=output,
        board=board,
        write_order=tuple(e.author for e in board.entries),
        activation_round=dict(activation_round),
        max_message_bits=board.max_bits(),
        total_bits=board.total_bits(),
        model=model,
        protocol_name=proto.name,
        n=n,
    )


def run(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
    scheduler: Scheduler,
    bit_budget: Optional[int] = None,
) -> RunResult:
    """Execute ``protocol`` on ``graph`` under ``model`` with the given
    adversary.

    Parameters
    ----------
    bit_budget:
        Optional hard cap (in bits) on every message; exceeding it raises
        :class:`~repro.core.errors.MessageTooLarge`.  ``None`` records
        sizes without enforcing.
    """
    sched = scheduler.fresh()

    def chooser(candidates, board, activation_round, event):
        return sched.choose(candidates, board, activation_round)

    return _execute(graph, protocol, model, chooser, bit_budget)


def _probe(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
    prefix: tuple[int, ...],
    bit_budget: Optional[int],
) -> tuple[Optional[RunResult], tuple[int, ...]]:
    """Replay ``prefix`` write choices; return either the finished result
    (prefix covered the whole run) or the branch candidates afterwards."""

    def chooser(candidates, board, activation_round, event):
        if event - 1 < len(prefix):
            forced = prefix[event - 1]
            if forced not in candidates:
                raise SchedulerError(
                    f"replay diverged: {forced} not active at event {event}"
                )
            return forced
        raise _Frontier(tuple(candidates))

    try:
        result = _execute(graph, protocol, model, chooser, bit_budget)
    except _Frontier as frontier:
        return None, frontier.candidates
    return result, ()


def all_executions(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
    bit_budget: Optional[int] = None,
    limit: Optional[int] = None,
) -> Iterator[RunResult]:
    """Enumerate every execution (one per distinct adversary schedule).

    Depth-first over the tree of adversary choices.  For simultaneous
    models on an ``n``-node graph this yields exactly ``n!`` runs, so cap
    usage at ``n <= 7`` or pass ``limit``.

    Stateless protocols (``fresh()`` returns ``self``) are enumerated
    incrementally with checkpoint/undo branching; stateful ones are
    replayed from scratch per branch.  Both produce the same results in
    the same (ascending-choice DFS) order.
    """
    if protocol.fresh() is protocol:
        runs = _all_executions_incremental(graph, protocol, model, bit_budget)
    else:
        runs = _all_executions_replay(graph, protocol, model, bit_budget)
    produced = 0
    for result in runs:
        yield result
        produced += 1
        if limit is not None and produced >= limit:
            return


def _all_executions_replay(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
    bit_budget: Optional[int],
) -> Iterator[RunResult]:
    """Replay-from-scratch DFS — the fallback for stateful protocols."""
    stack: list[tuple[int, ...]] = [()]
    while stack:
        prefix = stack.pop()
        result, branches = _probe(graph, protocol, model, prefix, bit_budget)
        if result is not None:
            yield result
        else:
            # Reversed so the natural (ascending) order is explored first.
            for c in reversed(branches):
                stack.append(prefix + (c,))


def _all_executions_incremental(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
    bit_budget: Optional[int],
) -> Iterator[RunResult]:
    """Checkpoint/undo DFS over adversary choices for stateless protocols.

    Maintains one live simulator state; each branch applies a single
    write event (plus the activation pass it triggers) and undoes both on
    backtrack.  Every tree edge is executed once, versus once per leaf
    under replay.  Semantics — candidate order, frozen-message rules,
    budget enforcement, deadlock detection — mirror :func:`_execute`
    exactly; equivalence is pinned by tests.
    """
    proto = protocol.fresh()
    n = graph.n
    board = Whiteboard()
    written: set[int] = set()
    active: set[int] = set()
    frozen: dict[int, Any] = {}
    frozen_bits: dict[int, int] = {}
    activation_round: dict[int, int] = {}

    def view_of(v: int) -> NodeView:
        return NodeView(node=v, neighbors=graph.neighbors(v), n=n, board=board.view())

    def activation_pass(event: int) -> list[int]:
        """Activate eligible nodes; return them so the caller can undo."""
        added: list[int] = []
        for v in graph.nodes():
            if v in active or v in written:
                continue
            if model.simultaneous:
                should = event == 0  # everyone activates after round 1
            else:
                should = bool(proto.wants_to_activate(view_of(v)))
            if should:
                active.add(v)
                activation_round[v] = event
                added.append(v)
                if model.asynchronous:
                    frozen[v] = proto.message(view_of(v))
        return added

    def snapshot(success: bool, output: Any) -> RunResult:
        frozen_board = Whiteboard(entries=list(board.entries))
        return RunResult(
            success=success,
            output=output,
            board=frozen_board,
            write_order=tuple(e.author for e in frozen_board.entries),
            activation_round=dict(activation_round),
            max_message_bits=frozen_board.max_bits(),
            total_bits=frozen_board.total_bits(),
            model=model,
            protocol_name=proto.name,
            n=n,
        )

    def message_bits(writer: int, payload: Any) -> int:
        if model.asynchronous:
            bits = frozen_bits.get(writer)
            if bits is not None:
                return bits
        try:
            bits = payload_bits(payload)
        except TypeError as exc:
            raise ProtocolViolation(
                f"{proto.name}: node {writer} produced a non-payload message: {exc}"
            ) from exc
        if model.asynchronous:
            frozen_bits[writer] = bits
        return bits

    def dfs(event: int) -> Iterator[RunResult]:
        if len(written) == n:
            yield snapshot(True, proto.output(board.view(), n))
            return
        candidates = tuple(sorted(active - written))
        if not candidates:
            # Corrupted final configuration: awake nodes remain but no
            # valid successor exists.
            yield snapshot(False, None)
            return
        for writer in candidates:
            if model.asynchronous:
                payload = frozen[writer]
            else:
                payload = proto.message(view_of(writer))
            bits = message_bits(writer, payload)
            if bit_budget is not None and bits > bit_budget:
                raise MessageTooLarge(writer, bits, bit_budget)
            board.write(writer, payload, event + 1, bits=bits)
            written.add(writer)
            active.discard(writer)
            activated = activation_pass(event + 1)
            yield from dfs(event + 1)
            # -- undo the write and its activation side-effects ---------
            for v in activated:
                active.discard(v)
                del activation_round[v]
                if model.asynchronous:
                    frozen.pop(v, None)
                    frozen_bits.pop(v, None)
            board.entries.pop()
            written.discard(writer)
            active.add(writer)

    activation_pass(0)
    yield from dfs(0)


def count_executions(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
) -> int:
    """Number of distinct schedules (size of the adversary's choice tree)."""
    return sum(1 for _ in all_executions(graph, protocol, model))
