"""The shared whiteboard.

Two views exist on purpose:

* :class:`Whiteboard` — the simulator's bookkeeping: ordered entries with
  author identifiers, write rounds and exact bit sizes.  Adversaries and
  analysis code may use all of it.
* :class:`BoardView` — what a *protocol* may read: the ordered sequence
  of message payloads, nothing else.  In the paper nodes see only the
  whiteboard contents; messages self-identify (every protocol in the
  paper includes ``ID(v)`` in its message), so exposing author metadata
  to protocols would silently strengthen the model.  Keeping the views
  apart makes that mistake impossible to write.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..encoding.bits import Payload, payload_bits

__all__ = ["Entry", "Whiteboard", "BoardView"]


@dataclass(frozen=True)
class Entry:
    """One written message with simulator metadata."""

    index: int
    author: int
    payload: Payload
    bits: int
    round_written: int


@dataclass(frozen=True)
class BoardView:
    """Protocol-facing read-only view: ordered payloads only."""

    payloads: tuple[Payload, ...]

    def __len__(self) -> int:
        return len(self.payloads)

    def __iter__(self):
        return iter(self.payloads)

    def __getitem__(self, i: int) -> Payload:
        return self.payloads[i]

    @property
    def empty(self) -> bool:
        return not self.payloads

    @property
    def last(self) -> Payload:
        """The most recently written payload (the paper's 'last message')."""
        if not self.payloads:
            raise IndexError("whiteboard is empty")
        return self.payloads[-1]


@dataclass
class Whiteboard:
    """Simulator-side ordered whiteboard."""

    entries: list[Entry] = field(default_factory=list)

    def write(
        self,
        author: int,
        payload: Payload,
        round_written: int,
        bits: int | None = None,
    ) -> Entry:
        """Append a message; records its exact bit size.

        ``bits`` lets callers that already ran the accounting (the
        simulator charges the budget before writing) pass the size in
        instead of recomputing the canonical encoding length.
        """
        entry = Entry(
            index=len(self.entries),
            author=author,
            payload=payload,
            bits=payload_bits(payload) if bits is None else bits,
            round_written=round_written,
        )
        self.entries.append(entry)
        return entry

    def view(self) -> BoardView:
        """Snapshot the protocol-facing view."""
        return BoardView(tuple(e.payload for e in self.entries))

    def authors(self) -> frozenset[int]:
        return frozenset(e.author for e in self.entries)

    def payload_of(self, author: int) -> Payload:
        for e in self.entries:
            if e.author == author:
                return e.payload
        raise KeyError(f"node {author} has not written")

    def total_bits(self) -> int:
        return sum(e.bits for e in self.entries)

    def max_bits(self) -> int:
        return max((e.bits for e in self.entries), default=0)

    def __len__(self) -> int:
        return len(self.entries)
