"""Stepwise execution core: one engine, many drivers.

The Section 2 semantics used to live inside a monolithic recursive
``_execute`` loop in :mod:`repro.core.simulator`; every consumer that
wanted to *steer* an execution (the exhaustive enumerator, the guided
adversary searches) had to smuggle its control flow through a chooser
callback or an exception.  :class:`ExecutionState` turns the simulator
into an explicit state machine instead:

* :meth:`ExecutionState.initial` builds the configuration after the
  round-0 activation pass;
* :attr:`ExecutionState.candidates` is the adversary's current choice
  set — active, unwritten nodes ascending, followed by any affordable
  fault events (crash-stop, lossy write, duplicated write) when the
  state carries a :class:`~repro.faults.spec.FaultSpec` budget;
* :meth:`ExecutionState.advance` applies one adversary choice — compute
  the writer's message (frozen value in asynchronous models, recomputed
  in synchronous ones), charge the bit budget, append to the board, run
  the activation pass;
* :meth:`ExecutionState.snapshot` / :meth:`ExecutionState.restore` give
  first-class checkpointing.  For *stateless* protocols (``fresh()``
  returns ``self``) restore is an O(steps-undone) journal rollback — the
  checkpoint/undo DFS that used to be hard-wired into the enumerator.
  Stateful protocols (per-run caches the engine cannot snapshot) are
  restored by replaying the choice prefix from scratch on a fresh
  protocol instance, which is always correct;
* :meth:`ExecutionState.copy` forks an independent state (beam searches
  hold a frontier of them);
* :meth:`ExecutionState.result` freezes a terminal configuration into a
  :class:`RunResult`.

``run``, ``all_executions`` and ``count_executions`` in
:mod:`repro.core.simulator` are thin drivers over this machine, as are
the searchable adversary strategies in :mod:`repro.adversaries`.  The
observable semantics — candidate order, frozen-message rules, budget
enforcement, deadlock detection, bit accounting — are pinned to the
pre-refactor engine by the simulator equivalence tests and the sketch
golden fixtures.
"""

from __future__ import annotations

from collections.abc import Iterable
from copy import deepcopy
from dataclasses import dataclass
from typing import Any, Optional, Union

from ..encoding.bits import payload_bits, payload_key
from ..faults.spec import FaultSpec, decode_choice, resolve_faults
from ..graphs.labeled_graph import LabeledGraph
from .errors import MessageTooLarge, ProtocolViolation, SchedulerError
from .models import ModelSpec
from .protocol import NodeView, Protocol
from .whiteboard import Whiteboard

__all__ = ["RunResult", "ExecutionState", "Checkpoint", "replay_schedule"]

#: Distinguishes "cache entry was absent" from "cached value was None"
#: when a crash undo restores a node's frozen-message caches.
_MISSING = object()


@dataclass(frozen=True)
class RunResult:
    """Outcome of one execution.

    Attributes
    ----------
    success:
        All nodes wrote — the paper's *successful* final configuration.
    output:
        ``protocol.output`` on the final whiteboard, or ``None`` when the
        execution deadlocked.
    board:
        Full whiteboard with metadata.
    write_order:
        Node identifiers in the order their messages appeared.
    activation_round:
        Write-event index at which each node became active (0 = before
        any write).
    max_message_bits / total_bits:
        Exact sizes of the largest message and of the whole board.
    schedule:
        The full adversary schedule, fault events included (equals
        ``write_order`` for reliable runs).
    crashed:
        Nodes halted by crash-stop fault events (empty for reliable
        runs).
    output_error:
        ``"ExcType: message"`` when ``protocol.output`` raised on a
        fault-perturbed board (faulted runs only); ``output`` is then
        ``None``.
    """

    success: bool
    output: Any
    board: Whiteboard
    write_order: tuple[int, ...]
    activation_round: dict[int, int]
    max_message_bits: int
    total_bits: int
    model: ModelSpec
    protocol_name: str
    n: int
    schedule: tuple[int, ...] = ()
    crashed: frozenset[int] = frozenset()
    output_error: Optional[str] = None

    @property
    def corrupted(self) -> bool:
        return not self.success

    @property
    def deadlocked_nodes(self) -> frozenset[int]:
        """Nodes stuck unterminated (empty iff the run succeeded).

        A node terminates by writing, by having its write lost (it
        believes it wrote), or by crashing — only the remainder is
        deadlocked.
        """
        terminated = set(self.write_order) | set(self.crashed)
        for choice in self.schedule:
            if choice < 0:
                kind, node = decode_choice(choice, self.n)
                if kind == "loss":
                    terminated.add(node)
        return frozenset(
            v for v in range(1, self.n + 1) if v not in terminated
        )


@dataclass(frozen=True)
class Checkpoint:
    """Opaque token returned by :meth:`ExecutionState.snapshot`.

    ``depth`` is the schedule-prefix length; ``choices`` is carried only
    for stateful protocols, whose restore path replays it from scratch.
    A checkpoint is valid only for restoring an extension of the state it
    was taken from (the DFS/backtracking discipline).
    """

    depth: int
    choices: Optional[tuple[int, ...]] = None


class ExecutionState:
    """One live configuration of the round-based execution engine."""

    __slots__ = (
        "graph", "protocol", "proto", "model", "bit_budget", "stateless",
        "faults", "board", "written", "active", "crashed", "frozen",
        "frozen_bits", "activation_round", "choices", "crashes_left",
        "losses_left", "dups_left", "last_event_bits", "last_event_total",
        "_journal", "_candidates", "_entry_keys", "_frozen_keys",
    )

    def __init__(self) -> None:  # use ExecutionState.initial(...)
        raise TypeError("use ExecutionState.initial(graph, protocol, model)")

    @classmethod
    def initial(
        cls,
        graph: LabeledGraph,
        protocol: Protocol,
        model: ModelSpec,
        bit_budget: Optional[int] = None,
        faults: "Union[None, str, FaultSpec]" = None,
    ) -> "ExecutionState":
        """The configuration after the round-0 activation pass."""
        self = object.__new__(cls)
        self.graph = graph
        self.protocol = protocol
        self.model = model
        self.bit_budget = bit_budget
        self.faults = resolve_faults(faults)
        proto = protocol.fresh()
        self.proto = proto
        self.stateless = proto is protocol
        self._reset()
        return self

    def _reset(self) -> None:
        """(Re-)enter the initial configuration on a fresh protocol."""
        self.board = Whiteboard()
        self.written = set()
        self.active = set()
        self.crashed = set()
        self.frozen = {}
        self.frozen_bits = {}
        self.activation_round = {}
        self.choices = []
        self.crashes_left = self.faults.max_crashes
        self.losses_left = self.faults.max_losses
        self.dups_left = self.faults.max_duplications
        self.last_event_bits = 0
        self.last_event_total = 0
        self._journal = []
        self._candidates = None
        self._entry_keys = []
        self._frozen_keys = {}
        self._activation_pass(0)

    # -- inspection ----------------------------------------------------

    @property
    def n(self) -> int:
        return self.graph.n

    @property
    def depth(self) -> int:
        """Number of schedule events applied so far (faults included)."""
        return len(self.choices)

    @property
    def schedule(self) -> tuple[int, ...]:
        """The adversary choices applied so far (fault events encoded
        as negative integers, see :mod:`repro.faults.spec`)."""
        return tuple(self.choices)

    def _candidate_pair(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """``(write candidates, full candidates)``, cached per step.

        Write candidates are the active, unwritten nodes (ascending) —
        exactly the reliable engine's choice set.  When fault budget
        remains *and* at least one write candidate exists, the full
        tuple appends fault events after the writes: crash events for
        every surviving unterminated node, then loss and duplication
        events for every write candidate.  Writes-first ordering keeps
        ``candidates[0]`` the smallest normal write, so ascending
        completions never consume fault budget.
        """
        pair = self._candidates
        if pair is None:
            writes = tuple(sorted(self.active - self.written))
            full = writes
            if writes and (self.crashes_left or self.losses_left
                           or self.dups_left):
                events = list(writes)
                n = self.graph.n
                if self.crashes_left:
                    events.extend(
                        -v for v in sorted(
                            set(self.graph.nodes())
                            - self.written - self.crashed
                        )
                    )
                if self.losses_left:
                    events.extend(-(n + v) for v in writes)
                if self.dups_left:
                    events.extend(-(2 * n + v) for v in writes)
                full = tuple(events)
            pair = (writes, full)
            self._candidates = pair
        return pair

    @property
    def candidates(self) -> tuple[int, ...]:
        """Choices the adversary may pick: active unwritten nodes
        (ascending), then any affordable fault events."""
        return self._candidate_pair()[1]

    @property
    def write_candidates(self) -> tuple[int, ...]:
        """Active, unwritten nodes only — the reliable choice set."""
        return self._candidate_pair()[0]

    @property
    def faults_remaining(self) -> bool:
        """Whether any fault budget is still unspent."""
        return bool(self.crashes_left or self.losses_left or self.dups_left)

    @property
    def done(self) -> bool:
        """Every node terminated — wrote (possibly lost) or crashed."""
        return len(self.written) + len(self.crashed) == self.graph.n

    @property
    def deadlocked(self) -> bool:
        """Unterminated nodes remain but none can write (corrupted).

        Fault events cannot rescue a deadlock: once no write candidate
        exists the execution is over, budget or not.
        """
        return not self.done and not self.write_candidates

    @property
    def terminal(self) -> bool:
        return self.done or not self.write_candidates

    def suffix_bound(self) -> Optional[tuple[bool, int, int]]:
        """Admissible upper bound on every completion of this state.

        Returns ``(deadlock_possible, suffix_max_bits,
        suffix_total_bits)`` such that *any* terminal extension of this
        configuration deadlocks only if ``deadlock_possible``, writes no
        suffix message larger than ``suffix_max_bits``, and adds at most
        ``suffix_total_bits`` to the board total.  ``None`` means "no
        finite bound is available" (synchronous or not-yet-activated
        writers with no bit budget, or a frozen message outside the
        payload codec).

        Admissibility argument: a node terminates by writing (its bits
        on the board once), losing (zero board bits), crashing (zero),
        or duplicating (bits twice, at most ``dups_left`` times overall,
        each no larger than the largest writable message).  Active
        asynchronous writers are pinned to their frozen message; every
        other writer is capped by ``bit_budget`` because a larger
        message raises :class:`MessageTooLarge` instead of completing.
        ``deadlock_possible`` is false when every unterminated node is
        already active: writes, losses, crashes, and duplications all
        preserve that invariant (activation never retracts), so a
        candidate always remains until ``done``.
        """
        unterminated = self.graph.n - len(self.written) - len(self.crashed)
        if unterminated == 0:
            return (False, 0, 0)
        deadlock_possible = len(self.active) != unterminated
        budget = self.bit_budget
        top = 0
        total = 0
        if self.model.asynchronous:
            frozen_bits = self.frozen_bits
            for v in self.active:
                bits = frozen_bits.get(v)
                if bits is None:
                    try:
                        bits = payload_bits(self.frozen[v])
                    except TypeError:
                        return None  # advance() will raise the violation
                    frozen_bits[v] = bits
                if bits > top:
                    top = bits
                total += bits
            inactive = unterminated - len(self.active)
        else:
            inactive = unterminated
        if inactive:
            if budget is None:
                return None
            if budget > top:
                top = budget
            total += inactive * budget
        if self.dups_left:
            total += self.dups_left * top
        return (deadlock_possible, top, total)

    def config_key(self) -> tuple:
        """Canonical, always-hashable digest of this configuration.

        Covers everything the paper's configuration is made of: the
        board contents (each payload via the codec's
        :func:`~repro.encoding.bits.payload_key`, which carries the
        exact bit size), the written and active sets, the frozen
        messages of active nodes in asynchronous models, and the
        activation rounds.  Unlike hashing raw payloads, the codec
        digest is defined for *every* payload the engine can write —
        dict/list payloads included — so memoisation never silently
        switches off (the hole the old ``deadlock.py`` ad-hoc key had).

        Two *stateless*-protocol states with equal keys have identical
        futures under identical adversary choices; for stateful
        protocols the key digests the observable configuration only
        (hidden per-run protocol state is not captured), which is why
        the search kernel's transposition table ignores non-stateless
        states.  Payload digests are cached per write event, so
        repeated calls along a search path stay cheap.

        Raises :class:`ProtocolViolation` if a frozen message is not a
        payload the codec can encode (the same messages would be
        rejected by :meth:`advance` when written).
        """
        keys = self._entry_keys
        entries = self.board.entries
        while len(keys) < len(entries):
            keys.append(payload_key(entries[len(keys)].payload))
        frozen_part = None
        if self.model.asynchronous:
            frozen_keys = self._frozen_keys
            part = []
            for v in self.active:
                key = frozen_keys.get(v)
                if key is None:
                    try:
                        key = payload_key(self.frozen[v])
                    except TypeError as exc:
                        raise ProtocolViolation(
                            f"{self.proto.name}: node {v} froze a "
                            f"non-payload message: {exc}"
                        ) from exc
                    frozen_keys[v] = key
                part.append((v, key))
            part.sort()
            frozen_part = tuple(part)
        base = (
            tuple(keys),
            frozenset(self.written),
            frozenset(self.active),
            frozen_part,
            tuple(sorted(self.activation_round.items())),
        )
        if self.faults.enabled:
            # Crashed nodes and remaining budgets are part of the
            # configuration: two states that differ only in what the
            # adversary can still break have different futures.  The
            # component is appended (rather than always present) so
            # fault-free keys stay bit-identical to the reliable engine.
            return base + (
                frozenset(self.crashed),
                (self.crashes_left, self.losses_left, self.dups_left),
            )
        return base

    # -- the step relation --------------------------------------------

    @staticmethod
    def _own_payload(payload: Any) -> Any:
        """Take ownership of a freshly produced message.

        The engine stores payloads by reference and caches their bit
        sizes and codec digests at write/freeze time, so payloads must
        never change afterwards.  A list- or dict-rooted payload
        (supported since the codec's escape tag) is deep-copied here so
        the common accumulator-reuse mistake cannot silently corrupt
        the accounting or the transposition table.  The copy is
        deliberately top-level-typed — walking every tuple to hunt for
        nested mutables would tax the write hot path for the all-
        immutable payloads every shipped protocol produces — so the
        remaining contract is the protocol's: never mutate a container
        nested inside a returned tuple, and never mutate payloads read
        from the board.
        """
        if type(payload) is list or type(payload) is dict:
            return deepcopy(payload)
        return payload

    def _view_of(self, v: int) -> NodeView:
        g = self.graph
        return NodeView(node=v, neighbors=g.neighbors(v), n=g.n,
                        board=self.board.view())

    def _activation_pass(self, event: int) -> list[int]:
        """Activate eligible nodes; return them so restore can undo.

        All awake nodes examine the same board snapshot: activations
        within one round are simultaneous and cannot see each other.
        """
        added: list[int] = []
        model = self.model
        proto = self.proto
        active, written = self.active, self.written
        crashed = self.crashed
        for v in self.graph.nodes():
            if v in active or v in written or v in crashed:
                continue
            if model.simultaneous:
                should = event == 0  # everyone activates after round 1
            else:
                should = bool(proto.wants_to_activate(self._view_of(v)))
            if should:
                active.add(v)
                self.activation_round[v] = event
                added.append(v)
                if model.asynchronous:
                    # "Once a node raises its hand it cannot change its
                    # mind": compute and freeze the message now.
                    self.frozen[v] = self._own_payload(
                        proto.message(self._view_of(v))
                    )
        return added

    def _message_bits(self, writer: int, payload: Any) -> int:
        if self.model.asynchronous:
            bits = self.frozen_bits.get(writer)
            if bits is not None:
                return bits
        try:
            bits = payload_bits(payload)
        except TypeError as exc:
            raise ProtocolViolation(
                f"{self.proto.name}: node {writer} produced a non-payload "
                f"message: {exc}"
            ) from exc
        if self.model.asynchronous:
            self.frozen_bits[writer] = bits
        return bits

    def advance(self, choice: int) -> "ExecutionState":
        """Apply one adversary choice (a write or fault event); returns
        ``self``.

        Raises :class:`SchedulerError` when ``choice`` is not currently a
        candidate, :class:`MessageTooLarge` when the message exceeds the
        bit budget, and :class:`ProtocolViolation` on a non-payload
        message — all before the board is touched.
        """
        candidates = self.candidates
        if choice not in candidates:
            raise SchedulerError(
                f"scheduler chose {choice}, not among active nodes {candidates}"
            )
        if choice < 0:
            return self._advance_fault(choice)
        if self.model.asynchronous:
            payload = self.frozen[choice]
        else:
            payload = self._own_payload(self.proto.message(self._view_of(choice)))
        bits = self._message_bits(choice, payload)
        if self.bit_budget is not None and bits > self.bit_budget:
            raise MessageTooLarge(choice, bits, self.bit_budget)
        event = len(self.choices) + 1
        self.board.write(choice, payload, event, bits=bits)
        self.written.add(choice)
        self.active.discard(choice)
        activated = self._activation_pass(event)
        self.choices.append(choice)
        self._journal.append(("w", choice, tuple(activated)))
        self.last_event_bits = bits
        self.last_event_total = bits
        self._candidates = None
        return self

    def _produce_message(self, node: int) -> tuple[Any, int]:
        """The message ``node`` would write now, budget-checked."""
        if self.model.asynchronous:
            payload = self.frozen[node]
        else:
            payload = self._own_payload(self.proto.message(self._view_of(node)))
        bits = self._message_bits(node, payload)
        if self.bit_budget is not None and bits > self.bit_budget:
            raise MessageTooLarge(node, bits, self.bit_budget)
        return payload, bits

    def _advance_fault(self, choice: int) -> "ExecutionState":
        """Apply one fault event; the fault-kind journal entries make
        the undo path exact, so snapshot/restore and ``config_key()``
        keep working unchanged under faults."""
        kind, node = decode_choice(choice, self.graph.n)
        if kind == "crash":
            # Crash-stop: the node halts for good; its pending frozen
            # message (asynchronous models) is discarded.  The board is
            # untouched, so no activation pass can fire.
            was_active = node in self.active
            saved = None
            if was_active:
                self.active.discard(node)
                if self.model.asynchronous:
                    saved = (
                        self.frozen.pop(node),
                        self.frozen_bits.pop(node, _MISSING),
                        self._frozen_keys.pop(node, _MISSING),
                    )
            self.crashed.add(node)
            self.crashes_left -= 1
            self.choices.append(choice)
            self._journal.append(("c", node, (was_active, saved)))
            self.last_event_bits = 0
            self.last_event_total = 0
        elif kind == "loss":
            # Lossy write: the message is produced (and budget-charged)
            # but never reaches the board; the writer terminates
            # believing it wrote.  No board change, no activations.
            self._produce_message(node)
            self.written.add(node)
            self.active.discard(node)
            self.losses_left -= 1
            self.choices.append(choice)
            self._journal.append(("l", node, None))
            self.last_event_bits = 0
            self.last_event_total = 0
        else:  # dup
            # Duplicated write: two identical entries at the same event
            # index.  Doubles the total-bits accounting while the
            # max-message accounting sees a single message.
            payload, bits = self._produce_message(node)
            event = len(self.choices) + 1
            self.board.write(node, payload, event, bits=bits)
            self.board.write(node, payload, event, bits=bits)
            self.written.add(node)
            self.active.discard(node)
            activated = self._activation_pass(event)
            self.dups_left -= 1
            self.choices.append(choice)
            self._journal.append(("d", node, tuple(activated)))
            self.last_event_bits = bits
            self.last_event_total = 2 * bits
        self._candidates = None
        return self

    # -- checkpointing -------------------------------------------------

    def snapshot(self) -> Checkpoint:
        """Checkpoint the current configuration (O(1) for stateless
        protocols; records the choice prefix for stateful ones)."""
        if self.stateless:
            return Checkpoint(len(self.choices))
        return Checkpoint(len(self.choices), tuple(self.choices))

    def restore(self, checkpoint: Checkpoint) -> "ExecutionState":
        """Roll back to ``checkpoint`` (an ancestor of this state).

        Stateless protocols undo the journal step by step; stateful ones
        replay the checkpointed prefix on a fresh protocol instance.
        """
        if checkpoint.depth > len(self.choices):
            raise ValueError(
                f"checkpoint depth {checkpoint.depth} is not an ancestor of "
                f"the current depth {len(self.choices)}"
            )
        if self.stateless:
            while len(self.choices) > checkpoint.depth:
                self._undo_one()
        else:
            prefix = checkpoint.choices or ()
            self.proto = self.protocol.fresh()
            self._reset()
            for choice in prefix:
                self.advance(choice)
        self._candidates = None
        return self

    def _undo_one(self) -> None:
        """Undo the last schedule event and its side-effects."""
        kind, node, data = self._journal.pop()
        self.choices.pop()
        if kind == "c":
            was_active, saved = data
            self.crashed.discard(node)
            self.crashes_left += 1
            if was_active:
                self.active.add(node)
                if saved is not None:
                    payload, fbits, fkey = saved
                    self.frozen[node] = payload
                    if fbits is not _MISSING:
                        self.frozen_bits[node] = fbits
                    if fkey is not _MISSING:
                        self._frozen_keys[node] = fkey
            return
        if kind == "l":
            self.losses_left += 1
            self.written.discard(node)
            self.active.add(node)
            return
        # "w" and "d": undo activations, board entries, and the write.
        asynchronous = self.model.asynchronous
        for v in data:
            self.active.discard(v)
            del self.activation_round[v]
            if asynchronous:
                self.frozen.pop(v, None)
                self.frozen_bits.pop(v, None)
                self._frozen_keys.pop(v, None)
        self.board.entries.pop()
        if kind == "d":
            self.board.entries.pop()
            self.dups_left += 1
        if len(self._entry_keys) > len(self.board.entries):
            del self._entry_keys[len(self.board.entries):]
        self.written.discard(node)
        self.active.add(node)

    def copy(self) -> "ExecutionState":
        """An independent fork of this configuration.

        Stateless protocols share the protocol object and copy the cheap
        containers; stateful ones replay the schedule from scratch.
        """
        if not self.stateless:
            clone = ExecutionState.initial(
                self.graph, self.protocol, self.model, self.bit_budget,
                faults=self.faults,
            )
            for choice in self.choices:
                clone.advance(choice)
            return clone
        clone = object.__new__(ExecutionState)
        clone.graph = self.graph
        clone.protocol = self.protocol
        clone.proto = self.proto
        clone.model = self.model
        clone.bit_budget = self.bit_budget
        clone.faults = self.faults
        clone.stateless = True
        clone.board = Whiteboard(entries=list(self.board.entries))
        clone.written = set(self.written)
        clone.active = set(self.active)
        clone.crashed = set(self.crashed)
        clone.frozen = dict(self.frozen)
        clone.frozen_bits = dict(self.frozen_bits)
        clone.activation_round = dict(self.activation_round)
        clone.choices = list(self.choices)
        clone.crashes_left = self.crashes_left
        clone.losses_left = self.losses_left
        clone.dups_left = self.dups_left
        clone.last_event_bits = self.last_event_bits
        clone.last_event_total = self.last_event_total
        clone._journal = list(self._journal)
        clone._candidates = self._candidates
        clone._entry_keys = list(self._entry_keys)
        clone._frozen_keys = dict(self._frozen_keys)
        return clone

    # -- results -------------------------------------------------------

    def result(self) -> RunResult:
        """Freeze this terminal configuration into a :class:`RunResult`.

        Raises :class:`ValueError` when the state still has candidates —
        a non-terminal configuration has no outcome yet.
        """
        if not self.terminal:
            raise ValueError(
                f"execution is not terminal: candidates {self.candidates} "
                "remain"
            )
        success = self.done
        output = None
        output_error = None
        if success:
            if self.faults.enabled:
                # Faults can hand the decoder a board the protocol never
                # promised to survive (missing, duplicated, or truncated
                # entries); a decoder crash is a *verdict* — recorded,
                # not raised.
                try:
                    output = self.proto.output(self.board.view(), self.graph.n)
                except Exception as exc:  # noqa: BLE001
                    output_error = f"{type(exc).__name__}: {exc}"
            else:
                output = self.proto.output(self.board.view(), self.graph.n)
        frozen_board = Whiteboard(entries=list(self.board.entries))
        return RunResult(
            success=success,
            output=output,
            board=frozen_board,
            write_order=tuple(e.author for e in frozen_board.entries),
            activation_round=dict(self.activation_round),
            max_message_bits=frozen_board.max_bits(),
            total_bits=frozen_board.total_bits(),
            model=self.model,
            protocol_name=self.proto.name,
            n=self.graph.n,
            schedule=tuple(self.choices),
            crashed=frozenset(self.crashed),
            output_error=output_error,
        )


def replay_schedule(
    graph: LabeledGraph,
    protocol: Protocol,
    model: ModelSpec,
    schedule: Iterable[int],
    bit_budget: Optional[int] = None,
    faults: "Union[None, str, FaultSpec]" = None,
) -> RunResult:
    """Re-execute a concrete adversary schedule to a terminal result.

    The schedule must be valid (every choice a candidate when applied —
    :class:`SchedulerError` otherwise) and complete (the state must be
    terminal afterwards — :class:`ValueError` otherwise).  Faulted
    schedules carry their fault events inline, so replay under the same
    ``faults`` budget reproduces crashes, losses, and duplications
    bit-identically.  This is how witness schedules found by adversary
    searches are turned back into full transcripts for checking and
    narration.
    """
    state = ExecutionState.initial(graph, protocol, model, bit_budget,
                                   faults=faults)
    for choice in schedule:
        state.advance(choice)
    return state.result()
