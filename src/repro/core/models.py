"""The four communication models (Table 1 of the paper).

A model is two independent booleans:

* ``simultaneous`` — must every node activate after the first round?
  (``SIM*`` models: yes; free models: nodes choose when.)
* ``asynchronous`` — is the message frozen when the node activates?
  (``*ASYNC``: yes — "once a node raises its hand it cannot change its
  mind"; ``*SYNC``: no — the stored message is recomputed from the
  current whiteboard while the node waits.)

The lattice order captures Lemma 4's inclusion chain
``P_SIMASYNC ⊆ P_SIMSYNC ⊆ P_ASYNC ⊆ P_SYNC``.  Note that only the two
trivial edges (dropping ``simultaneous`` or ``asynchronous``) are
spec-weakenings; ``SIMSYNC ⊆ ASYNC`` needs the fixed-order adapter in
:mod:`repro.hierarchy.adapters`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ModelSpec",
    "SIMASYNC",
    "SIMSYNC",
    "ASYNC",
    "SYNC",
    "ALL_MODELS",
    "MODELS_BY_NAME",
    "lemma4_chain",
    "at_most_as_strong",
]


@dataclass(frozen=True)
class ModelSpec:
    """One of the four whiteboard access models."""

    name: str
    simultaneous: bool
    asynchronous: bool

    def __str__(self) -> str:
        return self.name


SIMASYNC = ModelSpec("SIMASYNC", simultaneous=True, asynchronous=True)
SIMSYNC = ModelSpec("SIMSYNC", simultaneous=True, asynchronous=False)
ASYNC = ModelSpec("ASYNC", simultaneous=False, asynchronous=True)
SYNC = ModelSpec("SYNC", simultaneous=False, asynchronous=False)

ALL_MODELS: tuple[ModelSpec, ...] = (SIMASYNC, SIMSYNC, ASYNC, SYNC)
MODELS_BY_NAME: dict[str, ModelSpec] = {m.name: m for m in ALL_MODELS}

#: Lemma 4's total chain of problem-class inclusions, weakest first.
_CHAIN = (SIMASYNC, SIMSYNC, ASYNC, SYNC)


def lemma4_chain() -> tuple[ModelSpec, ...]:
    """The inclusion chain ``SIMASYNC ⊆ SIMSYNC ⊆ ASYNC ⊆ SYNC``."""
    return _CHAIN


def at_most_as_strong(weaker: ModelSpec, stronger: ModelSpec) -> bool:
    """Whether every problem solvable in ``weaker`` is solvable in
    ``stronger`` according to Lemma 4 (a total order on the four models)."""
    return _CHAIN.index(weaker) <= _CHAIN.index(stronger)
