"""The whiteboard machine: models, protocols, adversaries, simulator."""

from .errors import MessageTooLarge, ProtocolViolation, SchedulerError, WhiteboardError
from .execution import Checkpoint, ExecutionState, replay_schedule
from .models import (
    ALL_MODELS,
    ASYNC,
    MODELS_BY_NAME,
    SIMASYNC,
    SIMSYNC,
    SYNC,
    ModelSpec,
    at_most_as_strong,
    lemma4_chain,
)
from .protocol import NodeView, Protocol
from .reference import Configuration, NodeState, replay, validate_run
from .schedulers import (
    DelayTargetScheduler,
    FifoScheduler,
    FixedOrderScheduler,
    LifoScheduler,
    MaxIdScheduler,
    MinIdScheduler,
    RandomScheduler,
    Scheduler,
    default_portfolio,
)
from .batch import (
    BatchAborted,
    BatchedExecutionState,
    batch_supported,
    batched_all_executions,
    batched_count_executions,
    partition_lots,
)
from .simulator import RunResult, all_executions, count_executions, run
from .whiteboard import BoardView, Entry, Whiteboard

__all__ = [
    "BatchAborted",
    "BatchedExecutionState",
    "batch_supported",
    "batched_all_executions",
    "batched_count_executions",
    "partition_lots",
    "MessageTooLarge",
    "ProtocolViolation",
    "SchedulerError",
    "WhiteboardError",
    "Checkpoint",
    "ExecutionState",
    "replay_schedule",
    "ALL_MODELS",
    "ASYNC",
    "MODELS_BY_NAME",
    "SIMASYNC",
    "SIMSYNC",
    "SYNC",
    "ModelSpec",
    "at_most_as_strong",
    "lemma4_chain",
    "NodeView",
    "Protocol",
    "Configuration",
    "NodeState",
    "replay",
    "validate_run",
    "DelayTargetScheduler",
    "FifoScheduler",
    "FixedOrderScheduler",
    "LifoScheduler",
    "MaxIdScheduler",
    "MinIdScheduler",
    "RandomScheduler",
    "Scheduler",
    "default_portfolio",
    "RunResult",
    "all_executions",
    "count_executions",
    "run",
    "BoardView",
    "Entry",
    "Whiteboard",
]
