"""Adversarial schedulers.

The paper's adversary picks, among the currently active nodes, the one
whose message is written next.  Positive results must hold for *every*
adversary, so the verification harness runs each protocol under a
portfolio of schedulers — and, for small inputs, under *all* schedules
via :func:`repro.core.simulator.all_executions`.

Schedulers see full :class:`~repro.core.whiteboard.Whiteboard` entries
(an adversary is allowed to know everything); protocols never do.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Sequence

from .errors import SchedulerError
from .whiteboard import Whiteboard

__all__ = [
    "Scheduler",
    "MinIdScheduler",
    "MaxIdScheduler",
    "FifoScheduler",
    "LifoScheduler",
    "RandomScheduler",
    "FixedOrderScheduler",
    "DelayTargetScheduler",
    "default_portfolio",
]


class Scheduler(ABC):
    """Strategy interface: choose which active node writes next."""

    name: str = "scheduler"

    @abstractmethod
    def choose(
        self,
        candidates: Sequence[int],
        board: Whiteboard,
        activation_round: dict[int, int],
    ) -> int:
        """Pick one node from ``candidates`` (non-empty, sorted ascending).

        ``activation_round[v]`` is the write-event index at which ``v``
        became active (0 = before any write).
        """

    def fresh(self) -> "Scheduler":
        """A per-execution instance (stateful schedulers must override)."""
        return self


class MinIdScheduler(Scheduler):
    """Always the smallest identifier — the paper's 'natural' order."""

    name = "min-id"

    def choose(self, candidates, board, activation_round):
        return candidates[0]


class MaxIdScheduler(Scheduler):
    """Always the largest identifier — reverses ID-based protocols."""

    name = "max-id"

    def choose(self, candidates, board, activation_round):
        return candidates[-1]


class FifoScheduler(Scheduler):
    """Earliest activation first (ties to smallest ID): a 'patient'
    adversary that honours hand-raising order."""

    name = "fifo"

    def choose(self, candidates, board, activation_round):
        return min(candidates, key=lambda v: (activation_round[v], v))


class LifoScheduler(Scheduler):
    """Latest activation first (ties to largest ID): maximally starves
    early hand-raisers, the classic async-delay adversary."""

    name = "lifo"

    def choose(self, candidates, board, activation_round):
        return max(candidates, key=lambda v: (activation_round[v], v))


class RandomScheduler(Scheduler):
    """Uniformly random choice with a per-execution seeded stream."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(self, candidates, board, activation_round):
        return self._rng.choice(list(candidates))

    def fresh(self) -> "RandomScheduler":
        return RandomScheduler(self.seed)


class FixedOrderScheduler(Scheduler):
    """Follow a fixed node order as closely as the activation pattern
    allows: always pick the order-earliest candidate."""

    name = "fixed-order"

    def __init__(self, order: Sequence[int]) -> None:
        self.order = tuple(order)
        self._rank = {v: i for i, v in enumerate(self.order)}

    def choose(self, candidates, board, activation_round):
        try:
            return min(candidates, key=lambda v: self._rank[v])
        except KeyError as exc:
            raise SchedulerError(f"node {exc} missing from fixed order") from exc


class DelayTargetScheduler(Scheduler):
    """Starve a designated set of nodes for as long as possible.

    Useful for probing protocols whose proofs hinge on some node being
    written early (e.g. roots, or a problem's designated node ``x``).
    """

    name = "delay-target"

    def __init__(self, targets: Sequence[int]) -> None:
        self.targets = frozenset(targets)

    def choose(self, candidates, board, activation_round):
        preferred = [v for v in candidates if v not in self.targets]
        return preferred[0] if preferred else candidates[0]


def default_portfolio(seeds: Sequence[int] = (0, 1, 2, 3, 4)) -> list[Scheduler]:
    """The standard adversary portfolio used by the verification harness."""
    portfolio: list[Scheduler] = [
        MinIdScheduler(),
        MaxIdScheduler(),
        FifoScheduler(),
        LifoScheduler(),
    ]
    portfolio.extend(RandomScheduler(seed) for seed in seeds)
    return portfolio
