"""Intra-cell sharding: fan one heavy exhaustive task across workers.

The process backend's unit of distribution used to be the whole
:class:`~repro.runtime.plan.ExecutionTask` — fine for wide sweeps, but a
single heavy cell (one n! enumeration) still ran on one core.  This
module lowers such a cell into *sub-tasks*: a bounded parent expansion
(:func:`repro.core.batch.expand_enumeration_units`) splits the schedule
tree at a uniform prefix depth, LPT-weighted lots of subtree prefixes
ship to workers as picklable :class:`~repro.core.batch.ScheduleLot`
replays, and the parent reassembles per-prefix partial aggregates in
exact DFS unit order, so the merged :class:`TaskOutcome` is
field-identical to ``task.execute()``.

Sharding is a backend concern, like chunking: it adds no task attribute,
so campaign fingerprints cannot see it (a sharded cell is the same work)
and any failure — expansion error, worker error, merge surprise — falls
back to executing the task in the parent, the serial authority, which
raises or aggregates at exactly the right point.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import Any, Optional

from ..telemetry import tracer as _trace
from .results import TaskOutcome

__all__ = ["SHARD_MIN_N", "shardable", "lower", "reassemble"]

#: Smallest instance worth splitting: below this the schedule tree is
#: cheaper to enumerate than to expand, partition, pickle and merge.
SHARD_MIN_N = 6


def shardable(task) -> bool:
    """Whether a task's cell can be split into schedule-prefix lots.

    Only full exhaustive enumerations qualify: ``exhaustive_limit``
    truncates mid-stream (a global count no lot can see), and search /
    scheduler cells carry their parallelism inside the strategies.
    """
    return (task.mode == "exhaustive"
            and task.exhaustive_limit is None
            and task.graph.n >= SHARD_MIN_N)


def lower(tasks: Sequence[Any], jobs: int):
    """Lower tasks into a mixed work-item list plus a reassembly layout.

    Items are ``("task", task)`` (execute whole, unchanged) or
    ``("shard", (task, prefixes))`` (one lot of one cell).  The layout
    holds one entry per task: ``("task",)`` or ``("shard", units,
    lot_count)`` with the parent-side DFS unit list the merge walks.
    """
    from ..core import batch as _batch

    items: list = []
    layout: list = []
    for task in tasks:
        units = None
        if shardable(task) and _batch.np is not None:
            try:
                units = _batch.expand_enumeration_units(
                    task.graph, task.protocol, task.model, task.bit_budget,
                    task.faults, min_prefixes=2 * jobs)
            except Exception:  # noqa: BLE001 - serial path raises it right
                units = None
        prefixes = ([payload for kind, payload in units if kind == "prefix"]
                    if units is not None else [])
        if len(prefixes) < 2:
            items.append(("task", task))
            layout.append(("task",))
            continue
        weights = _batch._prefix_weights(prefixes, task.graph.n, task.faults)
        partition = _batch.partition_weighted(weights, jobs * 2)
        lots = [
            tuple(prefixes[i] for i in idx.tolist())
            for idx in partition
        ]
        if _trace.active() is not None:
            lot_weights = [float(sum(weights[i] for i in idx.tolist()))
                           for idx in partition]
            mean = sum(lot_weights) / len(lot_weights)
            _trace.event(
                "shard.lots",
                index=task.index,
                lots=len(lots),
                prefixes=len(prefixes),
                max_weight=max(lot_weights),
                imbalance=(max(lot_weights) / mean) if mean else 0.0,
            )
        for lot in lots:
            items.append(("shard", (task, lot)))
        layout.append(("shard", units, len(lots)))
    return items, layout


def reassemble(tasks: Sequence[Any], layout: Sequence[Any],
               outputs) -> Iterator[TaskOutcome]:
    """Fold submission-ordered item outputs back into task outcomes.

    Items were laid out task-major, so each task's outputs arrive
    contiguously; sharded tasks merge their per-prefix partials in DFS
    unit order, and any lot error or merge failure re-runs the task
    serially in this process — the authority on results *and* on where
    exceptions surface.
    """
    it = iter(outputs)
    for task, entry in zip(tasks, layout):
        if entry[0] == "task":
            yield next(it)
            continue
        _, units, lot_count = entry
        partials: dict = {}
        failed = False
        for _ in range(lot_count):
            status, value = next(it)
            if status != "ok":
                failed = True
            elif not failed:
                partials.update(value)
        if failed:
            _trace.count("shard.fallbacks")
            _trace.event("shard.fallback", index=task.index,
                         reason="lot-error")
            yield task.execute()
            continue
        try:
            with _trace.span("shard.reassemble", index=task.index,
                             lots=lot_count):
                outcome = task._merge_shards(units, partials)
        except Exception:  # noqa: BLE001 - serial authority decides
            _trace.count("shard.fallbacks")
            _trace.event("shard.fallback", index=task.index,
                         reason="merge-error")
            outcome = task.execute()
        yield outcome
