"""Execution plans: the (graph × protocol × model × scheduler) product.

The paper's results are universally quantified — "for every adversary",
"for every input in the class" — so every empirical claim in this repo
is a *sweep* over cells of that product.  An :class:`ExecutionPlan`
enumerates the cells once, deterministically, into picklable
:class:`ExecutionTask` specs; a :class:`~repro.runtime.backends.Backend`
then executes them serially or fanned across processes.  Everything that
used to hand-roll this loop (``verify_protocol``, the parallel sweep
module, the experiment registry, the CLI) builds a plan instead.

Plan modes:

* ``single`` — each cell runs once per scheduler in the portfolio.
* ``exhaustive`` — each cell enumerates *every* adversary schedule.
* ``verify`` — the harness policy: exhaustive when the instance is small
  enough (``n <= exhaustive_threshold``), scheduler portfolio otherwise,
  raw transcripts dropped so only aggregates cross process boundaries.
* ``stress`` — the adversarial policy: exhaustive below the threshold,
  *guided adversary search* (:mod:`repro.adversaries`) above — replacing
  the verify-mode cliff where large instances fall back to a fixed
  portfolio.  Every cell records concrete worst witness schedules in
  ``VerificationReport.witnesses``.

Tasks are frozen and fully resolved at build time (the ``bit_budget``
callable, for instance, is applied to each graph's ``n`` up front), so a
task pickles cleanly and executes identically in any process.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass
from typing import Any, Optional, Union

from ..adversaries import (
    AdversarySearch,
    SearchContext,
    TranspositionTable,
    default_search_portfolio,
    resolve_score,
)
from ..core.execution import replay_schedule
from ..core.models import MODELS_BY_NAME, ModelSpec
from ..core.protocol import Protocol
from ..core.schedulers import Scheduler, default_portfolio
from ..core.simulator import RunResult, all_executions, run
from ..faults.spec import FaultSpec, resolve_faults
from ..graphs.labeled_graph import LabeledGraph
from ..telemetry import TaskCollection
from ..telemetry import tracer as _trace
from .results import (
    ListSink,
    ReportMergeSink,
    ResultSink,
    TaskOutcome,
    VerificationReport,
    WitnessRecord,
)

__all__ = ["Checker", "ExecutionTask", "ExecutionPlan"]

#: ``checker(graph, output, result) -> bool`` — truthy means correct.
Checker = Callable[[LabeledGraph, Any, "RunResult"], bool]

_MODES = ("single", "exhaustive", "verify", "stress")


@dataclass(frozen=True)
class ExecutionTask:
    """One independent cell of a sweep, resolved and picklable.

    ``mode`` is ``"schedules"`` (run once per scheduler),
    ``"exhaustive"`` (enumerate every adversary schedule) or
    ``"search"`` (run every adversary-search strategy); the plan-level
    ``verify``/``stress`` modes lower each cell to one of these at
    build time.  ``capture_witnesses`` makes the cell record concrete
    worst schedules in its report (stress cells always do).
    """

    index: int
    graph: LabeledGraph
    protocol: Protocol
    model_name: str
    mode: str
    schedulers: tuple[Scheduler, ...] = ()
    adversaries: tuple[AdversarySearch, ...] = ()
    checker: Optional[Checker] = None
    bit_budget: Optional[int] = None
    exhaustive_limit: Optional[int] = None
    allow_deadlock: bool = False
    keep_runs: bool = True
    capture_witnesses: bool = False
    #: Attach a shrunk forcing schedule to every recorded witness.  The
    #: ddmin pass costs O(len²) schedule replays per witness, so plans
    #: sweeping very large instances may turn it off.
    minimize_witnesses: bool = True
    #: Search-kernel knobs, lowered from the plan build and carried as
    #: primitive attrs so campaign fingerprints see them.  ``score`` is
    #: the :data:`repro.adversaries.SCORE_HOOKS` name baked into the
    #: cell's strategies (``None`` = default bits-greedy);
    #: ``share_table`` makes the cell run its strategies through one
    #: shared :class:`~repro.adversaries.SearchContext`, so they reuse
    #: one transposition table.
    score: Optional[str] = None
    share_table: bool = False
    #: Canonical fault-budget spec string (``"crash:1,loss:2"``) or
    #: ``None`` for the reliable semantics.  Primitive on purpose: it is
    #: fingerprinted into campaign stores like every other knob, and
    #: ``None`` keeps fault-free tasks byte-identical to pre-fault ones.
    faults: Optional[str] = None
    #: Batched-core preference: ``True`` routes exhaustive cells through
    #: the structure-of-arrays fast path (``None``/``False`` keep the
    #: scalar engine; search cells carry the knob on their strategies).
    #: Semantics-free by construction — batched results are pinned
    #: field-identical to scalar — so ``task_fingerprint`` deliberately
    #: excludes it: the same cell batched or not is the same work.
    batch: Optional[bool] = None
    #: Warm transposition frontiers: ``(config_key, TableEntry)`` pairs
    #: preloaded into the cell's table before any search runs, served by
    #: a persistent frontier store (see :mod:`repro.campaigns.frontiers`).
    #: ``None`` disables the frontier path entirely; a (possibly empty)
    #: tuple enables it — the cell attaches a table, preloads the seeds,
    #: and exports its dirty rows on the outcome.  Like ``batch``, the
    #: knob is report-invariant (warm entries never change a witness,
    #: only the work done to find it), so ``task_fingerprint``
    #: deliberately excludes it.
    frontiers: Optional[tuple] = None

    @property
    def model(self) -> ModelSpec:
        return MODELS_BY_NAME[self.model_name]

    def execute(self) -> TaskOutcome:
        """Run the cell and aggregate, mirroring the serial harness exactly.

        Wraps :meth:`_run_cell` in a telemetry collection scope: the
        deterministic kernel snapshot (and, while tracing, the timing
        payload) is attached to the outcome on the way out.  Observation
        only — cells that touch nothing observable return the identical
        outcome object :meth:`_run_cell` built.
        """
        collect = TaskCollection(self)
        with collect:
            outcome = self._run_cell(collect)
        return collect.finalize(outcome)

    def _run_cell(self, collect) -> TaskOutcome:
        """The cell body proper (``collect`` is the observation scope).

        Deadlocks under ``allow_deadlock`` count as executions but do not
        touch the bit maxima — the historical ``verify_protocol``
        behaviour, which equivalence tests pin.  Search cells run each
        adversary strategy and replay its witness schedule through the
        engine, so witnesses are checked (and budget-enforced) exactly
        like any other execution.
        """
        model = self.model
        witness_runs: list[tuple[str, RunResult]] = []
        if self.mode == "exhaustive":
            results: Iterable[RunResult] = all_executions(
                self.graph, self.protocol, model,
                bit_budget=self.bit_budget, limit=self.exhaustive_limit,
                faults=self.faults, batch=self.batch is True,
            )
        elif self.mode == "search":
            # Always hand the strategies one shared SearchContext so its
            # cumulative SearchStats can be snapshotted.  Equivalent to
            # the ensure(None) each strategy would otherwise do: the
            # table is None unless shared, max_steps is None, and
            # nothing reads the stats back into the search.
            table = (
                TranspositionTable()
                if self.share_table or self.frontiers is not None
                else None
            )
            if table is not None and self.frontiers:
                table.preload(self.frontiers)
            context = SearchContext(table=table)
            collect.observe_context(context)

            def searched() -> Iterable[RunResult]:
                for strategy in self.adversaries:
                    with _trace.span("search",
                                     strategy=strategy.name) as span:
                        witness = strategy.search(
                            self.graph, self.protocol, model,
                            bit_budget=self.bit_budget,
                            context=context,
                            faults=self.faults,
                        )
                        span.set("explored", witness.explored)
                    _trace.count("search.explored", witness.explored)
                    with _trace.span("replay", strategy=strategy.name):
                        result = replay_schedule(
                            self.graph, self.protocol, model,
                            witness.schedule, self.bit_budget,
                            faults=self.faults,
                        )
                    witness_runs.append((strategy.name, result))
                    yield result
            results = searched()
        else:
            results = (
                run(self.graph, self.protocol, model, sched,
                    bit_budget=self.bit_budget)
                for sched in self.schedulers
            )
        report: Optional[VerificationReport] = None
        if self.checker is not None:
            report = VerificationReport(self.protocol.name, self.model_name)
            report.instances = 1
            if self.mode == "exhaustive":
                report.exhaustive_instances = 1
        kept: Optional[list[RunResult]] = [] if self.keep_runs else None
        with _trace.span("fold", index=self.index, mode=self.mode):
            worst, first_deadlock = self._fold_results(results, report, kept)
        if report is not None and self.capture_witnesses:
            if self.mode == "exhaustive":
                if worst is not None:
                    self._record_witness(report, "exhaustive", worst)
                if first_deadlock is not None and first_deadlock is not worst:
                    self._record_witness(
                        report, "exhaustive-deadlock", first_deadlock
                    )
            else:
                for strategy_name, result in witness_runs:
                    self._record_witness(report, strategy_name, result)
        frontier_rows: Optional[tuple] = None
        if self.mode == "search" and self.frontiers is not None:
            # Everything this run recorded or tightened, for the
            # persistent store; preloaded (warm) rows are not dirty, so
            # a pure re-serve exports nothing.
            frontier_rows = tuple(table.export_dirty())
        return TaskOutcome(
            self.index, report, tuple(kept) if kept is not None else None,
            frontiers=frontier_rows,
        )

    def _fold_results(
        self,
        results: Iterable[RunResult],
        report: Optional[VerificationReport],
        kept: Optional[list[RunResult]],
    ) -> tuple[Optional[RunResult], Optional[RunResult]]:
        """The one aggregation loop: fold ``results`` (DFS order) into
        ``report``/``kept`` in place and return ``(worst,
        first_deadlock)``.  Shared by the serial :meth:`execute`, shard
        workers (:meth:`_shard_partial`) and the shard merge, so every
        path aggregates identically by construction."""
        worst: Optional[RunResult] = None
        first_deadlock: Optional[RunResult] = None
        for result in results:
            if kept is not None:
                kept.append(result)
            if self.capture_witnesses and self.mode == "exhaustive":
                if worst is None or result.max_message_bits > worst.max_message_bits:
                    worst = result
                if first_deadlock is None and result.corrupted:
                    first_deadlock = result
            if report is None:
                continue
            if result.corrupted and self.allow_deadlock:
                report.executions += 1
                continue
            report.record(self.graph, result, self._check(result))
        return worst, first_deadlock

    def _shard_partial(self, results: Iterable[RunResult]):
        """Aggregate one schedule-prefix group into a picklable partial:
        ``(report, kept, worst, first_deadlock)``, with the report's
        instance counters left at zero (the merge's header supplies
        them once)."""
        report: Optional[VerificationReport] = None
        if self.checker is not None:
            report = VerificationReport(self.protocol.name, self.model_name)
        kept: Optional[list[RunResult]] = [] if self.keep_runs else None
        worst, first_deadlock = self._fold_results(results, report, kept)
        return (report, tuple(kept) if kept is not None else None,
                worst, first_deadlock)

    def _execute_shard(self, prefixes):
        """Worker side of a sharded exhaustive cell: replay one lot of
        schedule prefixes to every terminal below them and aggregate
        each prefix's group separately, keyed for the parent merge."""
        from ..core.batch import ScheduleLot, run_schedule_lot

        lot = ScheduleLot(self.graph, self.protocol, self.model_name,
                          self.bit_budget, self.faults, tuple(prefixes),
                          batch=self.batch is True, collect=True)
        status, value = run_schedule_lot(lot)
        if status != "ok":
            raise RuntimeError(value)
        return {prefix: self._shard_partial(group)
                for prefix, group in zip(lot.prefixes, value)}

    def _merge_shards(self, units, partials: dict) -> TaskOutcome:
        """Parent side: walk the DFS unit list, folding above-frontier
        results directly and merging worker partials where their prefix
        sits, then apply the witness tail — field-identical to
        :meth:`execute` because report merging is associative and every
        fold below used the same loop in the same order."""
        report: Optional[VerificationReport] = None
        if self.checker is not None:
            report = VerificationReport(self.protocol.name, self.model_name)
            report.instances = 1
            report.exhaustive_instances = 1
        kept: Optional[list[RunResult]] = [] if self.keep_runs else None
        worst: Optional[RunResult] = None
        first_deadlock: Optional[RunResult] = None
        for kind, payload in units:
            if kind == "result":
                unit_worst, unit_deadlock = self._fold_results(
                    [payload], report, kept)
            else:
                part_report, part_kept, unit_worst, unit_deadlock = (
                    partials[payload])
                if report is not None:
                    report.merge(part_report)
                if kept is not None:
                    kept.extend(part_kept)
            if unit_worst is not None and (
                    worst is None
                    or unit_worst.max_message_bits > worst.max_message_bits):
                worst = unit_worst
            if first_deadlock is None and unit_deadlock is not None:
                first_deadlock = unit_deadlock
        if report is not None and self.capture_witnesses:
            if worst is not None:
                self._record_witness(report, "exhaustive", worst)
            if first_deadlock is not None and first_deadlock is not worst:
                self._record_witness(
                    report, "exhaustive-deadlock", first_deadlock)
        return TaskOutcome(
            self.index, report, tuple(kept) if kept is not None else None
        )

    def _check(self, result: RunResult) -> bool:
        """Checker verdict for one execution.

        Fault-free tasks call the checker exactly as before.  Under a
        fault budget, a recorded decode failure is an incorrect outcome
        (not a crash), and a checker that raises on a fault-perturbed
        board counts as incorrect for the same reason.
        """
        if not result.success:
            return False
        if self.faults is None:
            return bool(self.checker(self.graph, result.output, result))
        if result.output_error is not None:
            return False
        try:
            return bool(self.checker(self.graph, result.output, result))
        except Exception:  # noqa: BLE001 - fault-perturbed boards only
            return False

    def _record_witness(self, report: VerificationReport, strategy: str,
                        result: RunResult) -> None:
        # result.schedule carries fault events; it equals write_order for
        # reliable runs (and pre-fault RunResults leave it empty).
        schedule = result.schedule or result.write_order
        minimal = None
        if self.minimize_witnesses:
            from ..adversaries.base import minimize_schedule

            with _trace.span("minimize", strategy=strategy, n=self.graph.n):
                minimal = minimize_schedule(
                    self.graph, self.protocol, self.model, schedule,
                    bits=result.max_message_bits, deadlock=result.corrupted,
                    bit_budget=self.bit_budget, faults=self.faults,
                )
        report.witnesses.append(WitnessRecord(
            strategy=strategy,
            graph=self.graph,
            model_name=self.model_name,
            schedule=schedule,
            bits=result.max_message_bits,
            deadlock=result.corrupted,
            minimal_schedule=minimal,
            faults=self.faults,
        ))


def _as_tuple(value, kind) -> tuple:
    if isinstance(value, kind):
        return (value,)
    return tuple(value)


@dataclass(frozen=True)
class ExecutionPlan:
    """A deterministic, indexed list of execution tasks.

    Built once, runnable on any backend; task ``index`` is the only
    ordering authority, so results are identical no matter how a backend
    shards or races the work.
    """

    tasks: tuple[ExecutionTask, ...]
    protocol_names: tuple[str, ...]
    model_names: tuple[str, ...]
    mode: str

    @classmethod
    def build(
        cls,
        protocols: Union[Protocol, Sequence[Protocol]],
        models: Union[ModelSpec, Sequence[ModelSpec]],
        instances: Iterable[LabeledGraph],
        *,
        mode: str = "single",
        schedulers: Optional[Sequence[Scheduler]] = None,
        adversaries: Optional[Sequence[AdversarySearch]] = None,
        checker: Optional[Checker] = None,
        exhaustive_threshold: int = 5,
        exhaustive_limit: Optional[int] = None,
        bit_budget: Union[None, int, Callable[[int], int]] = None,
        allow_deadlock: bool = False,
        keep_runs: Optional[bool] = None,
        minimize_witnesses: bool = True,
        score: Optional[str] = None,
        share_table: bool = False,
        faults: Union[None, str, FaultSpec] = None,
        batch: Optional[bool] = None,
    ) -> "ExecutionPlan":
        """Enumerate the (protocol × model × instance) product into tasks.

        Enumeration order is protocol-major, then model, then instance —
        stable for any input ordering, so a plan built twice from the
        same arguments is identical task for task.  ``adversaries``
        (stress mode only) defaults to
        :func:`repro.adversaries.default_search_portfolio`, built with
        the ``score`` hook when one is named; ``share_table`` runs each
        search cell's strategies through one shared
        :class:`~repro.adversaries.SearchContext` (one transposition
        table per cell).

        ``batch`` selects the batched structure-of-arrays engine for
        exhaustive cells and the default portfolio's beam strategy:
        ``True`` forces it wherever supported, ``False`` pins the
        scalar engine, ``None`` (default) keeps exhaustive cells scalar
        and lets the beam auto-detect.  Either way every report is
        field-identical — the knob trades time, never semantics.
        """
        if mode not in _MODES:
            raise ValueError(f"unknown plan mode {mode!r}; expected one of {_MODES}")
        if adversaries is not None and mode != "stress":
            raise ValueError(
                f"adversaries are only used by stress plans; mode is {mode!r}"
            )
        if (score is not None or share_table) and mode != "stress":
            raise ValueError(
                "score/share_table are search-kernel knobs; they only "
                f"apply to stress plans, and mode is {mode!r}"
            )
        if score is not None and adversaries is not None:
            raise ValueError(
                "pass either a score hook name (baked into the default "
                "portfolio) or explicit adversaries, not both"
            )
        if score is not None:
            resolve_score(score)  # fail fast on unknown hook names
        fault_spec = resolve_faults(faults).canonical()
        if fault_spec is not None and mode not in ("exhaustive", "stress"):
            raise ValueError(
                "fault budgets need adversary-searched (stress) or "
                "exhaustively enumerated cells; scheduler portfolios "
                f"cannot choose fault events, and mode is {mode!r}"
            )
        protos = _as_tuple(protocols, Protocol)
        model_specs = _as_tuple(models, ModelSpec)
        graphs = list(instances)
        scheds = (
            tuple(schedulers) if schedulers is not None
            else tuple(default_portfolio())
        )
        searches = (
            tuple(adversaries) if adversaries is not None
            else tuple(default_search_portfolio(score=score, batch=batch))
            if mode == "stress"
            else ()
        )
        if keep_runs is None:
            keep_runs = mode not in ("verify", "stress")
        if checker is None and not keep_runs:
            raise ValueError("a plan without a checker must keep its runs")
        tasks: list[ExecutionTask] = []
        for proto in protos:
            for model in model_specs:
                for graph in graphs:
                    budget = bit_budget(graph.n) if callable(bit_budget) else bit_budget
                    if mode == "exhaustive":
                        task_mode = "exhaustive"
                    elif mode in ("verify", "stress"):
                        if graph.n <= exhaustive_threshold:
                            task_mode = "exhaustive"
                        elif mode == "stress":
                            task_mode = "search"
                        else:
                            task_mode = "schedules"
                    else:
                        task_mode = "schedules"
                    tasks.append(ExecutionTask(
                        index=len(tasks),
                        graph=graph,
                        protocol=proto,
                        model_name=model.name,
                        mode=task_mode,
                        schedulers=scheds if task_mode == "schedules" else (),
                        adversaries=searches if task_mode == "search" else (),
                        checker=checker,
                        bit_budget=budget,
                        exhaustive_limit=exhaustive_limit,
                        allow_deadlock=allow_deadlock,
                        keep_runs=keep_runs,
                        capture_witnesses=mode == "stress",
                        minimize_witnesses=minimize_witnesses,
                        score=score if task_mode == "search" else None,
                        share_table=(share_table
                                     if task_mode == "search" else False),
                        faults=fault_spec,
                        batch=batch if task_mode == "exhaustive" else None,
                    ))
        return cls(
            tasks=tuple(tasks),
            protocol_names=tuple(dict.fromkeys(p.name for p in protos)),
            model_names=tuple(dict.fromkeys(m.name for m in model_specs)),
            mode=mode,
        )

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[ExecutionTask]:
        return iter(self.tasks)

    def run(self, backend=None, sink: Optional[ResultSink] = None):
        """Execute every task on ``backend``, streaming outcomes into
        ``sink`` in task order; returns ``sink.result()``.

        Defaults: :class:`~repro.runtime.backends.SerialBackend` and a
        :class:`~repro.runtime.results.ListSink` (list of outcomes).
        """
        from .backends import SerialBackend

        if backend is None:
            backend = SerialBackend()
        if sink is None:
            sink = ListSink()
        for outcome in backend.run(self.tasks):
            sink.add(outcome)
        return sink.result()

    def verification_report(self, backend=None) -> VerificationReport:
        """Run the plan and merge per-task reports into one."""
        sink = ReportMergeSink(
            "+".join(self.protocol_names), "+".join(self.model_names)
        )
        return self.run(backend=backend, sink=sink)
