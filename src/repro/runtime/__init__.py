"""The unified execution runtime: plans, backends, result sinks.

Every sweep in this repository — the verification harness, the E1–E18
experiment registry, the CLI's ``sweep`` command, the parallel
benchmarks — is the same shape: enumerate (graph × protocol × model ×
scheduler) cells, execute them independently, merge the results
deterministically.  This package is that shape, factored once:

* :mod:`~repro.runtime.plan` — :class:`ExecutionPlan` builds the cell
  product into picklable :class:`ExecutionTask` specs.
* :mod:`~repro.runtime.backends` — :class:`SerialBackend` and the
  chunk-sharded :class:`ProcessPoolBackend` execute any plan with
  identical, deterministic results.
* :mod:`~repro.runtime.results` — streaming sinks and the canonical
  :class:`VerificationReport` with its ``merge`` fold.

Future sharding/caching/distribution work plugs in as new backends; the
plan and report invariants (see ROADMAP.md, "Execution runtime") stay
fixed.
"""

from .backends import Backend, ProcessPoolBackend, SerialBackend, resolve_backend
from .plan import Checker, ExecutionPlan, ExecutionTask
from .results import (
    Failure,
    ListSink,
    ReportMergeSink,
    ResultSink,
    StoreBackedSink,
    TaskOutcome,
    VerificationReport,
    WitnessRecord,
)

__all__ = [
    "Backend",
    "ProcessPoolBackend",
    "SerialBackend",
    "resolve_backend",
    "Checker",
    "ExecutionPlan",
    "ExecutionTask",
    "Failure",
    "ListSink",
    "ReportMergeSink",
    "ResultSink",
    "StoreBackedSink",
    "TaskOutcome",
    "VerificationReport",
    "WitnessRecord",
]
