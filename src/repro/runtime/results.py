"""Result types and streaming sinks for the execution runtime.

:class:`VerificationReport` (and its per-execution :class:`Failure`
records) is the canonical aggregate of a correctness sweep.  It
historically lived in :mod:`repro.analysis.verify`, which still
re-exports it; it moved here so the runtime layer — which produces
per-task reports in worker processes — can depend on it without
importing the analysis layer.

Backends deliver :class:`TaskOutcome` objects in deterministic task
order; a :class:`ResultSink` consumes them one at a time, so arbitrarily
large sweeps never require holding every execution in memory at once.
:class:`ReportMergeSink` folds per-task reports into a single
:class:`VerificationReport` via :meth:`VerificationReport.merge` — the
one merging loop shared by the serial path, the process backend, and the
deprecated ``verify_protocol_parallel`` shim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from ..graphs.labeled_graph import LabeledGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.simulator import RunResult
    from ..telemetry.stats import KernelAccumulator, KernelStats
    from ..telemetry.tracer import TaskTelemetry

__all__ = [
    "Failure",
    "WitnessRecord",
    "VerificationReport",
    "TaskOutcome",
    "ResultSink",
    "ListSink",
    "ReportMergeSink",
    "StoreBackedSink",
    "KernelStatsSink",
]


@dataclass(frozen=True)
class Failure:
    """One incorrect or deadlocked execution."""

    graph: LabeledGraph
    schedule: tuple[int, ...]
    output: Any
    kind: str  # "wrong-output" | "deadlock"


@dataclass(frozen=True)
class WitnessRecord:
    """A worst adversary schedule surfaced by a stress sweep.

    Unlike a bare maximum, a witness is replayable evidence: ``schedule``
    applied to ``graph`` under ``model_name`` reproduces ``bits`` (or the
    deadlock) exactly — :func:`repro.analysis.trace.narrate_witness`
    renders the full transcript.  ``strategy`` is the adversary search
    that found it, or ``"exhaustive"`` below the enumeration threshold.
    """

    strategy: str
    graph: LabeledGraph
    model_name: str
    schedule: tuple[int, ...]
    bits: int
    deadlock: bool
    #: Shrunk forcing schedule (:func:`repro.adversaries.minimize_schedule`):
    #: for deadlock witnesses a complete terminal schedule, for bits
    #: witnesses the minimal forcing prefix.  ``None`` when the recording
    #: cell skipped minimisation.
    minimal_schedule: Optional[tuple[int, ...]] = None
    #: Canonical fault-budget spec the witness was found (and must be
    #: replayed) under; ``None`` for reliable-semantics witnesses.  A
    #: faulted ``schedule`` encodes its fault events as negative
    #: integers (see :mod:`repro.faults.spec`).
    faults: Optional[str] = None


@dataclass
class VerificationReport:
    """Aggregated result of a verification sweep."""

    protocol_name: str
    model_name: str
    instances: int = 0
    executions: int = 0
    exhaustive_instances: int = 0
    failures: list[Failure] = field(default_factory=list)
    max_message_bits: int = 0
    max_bits_by_n: dict[int, int] = field(default_factory=dict)
    witnesses: list[WitnessRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def record(self, graph: LabeledGraph, result: "RunResult", correct: bool) -> None:
        self.executions += 1
        self.max_message_bits = max(self.max_message_bits, result.max_message_bits)
        prev = self.max_bits_by_n.get(graph.n, 0)
        self.max_bits_by_n[graph.n] = max(prev, result.max_message_bits)
        schedule = result.schedule or result.write_order
        if result.corrupted:
            self.failures.append(
                Failure(graph, schedule, None, "deadlock")
            )
        elif not correct:
            self.failures.append(
                Failure(graph, schedule, result.output, "wrong-output")
            )

    def merge(self, other: "VerificationReport") -> "VerificationReport":
        """Fold ``other`` into this report (counts, failures, bit maxima).

        Merging is associative and order-preserving over ``failures``,
        ``witnesses`` and ``max_bits_by_n`` insertion order, so folding
        per-task reports in task order reproduces the serial sweep field
        for field.  Returns ``self`` for chaining.
        """
        self.instances += other.instances
        self.executions += other.executions
        self.exhaustive_instances += other.exhaustive_instances
        self.failures.extend(other.failures)
        self.witnesses.extend(other.witnesses)
        self.max_message_bits = max(self.max_message_bits, other.max_message_bits)
        for n, bits in other.max_bits_by_n.items():
            self.max_bits_by_n[n] = max(self.max_bits_by_n.get(n, 0), bits)
        return self

    def summary(self) -> str:
        state = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        witnesses = (
            f", {len(self.witnesses)} witnesses" if self.witnesses else ""
        )
        return (
            f"{self.protocol_name} under {self.model_name}: {state} "
            f"({self.instances} instances, {self.executions} executions, "
            f"{self.exhaustive_instances} exhaustive, "
            f"max message {self.max_message_bits} bits{witnesses})"
        )


@dataclass(frozen=True)
class TaskOutcome:
    """What one :class:`~repro.runtime.plan.ExecutionTask` produced.

    ``report`` is present iff the task carried a checker; ``runs`` is
    present iff the task kept its raw :class:`RunResult` transcripts
    (verification sweeps drop them so workers only ship aggregates).

    The telemetry fields ride *beside* the result, never inside it:
    ``kernel_stats`` is the deterministic search-kernel snapshot
    (present whenever the cell touched the kernel, traced or not, and
    identical across backends), ``telemetry`` the timing payload
    (present only while tracing).  Both default to ``None`` so
    pre-telemetry constructions — and cells that observed nothing —
    stay byte-identical.
    """

    index: int
    report: Optional[VerificationReport]
    runs: Optional[tuple["RunResult", ...]]
    kernel_stats: Optional["KernelStats"] = None
    telemetry: Optional["TaskTelemetry"] = None
    #: Transposition rows this cell recorded or tightened, as raw
    #: ``(config_key, TableEntry)`` pairs for the persistent frontier
    #: store (:mod:`repro.campaigns.frontiers` owns the codec).  Only
    #: search cells executed with warm frontiers enabled carry them;
    #: ``None`` keeps every other outcome byte-identical.
    frontiers: Optional[tuple] = None


class ResultSink:
    """Streaming consumer of task outcomes, fed in task order."""

    def add(self, outcome: TaskOutcome) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class ListSink(ResultSink):
    """Collect every outcome (the default for raw sweeps)."""

    def __init__(self) -> None:
        self.outcomes: list[TaskOutcome] = []

    def add(self, outcome: TaskOutcome) -> None:
        self.outcomes.append(outcome)

    def result(self) -> list[TaskOutcome]:
        return self.outcomes


class StoreBackedSink(ResultSink):
    """Persist every outcome the moment a backend yields it, then
    delegate to an inner sink.

    ``store`` is duck-typed (``put_outcome(fingerprint, outcome,
    campaign=...)``) so the runtime layer stays independent of the
    concrete persistence layer (:class:`repro.campaigns.store.ResultStore`
    is the shipped implementation); ``fingerprints`` maps task index to
    the task's fingerprint.  Because the write happens inside ``add`` —
    i.e. in the driving process, in task order, as outcomes stream out
    of the backend — a killed sweep leaves every already-yielded outcome
    durable, which is what makes campaigns resumable.  Backends stay
    stateless: the store is only ever touched here.
    """

    def __init__(self, store: Any, fingerprints: "dict[int, str]",
                 inner: Optional[ResultSink] = None,
                 campaign: Optional[str] = None,
                 frontier_keys: "Optional[dict[int, str]]" = None) -> None:
        self.store = store
        self.fingerprints = dict(fingerprints)
        self.inner = inner if inner is not None else ListSink()
        self.campaign = campaign
        #: Task index → frontier cell key (``put_frontiers`` scope) for
        #: warm-frontier runs; ``None`` leaves frontier rows uncommitted.
        self.frontier_keys = (
            dict(frontier_keys) if frontier_keys is not None else None
        )

    def add(self, outcome: TaskOutcome) -> None:
        self.store.put_outcome(
            self.fingerprints[outcome.index], outcome, campaign=self.campaign
        )
        if self.frontier_keys is not None and outcome.frontiers:
            cell_key = self.frontier_keys.get(outcome.index)
            if cell_key is not None:
                self.store.put_frontiers(cell_key, outcome.frontiers)
        self.inner.add(outcome)

    def result(self) -> Any:
        return self.inner.result()


class KernelStatsSink(ResultSink):
    """Fold each outcome's deterministic kernel snapshot into an
    accumulator, then delegate.  Pure observation: the outcome passes
    through untouched, so wrapping any sink chain with this one cannot
    change what the chain computes."""

    def __init__(self, inner: ResultSink,
                 accumulator: "KernelAccumulator") -> None:
        self.inner = inner
        self.accumulator = accumulator

    def add(self, outcome: TaskOutcome) -> None:
        self.accumulator.add(outcome.kernel_stats)
        self.inner.add(outcome)

    def result(self) -> Any:
        return self.inner.result()


class ReportMergeSink(ResultSink):
    """Merge per-task verification reports into one."""

    def __init__(self, protocol_name: str, model_name: str) -> None:
        self.report = VerificationReport(protocol_name, model_name)

    def add(self, outcome: TaskOutcome) -> None:
        if outcome.report is None:
            raise ValueError(
                f"task {outcome.index} produced no report; build the plan "
                "with a checker to merge verification reports"
            )
        self.report.merge(outcome.report)

    def result(self) -> VerificationReport:
        return self.report
