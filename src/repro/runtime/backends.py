"""Execution backends: where a plan's tasks actually run.

A :class:`Backend` turns an ordered sequence of work items into an
ordered sequence of results.  Two implementations:

* :class:`SerialBackend` — in-process loop; accepts anything callable
  and is the default everywhere (closures and lambdas welcome).
* :class:`ProcessPoolBackend` — shards the item list into contiguous
  chunks and fans them across a ``ProcessPoolExecutor``.  Chunking
  amortises pickling and process round-trips over many small cells
  (one future per chunk, not per cell); results are re-assembled into
  submission order no matter which worker finishes first, so the output
  is deterministic and field-identical to the serial backend.  Work
  functions and items must be picklable — module-level callables, the
  checker classes in :mod:`repro.analysis.checkers`, and every
  :class:`~repro.runtime.plan.ExecutionTask` qualify.

The generic :meth:`Backend.map` is intentionally plan-agnostic: the
experiment registry fans E1–E18 runners through the same machinery that
runs verification cells.
"""

from __future__ import annotations

import math
import os
from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Optional, TypeVar

from .results import TaskOutcome

__all__ = ["Backend", "SerialBackend", "ProcessPoolBackend", "resolve_backend"]

T = TypeVar("T")
R = TypeVar("R")


def _default_jobs() -> int:
    """Worker count when ``jobs`` is unset: the number of CPUs this
    *process* may use (``os.process_cpu_count``, Python >= 3.13, respects
    affinity masks), falling back to ``os.cpu_count`` and then 1."""
    counter = getattr(os, "process_cpu_count", None) or os.cpu_count
    return counter() or 1


def _annotate_failure(exc: BaseException, task) -> None:
    """Attach which-cell context to a worker exception before it travels
    home.  Notes survive pickling and keep the exception type intact
    (callers match on the type); the fingerprint prefix is computed
    lazily — only on this error path — and never lets annotation itself
    raise.  ``add_note`` is 3.11+, so older interpreters just skip it.
    """
    if not hasattr(exc, "add_note"):
        return
    note = (
        f"while executing task index={task.index} "
        f"protocol={task.protocol.name!r} n={task.graph.n} "
        f"mode={task.mode!r}"
    )
    try:
        from ..campaigns.store import task_fingerprint

        note += f" fingerprint={task_fingerprint(task)[:12]}"
    except Exception:  # noqa: BLE001 - context must not mask the error
        pass
    exc.add_note(note)


def _execute_task(task) -> TaskOutcome:
    """Run one plan task (top-level so process backends can pickle it)."""
    try:
        return task.execute()
    except Exception as exc:
        _annotate_failure(exc, task)
        raise


def _execute_item(item):
    """Run one lowered work item (see :mod:`repro.runtime.sharding`).

    Plain tasks execute whole and raise like the serial backend; shard
    items return ``("ok", partials)`` / ``("error", msg)`` markers so
    the parent can discard a failed lot and re-run the cell serially —
    exceptions must surface from the authority, not a worker.
    """
    kind, payload = item
    if kind == "task":
        return _execute_task(payload)
    task, prefixes = payload
    try:
        return ("ok", task._execute_shard(prefixes))
    except Exception as exc:  # noqa: BLE001 - marker, parent re-raises
        return ("error", f"{type(exc).__name__}: {exc}")


def _apply_chunk(fn: Callable[[T], R], chunk: list[T]) -> list[R]:
    """Worker entry point: apply ``fn`` to one shard of items."""
    return [fn(item) for item in chunk]


class Backend:
    """Strategy interface: ordered map over work items."""

    name: str = "backend"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[R]:
        """Yield ``fn(item)`` for every item, in submission order."""
        raise NotImplementedError

    def run(self, tasks: Sequence[Any]) -> Iterator[TaskOutcome]:
        """Execute plan tasks; outcomes stream back in task order."""
        return self.map(_execute_task, tasks)


class SerialBackend(Backend):
    """Run everything in the calling process, one item at a time."""

    name = "serial"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[R]:
        for item in items:
            yield fn(item)


class ProcessPoolBackend(Backend):
    """Chunk-sharded fan-out over a :class:`ProcessPoolExecutor`.

    Parameters
    ----------
    jobs:
        Worker processes (default: CPUs available to this process).
    chunk_size:
        Items per shard.  Default targets four shards per worker, which
        keeps the pool busy under uneven cell costs while bounding
        per-future pickle overhead.
    """

    name = "process-pool"

    def __init__(self, jobs: Optional[int] = None,
                 chunk_size: Optional[int] = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.jobs = jobs
        self.chunk_size = chunk_size

    def run(self, tasks: Sequence[Any]) -> Iterator[TaskOutcome]:
        """Execute plan tasks, sharding heavy exhaustive cells.

        Tasks are lowered into a mixed item list (whole tasks plus
        schedule-prefix lots of shardable cells — see
        :mod:`repro.runtime.sharding`), fanned through the ordinary
        chunked :meth:`map`, and reassembled in task order.  When no
        cell qualifies this is exactly the task-per-item path.
        """
        from .sharding import lower, reassemble

        jobs = self.jobs or _default_jobs()
        if jobs < 2:
            return super().run(tasks)
        tasks = list(tasks)
        items, layout = lower(tasks, jobs)
        if all(entry[0] == "task" for entry in layout):
            return super().run(tasks)
        return reassemble(tasks, layout, self.map(_execute_item, items))

    def _shards(self, items: list[T], jobs: int) -> list[list[T]]:
        size = self.chunk_size or max(1, math.ceil(len(items) / (jobs * 4)))
        return [items[i:i + size] for i in range(0, len(items), size)]

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[R]:
        items = list(items)
        if not items:
            return
        jobs = self.jobs or _default_jobs()
        shards = self._shards(items, jobs)
        with ProcessPoolExecutor(max_workers=min(jobs, len(shards))) as pool:
            futures = {
                pool.submit(_apply_chunk, fn, shard): i
                for i, shard in enumerate(shards)
            }
            # Drain completions into a reorder buffer and emit the longest
            # ready prefix: output order == submission order, always.
            ready: dict[int, list[R]] = {}
            next_shard = 0
            for future in as_completed(futures):
                ready[futures[future]] = future.result()
                while next_shard in ready:
                    yield from ready.pop(next_shard)
                    next_shard += 1


def resolve_backend(jobs: Optional[int] = None,
                    chunk_size: Optional[int] = None) -> Backend:
    """The conventional ``--jobs`` mapping: ``None``/``1`` stays serial,
    anything larger fans out across processes (``chunk_size`` then passes
    through — use 1 for coarse, uneven tasks like whole experiments)."""
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs is None or jobs == 1:
        return SerialBackend()
    return ProcessPoolBackend(jobs=jobs, chunk_size=chunk_size)
