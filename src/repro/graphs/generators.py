"""Graph generators for the paper's workloads.

Every experiment in the paper quantifies over a graph family:

* Theorem 2 — forests and graphs of bounded degeneracy (planar graphs,
  bounded treewidth, H-minor-free classes are all bounded-degeneracy);
* Theorems 5/6 — arbitrary graphs plus the ``G^(x)_{i,j}`` gadgets;
* Section 5.1 — ``(n-1)``-regular ``2n``-node graphs (2-CLIQUES);
* Theorems 7/8 — even-odd-bipartite graphs and the Figure 2 gadgets;
* Theorem 10 — arbitrary (possibly disconnected) graphs.

All random generators take an explicit ``seed`` and are deterministic for
a given seed, so benchmark workloads are reproducible.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from .labeled_graph import Edge, LabeledGraph

__all__ = [
    "barbell_graph",
    "caterpillar_graph",
    "hypercube_graph",
    "wheel_graph",
    "path_graph",
    "cycle_graph",
    "odd_cycle_graph",
    "odd_cycle_with_probe",
    "star_graph",
    "complete_graph",
    "complete_bipartite",
    "grid_graph",
    "binary_tree",
    "random_tree",
    "random_forest",
    "random_graph",
    "random_connected_graph",
    "random_k_degenerate",
    "random_bipartite",
    "random_even_odd_bipartite",
    "random_regular_circulant",
    "two_cliques",
    "connected_two_cliques_like",
    "petersen_graph",
    "all_labeled_graphs",
    "all_labeled_graphs_count",
]


# ----------------------------------------------------------------------
# deterministic structured families
# ----------------------------------------------------------------------

def path_graph(n: int) -> LabeledGraph:
    """The path ``1 - 2 - ... - n`` (degeneracy 1)."""
    return LabeledGraph(n, ((i, i + 1) for i in range(1, n)))


def cycle_graph(n: int) -> LabeledGraph:
    """The cycle on ``n >= 3`` nodes (degeneracy 2)."""
    if n < 3:
        raise ValueError(f"a cycle needs at least 3 nodes, got {n}")
    edges = [(i, i + 1) for i in range(1, n)] + [(n, 1)]
    return LabeledGraph(n, edges)


def odd_cycle_graph(n: int, chords: int = 0, seed: int = 0) -> LabeledGraph:
    """The odd cycle ``C_n`` (``n >= 3`` odd), optionally thickened with
    ``chords`` random chords.

    Odd cycles are the canonical *non-bipartite* inputs of the paper's
    Corollary 4 open problem: the bipartite-promise BFS protocol
    deadlocks on them, so they are the instance family on which
    deadlock-seeking stress campaigns record their witnesses.  Chords
    never make the graph bipartite (the odd outer cycle survives), so
    every member of the parameterized family stays off-promise.
    """
    if n < 3 or n % 2 == 0:
        raise ValueError(f"an odd cycle needs an odd n >= 3, got {n}")
    if chords < 0:
        raise ValueError(f"chords must be >= 0, got {chords}")
    g = cycle_graph(n)
    if chords:
        rng = random.Random(f"odd-cycle:{n}:{chords}:{seed}")
        candidates = [
            (u, v)
            for u in range(1, n + 1) for v in range(u + 1, n + 1)
            if not g.has_edge(u, v)
        ]
        rng.shuffle(candidates)
        g = g.with_edges(candidates[:min(chords, len(candidates))])
    return g


def odd_cycle_with_probe(n: int, chords: int = 0, seed: int = 0) -> LabeledGraph:
    """The Corollary 4 deadlock gadget: an odd cycle on ``1..n-2`` plus a
    disjoint probe edge ``{n-1, n}`` (``n >= 5`` odd).

    The bipartite-promise BFS protocol chains connected components as
    epochs, and an epoch only licenses the next root once its layer
    certificates drain to zero — which the odd cycle's same-layer edge
    prevents.  The probe component therefore starves under *every*
    adversary schedule: the family on which deadlock-seeking stress
    campaigns record their witnesses.
    """
    if n < 5 or n % 2 == 0:
        raise ValueError(f"the probe gadget needs an odd n >= 5, got {n}")
    cycle = odd_cycle_graph(n - 2, chords=chords, seed=seed)
    return cycle.disjoint_union(LabeledGraph(2, [(1, 2)]))


def star_graph(n: int) -> LabeledGraph:
    """The star with centre 1 and leaves ``2..n`` (degeneracy 1)."""
    return LabeledGraph(n, ((1, i) for i in range(2, n + 1)))


def complete_graph(n: int) -> LabeledGraph:
    """``K_n`` (degeneracy ``n - 1``)."""
    return LabeledGraph(
        n, ((u, v) for u in range(1, n + 1) for v in range(u + 1, n + 1))
    )


def complete_bipartite(a: int, b: int) -> LabeledGraph:
    """``K_{a,b}`` with parts ``1..a`` and ``a+1..a+b``."""
    return LabeledGraph(
        a + b, ((u, v) for u in range(1, a + 1) for v in range(a + 1, a + b + 1))
    )


def grid_graph(rows: int, cols: int) -> LabeledGraph:
    """The ``rows x cols`` grid, row-major labels (planar, degeneracy <= 2)."""
    def nid(r: int, c: int) -> int:
        return r * cols + c + 1

    edges: list[Edge] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((nid(r, c), nid(r, c + 1)))
            if r + 1 < rows:
                edges.append((nid(r, c), nid(r + 1, c)))
    return LabeledGraph(rows * cols, edges)


def binary_tree(n: int) -> LabeledGraph:
    """The complete binary tree shape on ``n`` nodes (heap labels)."""
    return LabeledGraph(n, ((i // 2, i) for i in range(2, n + 1)))


def petersen_graph() -> LabeledGraph:
    """The Petersen graph (3-regular, girth 5, degeneracy 3)."""
    outer = [(i, i % 5 + 1) for i in range(1, 6)]
    spokes = [(i, i + 5) for i in range(1, 6)]
    inner = [(6 + i, 6 + (i + 2) % 5) for i in range(5)]
    return LabeledGraph(10, outer + spokes + inner)


# ----------------------------------------------------------------------
# seeded random families
# ----------------------------------------------------------------------

def random_tree(n: int, seed: int = 0) -> LabeledGraph:
    """A uniformly random labeled tree via a random Prüfer sequence."""
    if n <= 0:
        raise ValueError(f"need n >= 1, got {n}")
    if n == 1:
        return LabeledGraph(1)
    if n == 2:
        return LabeledGraph(2, [(1, 2)])
    rng = random.Random(seed)
    prufer = [rng.randrange(1, n + 1) for _ in range(n - 2)]
    return _tree_from_prufer(n, prufer)


def _tree_from_prufer(n: int, prufer: list[int]) -> LabeledGraph:
    degree = [1] * (n + 1)
    for x in prufer:
        degree[x] += 1
    edges: list[Edge] = []
    # classic decoding: repeatedly match the smallest remaining leaf
    import heapq

    leaves = [v for v in range(1, n + 1) if degree[v] == 1]
    heapq.heapify(leaves)
    for x in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, x))
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, x)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges.append((u, v))
    return LabeledGraph(n, edges)


def random_forest(n: int, parts: int, seed: int = 0) -> LabeledGraph:
    """A forest on ``n`` nodes with ``parts`` components.

    Builds a random tree and removes ``parts - 1`` random edges, so every
    component keeps its original labels (identifiers stay ``1..n``).
    """
    if not (1 <= parts <= n):
        raise ValueError(f"parts must be in 1..{n}, got {parts}")
    tree = random_tree(n, seed)
    if parts == 1 or n == 1:
        return tree
    rng = random.Random(seed + 1)
    edges = list(tree.edges())
    rng.shuffle(edges)
    return tree.without_edges(edges[: parts - 1])


def random_graph(n: int, p: float, seed: int = 0) -> LabeledGraph:
    """Erdos–Renyi ``G(n, p)`` with the given seed."""
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"p must be in [0,1], got {p}")
    rng = random.Random(seed)
    edges = [
        (u, v)
        for u in range(1, n + 1)
        for v in range(u + 1, n + 1)
        if rng.random() < p
    ]
    return LabeledGraph(n, edges)


def random_connected_graph(n: int, p: float, seed: int = 0) -> LabeledGraph:
    """``G(n, p)`` unioned with a random spanning tree (hence connected)."""
    g = random_graph(n, p, seed)
    if n <= 1:
        return g
    t = random_tree(n, seed + 7)
    return g.with_edges(t.edges())


def random_k_degenerate(n: int, k: int, seed: int = 0, fill: float = 1.0) -> LabeledGraph:
    """A random graph of degeneracy at most ``k``.

    Nodes are inserted in the order ``n, n-1, ..., 1``; each inserted node
    picks up to ``k`` random earlier-inserted neighbours (``fill`` scales
    the expected count).  The reversed insertion order is then a witness
    elimination order in the sense of Definition 1: node ``i`` has at most
    ``k`` neighbours among ``{i+1..n}``.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if not (0.0 <= fill <= 1.0):
        raise ValueError(f"fill must be in [0,1], got {fill}")
    rng = random.Random(seed)
    edges: list[Edge] = []
    inserted: list[int] = []
    for v in range(n, 0, -1):
        if inserted:
            want = min(k, len(inserted))
            count = sum(1 for _ in range(want) if rng.random() < fill)
            for w in rng.sample(inserted, count):
                edges.append((v, w))
        inserted.append(v)
    return LabeledGraph(n, edges)


def random_bipartite(a: int, b: int, p: float, seed: int = 0) -> LabeledGraph:
    """Random bipartite graph with parts ``1..a`` and ``a+1..a+b``."""
    rng = random.Random(seed)
    edges = [
        (u, v)
        for u in range(1, a + 1)
        for v in range(a + 1, a + b + 1)
        if rng.random() < p
    ]
    return LabeledGraph(a + b, edges)


def random_even_odd_bipartite(n: int, p: float, seed: int = 0) -> LabeledGraph:
    """A random *even-odd-bipartite* graph: edges only between identifiers
    of different parity (Section 5.2's input class for EOB-BFS)."""
    rng = random.Random(seed)
    edges = [
        (u, v)
        for u in range(1, n + 1)
        for v in range(u + 1, n + 1)
        if (u - v) % 2 == 1 and rng.random() < p
    ]
    return LabeledGraph(n, edges)


def random_regular_circulant(n: int, d: int, seed: int = 0) -> LabeledGraph:
    """A ``d``-regular circulant graph on ``n`` nodes with random offsets.

    Used to generate connected ``(n-1)``-regular ``2n``-node *non*-two-clique
    instances for the 2-CLIQUES experiments.  Requires ``n*d`` even and
    ``d < n``.
    """
    if d >= n or n * d % 2 != 0:
        raise ValueError(f"no {d}-regular graph on {n} nodes")
    rng = random.Random(seed)
    half = list(range(1, n // 2 + (n % 2)))  # offsets pairing to distinct edges
    rng.shuffle(half)
    offsets: list[int] = []
    budget = d
    if d % 2 == 1:
        if n % 2 != 0:
            raise ValueError("odd degree needs even n")
        offsets.append(n // 2)
        budget -= 1
    offsets.extend(half[: budget // 2])
    edges = {
        tuple(sorted(((i - 1) % n + 1, (i - 1 + off) % n + 1)))
        for i in range(1, n + 1)
        for off in offsets
    }
    g = LabeledGraph(n, edges)
    if not g.is_regular(d):
        raise AssertionError("circulant construction produced a non-regular graph")
    return g


def two_cliques(n: int) -> LabeledGraph:
    """The disjoint union of two ``K_n`` cliques on ``2n`` nodes —
    the YES-instance of the 2-CLIQUES problem.  Part 1 is ``1..n``."""
    edges = [
        (u, v) for u in range(1, n + 1) for v in range(u + 1, n + 1)
    ] + [
        (u, v) for u in range(n + 1, 2 * n + 1) for v in range(u + 1, 2 * n + 1)
    ]
    return LabeledGraph(2 * n, edges)


def connected_two_cliques_like(n: int, seed: int = 0) -> LabeledGraph:
    """A *connected* ``(n-1)``-regular graph on ``2n`` nodes — a NO-instance
    of 2-CLIQUES that is locally indistinguishable from two cliques by
    degree alone.

    Construction: take two cliques, delete a perfect matching inside each
    (one random matching edge set per clique) and reconnect across.
    Requires even ``n``.
    """
    if n % 2 != 0:
        raise ValueError(f"construction needs even n, got {n}")
    rng = random.Random(seed)
    g = two_cliques(n)
    left = list(range(1, n + 1))
    right = list(range(n + 1, 2 * n + 1))
    rng.shuffle(left)
    rng.shuffle(right)
    removed = [(left[2 * i], left[2 * i + 1]) for i in range(n // 2)]
    removed += [(right[2 * i], right[2 * i + 1]) for i in range(n // 2)]
    added: list[Edge] = []
    for (a, b), (c, d) in zip(removed[: n // 2], removed[n // 2:]):
        added.append((a, c))
        added.append((b, d))
    out = g.without_edges(removed).with_edges(added)
    if not out.is_regular(n - 1):
        raise AssertionError("rewiring broke regularity")
    return out


# ----------------------------------------------------------------------
# exhaustive enumeration (tiny n; used by the counting experiments)
# ----------------------------------------------------------------------

def all_labeled_graphs(n: int) -> Iterator[LabeledGraph]:
    """Yield every labeled graph on ``n`` nodes (``2^(n choose 2)`` of them).

    Intended for ``n <= 6``; the Lemma 3 experiments enumerate whiteboards
    over this space.
    """
    pairs = [(u, v) for u in range(1, n + 1) for v in range(u + 1, n + 1)]
    for mask in range(1 << len(pairs)):
        yield LabeledGraph(n, (pairs[i] for i in range(len(pairs)) if mask >> i & 1))


def all_labeled_graphs_count(n: int) -> int:
    """``2^(n choose 2)`` without enumerating."""
    return 1 << (n * (n - 1) // 2)


# ----------------------------------------------------------------------
# additional structured families (workload variety for the harness)
# ----------------------------------------------------------------------

def wheel_graph(n: int) -> LabeledGraph:
    """The wheel: hub 1 joined to the cycle ``2..n`` (degeneracy 3)."""
    if n < 4:
        raise ValueError(f"a wheel needs at least 4 nodes, got {n}")
    edges = [(1, i) for i in range(2, n + 1)]
    edges += [(i, i + 1) for i in range(2, n)] + [(n, 2)]
    return LabeledGraph(n, edges)


def barbell_graph(k: int) -> LabeledGraph:
    """Two ``K_k`` cliques joined by a single bridge edge (``2k`` nodes).

    A classic stress case for connectivity certificates: one critical
    edge whose loss disconnects the graph."""
    if k < 2:
        raise ValueError(f"barbell needs k >= 2, got {k}")
    edges = [(u, v) for u in range(1, k + 1) for v in range(u + 1, k + 1)]
    edges += [(u, v) for u in range(k + 1, 2 * k + 1)
              for v in range(u + 1, 2 * k + 1)]
    edges.append((k, k + 1))
    return LabeledGraph(2 * k, edges)


def caterpillar_graph(spine: int, legs_per_node: int) -> LabeledGraph:
    """A caterpillar: a spine path with ``legs_per_node`` pendant leaves
    on every spine node (a tree, degeneracy 1)."""
    if spine < 1 or legs_per_node < 0:
        raise ValueError("need spine >= 1 and legs >= 0")
    edges = [(i, i + 1) for i in range(1, spine)]
    nxt = spine + 1
    for s in range(1, spine + 1):
        for _ in range(legs_per_node):
            edges.append((s, nxt))
            nxt += 1
    return LabeledGraph(spine * (1 + legs_per_node), edges)


def hypercube_graph(dim: int) -> LabeledGraph:
    """The ``dim``-dimensional hypercube on ``2^dim`` nodes (bipartite,
    ``dim``-regular, degeneracy ``dim``)."""
    if dim < 0:
        raise ValueError(f"dimension must be >= 0, got {dim}")
    n = 1 << dim
    edges = [
        (u + 1, (u ^ (1 << b)) + 1)
        for u in range(n)
        for b in range(dim)
        if u < (u ^ (1 << b))
    ]
    return LabeledGraph(n, edges)
