"""Degeneracy orderings (Definition 1 of the paper).

A graph is *k-degenerate* if there is an elimination order
``r_1, ..., r_n`` such that each ``r_i`` has degree at most ``k`` in the
subgraph induced by ``{r_i, ..., r_n}``.  Theorem 2's reconstruction
protocol works exactly on these graphs, and its output function *is* the
pruning loop below with whiteboard messages instead of adjacency.

The implementation is the standard linear-time bucket-queue algorithm
(Matula & Beck), specialised to this package's 1-based labeled graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

from .labeled_graph import LabeledGraph

__all__ = [
    "DegeneracyOrdering",
    "degeneracy_ordering",
    "degeneracy",
    "is_k_degenerate",
    "core_numbers",
]


@dataclass(frozen=True)
class DegeneracyOrdering:
    """Result of a degeneracy computation.

    Attributes
    ----------
    order:
        Elimination order ``(r_1, ..., r_n)``: each node has at most
        ``degeneracy`` neighbours *later* in the order.
    degeneracy:
        The graph's degeneracy (max over the run of the eliminated node's
        residual degree).
    residual_degrees:
        ``residual_degrees[i]`` is the degree of ``order[i]`` in the
        subgraph induced by ``order[i:]`` at elimination time.
    """

    order: tuple[int, ...]
    degeneracy: int
    residual_degrees: tuple[int, ...]


def degeneracy_ordering(graph: LabeledGraph) -> DegeneracyOrdering:
    """Compute a degeneracy ordering with the bucket-queue algorithm.

    Ties are broken toward the smallest node identifier so the ordering is
    deterministic — important because tests compare whiteboard decodings
    against it.

    Runs in ``O(n + m)``.
    """
    n = graph.n
    if n == 0:
        return DegeneracyOrdering((), 0, ())

    deg = [0] * (n + 1)
    for v in graph.nodes():
        deg[v] = graph.degree(v)

    max_deg = max(deg[1:]) if n else 0
    # buckets[d] holds the (sorted-on-demand) set of unremoved nodes of
    # current residual degree d
    buckets: list[set[int]] = [set() for _ in range(max_deg + 1)]
    for v in graph.nodes():
        buckets[deg[v]].add(v)

    removed = [False] * (n + 1)
    order: list[int] = []
    residual: list[int] = []
    k = 0
    cursor = 0  # smallest possibly-non-empty bucket
    for _ in range(n):
        while not buckets[cursor]:
            cursor += 1
        v = min(buckets[cursor])  # deterministic tie-break
        buckets[cursor].remove(v)
        removed[v] = True
        order.append(v)
        residual.append(cursor)
        k = max(k, cursor)
        for w in graph.neighbors(v):
            if not removed[w]:
                buckets[deg[w]].discard(w)
                deg[w] -= 1
                buckets[deg[w]].add(w)
        # removing v may have created a bucket below the cursor
        cursor = max(0, cursor - 1)
    return DegeneracyOrdering(tuple(order), k, tuple(residual))


def degeneracy(graph: LabeledGraph) -> int:
    """The degeneracy of ``graph`` (0 for edgeless graphs)."""
    return degeneracy_ordering(graph).degeneracy


def is_k_degenerate(graph: LabeledGraph, k: int) -> bool:
    """Whether the graph has degeneracy at most ``k`` (Definition 1)."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    return degeneracy(graph) <= k


def core_numbers(graph: LabeledGraph) -> dict[int, int]:
    """Per-node core numbers: ``core[v]`` is the largest ``c`` such that
    ``v`` belongs to a subgraph of minimum degree ``c``.

    The graph's degeneracy equals ``max(core.values())``; exposed for the
    ablation benchmarks that study which nodes force large messages in
    Theorem 2's protocol.
    """
    ordering = degeneracy_ordering(graph)
    core: dict[int, int] = {}
    running = 0
    for v, d in zip(ordering.order, ordering.residual_degrees):
        running = max(running, d)
        core[v] = running
    return core
