"""graph6 serialization of labeled graphs.

The standard graph6 format (McKay) packs the upper triangle of the
adjacency matrix into printable ASCII, six bits per character.  It gives
the workload generators a stable, diff-friendly on-disk form, lets the
counting experiments externalize enumerated families, and — because it
is *the* community interchange format — makes instances portable to
nauty/networkx tooling.

Node ``i`` of a :class:`~repro.graphs.labeled_graph.LabeledGraph`
corresponds to graph6 vertex ``i - 1``; the column-major upper-triangle
bit order follows the format specification exactly, so outputs agree
with ``networkx.to_graph6_bytes`` (property-tested).
"""

from __future__ import annotations

from .labeled_graph import LabeledGraph

__all__ = ["to_graph6", "from_graph6"]

_MIN_PRINTABLE = 63  # '?'


def _encode_n(n: int) -> list[int]:
    """The size prefix: 1, 4 or 8 printable bytes."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if n <= 62:
        return [n + _MIN_PRINTABLE]
    if n <= 258047:
        return [126] + [(n >> shift & 63) + _MIN_PRINTABLE for shift in (12, 6, 0)]
    if n <= 68719476735:
        return [126, 126] + [
            (n >> shift & 63) + _MIN_PRINTABLE for shift in (30, 24, 18, 12, 6, 0)
        ]
    raise ValueError("n too large for graph6")


def _decode_n(data: bytes) -> tuple[int, int]:
    """Return (n, bytes consumed)."""
    if not data:
        raise ValueError("empty graph6 string")
    if data[0] != 126:
        return data[0] - _MIN_PRINTABLE, 1
    if len(data) >= 2 and data[1] != 126:
        if len(data) < 4:
            raise ValueError("truncated graph6 size")
        n = 0
        for b in data[1:4]:
            n = n << 6 | (b - _MIN_PRINTABLE)
        return n, 4
    if len(data) < 8:
        raise ValueError("truncated graph6 size")
    n = 0
    for b in data[2:8]:
        n = n << 6 | (b - _MIN_PRINTABLE)
    return n, 8


def to_graph6(graph: LabeledGraph) -> str:
    """Serialize to a graph6 string (no ``>>graph6<<`` header)."""
    n = graph.n
    out = _encode_n(n)
    # Column-major upper triangle: bit for (i, j), i < j, ordered by
    # j = 1..n-1 then i = 0..j-1 (0-based), per the format spec.
    bits: list[int] = []
    for j in range(1, n):
        for i in range(j):
            bits.append(1 if graph.has_edge(i + 1, j + 1) else 0)
    while len(bits) % 6:
        bits.append(0)
    for pos in range(0, len(bits), 6):
        value = 0
        for b in bits[pos : pos + 6]:
            value = value << 1 | b
        out.append(value + _MIN_PRINTABLE)
    return bytes(out).decode("ascii")


def from_graph6(text: str) -> LabeledGraph:
    """Parse a graph6 string (tolerates the ``>>graph6<<`` header)."""
    if text.startswith(">>graph6<<"):
        text = text[len(">>graph6<<"):]
    data = text.strip().encode("ascii")
    n, consumed = _decode_n(data)
    body = data[consumed:]
    need_bits = n * (n - 1) // 2
    need_bytes = (need_bits + 5) // 6
    if len(body) < need_bytes:
        raise ValueError("truncated graph6 body")
    if len(body) > need_bytes:
        raise ValueError("trailing data after graph6 body")
    bits: list[int] = []
    for byte in body:
        value = byte - _MIN_PRINTABLE
        if not 0 <= value < 64:
            raise ValueError(f"invalid graph6 byte {byte}")
        bits.extend(value >> shift & 1 for shift in range(5, -1, -1))
    edges = []
    pos = 0
    for j in range(1, n):
        for i in range(j):
            if bits[pos]:
                edges.append((i + 1, j + 1))
            pos += 1
    if any(bits[need_bits:]):
        raise ValueError("nonzero padding bits")
    return LabeledGraph(n, edges)
