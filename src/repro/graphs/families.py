"""Named graph classes: membership, sampling and counting in one place.

The paper's statements quantify over graph *classes* (forests,
degeneracy-≤k, even-odd-bipartite, the 2-CLIQUES promise class, ...).
Scattering their membership predicates, samplers and Lemma 3 counts
across modules invites drift, so :class:`GraphClass` bundles the three
views and :data:`FAMILIES` registers every class the experiments use.

Used by the verification harness (generic protocol × compatible-family
sweeps), the counting benchmarks, and the property tests that check the
sampler really stays inside its class.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass
from typing import Optional

from . import generators as gen
from .degeneracy import is_k_degenerate
from .labeled_graph import LabeledGraph
from .properties import (
    is_bipartite,
    is_connected,
    is_even_odd_bipartite,
    is_two_cliques,
)

__all__ = ["GraphClass", "FAMILIES", "family", "k_degenerate_class"]


@dataclass(frozen=True)
class GraphClass:
    """One graph class with its three faces.

    Attributes
    ----------
    name:
        Registry key (e.g. ``"forests"``).
    description:
        Human-readable definition.
    contains:
        Membership predicate.
    sample:
        ``(n, seed) -> LabeledGraph`` drawing a member on ``n`` nodes.
    log2_count:
        Optional ``n -> log2 |class_n|`` (exact or documented bound) for
        Lemma 3 arithmetic.
    """

    name: str
    description: str
    contains: Callable[[LabeledGraph], bool]
    sample: Callable[[int, int], LabeledGraph]
    log2_count: Optional[Callable[[int], float]] = None

    def sample_in_class(self, n: int, seed: int) -> LabeledGraph:
        """Sample and assert membership (sampler bug-guard)."""
        g = self.sample(n, seed)
        if not self.contains(g):
            raise AssertionError(
                f"sampler for {self.name!r} left its class (n={n}, seed={seed})"
            )
        return g


def k_degenerate_class(k: int) -> GraphClass:
    """The degeneracy-≤k class (Definition 1), for any ``k``."""
    return GraphClass(
        name=f"degeneracy<={k}",
        description=f"graphs admitting an elimination order with residual degree <= {k}",
        contains=lambda g, _k=k: is_k_degenerate(g, _k),
        sample=lambda n, seed, _k=k: gen.random_k_degenerate(n, _k, seed=seed),
        log2_count=None,
    )


def _forest_contains(g: LabeledGraph) -> bool:
    return is_k_degenerate(g, 1)


def _two_cliques_sample(n: int, seed: int) -> LabeledGraph:
    if n % 2 != 0:
        raise ValueError("the 2-CLIQUES promise class needs an even node count")
    return gen.two_cliques(n // 2) if seed % 2 == 0 else (
        gen.connected_two_cliques_like(n // 2, seed=seed)
        if (n // 2) % 2 == 0 else gen.two_cliques(n // 2)
    )


FAMILIES: dict[str, GraphClass] = {
    "all": GraphClass(
        name="all",
        description="all labeled graphs",
        contains=lambda g: True,
        sample=lambda n, seed: gen.random_graph(n, 0.5, seed=seed),
        log2_count=lambda n: n * (n - 1) / 2,
    ),
    "forests": GraphClass(
        name="forests",
        description="acyclic graphs (degeneracy <= 1)",
        contains=_forest_contains,
        sample=lambda n, seed: gen.random_forest(n, max(1, n // 5), seed=seed),
        log2_count=lambda n: (n - 2) * math.log2(n) if n >= 3 else 0.0,
        # (trees only — a valid lower bound for forests)
    ),
    "degenerate2": GraphClass(
        name="degenerate2",
        description="graphs of degeneracy at most 2",
        contains=lambda g: is_k_degenerate(g, 2),
        sample=lambda n, seed: gen.random_k_degenerate(n, 2, seed=seed),
    ),
    "degenerate3": GraphClass(
        name="degenerate3",
        description="graphs of degeneracy at most 3",
        contains=lambda g: is_k_degenerate(g, 3),
        sample=lambda n, seed: gen.random_k_degenerate(n, 3, seed=seed),
    ),
    "bipartite": GraphClass(
        name="bipartite",
        description="2-colourable graphs",
        contains=is_bipartite,
        sample=lambda n, seed: gen.random_bipartite(n // 2, n - n // 2, 0.4, seed=seed),
        log2_count=lambda n: float((n // 2) * (n - n // 2)),
        # (fixed-bipartition subclass — the Theorem 3 count)
    ),
    "even-odd-bipartite": GraphClass(
        name="even-odd-bipartite",
        description="no edge joins two identifiers of equal parity",
        contains=is_even_odd_bipartite,
        sample=lambda n, seed: gen.random_even_odd_bipartite(n, 0.4, seed=seed),
        log2_count=lambda n: float(((n + 1) // 2) * (n // 2)),
    ),
    "odd-cycles": GraphClass(
        name="odd-cycles",
        description="odd cycles C_n (non-bipartite; Corollary 4 open problem)",
        contains=lambda g: (
            g.n >= 3 and g.n % 2 == 1 and g.is_regular(2) and is_connected(g)
        ),
        # Strict like the two-cliques sampler: the class is empty at
        # even n, so asking for an even instance is a caller bug.  The
        # canonical 1-2-...-n-1 cycle is the deterministic pick.
        sample=lambda n, seed: gen.odd_cycle_graph(n),
        # (n-1)!/2 labeled cycles for odd n, zero for even n — too lumpy
        # for a useful log2_count.
        log2_count=None,
    ),
    "odd-cycle-probe": GraphClass(
        name="odd-cycle-probe",
        description=(
            "odd cycle on 1..n-2 plus a disjoint probe edge "
            "(Corollary 4 deadlock gadget)"
        ),
        contains=lambda g: (
            g.n >= 5 and g.n % 2 == 1
            and g.degree(g.n - 1) == 1 and g.degree(g.n) == 1
            and g.has_edge(g.n - 1, g.n)
            and all(g.degree(v) == 2 for v in range(1, g.n - 1))
            and is_connected(g.induced_subgraph(range(1, g.n - 1)))
        ),
        sample=lambda n, seed: gen.odd_cycle_with_probe(n),
        log2_count=None,
    ),
    "two-cliques-promise": GraphClass(
        name="two-cliques-promise",
        description="(n/2-1)-regular graphs on n nodes (YES = two cliques)",
        contains=lambda g: g.n % 2 == 0 and g.is_regular(g.n // 2 - 1),
        sample=_two_cliques_sample,
        log2_count=None,
    ),
    "two-cliques-yes": GraphClass(
        name="two-cliques-yes",
        description="disjoint unions of two equal cliques",
        contains=is_two_cliques,
        sample=lambda n, seed: gen.two_cliques(n // 2),
        log2_count=lambda n: 0.0,  # one instance per (even) n
    ),
}


def family(name: str) -> GraphClass:
    """Look up a registered class."""
    if name not in FAMILIES:
        known = ", ".join(sorted(FAMILIES))
        raise KeyError(f"unknown graph class {name!r}; known: {known}")
    return FAMILIES[name]
