"""Reference graph algorithms (centralized oracles).

Protocol outputs in this package are always validated against a plain
centralized computation.  This module collects those computations: BFS
forests with the paper's root convention (smallest identifier per
component), connectivity, bipartiteness, triangle detection, diameter,
and independent-set checks.

The *canonical BFS forest* here matches the output of the paper's
Theorem 7 / Theorem 10 protocols exactly: per component the root is the
smallest identifier, layers are BFS distances from the root, and every
non-root's parent is its smallest-identifier neighbour in the previous
layer.  This determinism is what lets tests compare protocol output to
the oracle with ``==``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .labeled_graph import Edge, LabeledGraph

__all__ = [
    "ROOT",
    "BfsForest",
    "connected_components",
    "is_connected",
    "canonical_bfs_forest",
    "bfs_layers_from",
    "eccentricity",
    "diameter",
    "is_bipartite",
    "is_even_odd_bipartite",
    "even_odd_violations",
    "has_triangle",
    "triangles",
    "count_triangles",
    "is_independent_set",
    "is_maximal_independent_set",
    "is_rooted_mis",
    "is_two_cliques",
    "has_square",
]

#: Sentinel parent marker for BFS roots, mirroring the paper's ``ROOT``.
ROOT = "ROOT"


@dataclass(frozen=True)
class BfsForest:
    """A BFS forest: per-node parent (or :data:`ROOT`) and layer.

    Attributes
    ----------
    parent:
        ``parent[v]`` is the BFS parent of ``v`` or :data:`ROOT`.
    layer:
        ``layer[v]`` is the BFS distance from ``v``'s component root.
    roots:
        Component roots in discovery order (ascending identifiers).
    """

    parent: dict[int, int | str]
    layer: dict[int, int]
    roots: tuple[int, ...]

    def tree_edges(self) -> frozenset[Edge]:
        """Edges ``{v, parent(v)}`` over all non-root nodes."""
        return frozenset(
            (min(v, p), max(v, p))
            for v, p in self.parent.items()
            if p != ROOT
        )

    def is_valid_for(self, graph: LabeledGraph) -> bool:
        """Structural validity: roots are per-component minima, layers are
        true BFS distances, and parents sit one layer below their child."""
        ref = canonical_bfs_forest(graph)
        if set(self.parent) != set(graph.nodes()) or set(self.layer) != set(graph.nodes()):
            return False
        if self.layer != ref.layer:  # layers are schedule-independent
            return False
        if set(self.roots) != set(ref.roots):
            return False
        for v, p in self.parent.items():
            if p == ROOT:
                if self.layer[v] != 0:
                    return False
            else:
                if not isinstance(p, int) or not graph.has_edge(v, p):
                    return False
                if self.layer[p] != self.layer[v] - 1:
                    return False
        return True


def connected_components(graph: LabeledGraph) -> list[frozenset[int]]:
    """Connected components, ordered by their smallest node identifier."""
    seen: set[int] = set()
    comps: list[frozenset[int]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        comp: set[int] = set()
        queue = deque([start])
        seen.add(start)
        while queue:
            v = queue.popleft()
            comp.add(v)
            for w in graph.neighbors(v):
                if w not in seen:
                    seen.add(w)
                    queue.append(w)
        comps.append(frozenset(comp))
    return comps


def is_connected(graph: LabeledGraph) -> bool:
    """Whether the graph has exactly one connected component."""
    return len(connected_components(graph)) <= 1


def canonical_bfs_forest(graph: LabeledGraph) -> BfsForest:
    """The canonical BFS forest (paper convention, see module docstring)."""
    parent: dict[int, int | str] = {}
    layer: dict[int, int] = {}
    roots: list[int] = []
    for comp in connected_components(graph):
        root = min(comp)
        roots.append(root)
        parent[root] = ROOT
        layer[root] = 0
        queue = deque([root])
        while queue:
            v = queue.popleft()
            for w in sorted(graph.neighbors(v)):
                if w not in layer:
                    layer[w] = layer[v] + 1
                    queue.append(w)
    # parent = smallest-ID neighbour in the previous layer (schedule-free)
    for v in graph.nodes():
        if parent.get(v) == ROOT:
            continue
        prev = [w for w in graph.neighbors(v) if layer[w] == layer[v] - 1]
        parent[v] = min(prev)
    return BfsForest(parent, layer, tuple(roots))


def bfs_layers_from(graph: LabeledGraph, root: int) -> dict[int, int]:
    """BFS distances from ``root`` (absent keys are unreachable nodes)."""
    layer = {root: 0}
    queue = deque([root])
    while queue:
        v = queue.popleft()
        for w in graph.neighbors(v):
            if w not in layer:
                layer[w] = layer[v] + 1
                queue.append(w)
    return layer


def eccentricity(graph: LabeledGraph, v: int) -> int:
    """Max distance from ``v`` to a reachable node."""
    return max(bfs_layers_from(graph, v).values())


def diameter(graph: LabeledGraph) -> int:
    """Diameter of a connected graph (raises on disconnected input)."""
    if graph.n == 0:
        raise ValueError("diameter of the empty graph is undefined")
    if not is_connected(graph):
        raise ValueError("diameter is undefined for disconnected graphs")
    return max(eccentricity(graph, v) for v in graph.nodes())


def is_bipartite(graph: LabeledGraph) -> bool:
    """2-colourability via BFS layering."""
    colour: dict[int, int] = {}
    for comp in connected_components(graph):
        root = min(comp)
        colour[root] = 0
        queue = deque([root])
        while queue:
            v = queue.popleft()
            for w in graph.neighbors(v):
                if w not in colour:
                    colour[w] = colour[v] ^ 1
                    queue.append(w)
                elif colour[w] == colour[v]:
                    return False
    return True


def even_odd_violations(graph: LabeledGraph) -> frozenset[Edge]:
    """Edges joining two identifiers of the same parity (Section 5.2)."""
    return frozenset(e for e in graph.edges() if (e[0] - e[1]) % 2 == 0)


def is_even_odd_bipartite(graph: LabeledGraph) -> bool:
    """Whether no edge joins identifiers of the same parity."""
    return not even_odd_violations(graph)


def has_triangle(graph: LabeledGraph) -> bool:
    """Whether the graph contains three pairwise-adjacent nodes."""
    for u, v in graph.edges():
        if graph.neighbors(u) & graph.neighbors(v):
            return True
    return False


def triangles(graph: LabeledGraph) -> list[tuple[int, int, int]]:
    """All triangles as sorted triples, lexicographically ordered."""
    out = []
    for u, v in graph.edges():
        for w in sorted(graph.neighbors(u) & graph.neighbors(v)):
            if w > v:
                out.append((u, v, w))
    return out


def count_triangles(graph: LabeledGraph) -> int:
    """Number of triangles."""
    return len(triangles(graph))


def has_square(graph: LabeledGraph) -> bool:
    """Whether the graph contains a 4-cycle (the paper's 'square')."""
    # Two distinct nodes with >= 2 common neighbours span a C4.
    for u in graph.nodes():
        for v in range(u + 1, graph.n + 1):
            if len(graph.neighbors(u) & graph.neighbors(v)) >= 2:
                return True
    return False


def is_independent_set(graph: LabeledGraph, nodes: frozenset[int] | set[int]) -> bool:
    """Whether ``nodes`` induces no edge."""
    s = set(nodes)
    return all(not (graph.neighbors(v) & s) for v in s)


def is_maximal_independent_set(graph: LabeledGraph, nodes: frozenset[int] | set[int]) -> bool:
    """Independent and inclusion-maximal."""
    s = set(nodes)
    if not is_independent_set(graph, s):
        return False
    for v in graph.nodes():
        if v not in s and not (graph.neighbors(v) & s):
            return False
    return True


def is_rooted_mis(graph: LabeledGraph, nodes: frozenset[int] | set[int], root: int) -> bool:
    """The paper's MIS output check: maximal independent set containing
    the designated root ``x``."""
    return root in set(nodes) and is_maximal_independent_set(graph, nodes)


def is_two_cliques(graph: LabeledGraph) -> bool:
    """Whether the graph is the disjoint union of two same-size cliques
    (the 2-CLIQUES YES condition; input promise is ``(n-1)``-regular on
    ``2n`` nodes but this check is promise-free)."""
    if graph.n == 0 or graph.n % 2 != 0:
        return False
    comps = connected_components(graph)
    if len(comps) != 2:
        return False
    half = graph.n // 2
    for comp in comps:
        if len(comp) != half:
            return False
        for v in comp:
            if graph.neighbors(v) != comp - {v}:
                return False
    return True
