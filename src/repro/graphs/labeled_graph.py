"""Labeled graphs with identifiers ``1..n``.

The whiteboard models of Becker et al. operate on simple, undirected,
labeled graphs whose nodes carry unique identifiers ``1..n`` (the paper's
``ID(v_i) = i`` convention, Section 2).  :class:`LabeledGraph` is the
substrate every protocol, gadget and reference algorithm in this package
is built on.

The class is *immutable by convention*: all mutating operations return a
new graph, which makes graphs safe to share between a simulator, an
adversary and reference checkers.  Construction goes through
:meth:`LabeledGraph.from_edges` or the generators in
:mod:`repro.graphs.generators`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Optional

import numpy as np

__all__ = ["LabeledGraph", "Edge", "normalize_edge"]

Edge = tuple[int, int]


def normalize_edge(u: int, v: int) -> Edge:
    """Return the canonical (sorted) form of the undirected edge ``{u, v}``.

    Raises
    ------
    ValueError
        If ``u == v`` (self-loops are not simple-graph edges).
    """
    if u == v:
        raise ValueError(f"self-loop ({u},{u}) is not allowed in a simple graph")
    return (u, v) if u < v else (v, u)


class LabeledGraph:
    """A simple undirected graph on nodes ``{1, ..., n}``.

    Parameters
    ----------
    n:
        Number of nodes.  Node identifiers are exactly ``1..n``.
    edges:
        Iterable of pairs ``(u, v)``.  Duplicates are ignored; self-loops
        and out-of-range endpoints raise :class:`ValueError`.

    Notes
    -----
    Adjacency is stored as a tuple of ``frozenset`` so instances are
    hashable and safe to share.  ``adj[0]`` is an unused sentinel: node
    identifiers are 1-based throughout, mirroring the paper.
    """

    __slots__ = ("_n", "_adj", "_m", "_hash")

    def __init__(self, n: int, edges: Iterable[Edge] = ()) -> None:
        if n < 0:
            raise ValueError(f"node count must be non-negative, got {n}")
        adj: list[set[int]] = [set() for _ in range(n + 1)]
        m = 0
        for u, v in edges:
            u, v = normalize_edge(u, v)
            if not (1 <= u <= n and 1 <= v <= n):
                raise ValueError(f"edge ({u},{v}) out of range 1..{n}")
            if v not in adj[u]:
                adj[u].add(v)
                adj[v].add(u)
                m += 1
        self._n = n
        self._adj: tuple[frozenset[int], ...] = tuple(frozenset(s) for s in adj)
        self._m = m
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, n: int, edges: Iterable[Edge]) -> "LabeledGraph":
        """Build a graph on ``1..n`` from an edge iterable."""
        return cls(n, edges)

    @classmethod
    def empty(cls, n: int) -> "LabeledGraph":
        """The edgeless graph on ``n`` nodes."""
        return cls(n, ())

    @classmethod
    def from_adjacency_matrix(cls, matrix: np.ndarray) -> "LabeledGraph":
        """Build a graph from a symmetric 0/1 adjacency matrix.

        Row/column ``i`` of the matrix corresponds to node ``i + 1``.
        """
        a = np.asarray(matrix)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError(f"adjacency matrix must be square, got shape {a.shape}")
        if not np.array_equal(a, a.T):
            raise ValueError("adjacency matrix must be symmetric")
        if np.any(np.diag(a) != 0):
            raise ValueError("adjacency matrix must have a zero diagonal")
        n = a.shape[0]
        us, vs = np.nonzero(np.triu(a, k=1))
        return cls(n, zip((us + 1).tolist(), (vs + 1).tolist()))

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    def nodes(self) -> range:
        """All node identifiers, ``1..n``."""
        return range(1, self._n + 1)

    def neighbors(self, v: int) -> frozenset[int]:
        """The neighbourhood ``N(v)`` of node ``v``."""
        self._check_node(v)
        return self._adj[v]

    def degree(self, v: int) -> int:
        """The degree ``d_G(v)``."""
        self._check_node(v)
        return len(self._adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        self._check_node(u)
        self._check_node(v)
        return v in self._adj[u]

    def edges(self) -> Iterator[Edge]:
        """Iterate edges in canonical ``(u, v), u < v`` lexicographic order."""
        for u in self.nodes():
            for v in sorted(self._adj[u]):
                if u < v:
                    yield (u, v)

    def edge_set(self) -> frozenset[Edge]:
        """All edges as a frozenset of canonical pairs."""
        return frozenset(self.edges())

    def max_degree(self) -> int:
        """The maximum degree, 0 for an empty graph."""
        if self._n == 0:
            return 0
        return max(len(s) for s in self._adj[1:])

    def min_degree(self) -> int:
        """The minimum degree, 0 for an empty graph."""
        if self._n == 0:
            return 0
        return min(len(s) for s in self._adj[1:])

    def is_regular(self, d: Optional[int] = None) -> bool:
        """Whether every node has the same degree (``d`` if given)."""
        if self._n == 0:
            return True
        degs = {len(s) for s in self._adj[1:]}
        if len(degs) != 1:
            return False
        return d is None or degs == {d}

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def with_edges(self, extra: Iterable[Edge]) -> "LabeledGraph":
        """A new graph with ``extra`` edges added (same node set)."""
        return LabeledGraph(self._n, list(self.edges()) + [normalize_edge(*e) for e in extra])

    def without_edges(self, removed: Iterable[Edge]) -> "LabeledGraph":
        """A new graph with the given edges removed (same node set)."""
        gone = {normalize_edge(*e) for e in removed}
        return LabeledGraph(self._n, (e for e in self.edges() if e not in gone))

    def add_node_with_edges(self, neighbors: Iterable[int]) -> "LabeledGraph":
        """A new graph on ``n + 1`` nodes where node ``n + 1`` is adjacent to
        exactly ``neighbors``.

        This is the paper's standard gadget operation (e.g. the apex node
        of Figure 1 and the auxiliary nodes of Figure 2 are added this way).
        """
        new = self._n + 1
        edges = list(self.edges()) + [normalize_edge(new, w) for w in neighbors]
        return LabeledGraph(new, edges)

    def induced_subgraph(self, keep: Iterable[int]) -> "LabeledGraph":
        """The subgraph induced by ``keep``, *relabeled* to ``1..|keep|``
        preserving the relative ID order.

        Returns the relabeled graph; use :meth:`induced_edge_set` when the
        original labels must be preserved.
        """
        kept = sorted(set(keep))
        for v in kept:
            self._check_node(v)
        index = {v: i + 1 for i, v in enumerate(kept)}
        edges = [
            (index[u], index[v])
            for u, v in self.edges()
            if u in index and v in index
        ]
        return LabeledGraph(len(kept), edges)

    def induced_edge_set(self, keep: Iterable[int]) -> frozenset[Edge]:
        """Edges of the subgraph induced by ``keep``, with original labels."""
        kept = set(keep)
        return frozenset(e for e in self.edges() if e[0] in kept and e[1] in kept)

    def complement(self) -> "LabeledGraph":
        """The complement graph on the same node set."""
        edges = [
            (u, v)
            for u in self.nodes()
            for v in range(u + 1, self._n + 1)
            if v not in self._adj[u]
        ]
        return LabeledGraph(self._n, edges)

    def relabel(self, mapping: dict[int, int]) -> "LabeledGraph":
        """Apply a node bijection ``old -> new`` (both sides ``1..n``)."""
        if sorted(mapping) != list(self.nodes()) or sorted(mapping.values()) != list(self.nodes()):
            raise ValueError("mapping must be a bijection on 1..n")
        return LabeledGraph(self._n, ((mapping[u], mapping[v]) for u, v in self.edges()))

    def disjoint_union(self, other: "LabeledGraph") -> "LabeledGraph":
        """Disjoint union; ``other``'s nodes are shifted by ``self.n``."""
        shift = self._n
        edges = list(self.edges()) + [(u + shift, v + shift) for u, v in other.edges()]
        return LabeledGraph(self._n + other._n, edges)

    def adjacency_matrix(self) -> np.ndarray:
        """The ``n x n`` 0/1 adjacency matrix (row ``i`` = node ``i + 1``)."""
        a = np.zeros((self._n, self._n), dtype=np.int8)
        for u, v in self.edges():
            a[u - 1, v - 1] = 1
            a[v - 1, u - 1] = 1
        return a

    def incidence_vector(self, v: int) -> np.ndarray:
        """The paper's incidence vector ``x`` of ``N(v)``: a length-``n``
        0/1 vector with 1 in coordinate ``i - 1`` iff ``v_i in N(v)``."""
        self._check_node(v)
        x = np.zeros(self._n, dtype=np.int64)
        for w in self._adj[v]:
            x[w - 1] = 1
        return x

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def _check_node(self, v: int) -> None:
        if not (1 <= v <= self._n):
            raise ValueError(f"node {v} out of range 1..{self._n}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabeledGraph):
            return NotImplemented
        return self._n == other._n and self._adj == other._adj

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._n, self._adj))
        return self._hash

    def __contains__(self, v: int) -> bool:
        return 1 <= v <= self._n

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        shown = list(self.edges())
        if len(shown) > 12:
            tail = f", ... {len(shown) - 12} more"
            shown = shown[:12]
        else:
            tail = ""
        return f"LabeledGraph(n={self._n}, m={self._m}, edges={shown}{tail})"
