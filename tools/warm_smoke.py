#!/usr/bin/env python
"""CI gate for the persistent warm-frontier store.

Runs the built-in warm-frontier smoke campaign twice against one store:

1. **Cold**: an empty store — every task executes, exporting its
   transposition frontiers (exact completion frontiers plus admissible
   bounds) into the store's ``frontiers`` table.
2. **Warm**: results are garbage-collected (``store.gc([])``) but the
   frontiers survive, so the second run re-executes the same tasks with
   preloaded tables.

The gate then asserts the two invariants the warm path promises:

* the warm run re-expands **strictly fewer** nodes (folded kernel
  steps) while serving at least one frontier hit, and
* the merged campaign reports (and every witness) are **byte-identical**
  — serving frontiers changes the work done to find a witness, never
  the witness.

Finally it re-opens the store under a deliberately different
code-version salt and asserts **zero** frontier rows are served: any
source edit invalidates persisted frontiers wholesale rather than
risking a stale bound.

Usage::

    PYTHONPATH=src python tools/warm_smoke.py [store.db]
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.campaigns import Campaign, ResultStore, warm_smoke_campaign  # noqa: E402
from repro.campaigns.store import (  # noqa: E402
    report_to_jsonable,
    witness_to_jsonable,
)


def _report_bytes(result) -> bytes:
    """The merged report plus every witness, canonically serialised."""
    payload = {
        "report": report_to_jsonable(result.report),
        "witnesses": [witness_to_jsonable(w) for w in result.report.witnesses],
        "cells": [
            {
                "report": report_to_jsonable(cell.report),
                "witnesses": [
                    witness_to_jsonable(w) for w in cell.report.witnesses
                ],
            }
            for cell in result.cells
        ],
    }
    return json.dumps(payload, sort_keys=True).encode()


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        store_path = Path(argv[0])
    else:
        store_path = Path(tempfile.mkdtemp(prefix="warm-smoke-")) / "store.db"

    campaign = Campaign(warm_smoke_campaign())

    with ResultStore(store_path) as store:
        cold = campaign.run(store, warm_frontiers=True)
        assert cold.executed == cold.tasks, (
            f"cold run expected a cold store, got {cold.hits} hits"
        )
        rows = store.frontier_count()
        assert rows > 0, "cold run exported no frontier rows"
        # Drop the cached results but keep the frontiers: the second run
        # must re-execute, not replay the result cache.
        store.gc([])
        warm = campaign.run(store, warm_frontiers=True)
        assert warm.executed == warm.tasks, (
            f"warm run expected re-execution, got {warm.hits} hits"
        )

    cold_steps = cold.kernel.steps
    warm_steps = warm.kernel.steps
    assert warm_steps < cold_steps, (
        f"warm run must re-expand strictly fewer nodes: "
        f"cold {cold_steps} steps, warm {warm_steps}"
    )
    assert warm.kernel.frontier_hits > 0, (
        "warm run served no frontier hits despite a warm store"
    )
    cold_bytes = _report_bytes(cold)
    warm_bytes = _report_bytes(warm)
    assert cold_bytes == warm_bytes, (
        "warm report diverged from the cold run — frontiers must be "
        "report-invariant"
    )

    with ResultStore(store_path, salt="stale-code-version") as stale:
        served = sum(
            len(stale.load_frontiers(cell_key))
            for cell_key in campaign.live_frontier_cell_keys()
        )
        assert served == 0, (
            f"a stale code-version salt served {served} frontier rows; "
            "it must serve none"
        )

    print(
        f"warm smoke OK: {rows} frontier rows, kernel steps "
        f"{cold_steps} -> {warm_steps}, {warm.kernel.frontier_hits} "
        "frontier hits, reports byte-identical, stale salt serves 0 rows"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
