#!/usr/bin/env python
"""Render a ``--trace-out`` run trace (JSONL) as a human report.

``repro stress/sweep/campaign run --trace-out run.jsonl`` streams one
JSON record per line — run metadata, per-task spans/metrics/kernel
counters, store hits — and finishes with a manifest.  This tool
validates the stream against the trace schema and prints the same
report as ``python -m repro telemetry report``: per-cell timings,
span hotspots, shard lot balance and store latency.

Usage::

    python tools/trace_report.py run.jsonl [--top K]
    python tools/trace_report.py run.jsonl --validate-only
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.telemetry import (  # noqa: E402 - path bootstrap above
    TraceSchemaError,
    load_trace,
    render_report,
    validate_trace,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Render a --trace-out run trace as a human report.")
    parser.add_argument("trace", help="path to the run .jsonl trace")
    parser.add_argument("--top", type=int, default=10,
                        help="span hotspots to show (default 10)")
    parser.add_argument("--validate-only", action="store_true",
                        help="check the schema and print a one-line verdict")
    args = parser.parse_args(argv)

    try:
        if args.validate_only:
            manifest = validate_trace(args.trace)
            print(f"ok: run {manifest['run_id']} — {manifest['tasks']} tasks, "
                  f"schema {manifest['schema']}")
            return 0
        trace = load_trace(args.trace)
    except FileNotFoundError:
        print(f"trace_report: no such trace {args.trace!r}", file=sys.stderr)
        return 2
    except TraceSchemaError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(render_report(trace, top=args.top), end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
