#!/usr/bin/env python
"""Render the ``BENCH_perf.json`` perf trajectory as a human report.

``benchmarks/bench_regression.py`` appends one entry per run (seconds and
speedup vs. the frozen seed baseline for each hot path).  This tool
prints the full trajectory and per-benchmark trend so a reviewer can see
at a glance whether a PR moved the hot paths, without re-running the
benchmarks.

The report is also a *drift gate*: it exits nonzero when the latest
recorded run is missing a benchmark that earlier runs (or the seed
baseline) cover, when one of the committed ``reports/`` sections is
missing, empty, or visibly stale (it no longer names every fixture or
strategy the current code ships), or when a bench's recorded
``table_hit_rate`` dropped more than 20% against the previous run on
the same machine (hit rates, unlike seconds, only compare within one
machine).  Use ``--allow-stale`` to render anyway while investigating.

With ``--campaign STORE.db`` it instead renders the cross-run witness
trajectories a campaign store has accumulated
(:mod:`repro.campaigns.trajectories`).

Usage::

    python tools/bench_report.py [path/to/BENCH_perf.json] [--allow-stale]
    python tools/bench_report.py --campaign path/to/store.db [--name X]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATH = REPO_ROOT / "BENCH_perf.json"
REPORTS_DIR = REPO_ROOT / "reports"

sys.path.insert(0, str(REPO_ROOT / "src"))


def load_trajectory(path: Path) -> dict:
    if not path.exists():
        raise SystemExit(
            f"{path} not found — run "
            "`PYTHONPATH=src python benchmarks/bench_regression.py` first"
        )
    return json.loads(path.read_text())


def _adversary_report_markers() -> list[str]:
    """Names the committed adversary report must mention to be fresh:
    every strategy in the shipped default portfolio, the shared
    transposition-table section the search-kernel PR added, and one row
    per fault budget the fault-matrix section sweeps."""
    from repro.adversaries import default_search_portfolio

    # Mirrors benchmarks.bench_adversary.FAULT_BUDGETS (benchmarks/ is
    # not a package); widen both together when the sweep grows.
    fault_budgets = ["crash:1", "loss:1", "dup:1", "crash:1,loss:1"]
    return (sorted({s.name for s in default_search_portfolio()})
            + ["transposition", "fault matrix", "occupancy"]
            + fault_budgets)


def _scale_curve_markers() -> list[str]:
    """Rows the committed scale curve must contain to be fresh.

    Mirrors ``benchmarks.bench_scale.CURVE_SIZES`` (benchmarks/ is not
    a package); widen both together when the curve grows.  The sizes
    past the scalar cliff are exactly what proves the batched engine
    kept the curve bending, so each one is a marker.
    """
    return ([f'"n": {n}' for n in (5, 6, 7, 8, 9)]
            + ['"batched_seconds"', '"sharded_seconds"'])


#: Committed report sections and the markers that prove freshness.  A
#: section whose file is missing/empty, or lacks a marker, fails the
#: gate — regenerating the report in the same PR as the code change is
#: the fix, not skipping the check.
def expected_sections() -> dict[str, tuple[Path, list[str]]]:
    return {
        "adversary_search": (
            REPORTS_DIR / "adversary_search.txt",
            _adversary_report_markers(),
        ),
        "parallel_sweep": (
            REPORTS_DIR / "parallel_sweep.txt",
            ["ExecutionPlan"],
        ),
        "scale_stress": (
            REPORTS_DIR / "scale_stress.json",
            ['"case"', '"seconds"', '"max_message_bits"'],
        ),
        "scale_curve": (
            REPORTS_DIR / "scale_curve.json",
            _scale_curve_markers(),
        ),
    }


def check_sections() -> list[str]:
    """Problems with the committed ``reports/`` sections ([] = fresh)."""
    problems = []
    for name, (path, markers) in expected_sections().items():
        if not path.exists():
            problems.append(f"section {name!r}: {path} is missing")
            continue
        text = path.read_text()
        if not text.strip():
            problems.append(f"section {name!r}: {path} is empty")
            continue
        if path.suffix == ".json":
            try:
                json.loads(text)
            except ValueError as exc:
                problems.append(
                    f"section {name!r}: {path} is not valid JSON ({exc})"
                )
                continue
        for marker in markers:
            if marker not in text:
                problems.append(
                    f"section {name!r}: {path} is stale — it does not "
                    f"mention {marker!r} (regenerate it from benchmarks/)"
                )
    return problems


def check_latest_run(trajectory: dict) -> list[str]:
    """Benchmarks the latest recorded run silently dropped ([] = none).

    Mandatory coverage is the seed baseline plus whatever the *previous*
    run recorded — a silent drop fails immediately, while a deliberate
    rename/removal heals after one fresh full run (plus a seed-baseline
    edit if the name was baselined); ancient history never pins the
    gate forever.
    """
    runs = trajectory.get("runs", [])
    if not runs:
        return []
    known: set[str] = set(trajectory.get("seed_baseline_seconds", {}))
    if len(runs) >= 2:
        known |= set(runs[-2].get("results", {}))
    latest = set(runs[-1].get("results", {}))
    return [
        f"latest run is missing benchmark {name!r} (recorded before, "
        "absent now — rerun benchmarks/bench_regression.py)"
        for name in sorted(known - latest)
    ]


#: Keys every recorded result carries; anything else is a bench-specific
#: extra (prune counts, hit rates, kernel steps, skip reasons) worth
#: surfacing next to the latest timings.
_TIMING_KEYS = frozenset({"seconds", "seed_seconds", "speedup_vs_seed"})


def _result_extras(result: dict) -> str:
    """The bench-specific extras of one result, rendered inline ("")."""
    extras = {k: v for k, v in result.items() if k not in _TIMING_KEYS}
    if not extras:
        return ""
    return ", ".join(f"{k}={v}" for k, v in sorted(extras.items()))


def hit_rate_regressions(trajectory: dict) -> list[str]:
    """Benches whose ``table_hit_rate`` fell >20% since the previous
    same-machine run ([] = none).

    A hit-rate collapse means the search stopped reusing its own work —
    a perf cliff that absolute seconds on a fast machine can hide.  Only
    runs recording the *same* machine compare: hit rates depend on the
    portfolio's timing-free structure, but guarding on the machine keeps
    the gate honest when the fleet mixes hosts mid-trajectory.
    """
    runs = trajectory.get("runs", [])
    if len(runs) < 2:
        return []
    latest = runs[-1]
    machine = latest.get("machine")
    previous = next(
        (run for run in reversed(runs[:-1])
         if machine is not None and run.get("machine") == machine),
        None,
    )
    if previous is None:
        return []
    problems = []
    for name, result in latest.get("results", {}).items():
        now = result.get("table_hit_rate")
        before = previous.get("results", {}).get(name, {}).get("table_hit_rate")
        if now is None or before is None or before <= 0:
            continue
        if now < 0.8 * before:
            problems.append(
                f"{name}: table_hit_rate fell {before:.3f} -> {now:.3f} "
                f"(> 20% regression vs the previous same-machine run — "
                "the search stopped reusing its table)"
            )
    return problems


def _machine_label(run: dict) -> str:
    """One-line machine summary of a run ("" when not recorded)."""
    machine = run.get("machine")
    if not machine:
        return ""
    parts = [f"{machine.get('cpu_count', '?')} cpu",
             f"py {machine.get('python', '?')}"]
    if machine.get("numpy"):
        parts.append(f"numpy {machine['numpy']}")
    return ", ".join(parts)


def cross_machine_notes(trajectory: dict) -> list[str]:
    """Runs whose recorded machine differs from the latest run's.

    Absolute seconds never transfer between machines, so any
    run-over-run delta involving a flagged row (or a row with no
    recorded machine at all) compares apples to oranges.
    """
    runs = trajectory.get("runs", [])
    if not runs:
        return []
    latest = runs[-1].get("machine")
    notes = []
    for i, run in enumerate(runs[:-1]):
        machine = run.get("machine")
        if machine is None:
            notes.append(
                f"run {i} ({run.get('timestamp', '?')}) predates machine "
                "metadata — treat deltas against it as cross-machine"
            )
        elif latest is not None and machine != latest:
            notes.append(
                f"run {i} ({run.get('timestamp', '?')}) ran on a different "
                f"machine ({_machine_label(run)} vs "
                f"{_machine_label(runs[-1])}) — seconds are not comparable"
            )
    return notes


def render(trajectory: dict) -> str:
    lines = ["Performance trajectory (speedup vs. seed baseline)", ""]
    baseline = trajectory.get("seed_baseline_seconds", {})
    for name, seconds in baseline.items():
        lines.append(f"  seed {name}: {seconds:.4f}s")
    lines.append("")

    runs = trajectory.get("runs", [])
    if not runs:
        lines.append("(no runs recorded)")
        return "\n".join(lines)

    names = sorted({n for run in runs for n in run.get("results", {})})
    header = f"{'timestamp':<22}" + "".join(f"{n:>22}" for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    for run in runs:
        row = f"{run.get('timestamp', '?'):<22}"
        for name in names:
            r = run.get("results", {}).get(name)
            cell = f"{r['seconds']:.4f}s ({r['speedup_vs_seed']:.1f}x)" if r else "-"
            row += f"{cell:>22}"
        lines.append(row)

    lines.append("")
    latest = runs[-1].get("results", {})
    for name in names:
        r = latest.get(name)
        if r:
            line = (f"latest {name}: {r['seconds']:.4f}s, "
                    f"{r['speedup_vs_seed']:.1f}x faster than seed")
            extras = _result_extras(r)
            if extras:
                line += f" [{extras}]"
            lines.append(line)
    label = _machine_label(runs[-1])
    if label:
        lines.append(f"latest machine: {label}")
    for note in cross_machine_notes(trajectory):
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_scale_curve() -> str:
    """The committed exhaustive-scaling curve as a table ("" if absent).

    Renders ``reports/scale_curve.json`` (written by
    ``benchmarks/bench_scale.py::test_scale_curve``) so a reviewer sees
    where the scalar engine cliffs and how far the batched core pushes
    the same enumeration, without re-running the benchmark.
    """
    path = REPORTS_DIR / "scale_curve.json"
    if not path.exists():
        return ""
    try:
        curve = json.loads(path.read_text())
    except ValueError:
        return ""
    lines = ["", f"Exhaustive enumeration curve ({curve.get('fixture', '?')})",
             ""]
    lines.append(f"{'n':>3} {'executions':>12} {'scalar':>10} "
                 f"{'batched':>10} {'sharded':>10}")
    for row in curve.get("rows", []):
        scalar = row.get("scalar_seconds")
        scalar_cell = f"{scalar:.4f}s" if scalar is not None else "(cliff)"
        sharded = row.get("sharded_seconds")
        sharded_cell = f"{sharded:.4f}s" if sharded is not None else "-"
        lines.append(
            f"{row.get('n', '?'):>3} {row.get('executions', '?'):>12} "
            f"{scalar_cell:>10} {row.get('batched_seconds', 0):>9.4f}s "
            f"{sharded_cell:>10}"
        )
    return "\n".join(lines)


def render_campaign(store_path: Path, name: str | None) -> str:
    from repro.campaigns import ResultStore, render_trajectories

    if not store_path.exists():
        raise SystemExit(
            f"{store_path} not found — run `python -m repro campaign run "
            f"--store {store_path} ...` first"
        )
    with ResultStore(store_path) as store:
        return render_trajectories(store, name)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", nargs="?", default=None,
                        help="BENCH_perf.json location (default: repo root)")
    parser.add_argument("--allow-stale", action="store_true",
                        help="render even when sections are stale/missing")
    parser.add_argument("--campaign", metavar="STORE",
                        help="render witness trajectories from a campaign "
                             "store instead of the perf trajectory")
    parser.add_argument("--name", default=None,
                        help="campaign name filter (with --campaign)")
    args = parser.parse_args(argv)

    if args.campaign:
        print(render_campaign(Path(args.campaign), args.name))
        return 0

    path = Path(args.path) if args.path else DEFAULT_PATH
    trajectory = load_trajectory(path)
    print(render(trajectory))
    curve = render_scale_curve()
    if curve:
        print(curve)

    problems = (check_latest_run(trajectory) + check_sections()
                + hit_rate_regressions(trajectory))
    if problems:
        print()
        for problem in problems:
            print(f"DRIFT: {problem}", file=sys.stderr)
        if not args.allow_stale:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
