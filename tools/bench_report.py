#!/usr/bin/env python
"""Render the ``BENCH_perf.json`` perf trajectory as a human report.

``benchmarks/bench_regression.py`` appends one entry per run (seconds and
speedup vs. the frozen seed baseline for each hot path).  This tool
prints the full trajectory and per-benchmark trend so a reviewer can see
at a glance whether a PR moved the hot paths, without re-running the
benchmarks.

Usage::

    python tools/bench_report.py [path/to/BENCH_perf.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATH = REPO_ROOT / "BENCH_perf.json"


def load_trajectory(path: Path) -> dict:
    if not path.exists():
        raise SystemExit(
            f"{path} not found — run "
            "`PYTHONPATH=src python benchmarks/bench_regression.py` first"
        )
    return json.loads(path.read_text())


def render(trajectory: dict) -> str:
    lines = ["Performance trajectory (speedup vs. seed baseline)", ""]
    baseline = trajectory.get("seed_baseline_seconds", {})
    for name, seconds in baseline.items():
        lines.append(f"  seed {name}: {seconds:.4f}s")
    lines.append("")

    runs = trajectory.get("runs", [])
    if not runs:
        lines.append("(no runs recorded)")
        return "\n".join(lines)

    names = sorted({n for run in runs for n in run.get("results", {})})
    header = f"{'timestamp':<22}" + "".join(f"{n:>22}" for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    for run in runs:
        row = f"{run.get('timestamp', '?'):<22}"
        for name in names:
            r = run.get("results", {}).get(name)
            cell = f"{r['seconds']:.4f}s ({r['speedup_vs_seed']:.1f}x)" if r else "-"
            row += f"{cell:>22}"
        lines.append(row)

    lines.append("")
    latest = runs[-1].get("results", {})
    for name in names:
        r = latest.get(name)
        if r:
            lines.append(
                f"latest {name}: {r['seconds']:.4f}s, "
                f"{r['speedup_vs_seed']:.1f}x faster than seed"
            )
    return "\n".join(lines)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    path = Path(argv[0]) if argv else DEFAULT_PATH
    print(render(load_trajectory(path)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
