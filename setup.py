"""Legacy shim for environments without the `wheel` package.

`pip install -e .` needs wheel to build PEP 660 editables; fully offline
boxes can instead run `python setup.py develop` (or add src/ to a .pth
file as described in README.md).
"""

from setuptools import setup

setup()
