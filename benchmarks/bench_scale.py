"""E16 — laptop-scale stress runs.

The reproduction bands promise "simple round-based simulation, runs on a
laptop"; this benchmark pins numbers to that: end-to-end wall times for
the flagship protocols at the largest sizes the test matrix uses, plus a
simulator-throughput figure.  Regressions here mean the library stopped
being interactive.
"""

from __future__ import annotations

import json
import time

from repro.core import (
    SIMASYNC,
    SIMSYNC,
    SYNC,
    MinIdScheduler,
    RandomScheduler,
    count_executions,
    run,
)
from repro.graphs import generators as gen
from repro.graphs.properties import canonical_bfs_forest, is_rooted_mis
from repro.protocols.bfs import SyncBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol
from repro.protocols.mis import RootedMisProtocol
from repro.protocols.sketching import SketchSpanningForestProtocol


def test_build_n512(benchmark):
    g = gen.random_k_degenerate(512, 3, seed=1)
    result = benchmark.pedantic(
        run, args=(g, DegenerateBuildProtocol(3), SIMASYNC, MinIdScheduler()),
        rounds=1, iterations=1,
    )
    assert result.output == g


def test_sync_bfs_n256(benchmark):
    g = gen.random_connected_graph(256, 0.02, seed=2)
    result = benchmark.pedantic(
        run, args=(g, SyncBfsProtocol(), SYNC, RandomScheduler(0)),
        rounds=1, iterations=1,
    )
    assert result.output == canonical_bfs_forest(g)


def test_mis_n512(benchmark):
    g = gen.random_connected_graph(512, 0.01, seed=3)
    result = benchmark.pedantic(
        run, args=(g, RootedMisProtocol(7), SIMSYNC, RandomScheduler(1)),
        rounds=1, iterations=1,
    )
    assert is_rooted_mis(g, result.output, 7)


def test_sketch_forest_n48(benchmark):
    from repro.graphs.labeled_graph import LabeledGraph
    from repro.graphs.properties import connected_components

    g = gen.random_connected_graph(48, 0.08, seed=4)
    result = benchmark.pedantic(
        run,
        args=(g, SketchSpanningForestProtocol(shared_seed=5), SIMASYNC,
              MinIdScheduler()),
        rounds=1, iterations=1,
    )
    forest = LabeledGraph(g.n, result.output)
    assert connected_components(forest) == connected_components(g)


def test_scale_summary(benchmark, write_report, report_dir):
    rows = []
    cases = [
        ("BUILD k=3, n=512", lambda: run(
            gen.random_k_degenerate(512, 3, seed=1),
            DegenerateBuildProtocol(3), SIMASYNC, MinIdScheduler())),
        ("SYNC BFS, n=256", lambda: run(
            gen.random_connected_graph(256, 0.02, seed=2),
            SyncBfsProtocol(), SYNC, RandomScheduler(0))),
        ("MIS, n=512", lambda: run(
            gen.random_connected_graph(512, 0.01, seed=3),
            RootedMisProtocol(7), SIMSYNC, RandomScheduler(1))),
    ]
    for name, fn in cases:
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        assert result.success
        rows.append((name, dt, result.max_message_bits))
    benchmark.pedantic(cases[0][1], rounds=1, iterations=1)

    lines = ["Laptop-scale stress runs", ""]
    lines.append(f"{'case':<22} {'wall time':>10} {'max msg bits':>13}")
    for name, dt, bits in rows:
        lines.append(f"{name:<22} {dt:>9.2f}s {bits:>13}")
    write_report("scale_stress", "\n".join(lines))
    # Machine-readable twin of the table above: tools/bench_report.py
    # renders and staleness-checks it, so downstream tooling never
    # scrapes the fixed-width text.
    payload = {
        "bench": "scale_stress",
        "rows": [
            {"case": name, "seconds": round(dt, 4), "max_message_bits": bits}
            for name, dt, bits in rows
        ],
    }
    (report_dir / "scale_stress.json").write_text(
        json.dumps(payload, indent=2) + "\n")


#: The exhaustive-enumeration curve: sizes swept, and the size past
#: which the scalar engine is no longer interactive (the "cliff") —
#: mirrored by tools/bench_report.py's staleness markers; widen both
#: together.
CURVE_SIZES = (5, 6, 7, 8, 9)
SCALAR_CLIFF = 7


def test_scale_curve(benchmark, report_dir):
    """Exhaustive count_executions scaling: scalar vs batched vs sharded.

    The scalar engine is the semantic authority and is measured up to
    ``SCALAR_CLIFF``; the batched structure-of-arrays core must agree
    with it exactly there, then keep the curve bending past the cliff
    (n=9 is 362880 schedules — hours scalar, sub-second batched).  The
    sharded column (``jobs=2`` over the batched core) must agree with
    the batched count everywhere; its seconds only beat the batched
    column once real cores are available, so the curve records the
    honest ratio for whatever machine produced it.
    """
    rows = []
    for n in CURVE_SIZES:
        g = gen.cycle_graph(n)
        proto = DegenerateBuildProtocol(2)
        t0 = time.perf_counter()
        batched = count_executions(g, proto, SIMASYNC, batch=True)
        t_batched = time.perf_counter() - t0
        t0 = time.perf_counter()
        sharded = count_executions(g, proto, SIMASYNC, batch=True, jobs=2)
        t_sharded = time.perf_counter() - t0
        assert sharded == batched
        scalar_seconds = None
        if n <= SCALAR_CLIFF:
            t0 = time.perf_counter()
            scalar = count_executions(g, proto, SIMASYNC)
            scalar_seconds = round(time.perf_counter() - t0, 4)
            assert scalar == batched
        rows.append({
            "n": n,
            "executions": batched,
            "scalar_seconds": scalar_seconds,
            "batched_seconds": round(t_batched, 4),
            "sharded_seconds": round(t_sharded, 4),
        })
    assert [row["executions"] for row in rows] == sorted(
        row["executions"] for row in rows
    )
    payload = {
        "bench": "scale_curve",
        "fixture": "cycle / build-degenerate k=2 / SIMASYNC",
        "scalar_cliff": SCALAR_CLIFF,
        "rows": rows,
    }
    (report_dir / "scale_curve.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    small = gen.cycle_graph(6)
    benchmark.pedantic(
        lambda: count_executions(small, DegenerateBuildProtocol(2),
                                 SIMASYNC, batch=True),
        rounds=1, iterations=1,
    )
