"""E16 — laptop-scale stress runs.

The reproduction bands promise "simple round-based simulation, runs on a
laptop"; this benchmark pins numbers to that: end-to-end wall times for
the flagship protocols at the largest sizes the test matrix uses, plus a
simulator-throughput figure.  Regressions here mean the library stopped
being interactive.
"""

from __future__ import annotations

import time

from repro.core import SIMASYNC, SIMSYNC, SYNC, MinIdScheduler, RandomScheduler, run
from repro.graphs import generators as gen
from repro.graphs.properties import canonical_bfs_forest, is_rooted_mis
from repro.protocols.bfs import SyncBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol
from repro.protocols.mis import RootedMisProtocol
from repro.protocols.sketching import SketchSpanningForestProtocol


def test_build_n512(benchmark):
    g = gen.random_k_degenerate(512, 3, seed=1)
    result = benchmark.pedantic(
        run, args=(g, DegenerateBuildProtocol(3), SIMASYNC, MinIdScheduler()),
        rounds=1, iterations=1,
    )
    assert result.output == g


def test_sync_bfs_n256(benchmark):
    g = gen.random_connected_graph(256, 0.02, seed=2)
    result = benchmark.pedantic(
        run, args=(g, SyncBfsProtocol(), SYNC, RandomScheduler(0)),
        rounds=1, iterations=1,
    )
    assert result.output == canonical_bfs_forest(g)


def test_mis_n512(benchmark):
    g = gen.random_connected_graph(512, 0.01, seed=3)
    result = benchmark.pedantic(
        run, args=(g, RootedMisProtocol(7), SIMSYNC, RandomScheduler(1)),
        rounds=1, iterations=1,
    )
    assert is_rooted_mis(g, result.output, 7)


def test_sketch_forest_n48(benchmark):
    from repro.graphs.labeled_graph import LabeledGraph
    from repro.graphs.properties import connected_components

    g = gen.random_connected_graph(48, 0.08, seed=4)
    result = benchmark.pedantic(
        run,
        args=(g, SketchSpanningForestProtocol(shared_seed=5), SIMASYNC,
              MinIdScheduler()),
        rounds=1, iterations=1,
    )
    forest = LabeledGraph(g.n, result.output)
    assert connected_components(forest) == connected_components(g)


def test_scale_summary(benchmark, write_report):
    rows = []
    cases = [
        ("BUILD k=3, n=512", lambda: run(
            gen.random_k_degenerate(512, 3, seed=1),
            DegenerateBuildProtocol(3), SIMASYNC, MinIdScheduler())),
        ("SYNC BFS, n=256", lambda: run(
            gen.random_connected_graph(256, 0.02, seed=2),
            SyncBfsProtocol(), SYNC, RandomScheduler(0))),
        ("MIS, n=512", lambda: run(
            gen.random_connected_graph(512, 0.01, seed=3),
            RootedMisProtocol(7), SIMSYNC, RandomScheduler(1))),
    ]
    for name, fn in cases:
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        assert result.success
        rows.append((name, dt, result.max_message_bits))
    benchmark.pedantic(cases[0][1], rounds=1, iterations=1)

    lines = ["Laptop-scale stress runs", ""]
    lines.append(f"{'case':<22} {'wall time':>10} {'max msg bits':>13}")
    for name, dt, bits in rows:
        lines.append(f"{name:<22} {dt:>9.2f}s {bits:>13}")
    write_report("scale_stress", "\n".join(lines))
