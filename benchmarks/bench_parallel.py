"""E18 — serial vs process-parallel verification sweeps.

Measures the crossover where fanning instances out to worker processes
beats the serial loop: per-instance cost must amortise process spawn
and pickling.  The report records both wall times so the repository's
own guidance ('parallelism pays off once instances take hundreds of
milliseconds') stays backed by numbers.
"""

from __future__ import annotations

import time

from repro.analysis.checkers import BfsCanonical
from repro.analysis.parallel import verify_protocol_parallel
from repro.analysis.verify import verify_protocol
from repro.core import SYNC
from repro.core.schedulers import MinIdScheduler
from repro.graphs import generators as gen
from repro.protocols.bfs import SyncBfsProtocol

INSTANCES = [gen.random_connected_graph(190, 0.03, seed=s) for s in range(6)]
SCHEDS = [MinIdScheduler()]


def serial():
    return verify_protocol(
        SyncBfsProtocol(), SYNC, INSTANCES, BfsCanonical(), schedulers=SCHEDS
    )


def parallel():
    return verify_protocol_parallel(
        SyncBfsProtocol(), SYNC, INSTANCES, BfsCanonical(),
        schedulers=SCHEDS, n_jobs=4,
    )


def test_parallel_sweep(benchmark, write_report):
    t0 = time.perf_counter()
    s_report = serial()
    serial_t = time.perf_counter() - t0
    t0 = time.perf_counter()
    p_report = benchmark.pedantic(parallel, rounds=1, iterations=1)
    parallel_t = time.perf_counter() - t0

    assert s_report.ok and p_report.ok
    assert s_report.executions == p_report.executions

    import os

    speedup = serial_t / max(parallel_t, 1e-9)
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    write_report("parallel_sweep", "\n".join([
        "Serial vs process-parallel verification (SYNC BFS, 6 x n=190)",
        "",
        f"serial:   {serial_t:6.2f}s",
        f"parallel: {parallel_t:6.2f}s (4 workers, {cores} core(s) available)",
        f"speedup:  {speedup:4.1f}x",
        "",
        "the two paths are semantically identical (same executions, same",
        "verdicts); wall-clock gains require >1 physical core and per-",
        "instance cost past the spawn+pickle overhead (~50ms). On a",
        "single-core host the numbers above simply confirm zero overhead",
        "beyond process start-up.",
    ]))
