"""E18 — serial vs process-pool backends on one execution plan.

Measures the crossover where fanning plan tasks out to worker processes
beats the serial backend: per-task cost must amortise process spawn and
pickling.  Both paths execute the *same* ExecutionPlan, so the check is
exactly the runtime's core guarantee — backends only change wall-clock,
never results.  The report records both wall times so the repository's
own guidance ('parallelism pays off once instances take hundreds of
milliseconds') stays backed by numbers.
"""

from __future__ import annotations

import time

from repro.analysis.checkers import BfsCanonical
from repro.core import SYNC
from repro.core.schedulers import MinIdScheduler
from repro.graphs import generators as gen
from repro.protocols.bfs import SyncBfsProtocol
from repro.runtime import ExecutionPlan, ProcessPoolBackend, SerialBackend

INSTANCES = [gen.random_connected_graph(190, 0.03, seed=s) for s in range(6)]


def build_plan() -> ExecutionPlan:
    return ExecutionPlan.build(
        SyncBfsProtocol(), SYNC, INSTANCES,
        mode="verify", checker=BfsCanonical(), schedulers=[MinIdScheduler()],
    )


def test_parallel_sweep(benchmark, write_report):
    plan = build_plan()
    t0 = time.perf_counter()
    s_report = plan.verification_report(backend=SerialBackend())
    serial_t = time.perf_counter() - t0
    t0 = time.perf_counter()
    p_report = benchmark.pedantic(
        lambda: plan.verification_report(backend=ProcessPoolBackend(jobs=4)),
        rounds=1, iterations=1,
    )
    parallel_t = time.perf_counter() - t0

    assert s_report.ok and p_report.ok
    assert s_report.executions == p_report.executions
    assert s_report.max_bits_by_n == p_report.max_bits_by_n

    import os

    speedup = serial_t / max(parallel_t, 1e-9)
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    write_report("parallel_sweep", "\n".join([
        "Serial vs process-pool backend on one ExecutionPlan",
        f"(SYNC BFS, {len(plan)} verify tasks, 6 x n=190)",
        "",
        f"serial:   {serial_t:6.2f}s",
        f"parallel: {parallel_t:6.2f}s (4 workers, {cores} core(s) available)",
        f"speedup:  {speedup:4.1f}x",
        "",
        "the two backends execute the same plan and are asserted to agree",
        "field by field; wall-clock gains require >1 physical core and",
        "per-task cost past the spawn+pickle overhead (~50ms). On a",
        "single-core host the numbers above simply confirm zero overhead",
        "beyond process start-up.",
    ]))
