"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's artefacts (a table, a
figure, or a quantitative law), asserts its correctness, measures the
core computation with pytest-benchmark, and writes the regenerated
artefact to ``reports/<experiment>.txt`` so EXPERIMENTS.md can reference
concrete output.
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPORTS = Path(__file__).resolve().parent.parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORTS.mkdir(exist_ok=True)
    return REPORTS


@pytest.fixture(scope="session")
def write_report(report_dir):
    def _write(name: str, text: str) -> Path:
        path = report_dir / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _write
