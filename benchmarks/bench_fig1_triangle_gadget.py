"""E3 — Figure 1: the triangle gadget G'_{s,t}, regenerated and verified.

The figure's caption claims: given bipartite (triangle-free) G, the
auxiliary graph G'_{s,t} contains a triangle iff (s,t) is an edge of G.
We regenerate the exact instance from the paper, verify the claim over
every pair on it, then sweep randomized bipartite graphs; the timed
section measures the full all-pairs edge-recovery loop that the Theorem 3
reduction performs.
"""

from __future__ import annotations

from repro.analysis.figures import render_figure1
from repro.graphs.generators import random_bipartite
from repro.graphs.properties import has_triangle
from repro.reductions.gadgets import figure1_example, triangle_gadget


def recover_edges_via_triangle_queries(g):
    """The reduction's inner loop: learn E(G) purely from triangle answers."""
    edges = set()
    for s in range(1, g.n + 1):
        for t in range(s + 1, g.n + 1):
            if has_triangle(triangle_gadget(g, s, t)):
                edges.add((s, t))
    return frozenset(edges)


def test_figure1_instance(benchmark, write_report):
    g, gadget = benchmark(figure1_example)
    assert not has_triangle(g)
    assert has_triangle(gadget) == g.has_edge(2, 7) == True  # noqa: E712
    write_report("fig1_triangle_gadget", render_figure1())


def test_figure1_edge_recovery(benchmark):
    g = random_bipartite(5, 5, 0.5, seed=11)
    recovered = benchmark(recover_edges_via_triangle_queries, g)
    assert recovered == g.edge_set()


def test_figure1_sweep_random_instances(benchmark):
    benchmark.pedantic(recover_edges_via_triangle_queries,
                       args=(random_bipartite(4, 5, 0.4, seed=0),),
                       rounds=1, iterations=1)
    for seed in range(10):
        g = random_bipartite(4, 5, 0.4, seed=seed)
        assert recover_edges_via_triangle_queries(g) == g.edge_set()
