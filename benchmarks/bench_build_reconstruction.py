"""E6 — Theorem 2: BUILD correctness + the O(n²) output function, timed.

Three measurements:

* end-to-end reconstruction time across n (the paper claims the output
  function runs in O(n²));
* the decode-backend ablation: exact Newton-identities inversion vs the
  paper's Lemma 2 lookup table (table wins on lookups, loses on
  preprocessing/space — the trade-off Lemma 2 describes);
* whiteboard cost vs the naive baseline across n.
"""

from __future__ import annotations

import time

from repro.core import SIMASYNC, MinIdScheduler, run
from repro.encoding.power_sums import SubsetLookupTable, decode_power_sums, power_sums
from repro.graphs.generators import random_k_degenerate
from repro.protocols.build import DegenerateBuildProtocol
from repro.protocols.naive import NaiveBuildProtocol

K = 3


def reconstruct(n: int) -> None:
    g = random_k_degenerate(n, K, seed=n)
    r = run(g, DegenerateBuildProtocol(K), SIMASYNC, MinIdScheduler())
    assert r.output == g


def test_build_end_to_end(benchmark):
    benchmark(reconstruct, 64)


def test_build_quadratic_scaling(benchmark, write_report):
    benchmark.pedantic(reconstruct, args=(128,), rounds=1, iterations=1)
    """Measured decode times should grow polynomially, consistent with
    the O(n²) claim (we check the exponent is below cubic)."""
    times = {}
    for n in (32, 64, 128, 256):
        start = time.perf_counter()
        reconstruct(n)
        times[n] = time.perf_counter() - start

    lines = ["Theorem 2 — end-to-end reconstruction time (k=3)", ""]
    for n, t in times.items():
        lines.append(f"n={n:<5} {t * 1e3:8.2f} ms")
    # doubling n from 64 to 256 (4x) should cost well below 64x (cubic)
    ratio = times[256] / max(times[64], 1e-9)
    lines.append(f"t(256)/t(64) = {ratio:.1f} (quadratic predicts ~16)")
    assert ratio < 64
    write_report("build_reconstruction_scaling", "\n".join(lines))


def test_decode_backend_ablation(benchmark, write_report):
    """Newton inversion vs Lemma 2 lookup table at n=64, k=2."""
    n, k = 64, 2
    sets = [frozenset({3 * i % n + 1, (7 * i + 5) % n + 1}) for i in range(1, 40)]
    sets = [s for s in sets if len(s) == 2]
    vectors = [power_sums(sorted(s), k) for s in sets]

    table = SubsetLookupTable(n, k)

    def newton_all():
        return [decode_power_sums(b, 2, n) for b in vectors]

    def lookup_all():
        return [table.decode(b, 2) for b in vectors]

    assert newton_all() == lookup_all() == sets

    t0 = time.perf_counter()
    for _ in range(20):
        newton_all()
    newton_t = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(20):
        lookup_all()
    lookup_t = time.perf_counter() - t0
    t0 = time.perf_counter()
    SubsetLookupTable(n, k)
    prep_t = time.perf_counter() - t0

    benchmark(newton_all)

    lines = [
        "Theorem 2 decode-backend ablation (n=64, k=2, 38 decodes x 20 reps)",
        "",
        f"newton identities : {newton_t * 1e3:8.2f} ms total, zero preprocessing",
        f"lookup table      : {lookup_t * 1e3:8.2f} ms total, "
        f"{prep_t * 1e3:8.2f} ms to build {len(table)} entries (O(n^k) space)",
        "",
        "Lemma 2's trade-off: the table answers each query in O(log n) but "
        "costs O(n^k) space/preprocessing; the algebraic decoder needs no "
        "preprocessing and stays polynomial per query.",
    ]
    write_report("build_decode_ablation", "\n".join(lines))


def test_whiteboard_cost_vs_naive(benchmark, write_report):
    benchmark.pedantic(reconstruct, args=(64,), rounds=1, iterations=1)
    lines = ["Whiteboard cost: Theorem 2 vs naive full rows (k=3)", ""]
    lines.append(f"{'n':>5} {'thm2 max':>9} {'naive max':>10} {'thm2 total':>11} {'naive total':>12}")
    for n in (32, 64, 128, 256):
        g = random_k_degenerate(n, K, seed=n + 1)
        smart = run(g, DegenerateBuildProtocol(K), SIMASYNC, MinIdScheduler())
        naive = run(g, NaiveBuildProtocol(), SIMASYNC, MinIdScheduler())
        assert smart.output == naive.output == g
        lines.append(
            f"{n:>5} {smart.max_message_bits:>9} {naive.max_message_bits:>10} "
            f"{smart.total_bits:>11} {naive.total_bits:>12}"
        )
        if n >= 128:
            assert naive.max_message_bits > smart.max_message_bits
        if n >= 256:
            # the Θ(n) vs Θ(k² log n) gap: a factor >3 by n=256
            assert naive.max_message_bits > 3 * smart.max_message_bits
    write_report("build_vs_naive_cost", "\n".join(lines))
