"""E5 — Lemma 1: Theorem 2's messages are O(k² log n) bits, measured.

For every k and n in the sweep we run the BUILD protocol, record the
*exact* encoded size of the largest message, compare against the
analytic bound, and fit the growth law.  The series (measured bits vs
k² log n) is the reproduction of the paper's quantitative claim.
"""

from __future__ import annotations

import math

from repro.analysis.scaling import fit_klog, fit_log, is_sublinear
from repro.core import SIMASYNC, MinIdScheduler, run
from repro.graphs.generators import random_k_degenerate
from repro.protocols.build import DegenerateBuildProtocol

SIZES = (16, 32, 64, 128, 256)
KS = (1, 2, 3, 4, 5)


def measure(k: int, n: int) -> int:
    g = random_k_degenerate(n, k, seed=n * 31 + k)
    r = run(g, DegenerateBuildProtocol(k), SIMASYNC, MinIdScheduler())
    assert r.output == g
    return r.max_message_bits


def analytic_bound_bits(k: int, n: int) -> float:
    """(k+2) fields, each <= (k+1) log2(n+1) magnitude bits, roughly
    doubled by the self-delimiting gamma codec, plus structure."""
    return (k + 2) * (2 * (k + 1) * math.log2(n + 1) + 5) + 10


def test_lemma1_law(benchmark, write_report):
    table: dict[tuple[int, int], int] = {}
    for k in KS:
        for n in SIZES:
            table[(k, n)] = measure(k, n)

    # Timed section: one representative measurement.
    benchmark(measure, 3, 128)

    lines = ["Lemma 1 — max message bits of Theorem 2's protocol", ""]
    header = f"{'k':>3} |" + "".join(f"  n={n:<7}" for n in SIZES) + " bound@256"
    lines.append(header)
    for k in KS:
        row = f"{k:>3} |"
        for n in SIZES:
            row += f"  {table[(k, n)]:<8}"
        row += f" {analytic_bound_bits(k, 256):8.0f}"
        lines.append(row)

    # Claims to verify:
    for k in KS:
        ns = list(SIZES)
        bits = [table[(k, n)] for n in ns]
        # (a) within the analytic bound everywhere
        for n, b in zip(ns, bits):
            assert b <= analytic_bound_bits(k, n), (k, n, b)
        # (b) sublinear in n (the o(n) requirement)
        assert is_sublinear(ns, bits)
        # (c) clean log-law fit
        fit = fit_log(ns, bits)
        lines.append(f"k={k}: {fit}")
        assert fit.r_squared > 0.85, (k, fit)

    # (d) k-dependence at fixed n follows k^2 log n
    n = 256
    kfit = fit_klog(KS, [table[(k, n)] for k in KS], n)
    lines.append(f"at n={n}: {kfit}")
    assert kfit.r_squared > 0.95

    write_report("lemma1_message_size", "\n".join(lines))
