"""E1 — Table 1: the four models' defining semantics, demonstrated.

Table 1 of the paper is the 2x2 grid {message frozen at activation?} x
{all nodes active after round 1?}.  This benchmark runs one
board-sensitive probe protocol under all four models and tabulates the
observable differences (activation rounds, what each written message saw),
confirming each model exhibits exactly its quadrant's behaviour.  The
timed section measures raw simulator throughput.
"""

from __future__ import annotations

from repro.core import (
    ALL_MODELS,
    ASYNC,
    SIMASYNC,
    SIMSYNC,
    SYNC,
    MaxIdScheduler,
    NodeView,
    Protocol,
    RandomScheduler,
    run,
)
from repro.graphs.generators import path_graph, random_graph


class BoardSizeProbe(Protocol):
    """Message = (id, board size when the message was fixed); activation
    = wait for my predecessor (free models only)."""

    name = "probe"

    def wants_to_activate(self, view: NodeView) -> bool:
        return len(view.board) >= view.node - 1

    def message(self, view: NodeView):
        return (view.node, len(view.board))

    def output(self, board, n):
        return tuple(board)


def conformance_matrix() -> dict[str, dict[str, object]]:
    """Observable semantics of the probe under each model."""
    g = path_graph(5)
    out: dict[str, dict[str, object]] = {}
    for model in ALL_MODELS:
        r = run(g, BoardSizeProbe(), model, MaxIdScheduler())
        seen = [p[1] for p in r.board.view()]
        out[model.name] = {
            "all_active_at_round_0": all(
                v == 0 for v in r.activation_round.values()
            ),
            "messages_saw_board_sizes": seen,
            "write_order": r.write_order,
        }
    return out


def test_table1_semantics(benchmark, write_report):
    matrix = benchmark(conformance_matrix)

    # Simultaneous models: everyone active immediately.
    assert matrix["SIMASYNC"]["all_active_at_round_0"]
    assert matrix["SIMSYNC"]["all_active_at_round_0"]
    assert not matrix["ASYNC"]["all_active_at_round_0"]
    assert not matrix["SYNC"]["all_active_at_round_0"]

    # Asynchronous models: messages frozen at activation.
    assert matrix["SIMASYNC"]["messages_saw_board_sizes"] == [0] * 5
    assert matrix["ASYNC"]["messages_saw_board_sizes"] == [0, 1, 2, 3, 4]  # frozen per-activation
    # Synchronous models: recomputed at write time.
    assert matrix["SIMSYNC"]["messages_saw_board_sizes"] == [0, 1, 2, 3, 4]
    assert matrix["SYNC"]["messages_saw_board_sizes"] == [0, 1, 2, 3, 4]
    # ...but under SIMSYNC the adversary (max-id) wrote 5,4,3,2,1 while the
    # free models were forced into identifier order by the probe:
    assert matrix["SIMSYNC"]["write_order"] == (5, 4, 3, 2, 1)
    assert matrix["ASYNC"]["write_order"] == (1, 2, 3, 4, 5)

    lines = ["Table 1 conformance (probe protocol, max-id adversary, P5)", ""]
    header = f"{'model':<10} {'all active @0':<14} {'board sizes seen':<22} write order"
    lines.append(header)
    for name, row in matrix.items():
        lines.append(
            f"{name:<10} {str(row['all_active_at_round_0']):<14} "
            f"{str(row['messages_saw_board_sizes']):<22} {row['write_order']}"
        )
    write_report("table1_models", "\n".join(lines))


def test_simulator_throughput(benchmark):
    """Raw engine speed: one full execution on a 100-node graph."""
    g = random_graph(100, 0.05, seed=1)

    class Trivial(Protocol):
        name = "trivial"

        def message(self, view):
            return (view.node, view.degree)

        def output(self, board, n):
            return len(board)

    result = benchmark(run, g, Trivial(), SIMASYNC, RandomScheduler(0))
    assert result.success and result.output == 100
