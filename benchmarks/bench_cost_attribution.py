"""E17 — ablation: who pays for the whiteboard?

Lemma 1 bounds the *maximum* message; this ablation looks at the
distribution.  Per-degree cost profiles for Theorem 2's power-sum
messages vs the naive row encoding show where the logarithmic compression
comes from: the naive cost of a node is linear in ``n`` regardless of
degree, while the power-sum cost scales with the *magnitude* of the
neighbour identifiers (≈ degree · k · log n), leaving low-degree nodes
nearly free.
"""

from __future__ import annotations

from repro.analysis.message_stats import cost_by_core, cost_by_degree, message_stats
from repro.core import SIMASYNC, MinIdScheduler, run
from repro.graphs import generators as gen
from repro.protocols.build import DegenerateBuildProtocol
from repro.protocols.naive import NaiveBuildProtocol

N, K = 128, 3


def profile():
    g = gen.random_k_degenerate(N, K, seed=7)
    smart = run(g, DegenerateBuildProtocol(K), SIMASYNC, MinIdScheduler())
    naive = run(g, NaiveBuildProtocol(), SIMASYNC, MinIdScheduler())
    return g, smart, naive


def test_cost_attribution(benchmark, write_report):
    g, smart, naive = benchmark(profile)

    smart_stats = message_stats(smart)
    naive_stats = message_stats(naive)
    by_deg_smart = cost_by_degree(smart, g)
    by_deg_naive = cost_by_degree(naive, g)

    lines = [f"Cost attribution ablation (n={N}, k={K})", ""]
    lines.append(
        f"theorem-2 messages: min {smart_stats.min_bits}, median "
        f"{smart_stats.median_bits:.0f}, max {smart_stats.max_bits} bits"
    )
    lines.append(
        f"naive messages:     min {naive_stats.min_bits}, median "
        f"{naive_stats.median_bits:.0f}, max {naive_stats.max_bits} bits"
    )
    lines.append("")
    lines.append(f"{'degree':>7} {'#nodes':>7} {'thm2 mean':>10} {'naive mean':>11}")
    for d in sorted(by_deg_smart):
        s = by_deg_smart[d]
        nv = by_deg_naive[d]
        lines.append(f"{d:>7} {s.count:>7} {s.mean_bits:>10.1f} {nv.mean_bits:>11.1f}")

    # Claims: the smart profile is degree-sensitive...
    degs = sorted(by_deg_smart)
    assert by_deg_smart[degs[-1]].mean_bits > by_deg_smart[degs[0]].mean_bits
    # ...and dominated by the naive cost at every degree at this n.
    for d in degs:
        assert by_deg_smart[d].mean_bits <= by_deg_naive[d].mean_bits + 1

    by_core = cost_by_core(smart, g)
    lines.append("")
    lines.append("theorem-2 cost by core number (cost tracks degree, not core):")
    for c, s in by_core.items():
        lines.append(f"  core {c}: {s.count} nodes, mean {s.mean_bits:.1f} bits")
    write_report("cost_attribution", "\n".join(lines))
