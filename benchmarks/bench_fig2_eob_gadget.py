"""E4 — Figure 2: the EOB-BFS gadget G_i, regenerated and verified.

Caption claim: node j (even) is in the third BFS layer of G_i rooted at
v_1 iff (i, j) is an edge of the base graph.  We regenerate the paper's
exact instance (base on labels {2..7}, gadget G_5 with auxiliaries
8..13), check the claim for every odd i, and time the full
neighbourhood-recovery loop of Theorem 8.
"""

from __future__ import annotations

import random

from repro.analysis.figures import render_figure2
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.properties import bfs_layers_from, is_even_odd_bipartite
from repro.reductions.gadgets import eob_gadget, eob_gadget_property, figure2_example


def random_base(n: int, seed: int) -> LabeledGraph:
    rng = random.Random(seed)
    return LabeledGraph(n, [
        (u, v)
        for u in range(2, n + 1)
        for v in range(u + 1, n + 1)
        if (u - v) % 2 == 1 and rng.random() < 0.5
    ])


def recover_all_odd_neighborhoods(base: LabeledGraph) -> dict[int, frozenset[int]]:
    """Theorem 8's decoding loop: N(v_i) from the layer-3 set of G_i."""
    out = {}
    for i in range(3, base.n + 1, 2):
        layers = bfs_layers_from(eob_gadget(base, i), 1)
        out[i] = frozenset(v for v, l in layers.items() if l == 3)
    return out


def test_figure2_instance(benchmark, write_report):
    base, gadget = benchmark(figure2_example)
    assert is_even_odd_bipartite(gadget)
    assert eob_gadget_property(base, 5)
    write_report("fig2_eob_gadget", render_figure2())


def test_figure2_neighborhood_recovery(benchmark):
    base = random_base(13, seed=4)
    recovered = benchmark(recover_all_odd_neighborhoods, base)
    for i, neigh in recovered.items():
        assert neigh == base.neighbors(i)


def test_figure2_sweep_random_instances(benchmark):
    benchmark.pedantic(recover_all_odd_neighborhoods,
                       args=(random_base(9, 0),), rounds=1, iterations=1)
    for seed in range(10):
        base = random_base(9, seed)
        for i in (3, 5, 7, 9):
            assert eob_gadget_property(base, i), (seed, i)
