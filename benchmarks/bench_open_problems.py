"""E11 — the paper's open problems, measured where measurement is possible.

* Open Problems 2/3 (BFS / connectivity in ASYNC): we measure how often
  the Corollary 4 protocol deadlocks on non-bipartite inputs, and verify
  it is *never wrong* — failures are always corrupted configurations,
  supporting the paper's conjecture that the obstacle is fundamental.
* Open Problem 1 (2-CLIQUES in SIMASYNC): deterministically open; the
  Section 7 randomized public-coin protocol solves it with vanishing
  error, measured over many shared seeds.
* Open Problem 4 (randomized SIMASYNC): error-rate sweep of the
  fingerprint protocol.
"""

from __future__ import annotations

from repro.core import ASYNC, SIMASYNC, RandomScheduler, run
from repro.core.schedulers import default_portfolio
from repro.graphs import generators as gen
from repro.graphs.properties import canonical_bfs_forest, is_bipartite
from repro.protocols.bfs import BipartiteBfsAsyncProtocol
from repro.protocols.randomized import RandomizedTwoCliquesProtocol
from repro.protocols.two_cliques import NOT_TWO_CLIQUES, TWO_CLIQUES


def deadlock_stats(seeds: range) -> dict[str, int]:
    proto = BipartiteBfsAsyncProtocol()
    stats = {"bipartite_ok": 0, "nonbip_ok": 0, "nonbip_deadlock": 0, "wrong": 0}
    for seed in seeds:
        g = gen.random_connected_graph(10, 0.25, seed=seed)
        for sched in default_portfolio((seed,)):
            r = run(g, proto, ASYNC, sched)
            if r.success:
                if r.output == canonical_bfs_forest(g):
                    key = "bipartite_ok" if is_bipartite(g) else "nonbip_ok"
                    stats[key] += 1
                else:
                    stats["wrong"] += 1
            else:
                assert not is_bipartite(g), "bipartite inputs must never deadlock"
                stats["nonbip_deadlock"] += 1
    return stats


def test_async_bfs_deadlock_rates(benchmark, write_report):
    stats = benchmark(deadlock_stats, range(12))
    assert stats["wrong"] == 0  # failure mode is deadlock, never bad output
    assert stats["nonbip_deadlock"] > 0  # the obstacle is real

    total = sum(stats.values())
    write_report("open_problem_bfs_async", "\n".join([
        "Open Problems 2/3 — Corollary 4's protocol beyond bipartite inputs",
        "",
        f"runs: {total}",
        f"  bipartite, correct forest:      {stats['bipartite_ok']}",
        f"  non-bipartite, correct forest:  {stats['nonbip_ok']}",
        f"  non-bipartite, deadlocked:      {stats['nonbip_deadlock']}",
        f"  wrong output:                   {stats['wrong']}  (must be 0)",
        "",
        "the protocol fails *safely* on odd cycles: intra-layer edges make "
        "the layer certificate unsatisfiable, leaving a corrupted "
        "configuration — evidence for the paper's conjecture that "
        "BFS ∉ ASYNC[o(n)].",
    ]))


def test_randomized_two_cliques_error_rate(benchmark, write_report):
    """Open Problems 1/4: the public-coin fingerprint protocol."""
    yes = gen.two_cliques(8)
    no = gen.connected_two_cliques_like(8, seed=0)

    def sweep(trials: int) -> tuple[int, int]:
        errors_yes = errors_no = 0
        for seed in range(trials):
            p = RandomizedTwoCliquesProtocol(shared_seed=seed)
            if run(yes, p, SIMASYNC, RandomScheduler(seed)).output != TWO_CLIQUES:
                errors_yes += 1
            if run(no, p, SIMASYNC, RandomScheduler(seed)).output != NOT_TWO_CLIQUES:
                errors_no += 1
        return errors_yes, errors_no

    errors_yes, errors_no = benchmark.pedantic(sweep, args=(60,), rounds=1, iterations=1)
    assert errors_yes == 0 and errors_no == 0  # 4n^3/p ≈ 1e-15 at n=16

    write_report("open_problem_randomized", "\n".join([
        "Open Problems 1/4 — randomized 2-CLIQUES in SIMASYNC[log n]",
        "",
        "60 shared-coin seeds x (one YES + one NO) instance at n=16:",
        f"  YES errors: {errors_yes}   NO errors: {errors_no}",
        "theoretical error bound 4n^3/p ≈ 1.8e-14 with p = 2^61 - 1;",
        "deterministic SIMASYNC status remains open (Open Problem 1).",
    ]))
