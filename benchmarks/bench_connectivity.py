"""E13 — Section 6 / Open Problem 2: connectivity on the whiteboard.

CONNECTIVITY and SPANNING-FOREST are immediate in ``SYNC[log n]`` (count
roots / read parents off Theorem 10's board); their ASYNC status is the
paper's Open Problem 2.  This benchmark verifies the SYNC corollaries at
scale and measures how the same machinery degrades under ASYNC freezing.
"""

from __future__ import annotations

from repro.core import ASYNC, SYNC, RandomScheduler, run
from repro.core.schedulers import default_portfolio
from repro.graphs import generators as gen
from repro.graphs.properties import (
    canonical_bfs_forest,
    connected_components,
    is_bipartite,
    is_connected,
)
from repro.protocols.connectivity import ConnectivityProtocol, SpanningForestProtocol


def test_connectivity_sync(benchmark, write_report):
    correct = 0
    total = 0
    for seed in range(10):
        g = gen.random_graph(14, 0.18, seed=seed)
        want = 1 if is_connected(g) else 0
        for sched in default_portfolio((0, 1)):
            total += 1
            r = run(g, ConnectivityProtocol(), SYNC, sched)
            assert r.success
            correct += r.output == want
    assert correct == total

    g = gen.random_graph(80, 0.04, seed=3)
    result = benchmark(run, g, ConnectivityProtocol(), SYNC, RandomScheduler(0))
    assert result.output == (1 if is_connected(g) else 0)

    write_report("connectivity_sync", "\n".join([
        "CONNECTIVITY in SYNC[log n] (corollary of Theorem 10)",
        "",
        f"verified {correct}/{total} runs across adversary portfolio",
        f"n=80 instance: answer {result.output}, "
        f"max message {result.max_message_bits} bits",
        "",
        "output function counts ROOT records (epochs = components);",
        "ASYNC-model status is Open Problem 2.",
    ]))


def test_spanning_forest_sync(benchmark):
    g = gen.random_graph(40, 0.08, seed=7)
    result = benchmark(run, g, SpanningForestProtocol(), SYNC, RandomScheduler(1))
    assert result.output == canonical_bfs_forest(g).tree_edges()
    assert len(result.output) == g.n - len(connected_components(g))


def test_connectivity_async_degradation(benchmark, write_report):
    benchmark.pedantic(
        run,
        args=(gen.random_graph(10, 0.25, seed=100), ConnectivityProtocol(),
              ASYNC, RandomScheduler(0)),
        rounds=1, iterations=1,
    )
    """Under ASYNC the frozen d0 counts break the epoch-switch
    certificate on non-bipartite inputs — quantifying why Open Problem 2
    resists the obvious approach."""
    deadlocks = wrongs = oks = 0
    for seed in range(15):
        g = gen.random_graph(10, 0.25, seed=seed + 100)
        want = 1 if is_connected(g) else 0
        r = run(g, ConnectivityProtocol(), ASYNC, RandomScheduler(seed))
        if r.corrupted:
            deadlocks += 1
            assert not is_bipartite(g) or not r.success
        elif r.output == want:
            oks += 1
        else:
            wrongs += 1
    assert wrongs == 0  # fails safely, never lies
    assert deadlocks > 0

    write_report("connectivity_async_degradation", "\n".join([
        "Open Problem 2 — the SYNC connectivity machinery under ASYNC freezing",
        "",
        f"15 random graphs: {oks} correct, {deadlocks} deadlocked, {wrongs} wrong",
        "frozen d0 counts under-report intra-layer edges, so non-bipartite",
        "components can never certify exhaustion: safe failure, no answer.",
    ]))
