"""E9 — the positive protocols (Theorems 5, 7, 10; Section 5.1; Cor. 4).

For each protocol: a correctness sweep under the adversary portfolio
(exhaustive over all write orders at small n), measured message sizes
across n with a fitted growth law, and a timed representative run.
"""

from __future__ import annotations

from repro.analysis.scaling import fit_log, is_sublinear
from repro.analysis.verify import verify_protocol
from repro.core import ASYNC, SIMSYNC, SYNC, RandomScheduler, run
from repro.core.schedulers import default_portfolio
from repro.graphs import generators as gen
from repro.graphs.properties import (
    canonical_bfs_forest,
    is_even_odd_bipartite,
    is_rooted_mis,
    is_two_cliques,
)
from repro.protocols.bfs import EobBfsProtocol, SyncBfsProtocol
from repro.protocols.mis import RootedMisProtocol
from repro.protocols.naive import NOT_EOB
from repro.protocols.two_cliques import (
    NOT_TWO_CLIQUES,
    TWO_CLIQUES,
    TwoCliquesProtocol,
)

SIZES = (8, 16, 32, 64, 128)


def _bits_curve(proto_factory, graph_factory, model) -> dict[int, int]:
    out = {}
    for n in SIZES:
        r = run(graph_factory(n), proto_factory(), model, RandomScheduler(n))
        assert r.success
        out[n] = r.max_message_bits
    return out


def test_mis_protocol(benchmark, write_report):
    report = verify_protocol(
        RootedMisProtocol(1), SIMSYNC,
        [gen.random_graph(5, 0.5, seed=s) for s in range(4)]
        + [gen.random_connected_graph(20, 0.2, seed=s) for s in range(3)],
        lambda g, out, r: is_rooted_mis(g, out, 1),
        schedulers=default_portfolio((0, 1, 2)),
    )
    assert report.ok

    curve = _bits_curve(
        lambda: RootedMisProtocol(1),
        lambda n: gen.random_connected_graph(n, 0.15, seed=n),
        SIMSYNC,
    )
    assert is_sublinear(list(curve), list(curve.values()))
    fit = fit_log(list(curve), list(curve.values()))

    g = gen.random_connected_graph(50, 0.1, seed=2)
    benchmark(run, g, RootedMisProtocol(1), SIMSYNC, RandomScheduler(0))

    write_report("protocol_mis", "\n".join([
        "Theorem 5 — rooted MIS in SIMSYNC[log n]",
        "",
        report.summary(),
        f"bits by n: {curve}",
        f"growth fit: {fit}",
    ]))


def test_two_cliques_protocol(benchmark, write_report):
    yes = [gen.two_cliques(h) for h in (2, 4, 8)]
    no = [gen.connected_two_cliques_like(h, seed=h) for h in (4, 8)]
    report = verify_protocol(
        TwoCliquesProtocol(), SIMSYNC, yes + no,
        lambda g, out, r: out == (TWO_CLIQUES if is_two_cliques(g) else NOT_TWO_CLIQUES),
        schedulers=default_portfolio((0, 1, 2)),
        exhaustive_threshold=4,
    )
    assert report.ok

    g = gen.two_cliques(25)
    result = benchmark(run, g, TwoCliquesProtocol(), SIMSYNC, RandomScheduler(1))
    assert result.output == TWO_CLIQUES

    write_report("protocol_two_cliques", "\n".join([
        "Section 5.1 — 2-CLIQUES in SIMSYNC[log n]",
        "",
        report.summary(),
        f"max message at n=50: {result.max_message_bits} bits",
    ]))


def test_eob_bfs_protocol(benchmark, write_report):
    instances = [gen.random_even_odd_bipartite(n, 0.35, seed=n) for n in (5, 9, 15, 21)]
    instances.append(gen.random_graph(8, 0.5, seed=99))  # likely invalid

    def checker(g, out, r):
        if is_even_odd_bipartite(g):
            return out == canonical_bfs_forest(g)
        return out == NOT_EOB

    report = verify_protocol(
        EobBfsProtocol(), ASYNC, instances, checker,
        schedulers=default_portfolio((0, 1, 2)),
    )
    assert report.ok

    curve = _bits_curve(
        EobBfsProtocol,
        lambda n: gen.random_even_odd_bipartite(n, 0.3, seed=n),
        ASYNC,
    )
    assert is_sublinear(list(curve), list(curve.values()))

    g = gen.random_even_odd_bipartite(60, 0.2, seed=3)
    benchmark(run, g, EobBfsProtocol(), ASYNC, RandomScheduler(0))

    write_report("protocol_eob_bfs", "\n".join([
        "Theorem 7 — EOB-BFS in ASYNC[log n]",
        "",
        report.summary(),
        f"bits by n: {curve}",
        f"growth fit: {fit_log(list(curve), list(curve.values()))}",
    ]))


def test_sync_bfs_protocol(benchmark, write_report):
    instances = (
        [gen.random_graph(n, 0.25, seed=n) for n in (5, 9, 14)]
        + [gen.petersen_graph(), gen.cycle_graph(9), gen.complete_graph(7)]
    )
    report = verify_protocol(
        SyncBfsProtocol(), SYNC, instances,
        lambda g, out, r: out == canonical_bfs_forest(g),
        schedulers=default_portfolio((0, 1, 2)),
    )
    assert report.ok

    curve = _bits_curve(
        SyncBfsProtocol,
        lambda n: gen.random_connected_graph(n, 0.08, seed=n),
        SYNC,
    )
    assert is_sublinear(list(curve), list(curve.values()))

    g = gen.random_connected_graph(60, 0.08, seed=1)
    benchmark(run, g, SyncBfsProtocol(), SYNC, RandomScheduler(0))

    write_report("protocol_sync_bfs", "\n".join([
        "Theorem 10 — BFS in SYNC[log n] (arbitrary graphs)",
        "",
        report.summary(),
        f"bits by n: {curve}",
        f"growth fit: {fit_log(list(curve), list(curve.values()))}",
    ]))
