#!/usr/bin/env python
"""Adversary search vs. exhaustive ground truth at small n.

For every fixture small enough to enumerate exhaustively, measures

* **agreement** — does each search strategy's worst witness reach the
  exhaustive maximum (bits), and does the deadlock seeker find a
  deadlock exactly when one exists?
* **time** — wall clock of the search vs. the exhaustive sweep it
  replaces, plus the number of write events each explored.
* **transposition sharing** — the same strategies run as one portfolio
  through a shared :class:`~repro.adversaries.TranspositionTable`
  (branch-and-bound first, so its exact completion frontiers are there
  for the others to consume), timed against the table-off portfolio,
  with the table's hit rate; the table-on witnesses must agree with the
  table-off ones strategy for strategy.
* **fault matrix** — the same search-vs-enumeration agreement over the
  joint fault × schedule space: each fault budget multiplies the
  exhaustive space (the ``schedules`` column shows by how much), and
  every strategy is gated against the faulted ground truth exactly like
  the reliable rows above.

The summary lands in ``reports/adversary_search.txt``;
``benchmarks/bench_regression.py`` records the headline
``adversary_search_n6`` / ``adversary_table_n6`` numbers into
``BENCH_perf.json`` so the search-vs-enumeration and table-on
trajectories are tracked across PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_adversary.py [--reps N]
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.adversaries import (  # noqa: E402
    BeamSearchAdversary,
    BranchAndBoundAdversary,
    DeadlockAdversary,
    GreedyBitsAdversary,
    SearchContext,
    TranspositionTable,
    witness_rank,
)
from repro.core import ASYNC, SIMASYNC, SIMSYNC, all_executions  # noqa: E402
from repro.graphs import generators as gen  # noqa: E402
from repro.graphs.labeled_graph import LabeledGraph  # noqa: E402
from repro.protocols.bfs import (  # noqa: E402
    BipartiteBfsAsyncProtocol,
    EobBfsProtocol,
)
from repro.protocols.build import DegenerateBuildProtocol  # noqa: E402

REPORT_PATH = REPO_ROOT / "reports" / "adversary_search.txt"

FIXTURES = [
    ("build-simasync-n6", gen.random_k_degenerate(6, 2, seed=0),
     lambda: DegenerateBuildProtocol(2), SIMASYNC),
    ("build-simsync-n6", gen.random_k_degenerate(6, 2, seed=0),
     lambda: DegenerateBuildProtocol(2), SIMSYNC),
    ("eob-bfs-async-n6", gen.random_even_odd_bipartite(6, 0.5, seed=1),
     lambda: EobBfsProtocol(), ASYNC),
    ("bipartite-deadlock-n5",
     LabeledGraph(5, [(1, 2), (1, 3), (2, 3), (4, 5)]),
     lambda: BipartiteBfsAsyncProtocol(), ASYNC),
]

STRATEGIES = [
    lambda: GreedyBitsAdversary(restarts=2),
    lambda: BeamSearchAdversary(width=8),
    lambda: BranchAndBoundAdversary(),
    lambda: DeadlockAdversary(),
]

#: Sharing order for the transposition section: branch-and-bound first,
#: so its exact completion frontiers are in the table before the
#: strategies that can consume them run.
SHARED_ORDER = [
    lambda: BranchAndBoundAdversary(),
    lambda: DeadlockAdversary(),
    lambda: GreedyBitsAdversary(restarts=2),
    lambda: BeamSearchAdversary(width=8),
]


def _run_portfolio(graph, make_proto, model, shared: bool):
    """One portfolio pass; returns (witnesses by strategy, context)."""
    context = SearchContext(table=TranspositionTable()) if shared else None
    witnesses = {}
    for make_strategy in SHARED_ORDER:
        strategy = make_strategy()
        witnesses[strategy.name] = strategy.search(
            graph, make_proto(), model, context=context)
    return witnesses, context


def transposition_section(fixtures, reps: int) -> tuple[list[str], bool]:
    """Table-on vs table-off portfolio timings + hit rate + agreement."""
    lines = ["shared transposition table: portfolio off vs on "
             "(branch-and-bound seeds, the rest consume)", ""]
    header = (f"{'fixture':<24} {'off sec':>9} {'on sec':>9} {'ratio':>6} "
              f"{'hit rate':>9} {'entries':>8} {'occupancy':>9} agree")
    lines.append(header)
    print(header)
    all_agree = True
    for tag, graph, make_proto, model in fixtures:
        t_off, (off, _) = _median_time(
            lambda: _run_portfolio(graph, make_proto, model, shared=False),
            reps)
        t_on, (on, context) = _median_time(
            lambda: _run_portfolio(graph, make_proto, model, shared=True),
            reps)
        table = context.table
        # Branch-and-bound is exact, so sharing must reproduce its
        # witness field for field and the deadlock verdict; the
        # heuristics may only *improve* (consuming exact completions
        # can lift a descent to the true optimum), never degrade.
        agree = (
            on["branch-and-bound"].schedule == off["branch-and-bound"].schedule
            and on["deadlock-dfs"].deadlock == off["deadlock-dfs"].deadlock
            and all(witness_rank(on[name]) >= witness_rank(off[name])
                    for name in off)
        )
        all_agree &= agree
        row = (f"{tag:<24} {t_off:>9.4f} {t_on:>9.4f} "
               f"{t_off / t_on:>5.1f}x {table.hit_rate:>9.2f} "
               f"{len(table):>8} {context.stats.batch_occupancy:>9.2f} "
               f"{'yes' if agree else 'NO'}")
        print(row)
        lines.append(row)
    lines.append("")
    lines.append(
        "(ratios > 1 are the completion-value reuse win; hit-poor cells "
        "pay the bookkeeping, which is why sharing is an opt-in knob)"
    )
    return lines, all_agree


#: Fault-matrix fixtures stay at n <= 5: each budget multiplies the
#: exhaustive space, and the gate needs the full enumeration as truth.
FAULT_FIXTURES = [
    ("build-simasync-n5", gen.random_k_degenerate(5, 2, seed=0),
     lambda: DegenerateBuildProtocol(2), SIMASYNC),
    ("eob-bfs-async-n4", gen.random_even_odd_bipartite(4, 0.5, seed=1),
     lambda: EobBfsProtocol(), ASYNC),
]

FAULT_BUDGETS = ["crash:1", "loss:1", "dup:1", "crash:1,loss:1"]


def fault_matrix_section(reps: int) -> tuple[list[str], bool]:
    """Search vs exhaustive agreement over the fault × schedule space."""
    lines = ["fault matrix: search vs exhaustive over the joint "
             "fault x schedule space", ""]
    header = (f"{'fixture':<20} {'faults':<14} {'strategy':<18} {'bits':>5} "
              f"{'truth':>5} {'dead':>5} {'seconds':>9} {'exh sec':>9} agree")
    lines.append(header)
    print(header)
    all_agree = True
    for tag, graph, make_proto, model in FAULT_FIXTURES:
        for faults in FAULT_BUDGETS:
            def enumerate_all():
                bits, dead, count = 0, False, 0
                for r in all_executions(graph, make_proto(), model,
                                        faults=faults):
                    bits = max(bits, r.max_message_bits)
                    dead |= r.corrupted
                    count += 1
                return bits, dead, count

            t_exh, (truth_bits, truth_dead, schedules) = _median_time(
                enumerate_all, reps)
            for make_strategy in STRATEGIES:
                strategy = make_strategy()
                t_search, witness = _median_time(
                    lambda s=strategy: s.search(graph, make_proto(), model,
                                                faults=faults),
                    reps)
                if strategy.name == "deadlock-dfs":
                    agree = witness.deadlock == truth_dead
                else:
                    agree = witness.deadlock or witness.bits == truth_bits
                all_agree &= agree
                row = (f"{tag:<20} {faults:<14} {strategy.name:<18} "
                       f"{witness.bits:>5} {truth_bits:>5} "
                       f"{str(witness.deadlock):>5} {t_search:>9.4f} "
                       f"{t_exh:>9.4f} {'yes' if agree else 'NO'}")
                print(row)
                lines.append(row)
            lines.append(f"{'':<20} (exhaustive: {schedules} faulted "
                         "schedules)")
    lines.append("")
    lines.append(
        "(deadlock-dfs is gated on the exact reachability verdict; the "
        "bit seekers must reach the faulted maximum or find a deadlock)"
    )
    return lines, all_agree


def _median_time(fn, reps: int):
    times = []
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times), out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=5)
    args = parser.parse_args(argv)

    lines = ["adversary search vs exhaustive ground truth", ""]
    header = (f"{'fixture':<24} {'strategy':<18} {'bits':>5} {'truth':>5} "
              f"{'dead':>5} {'steps':>7} {'seconds':>9} {'exh sec':>9} agree")
    print(header)
    lines.append(header)
    all_agree = True
    for tag, graph, make_proto, model in FIXTURES:
        def enumerate_all():
            bits, dead, count = 0, False, 0
            for r in all_executions(graph, make_proto(), model):
                bits = max(bits, r.max_message_bits)
                dead |= r.corrupted
                count += 1
            return bits, dead, count

        t_exh, (truth_bits, truth_dead, schedules) = _median_time(
            enumerate_all, args.reps)
        for make_strategy in STRATEGIES:
            strategy = make_strategy()
            t_search, witness = _median_time(
                lambda s=strategy: s.search(graph, make_proto(), model),
                args.reps)
            if strategy.name == "deadlock-dfs":
                agree = witness.deadlock == truth_dead
            else:
                agree = witness.deadlock or witness.bits == truth_bits
            all_agree &= agree
            row = (f"{tag:<24} {strategy.name:<18} {witness.bits:>5} "
                   f"{truth_bits:>5} {str(witness.deadlock):>5} "
                   f"{witness.explored:>7} {t_search:>9.4f} {t_exh:>9.4f} "
                   f"{'yes' if agree else 'NO'}")
            print(row)
            lines.append(row)
        lines.append(f"{'':<24} (exhaustive: {schedules} schedules)")

    lines.append("")
    print()
    table_lines, table_agree = transposition_section(FIXTURES, args.reps)
    lines.extend(table_lines)
    all_agree &= table_agree

    lines.append("")
    print()
    fault_lines, fault_agree = fault_matrix_section(args.reps)
    lines.extend(fault_lines)
    all_agree &= fault_agree

    lines.append("")
    lines.append(f"agreement on every fixture: {all_agree}")
    REPORT_PATH.parent.mkdir(exist_ok=True)
    REPORT_PATH.write_text("\n".join(lines) + "\n")
    print(f"\nagreement on every fixture: {all_agree}")
    print(f"report written to {REPORT_PATH}")
    return 0 if all_agree else 1


if __name__ == "__main__":
    raise SystemExit(main())
