"""E2 — Table 2: the paper's problem x model classification, regenerated.

Every cell is recomputed by simulation (positive cells), executable
reduction + counting bound (negative cells), or annotated open-problem
evidence.  The benchmark asserts the regenerated table matches the
paper's exactly and writes the rendered table to ``reports/``.
"""

from __future__ import annotations

import pytest

from repro.analysis.table2 import generate_table2, render_table2
from repro.core.models import ALL_MODELS
from repro.hierarchy.lattice import TABLE2_ROWS


@pytest.fixture(scope="module")
def full_table():
    return generate_table2(quick=False, seed=0)


def test_table2_regeneration(benchmark, write_report, full_table):
    # Timed section: the quick workload (the full one runs once, above).
    quick = benchmark.pedantic(
        generate_table2, kwargs={"quick": True, "seed": 1}, rounds=1, iterations=1
    )
    assert quick.all_ok and quick.matches_paper()

    # The full-size regeneration must also match cell-for-cell.
    assert full_table.all_ok
    assert full_table.matches_paper()

    lines = [render_table2(full_table), "", "per-cell evidence:", ""]
    for row in TABLE2_ROWS:
        for model in ALL_MODELS:
            cell = full_table.cell(row.key, model)
            lines.append(f"[{row.key} / {model.name}] -> {cell.status}")
            for ev in cell.evidence:
                lines.append(f"    - {ev}")
    write_report("table2_classification", "\n".join(lines))


def test_table2_positive_cells_measured_logarithmic(benchmark, full_table):
    benchmark.pedantic(lambda: full_table.matches_paper(), rounds=1, iterations=1)
    """Every 'yes' cell was verified with messages far below o(n)."""
    for row in TABLE2_ROWS:
        for model in ALL_MODELS:
            cell = full_table.cell(row.key, model)
            if cell.status == "yes" and cell.max_message_bits:
                # workloads go up to n=32: O(log n) protocols stay under
                # ~max 30 * log2(32) bits even with codec overhead
                assert cell.max_message_bits < 32 * 6, (row.key, model.name)
